# Empty dependencies file for shelfsim_cli.
# This may be replaced when dependencies are built.
