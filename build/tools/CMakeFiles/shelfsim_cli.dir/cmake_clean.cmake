file(REMOVE_RECURSE
  "CMakeFiles/shelfsim_cli.dir/shelfsim_cli.cc.o"
  "CMakeFiles/shelfsim_cli.dir/shelfsim_cli.cc.o.d"
  "shelfsim_cli"
  "shelfsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelfsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
