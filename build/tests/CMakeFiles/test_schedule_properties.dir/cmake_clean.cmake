file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_properties.dir/core/test_schedule_properties.cc.o"
  "CMakeFiles/test_schedule_properties.dir/core/test_schedule_properties.cc.o.d"
  "test_schedule_properties"
  "test_schedule_properties.pdb"
  "test_schedule_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
