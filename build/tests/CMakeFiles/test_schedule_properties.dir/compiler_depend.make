# Empty compiler generated dependencies file for test_schedule_properties.
# This may be replaced when dependencies are built.
