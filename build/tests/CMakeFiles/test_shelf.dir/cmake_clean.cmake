file(REMOVE_RECURSE
  "CMakeFiles/test_shelf.dir/core/test_shelf.cc.o"
  "CMakeFiles/test_shelf.dir/core/test_shelf.cc.o.d"
  "test_shelf"
  "test_shelf.pdb"
  "test_shelf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
