# Empty compiler generated dependencies file for test_shelf.
# This may be replaced when dependencies are built.
