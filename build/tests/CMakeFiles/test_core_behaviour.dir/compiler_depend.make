# Empty compiler generated dependencies file for test_core_behaviour.
# This may be replaced when dependencies are built.
