file(REMOVE_RECURSE
  "CMakeFiles/test_core_behaviour.dir/core/test_core_behaviour.cc.o"
  "CMakeFiles/test_core_behaviour.dir/core/test_core_behaviour.cc.o.d"
  "test_core_behaviour"
  "test_core_behaviour.pdb"
  "test_core_behaviour[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_behaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
