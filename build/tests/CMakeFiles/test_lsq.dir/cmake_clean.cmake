file(REMOVE_RECURSE
  "CMakeFiles/test_lsq.dir/core/test_lsq.cc.o"
  "CMakeFiles/test_lsq.dir/core/test_lsq.cc.o.d"
  "test_lsq"
  "test_lsq.pdb"
  "test_lsq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
