# Empty dependencies file for test_lsq.
# This may be replaced when dependencies are built.
