# Empty dependencies file for test_core_integration.
# This may be replaced when dependencies are built.
