file(REMOVE_RECURSE
  "CMakeFiles/test_core_integration.dir/core/test_core_integration.cc.o"
  "CMakeFiles/test_core_integration.dir/core/test_core_integration.cc.o.d"
  "test_core_integration"
  "test_core_integration.pdb"
  "test_core_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
