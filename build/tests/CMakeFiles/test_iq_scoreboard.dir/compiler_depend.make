# Empty compiler generated dependencies file for test_iq_scoreboard.
# This may be replaced when dependencies are built.
