file(REMOVE_RECURSE
  "CMakeFiles/test_iq_scoreboard.dir/core/test_iq_scoreboard.cc.o"
  "CMakeFiles/test_iq_scoreboard.dir/core/test_iq_scoreboard.cc.o.d"
  "test_iq_scoreboard"
  "test_iq_scoreboard.pdb"
  "test_iq_scoreboard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iq_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
