file(REMOVE_RECURSE
  "CMakeFiles/test_params.dir/core/test_params.cc.o"
  "CMakeFiles/test_params.dir/core/test_params.cc.o.d"
  "test_params"
  "test_params.pdb"
  "test_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
