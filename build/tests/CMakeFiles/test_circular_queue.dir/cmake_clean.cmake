file(REMOVE_RECURSE
  "CMakeFiles/test_circular_queue.dir/base/test_circular_queue.cc.o"
  "CMakeFiles/test_circular_queue.dir/base/test_circular_queue.cc.o.d"
  "test_circular_queue"
  "test_circular_queue.pdb"
  "test_circular_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circular_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
