# Empty compiler generated dependencies file for test_circular_queue.
# This may be replaced when dependencies are built.
