file(REMOVE_RECURSE
  "CMakeFiles/test_fu_classify.dir/core/test_fu_classify.cc.o"
  "CMakeFiles/test_fu_classify.dir/core/test_fu_classify.cc.o.d"
  "test_fu_classify"
  "test_fu_classify.pdb"
  "test_fu_classify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fu_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
