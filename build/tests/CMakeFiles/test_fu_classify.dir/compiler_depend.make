# Empty compiler generated dependencies file for test_fu_classify.
# This may be replaced when dependencies are built.
