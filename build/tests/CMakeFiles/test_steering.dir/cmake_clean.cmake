file(REMOVE_RECURSE
  "CMakeFiles/test_steering.dir/core/test_steering.cc.o"
  "CMakeFiles/test_steering.dir/core/test_steering.cc.o.d"
  "test_steering"
  "test_steering.pdb"
  "test_steering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
