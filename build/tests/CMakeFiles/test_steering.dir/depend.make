# Empty dependencies file for test_steering.
# This may be replaced when dependencies are built.
