file(REMOVE_RECURSE
  "CMakeFiles/test_ssr.dir/core/test_ssr.cc.o"
  "CMakeFiles/test_ssr.dir/core/test_ssr.cc.o.d"
  "test_ssr"
  "test_ssr.pdb"
  "test_ssr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
