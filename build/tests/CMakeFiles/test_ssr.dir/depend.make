# Empty dependencies file for test_ssr.
# This may be replaced when dependencies are built.
