file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/mem/test_cache.cc.o"
  "CMakeFiles/test_cache.dir/mem/test_cache.cc.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
