file(REMOVE_RECURSE
  "CMakeFiles/test_bitutil.dir/base/test_bitutil.cc.o"
  "CMakeFiles/test_bitutil.dir/base/test_bitutil.cc.o.d"
  "test_bitutil"
  "test_bitutil.pdb"
  "test_bitutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
