# Empty dependencies file for test_pipe_trace.
# This may be replaced when dependencies are built.
