file(REMOVE_RECURSE
  "CMakeFiles/test_pipe_trace.dir/core/test_pipe_trace.cc.o"
  "CMakeFiles/test_pipe_trace.dir/core/test_pipe_trace.cc.o.d"
  "test_pipe_trace"
  "test_pipe_trace.pdb"
  "test_pipe_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
