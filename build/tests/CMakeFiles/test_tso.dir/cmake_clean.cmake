file(REMOVE_RECURSE
  "CMakeFiles/test_tso.dir/core/test_tso.cc.o"
  "CMakeFiles/test_tso.dir/core/test_tso.cc.o.d"
  "test_tso"
  "test_tso.pdb"
  "test_tso[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
