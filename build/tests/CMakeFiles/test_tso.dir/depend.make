# Empty dependencies file for test_tso.
# This may be replaced when dependencies are built.
