file(REMOVE_RECURSE
  "CMakeFiles/test_gshare.dir/branch/test_gshare.cc.o"
  "CMakeFiles/test_gshare.dir/branch/test_gshare.cc.o.d"
  "test_gshare"
  "test_gshare.pdb"
  "test_gshare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
