# Empty dependencies file for test_gshare.
# This may be replaced when dependencies are built.
