file(REMOVE_RECURSE
  "CMakeFiles/test_store_sets.dir/branch/test_store_sets.cc.o"
  "CMakeFiles/test_store_sets.dir/branch/test_store_sets.cc.o.d"
  "test_store_sets"
  "test_store_sets.pdb"
  "test_store_sets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
