# Empty compiler generated dependencies file for test_store_sets.
# This may be replaced when dependencies are built.
