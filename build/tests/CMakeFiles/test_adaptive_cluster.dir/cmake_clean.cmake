file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_cluster.dir/core/test_adaptive_cluster.cc.o"
  "CMakeFiles/test_adaptive_cluster.dir/core/test_adaptive_cluster.cc.o.d"
  "test_adaptive_cluster"
  "test_adaptive_cluster.pdb"
  "test_adaptive_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
