# Empty dependencies file for test_adaptive_cluster.
# This may be replaced when dependencies are built.
