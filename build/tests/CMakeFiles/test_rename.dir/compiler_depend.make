# Empty compiler generated dependencies file for test_rename.
# This may be replaced when dependencies are built.
