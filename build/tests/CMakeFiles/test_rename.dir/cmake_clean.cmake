file(REMOVE_RECURSE
  "CMakeFiles/test_rename.dir/core/test_rename.cc.o"
  "CMakeFiles/test_rename.dir/core/test_rename.cc.o.d"
  "test_rename"
  "test_rename.pdb"
  "test_rename[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
