file(REMOVE_RECURSE
  "CMakeFiles/test_json.dir/base/test_json.cc.o"
  "CMakeFiles/test_json.dir/base/test_json.cc.o.d"
  "test_json"
  "test_json.pdb"
  "test_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
