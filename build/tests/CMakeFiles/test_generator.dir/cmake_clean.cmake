file(REMOVE_RECURSE
  "CMakeFiles/test_generator.dir/workload/test_generator.cc.o"
  "CMakeFiles/test_generator.dir/workload/test_generator.cc.o.d"
  "test_generator"
  "test_generator.pdb"
  "test_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
