# Empty compiler generated dependencies file for test_generator.
# This may be replaced when dependencies are built.
