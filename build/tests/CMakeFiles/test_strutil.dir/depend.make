# Empty dependencies file for test_strutil.
# This may be replaced when dependencies are built.
