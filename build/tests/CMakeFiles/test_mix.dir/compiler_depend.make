# Empty compiler generated dependencies file for test_mix.
# This may be replaced when dependencies are built.
