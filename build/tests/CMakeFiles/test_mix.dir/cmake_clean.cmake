file(REMOVE_RECURSE
  "CMakeFiles/test_mix.dir/workload/test_mix.cc.o"
  "CMakeFiles/test_mix.dir/workload/test_mix.cc.o.d"
  "test_mix"
  "test_mix.pdb"
  "test_mix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
