file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_steering.dir/core/test_shadow_steering.cc.o"
  "CMakeFiles/test_shadow_steering.dir/core/test_shadow_steering.cc.o.d"
  "test_shadow_steering"
  "test_shadow_steering.pdb"
  "test_shadow_steering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
