# Empty dependencies file for test_shadow_steering.
# This may be replaced when dependencies are built.
