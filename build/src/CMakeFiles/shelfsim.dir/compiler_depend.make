# Empty compiler generated dependencies file for shelfsim.
# This may be replaced when dependencies are built.
