
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/json.cc" "src/CMakeFiles/shelfsim.dir/base/json.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/base/json.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/shelfsim.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/shelfsim.dir/base/random.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/base/random.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/shelfsim.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/base/stats.cc.o.d"
  "/root/repo/src/base/strutil.cc" "src/CMakeFiles/shelfsim.dir/base/strutil.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/base/strutil.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/shelfsim.dir/base/table.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/base/table.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/CMakeFiles/shelfsim.dir/branch/gshare.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/branch/gshare.cc.o.d"
  "/root/repo/src/branch/store_sets.cc" "src/CMakeFiles/shelfsim.dir/branch/store_sets.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/branch/store_sets.cc.o.d"
  "/root/repo/src/core/classify.cc" "src/CMakeFiles/shelfsim.dir/core/classify.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/classify.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/shelfsim.dir/core/core.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/core.cc.o.d"
  "/root/repo/src/core/core_fetch.cc" "src/CMakeFiles/shelfsim.dir/core/core_fetch.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/core_fetch.cc.o.d"
  "/root/repo/src/core/core_issue.cc" "src/CMakeFiles/shelfsim.dir/core/core_issue.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/core_issue.cc.o.d"
  "/root/repo/src/core/core_mem.cc" "src/CMakeFiles/shelfsim.dir/core/core_mem.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/core_mem.cc.o.d"
  "/root/repo/src/core/core_squash.cc" "src/CMakeFiles/shelfsim.dir/core/core_squash.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/core_squash.cc.o.d"
  "/root/repo/src/core/dyn_inst.cc" "src/CMakeFiles/shelfsim.dir/core/dyn_inst.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/dyn_inst.cc.o.d"
  "/root/repo/src/core/fu_pool.cc" "src/CMakeFiles/shelfsim.dir/core/fu_pool.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/fu_pool.cc.o.d"
  "/root/repo/src/core/iq.cc" "src/CMakeFiles/shelfsim.dir/core/iq.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/iq.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/shelfsim.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/params.cc" "src/CMakeFiles/shelfsim.dir/core/params.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/params.cc.o.d"
  "/root/repo/src/core/rename.cc" "src/CMakeFiles/shelfsim.dir/core/rename.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/rename.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/shelfsim.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/rob.cc.o.d"
  "/root/repo/src/core/scoreboard.cc" "src/CMakeFiles/shelfsim.dir/core/scoreboard.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/scoreboard.cc.o.d"
  "/root/repo/src/core/shelf.cc" "src/CMakeFiles/shelfsim.dir/core/shelf.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/shelf.cc.o.d"
  "/root/repo/src/core/ssr.cc" "src/CMakeFiles/shelfsim.dir/core/ssr.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/ssr.cc.o.d"
  "/root/repo/src/core/steer/oracle.cc" "src/CMakeFiles/shelfsim.dir/core/steer/oracle.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/steer/oracle.cc.o.d"
  "/root/repo/src/core/steer/plt.cc" "src/CMakeFiles/shelfsim.dir/core/steer/plt.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/steer/plt.cc.o.d"
  "/root/repo/src/core/steer/practical.cc" "src/CMakeFiles/shelfsim.dir/core/steer/practical.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/steer/practical.cc.o.d"
  "/root/repo/src/core/steer/rct.cc" "src/CMakeFiles/shelfsim.dir/core/steer/rct.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/steer/rct.cc.o.d"
  "/root/repo/src/core/steer/steering.cc" "src/CMakeFiles/shelfsim.dir/core/steer/steering.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/core/steer/steering.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/shelfsim.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/isa/op_class.cc" "src/CMakeFiles/shelfsim.dir/isa/op_class.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/isa/op_class.cc.o.d"
  "/root/repo/src/isa/static_inst.cc" "src/CMakeFiles/shelfsim.dir/isa/static_inst.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/isa/static_inst.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/shelfsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/shelfsim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/metrics/throughput.cc" "src/CMakeFiles/shelfsim.dir/metrics/throughput.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/metrics/throughput.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/shelfsim.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/shelfsim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/sim/system.cc.o.d"
  "/root/repo/src/workload/characterize.cc" "src/CMakeFiles/shelfsim.dir/workload/characterize.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/workload/characterize.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/shelfsim.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/mix.cc" "src/CMakeFiles/shelfsim.dir/workload/mix.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/workload/mix.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/shelfsim.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/spec2006.cc" "src/CMakeFiles/shelfsim.dir/workload/spec2006.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/workload/spec2006.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/shelfsim.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/shelfsim.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
