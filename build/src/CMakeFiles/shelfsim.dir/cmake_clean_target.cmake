file(REMOVE_RECURSE
  "libshelfsim.a"
)
