file(REMOVE_RECURSE
  "CMakeFiles/inorder_vs_ooo.dir/inorder_vs_ooo.cpp.o"
  "CMakeFiles/inorder_vs_ooo.dir/inorder_vs_ooo.cpp.o.d"
  "inorder_vs_ooo"
  "inorder_vs_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inorder_vs_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
