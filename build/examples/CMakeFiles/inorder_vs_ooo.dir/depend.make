# Empty dependencies file for inorder_vs_ooo.
# This may be replaced when dependencies are built.
