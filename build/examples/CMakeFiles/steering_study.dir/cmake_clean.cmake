file(REMOVE_RECURSE
  "CMakeFiles/steering_study.dir/steering_study.cpp.o"
  "CMakeFiles/steering_study.dir/steering_study.cpp.o.d"
  "steering_study"
  "steering_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
