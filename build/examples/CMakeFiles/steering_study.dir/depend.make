# Empty dependencies file for steering_study.
# This may be replaced when dependencies are built.
