file(REMOVE_RECURSE
  "CMakeFiles/smt_throughput.dir/smt_throughput.cpp.o"
  "CMakeFiles/smt_throughput.dir/smt_throughput.cpp.o.d"
  "smt_throughput"
  "smt_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
