# Empty dependencies file for smt_throughput.
# This may be replaced when dependencies are built.
