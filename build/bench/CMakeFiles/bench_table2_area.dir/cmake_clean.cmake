file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_area.dir/bench_table2_area.cpp.o"
  "CMakeFiles/bench_table2_area.dir/bench_table2_area.cpp.o.d"
  "bench_table2_area"
  "bench_table2_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
