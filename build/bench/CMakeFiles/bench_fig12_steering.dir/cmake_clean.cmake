file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_steering.dir/bench_fig12_steering.cpp.o"
  "CMakeFiles/bench_fig12_steering.dir/bench_fig12_steering.cpp.o.d"
  "bench_fig12_steering"
  "bench_fig12_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
