# Empty compiler generated dependencies file for bench_fig12_steering.
# This may be replaced when dependencies are built.
