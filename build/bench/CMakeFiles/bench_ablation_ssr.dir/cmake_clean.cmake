file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ssr.dir/bench_ablation_ssr.cpp.o"
  "CMakeFiles/bench_ablation_ssr.dir/bench_ablation_ssr.cpp.o.d"
  "bench_ablation_ssr"
  "bench_ablation_ssr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ssr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
