# Empty compiler generated dependencies file for bench_ablation_ssr.
# This may be replaced when dependencies are built.
