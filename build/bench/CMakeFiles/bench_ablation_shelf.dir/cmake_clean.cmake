file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shelf.dir/bench_ablation_shelf.cpp.o"
  "CMakeFiles/bench_ablation_shelf.dir/bench_ablation_shelf.cpp.o.d"
  "bench_ablation_shelf"
  "bench_ablation_shelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
