# Empty dependencies file for bench_ablation_shelf.
# This may be replaced when dependencies are built.
