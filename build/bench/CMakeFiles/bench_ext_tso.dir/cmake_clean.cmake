file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tso.dir/bench_ext_tso.cpp.o"
  "CMakeFiles/bench_ext_tso.dir/bench_ext_tso.cpp.o.d"
  "bench_ext_tso"
  "bench_ext_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
