# Empty compiler generated dependencies file for bench_ext_tso.
# This may be replaced when dependencies are built.
