file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cluster.dir/bench_ext_cluster.cpp.o"
  "CMakeFiles/bench_ext_cluster.dir/bench_ext_cluster.cpp.o.d"
  "bench_ext_cluster"
  "bench_ext_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
