# Empty compiler generated dependencies file for bench_ext_cluster.
# This may be replaced when dependencies are built.
