file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_edp.dir/bench_fig13_edp.cpp.o"
  "CMakeFiles/bench_fig13_edp.dir/bench_fig13_edp.cpp.o.d"
  "bench_fig13_edp"
  "bench_fig13_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
