# Empty compiler generated dependencies file for bench_fig13_edp.
# This may be replaced when dependencies are built.
