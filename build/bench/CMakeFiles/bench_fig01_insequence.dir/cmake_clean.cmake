file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_insequence.dir/bench_fig01_insequence.cpp.o"
  "CMakeFiles/bench_fig01_insequence.dir/bench_fig01_insequence.cpp.o.d"
  "bench_fig01_insequence"
  "bench_fig01_insequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_insequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
