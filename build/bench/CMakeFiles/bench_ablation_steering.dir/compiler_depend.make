# Empty compiler generated dependencies file for bench_ablation_steering.
# This may be replaced when dependencies are built.
