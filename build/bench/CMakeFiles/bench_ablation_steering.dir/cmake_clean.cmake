file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_steering.dir/bench_ablation_steering.cpp.o"
  "CMakeFiles/bench_ablation_steering.dir/bench_ablation_steering.cpp.o.d"
  "bench_ablation_steering"
  "bench_ablation_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
