file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_series.dir/bench_fig02_series.cpp.o"
  "CMakeFiles/bench_fig02_series.dir/bench_fig02_series.cpp.o.d"
  "bench_fig02_series"
  "bench_fig02_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
