# Empty compiler generated dependencies file for bench_fig02_series.
# This may be replaced when dependencies are built.
