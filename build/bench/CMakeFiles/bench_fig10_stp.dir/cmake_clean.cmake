file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stp.dir/bench_fig10_stp.cpp.o"
  "CMakeFiles/bench_fig10_stp.dir/bench_fig10_stp.cpp.o.d"
  "bench_fig10_stp"
  "bench_fig10_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
