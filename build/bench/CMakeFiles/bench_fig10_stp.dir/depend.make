# Empty dependencies file for bench_fig10_stp.
# This may be replaced when dependencies are built.
