# Empty dependencies file for bench_fig14_fewer_threads.
# This may be replaced when dependencies are built.
