file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fewer_threads.dir/bench_fig14_fewer_threads.cpp.o"
  "CMakeFiles/bench_fig14_fewer_threads.dir/bench_fig14_fewer_threads.cpp.o.d"
  "bench_fig14_fewer_threads"
  "bench_fig14_fewer_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fewer_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
