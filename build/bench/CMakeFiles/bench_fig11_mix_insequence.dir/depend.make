# Empty dependencies file for bench_fig11_mix_insequence.
# This may be replaced when dependencies are built.
