file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mix_insequence.dir/bench_fig11_mix_insequence.cpp.o"
  "CMakeFiles/bench_fig11_mix_insequence.dir/bench_fig11_mix_insequence.cpp.o.d"
  "bench_fig11_mix_insequence"
  "bench_fig11_mix_insequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mix_insequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
