#!/bin/sh
# Run a binary under AddressSanitizer runtime options that turn any
# report into a nonzero exit code (ctest entries: *_asan).
#
# Intended use (see README "Running sweeps"):
#   cmake -B build-asan -S . -DSHELFSIM_ASAN=ON
#   cmake --build build-asan -j
#   cd build-asan && ctest -R asan --output-on-failure
#
# The binary must itself have been built with -fsanitize=address
# (the SHELFSIM_ASAN CMake option does that); this wrapper only sets
# the runtime options.

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <binary> [args...]" >&2
    exit 2
fi

bin=$1
shift

if [ ! -x "$bin" ]; then
    echo "run_asan_smoke: '$bin' is not executable" >&2
    exit 2
fi

# abort_on_error: the first report kills the run instead of logging.
# detect_leaks stays on by default where LeakSanitizer is available.
ASAN_OPTIONS="${ASAN_OPTIONS:-}${ASAN_OPTIONS:+ }abort_on_error=1 exitcode=66" \
SHELFSIM_JOBS=4 \
exec "$bin" "$@"
