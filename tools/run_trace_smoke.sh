#!/bin/sh
# End-to-end smoke test of the trace-driven workload frontend,
# driven through the real shelfsim_cli and shelfsim_trace binaries
# (ctest entry: trace_smoke).
#
# Phases:
#   1. fixtures: the committed valid/corrupt samples verify the way
#      they are documented to; a SimpleO3 text sample converts.
#   2. record/replay: four traces recorded with shelfsim_trace, one
#      sweep cell replaced by them (--trace-cell); every other cell
#      of the 28-cell sweep stays byte-identical to a plain sweep.
#   3. corruption: the same sweep with one trace file damaged
#      quarantines exactly that cell (TraceError in the failure
#      summary, exit 1) and leaves the other 27 rows byte-identical.
#   4. served: the trace sweep through a --serve daemon is
#      byte-identical to the local run, replays warm with zero new
#      executions, and an in-place trace edit forces a cold miss.
#   5. fabric: the same sweep through two --nodes daemons is still
#      byte-identical.

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <shelfsim_cli> <shelfsim_trace>" >&2
    exit 2
fi

cli=$1
trc=$2
data=$(dirname "$0")/../tests/data/traces
server_pid=""
a_pid=""
b_pid=""

tmp=$(mktemp -d /tmp/shelfsim_trace_smoke.XXXXXX)

cleanup() {
    for p in $server_pid $a_pid $b_pid; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "trace_smoke: FAIL: $1" >&2
    exit 1
}

common="--warmup 200 --cycles 800 --threads 4"
cell=3     # the sweep cell the trace files replace
row=$((cell + 2))  # its stdout line (1 config header + 1-based)

# --- Phase 1: committed fixtures behave as documented --------------
"$trc" verify "$data/valid_small.shlftrc" >/dev/null \
    || fail "committed valid sample does not verify"
"$trc" verify "$data/corrupt_small.shlftrc" 2>"$tmp/verr" \
    && fail "committed corrupt sample verified cleanly"
grep -q "CrcMismatch" "$tmp/verr" \
    || fail "corrupt sample not diagnosed as CrcMismatch"
"$trc" verify --skip-corrupt "$data/corrupt_small.shlftrc" \
    >/dev/null || fail "skip-corrupt could not salvage the sample"
"$trc" convert --simpleo3 "$data/simpleo3_stream.trace" \
    "$tmp/imported.shlftrc" >/dev/null \
    || fail "SimpleO3 sample did not convert"
"$trc" verify "$tmp/imported.shlftrc" >/dev/null \
    || fail "converted SimpleO3 trace does not verify"

# --- Phase 2: record four traces, replay them as one sweep cell ----
for t in 0 1 2 3; do
    "$trc" record --benchmark mcf --seed $((40 + t)) --insts 6000 \
        --out "$tmp/cell$t.shlftrc" >/dev/null \
        || fail "record $t failed"
done
files="$tmp/cell0.shlftrc:$tmp/cell1.shlftrc"
files="$files:$tmp/cell2.shlftrc:$tmp/cell3.shlftrc"

"$cli" --sweep --config base64 $common \
    >"$tmp/plain.out" 2>/dev/null || fail "plain sweep failed"
"$cli" --sweep --config base64 $common --trace-cell "$cell=$files" \
    >"$tmp/traced.out" 2>/dev/null || fail "trace-cell sweep failed"

grep -q "^  trace:" "$tmp/traced.out" \
    || fail "trace-backed cell row missing from report"
# All rows but the replaced one (and the geomean it shifts) must be
# byte-identical to the plain sweep.
sed "${row}d;/^geomean/d" "$tmp/plain.out" >"$tmp/plain.rest"
sed "${row}d;/^geomean/d" "$tmp/traced.out" >"$tmp/traced.rest"
cmp -s "$tmp/plain.rest" "$tmp/traced.rest" \
    || fail "trace cell perturbed other sweep rows"

# --- Phase 3: a corrupted trace quarantines exactly its own cell ---
"$trc" corrupt "$tmp/cell1.shlftrc" "$tmp/cell1.bad.shlftrc" \
    --at 90 --xor 85 >/dev/null || fail "corrupt tool failed"
bad="$tmp/cell0.shlftrc:$tmp/cell1.bad.shlftrc"
bad="$bad:$tmp/cell2.shlftrc:$tmp/cell3.shlftrc"

"$cli" --sweep --config base64 $common --trace-cell "$cell=$bad" \
    >"$tmp/poison.out" 2>"$tmp/poison.err" \
    && fail "sweep with a corrupt trace exited zero"
[ "$(grep -c QUARANTINED "$tmp/poison.out")" -eq 1 ] \
    || fail "want exactly 1 quarantined cell"
sed -n "${row}p" "$tmp/poison.out" | grep -q QUARANTINED \
    || fail "wrong cell quarantined"
grep -q "TraceError" "$tmp/poison.err" \
    || fail "failure summary does not name the TraceError"
grep -q "quarantined" "$tmp/poison.err" \
    || fail "missing quarantine summary line"
sed "${row}d;/^geomean/d" "$tmp/poison.out" >"$tmp/poison.rest"
cmp -s "$tmp/traced.rest" "$tmp/poison.rest" \
    || fail "corrupt cell perturbed healthy sweep rows"

# --- Phase 4: served trace sweep: cold, warm, and after an edit ----
sock="$tmp/sock"
cache="$tmp/cache"
"$cli" --serve "$sock" --cache-dir "$cache" 2>"$tmp/server.log" &
server_pid=$!
tries=0
while [ ! -S "$sock" ]; do
    tries=$((tries + 1))
    [ "$tries" -lt 100 ] || fail "server socket never appeared"
    sleep 0.1
done

counter() {
    "$cli" --serve-stats "$sock" \
        | tr ',{' '\n\n' | grep "\"$1\"" | cut -d: -f2
}

served="--connect $sock --cache-dir $cache"
"$cli" --sweep --config base64 $common --trace-cell "$cell=$files" \
    $served >"$tmp/cold.out" 2>/dev/null \
    || fail "cold served trace sweep failed"
cmp -s "$tmp/traced.out" "$tmp/cold.out" \
    || fail "cold served output differs from local run"
[ "$(counter serve.jobs_executed)" -eq 28 ] \
    || fail "cold run did not execute all 28 cells"

"$cli" --sweep --config base64 $common --trace-cell "$cell=$files" \
    $served >"$tmp/warm.out" 2>/dev/null \
    || fail "warm served trace sweep failed"
cmp -s "$tmp/cold.out" "$tmp/warm.out" \
    || fail "warm output not byte-identical to cold"
[ "$(counter serve.jobs_executed)" -eq 28 ] \
    || fail "warm run re-executed trace-backed cells"

# An in-place edit must change the cell's identity: same command,
# one fresh execution (content-addressed, not path-addressed).
"$trc" corrupt "$tmp/cell2.shlftrc" "$tmp/cell2.shlftrc" \
    --at 30 --xor 1 >/dev/null || fail "in-place edit failed"
"$trc" verify --skip-corrupt "$tmp/cell2.shlftrc" >/dev/null \
    || fail "edited trace unreadable even in skip mode"
# The edit flipped a byte inside a checksummed chunk, so the strict
# replay quarantines that cell; what matters here is identity: the
# daemon saw a *new* job key (a cache miss), not a warm hit.
"$cli" --sweep --config base64 $common --trace-cell "$cell=$files" \
    $served >"$tmp/edit.out" 2>/dev/null || true
[ "$(counter serve.cache_miss)" -gt 28 ] \
    || fail "edited trace did not change the job identity"
"$cli" --serve-shutdown "$sock" >/dev/null 2>&1 \
    || fail "server shutdown failed"
wait "$server_pid" || fail "server exited nonzero"
server_pid=""

# Restore the pristine cell2 for the fabric phase.
"$trc" record --benchmark mcf --seed 42 --insts 6000 \
    --out "$tmp/cell2.shlftrc" >/dev/null || fail "re-record failed"

# --- Phase 5: the same sweep through a two-node fabric -------------
"$cli" --serve "$tmp/a.sock" --cache-dir "$tmp/acache" \
    2>"$tmp/a.log" &
a_pid=$!
"$cli" --serve "$tmp/b.sock" --cache-dir "$tmp/bcache" \
    2>"$tmp/b.log" &
b_pid=$!
tries=0
while [ ! -S "$tmp/a.sock" ] || [ ! -S "$tmp/b.sock" ]; do
    tries=$((tries + 1))
    [ "$tries" -lt 100 ] || fail "fabric sockets never appeared"
    sleep 0.1
done

"$cli" --sweep --config base64 $common --trace-cell "$cell=$files" \
    --nodes "a=$tmp/a.sock,b=$tmp/b.sock" \
    >"$tmp/fabric.out" 2>/dev/null || fail "fabric trace sweep failed"
cmp -s "$tmp/traced.out" "$tmp/fabric.out" \
    || fail "fabric output differs from local run"

"$cli" --serve-shutdown "$tmp/a.sock" >/dev/null 2>&1 || true
"$cli" --serve-shutdown "$tmp/b.sock" >/dev/null 2>&1 || true
wait "$a_pid" 2>/dev/null || true
wait "$b_pid" 2>/dev/null || true
a_pid=""
b_pid=""

echo "trace_smoke: OK (28-cell sweep, 1 trace cell, quarantine +" \
     "serve + fabric byte-identical)"
