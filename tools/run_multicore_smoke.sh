#!/bin/sh
# End-to-end smoke test of the multi-core system mode through the
# real shelfsim_cli binary (ctest entry: multicore_smoke).
#
# Phases:
#   1. determinism: a 2-core x 4-thread allocation-policy sweep must
#      produce byte-identical stdout for any --jobs value and under
#      --isolate.
#   2. journal + resume: rerunning the isolated sweep with --resume
#      replays every cell byte-identically from the journal, zero
#      re-executions.
#   3. served run: the same sweep through a --serve daemon
#      (--connect) stays byte-identical, and a warm repeat answers
#      entirely from the daemon's cache.
#   4. fabric run: the sweep across two --serve daemons (--nodes)
#      stays byte-identical to the local run.
#   5. single-core guard: --cores 1 output is byte-identical to the
#      same sweep without any multi-core flag.

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <shelfsim_cli-binary>" >&2
    exit 2
fi

cli=$1
if [ ! -x "$cli" ]; then
    echo "multicore_smoke: '$cli' is not executable" >&2
    exit 2
fi

tmp=$(mktemp -d /tmp/shelfsim_multicore_smoke.XXXXXX)
pids=""

cleanup() {
    for pid in $pids; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "multicore_smoke: FAIL: $1" >&2
    exit 1
}

# 2 cores x 4 threads, a 6-cell slice of the standard 8-thread mixes,
# short cycles. The classify policy exercises the profile scoring.
common="--config shelf-opt --threads 4 --cores 2 --alloc classify \
--warmup 200 --cycles 800 --sweep 6"

start_server() {
    sock=$1
    shift
    "$cli" --serve "$sock" "$@" 2>>"$tmp/servers.log" &
    last_pid=$!
    pids="$pids $last_pid"
    tries=0
    while [ ! -S "$sock" ]; do
        tries=$((tries + 1))
        [ "$tries" -lt 100 ] || fail "socket $sock never appeared"
        sleep 0.1
    done
}

# --- Phase 1: determinism across job counts and isolation ----------
"$cli" $common --jobs 1 >"$tmp/j1.out" 2>/dev/null \
    || fail "2-core sweep (--jobs 1) exited nonzero"
grep -q "2 cores x 4 threads, classify" "$tmp/j1.out" \
    || fail "report header does not announce the multi-core shape"
"$cli" $common --jobs 4 >"$tmp/j4.out" 2>/dev/null \
    || fail "2-core sweep (--jobs 4) exited nonzero"
cmp -s "$tmp/j1.out" "$tmp/j4.out" \
    || fail "2-core sweep differs between --jobs 1 and --jobs 4"
"$cli" $common --isolate --journal "$tmp/mc.jsonl" \
    >"$tmp/iso.out" 2>/dev/null \
    || fail "isolated 2-core sweep exited nonzero"
cmp -s "$tmp/j1.out" "$tmp/iso.out" \
    || fail "isolated 2-core sweep differs from in-process run"

# --- Phase 2: byte-identical resume from the journal ---------------
jobs_journaled=$(wc -l <"$tmp/mc.jsonl")
[ "$jobs_journaled" -eq 6 ] \
    || fail "journal has $jobs_journaled records, want 6"
"$cli" $common --isolate --journal "$tmp/mc.jsonl" --resume \
    >"$tmp/resume.out" 2>"$tmp/resume.err" \
    || fail "resumed 2-core sweep exited nonzero"
cmp -s "$tmp/j1.out" "$tmp/resume.out" \
    || fail "resumed 2-core sweep output differs"
grep -q "replayed 6/6 jobs from journal" "$tmp/resume.err" \
    || fail "resume re-executed finished multi-core jobs"

# --- Phase 3: served run, cold then warm ---------------------------
start_server "$tmp/serve.sock" --cache-dir "$tmp/cache"
"$cli" $common --connect "$tmp/serve.sock" --cache-dir "$tmp/cache" \
    >"$tmp/served.out" 2>/dev/null \
    || fail "served 2-core sweep exited nonzero"
cmp -s "$tmp/j1.out" "$tmp/served.out" \
    || fail "served 2-core sweep differs from local run"
"$cli" $common --connect "$tmp/serve.sock" --cache-dir "$tmp/cache" \
    >"$tmp/warm.out" 2>/dev/null \
    || fail "warm served 2-core sweep exited nonzero"
cmp -s "$tmp/j1.out" "$tmp/warm.out" \
    || fail "warm served 2-core sweep differs"
hits=$("$cli" --serve-stats "$tmp/serve.sock" \
    | tr ',{' '\n\n' | grep '"serve.cache_hit"' | cut -d: -f2)
[ "${hits:-0}" -ge 6 ] \
    || fail "warm served run hit the cache $hits times, want >= 6"
"$cli" --serve-shutdown "$tmp/serve.sock" 2>/dev/null \
    || fail "daemon shutdown failed"

# --- Phase 4: fabric run across two daemons ------------------------
start_server "$tmp/a.sock"
start_server "$tmp/b.sock"
"$cli" $common --nodes "a=$tmp/a.sock,b=$tmp/b.sock" \
    >"$tmp/fabric.out" 2>/dev/null \
    || fail "fabric 2-core sweep exited nonzero"
cmp -s "$tmp/j1.out" "$tmp/fabric.out" \
    || fail "fabric 2-core sweep differs from local run"

# --- Phase 5: --cores 1 is byte-identical to no flag at all --------
single="--config shelf-opt --threads 4 --warmup 200 --cycles 800 \
--sweep 6"
"$cli" $single >"$tmp/plain.out" 2>/dev/null \
    || fail "single-core sweep exited nonzero"
"$cli" $single --cores 1 --alloc round-robin >"$tmp/c1.out" \
    2>/dev/null || fail "--cores 1 sweep exited nonzero"
cmp -s "$tmp/plain.out" "$tmp/c1.out" \
    || fail "--cores 1 sweep differs from the single-core default"

echo "multicore_smoke: OK (deterministic local/isolated/resume/" \
    "served/fabric, --cores 1 byte-identical)"
