#!/bin/sh
# End-to-end smoke test of the supervised sweep executor, driven
# through the real shelfsim_cli binary (ctest entry: supervisor_smoke).
#
# Phases:
#   1. reference: a clean serial in-process sweep.
#   2. fault injection: the same sweep under isolation with one
#      crashing and one hanging job; healthy rows must match the
#      reference byte-for-byte, the two faulty jobs must be
#      quarantined with repro artifacts, and the exit code must
#      signal partial failure.
#   3. resume: kill the orchestrator mid-sweep (SIGKILL, so nothing
#      can clean up), then rerun with --resume on the same journal;
#      the merged output must be byte-identical to the reference and
#      already-journaled jobs must not run again.

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <shelfsim_cli-binary>" >&2
    exit 2
fi

cli=$1
if [ ! -x "$cli" ]; then
    echo "supervisor_smoke: '$cli' is not executable" >&2
    exit 2
fi

tmp=$(mktemp -d /tmp/shelfsim_smoke.XXXXXX)
trap 'rm -rf "$tmp"' EXIT

# Tiny but non-trivial: 6 mixes, short runs.
sweep="--sweep 6 --warmup 400 --cycles 1600"

fail() {
    echo "supervisor_smoke: FAIL: $1" >&2
    exit 1
}

# --- Phase 1: clean serial reference -------------------------------
"$cli" $sweep --jobs 1 >"$tmp/reference.out" 2>/dev/null \
    || fail "reference sweep exited nonzero"

# --- Phase 2: injected crash + hang under isolation ----------------
rc=0
"$cli" $sweep --isolate --timeout 2 --retries 1 \
    --inject-fault '1=crash,3=hang' \
    --journal "$tmp/faulty.jsonl" \
    >"$tmp/faulty.out" 2>"$tmp/faulty.err" || rc=$?
[ "$rc" -eq 1 ] || fail "fault-injected sweep: expected exit 1, got $rc"

grep -q "QUARANTINED" "$tmp/faulty.out" \
    || fail "no quarantined rows in fault-injected output"
[ "$(grep -c QUARANTINED "$tmp/faulty.out")" -eq 2 ] \
    || fail "expected exactly 2 quarantined rows"
grep -q "repro: .*--worker" "$tmp/faulty.err" \
    || fail "no repro artifact in failure summary"
grep -q "signal 11" "$tmp/faulty.err" \
    || fail "crash not reported as signal 11"
grep -q "watchdog timeout" "$tmp/faulty.err" \
    || fail "hang not reported as watchdog timeout"

# Healthy rows must match the reference byte-for-byte.
grep -v QUARANTINED "$tmp/faulty.out" | grep "^  " >"$tmp/faulty.rows"
grep "^  " "$tmp/reference.out" >"$tmp/reference.rows"
while IFS= read -r row; do
    grep -qxF "$row" "$tmp/reference.rows" \
        || fail "healthy row diverged from reference: $row"
done <"$tmp/faulty.rows"

# --- Phase 3: SIGKILL the orchestrator mid-sweep, then resume ------
"$cli" $sweep --isolate --jobs 1 --journal "$tmp/resume.jsonl" \
    >/dev/null 2>&1 &
pid=$!
# Wait until at least one record is journaled, then pull the plug.
tries=0
while [ ! -s "$tmp/resume.jsonl" ]; do
    tries=$((tries + 1))
    [ "$tries" -lt 200 ] || { kill -9 "$pid"; fail "journal never grew"; }
    sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
[ -s "$tmp/resume.jsonl" ] || fail "journal empty after kill"
before=$(wc -l <"$tmp/resume.jsonl")

"$cli" $sweep --isolate --journal "$tmp/resume.jsonl" --resume \
    >"$tmp/resumed.out" 2>/dev/null \
    || fail "resumed sweep exited nonzero"
cmp -s "$tmp/reference.out" "$tmp/resumed.out" \
    || fail "resumed output differs from the clean reference"
after=$(wc -l <"$tmp/resume.jsonl")
[ "$after" -eq 6 ] || fail "journal has $after records, want 6"
[ "$after" -gt "$before" ] \
    || fail "resume did not run the unfinished jobs"

echo "supervisor_smoke: OK (resume reran $((after - before)) of 6 jobs)"
