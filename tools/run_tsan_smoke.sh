#!/bin/sh
# Run the parallel-runner test binary under ThreadSanitizer and fail
# on any race report.
#
# Intended use (see README "Running sweeps"):
#   cmake -B build-tsan -S . -DSHELFSIM_TSAN=ON
#   cmake --build build-tsan -j
#   cd build-tsan && ctest -R tsan --output-on-failure
#
# The binary must itself have been built with -fsanitize=thread (the
# SHELFSIM_TSAN CMake option does that); this wrapper only sets the
# runtime options so a race turns into a nonzero exit code and forces
# a multi-worker run even on a single-CPU host.

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <test_parallel-binary> [gtest args...]" >&2
    exit 2
fi

bin=$1
shift

if [ ! -x "$bin" ]; then
    echo "run_tsan_smoke: '$bin' is not executable" >&2
    exit 2
fi

# halt_on_error: first report fails the run rather than just logging.
TSAN_OPTIONS="${TSAN_OPTIONS:-}${TSAN_OPTIONS:+ }halt_on_error=1 exitcode=66" \
SHELFSIM_JOBS=4 \
exec "$bin" "$@"
