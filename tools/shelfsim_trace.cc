/**
 * @file
 * Trace-file utility: record, inspect, verify, convert, and (for
 * tests) deliberately corrupt SHLFTRC2 trace files.
 *
 * Examples:
 *   shelfsim_trace record --benchmark mcf --insts 100000 \
 *                         --out mcf.shlftrc
 *   shelfsim_trace capture --config shelf-opt \
 *                          --benchmarks gcc,mcf --prefix run_
 *   shelfsim_trace info mcf.shlftrc
 *   shelfsim_trace verify --skip-corrupt damaged.shlftrc
 *   shelfsim_trace convert old.trace new.shlftrc
 *   shelfsim_trace convert --simpleo3 dram.trace new.shlftrc
 *   shelfsim_trace corrupt good.shlftrc bad.shlftrc --at 64
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "sim/system.hh"
#include "workload/spec2006.hh"
#include "workload/trace_capture.hh"
#include "workload/trace_import.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

void
usage()
{
    printf(
        "usage: shelfsim_trace <command> [options]\n"
        "  record   --benchmark NAME [--seed N] [--insts N]\n"
        "           [--chunk-insts N] [--no-compress] --out FILE\n"
        "             generate a synthetic benchmark trace and\n"
        "             write it as SHLFTRC2\n"
        "  capture  [--config NAME] [--benchmarks A,B,..]\n"
        "           [--warmup N] [--cycles N] [--seed N]\n"
        "           --prefix PFX\n"
        "             simulate and capture each thread's retired\n"
        "             instruction stream to PFX<t>.shlftrc\n"
        "  info     FILE\n"
        "             print format fields, chunk/instruction\n"
        "             counts, and the content hash\n"
        "  verify   [--skip-corrupt] FILE\n"
        "             exit 0 if the trace reads cleanly, 1 with the\n"
        "             TraceError name and detail otherwise\n"
        "  convert  [--simpleo3] [--bubbles N] IN OUT\n"
        "             rewrite IN (SHLFTRC1, SHLFTRC2, or — with\n"
        "             --simpleo3 — Ramulator2 SimpleO3 text) as\n"
        "             SHLFTRC2\n"
        "  corrupt  IN OUT [--at OFFSET] [--xor MASK]\n"
        "           [--truncate N]\n"
        "             deterministically damage a trace file (test\n"
        "             fixture generation)\n");
}

uint64_t
u64Flag(const std::string &flag, const std::string &val,
        uint64_t min = 0)
{
    uint64_t v;
    fatal_if(!tryParseU64(val, v),
             "%s: '%s' is not a non-negative integer",
             flag.c_str(), val.c_str());
    fatal_if(v < min, "%s must be >= %llu (got '%s')", flag.c_str(),
             (unsigned long long)min, val.c_str());
    return v;
}

int
cmdRecord(const std::vector<std::string> &args)
{
    std::string benchmark = "mcf", out;
    uint64_t seed = 1, insts = 100000;
    TraceWriteOptions wo;
    for (size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= args.size(), "missing value for %s",
                     args[i].c_str());
            return args[++i];
        };
        if (args[i] == "--benchmark")
            benchmark = next();
        else if (args[i] == "--seed")
            seed = u64Flag("--seed", next());
        else if (args[i] == "--insts")
            insts = u64Flag("--insts", next(), 1);
        else if (args[i] == "--chunk-insts")
            wo.chunkInsts = static_cast<uint32_t>(
                u64Flag("--chunk-insts", next(), 1));
        else if (args[i] == "--no-compress")
            wo.compress = false;
        else if (args[i] == "--out")
            out = next();
        else
            fatal("record: unknown option '%s'", args[i].c_str());
    }
    fatal_if(out.empty(), "record: --out FILE is required");
    TraceGenerator gen(spec2006Profile(benchmark), seed);
    Trace trace = gen.generate(insts);
    std::string err;
    fatal_if(!writeTrace2File(trace, out, wo, &err), "record: %s",
             err.c_str());
    printf("wrote %s: %zu instructions\n", out.c_str(),
           trace.size());
    return 0;
}

int
cmdCapture(const std::vector<std::string> &args)
{
    SystemConfig cfg;
    std::string config_name = "base64", prefix;
    std::vector<std::string> benchmarks = { "hmmer", "mcf", "gcc",
                                            "milc" };
    for (size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= args.size(), "missing value for %s",
                     args[i].c_str());
            return args[++i];
        };
        if (args[i] == "--config")
            config_name = next();
        else if (args[i] == "--benchmarks")
            benchmarks = split(next(), ',');
        else if (args[i] == "--warmup")
            cfg.warmupCycles =
                static_cast<Cycle>(u64Flag("--warmup", next()));
        else if (args[i] == "--cycles")
            cfg.measureCycles =
                static_cast<Cycle>(u64Flag("--cycles", next(), 1));
        else if (args[i] == "--seed")
            cfg.seed = u64Flag("--seed", next());
        else if (args[i] == "--prefix")
            prefix = next();
        else
            fatal("capture: unknown option '%s'", args[i].c_str());
    }
    fatal_if(prefix.empty(), "capture: --prefix PFX is required");
    unsigned threads = static_cast<unsigned>(benchmarks.size());
    if (config_name == "base64")
        cfg.core = baseCore64(threads);
    else if (config_name == "base128")
        cfg.core = baseCore128(threads);
    else if (config_name == "shelf-cons")
        cfg.core = shelfCore(threads, false);
    else if (config_name == "shelf-opt")
        cfg.core = shelfCore(threads, true);
    else
        fatal("capture: unknown --config '%s'", config_name.c_str());
    cfg.benchmarks = benchmarks;

    System sys(cfg);
    TraceCapture capture(threads);
    std::string err;
    fatal_if(!capture.openFiles(prefix, {}, err), "capture: %s",
             err.c_str());
    sys.core().setRetireTap(capture.observer());
    sys.run();
    std::vector<std::string> paths;
    fatal_if(!capture.finish(err, &paths), "capture: %s",
             err.c_str());
    for (unsigned t = 0; t < threads; ++t)
        printf("wrote %s: %llu instructions (%s)\n",
               paths[t].c_str(),
               (unsigned long long)capture.captured(t),
               benchmarks[t].c_str());
    return 0;
}

int
cmdInfo(const std::vector<std::string> &args)
{
    fatal_if(args.size() != 1, "info: exactly one FILE expected");
    const std::string &path = args[0];
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "info: cannot open '%s'", path.c_str());
    TraceReader reader(is);
    if (!reader.prime()) {
        fprintf(stderr, "info: %s: %s: %s\n", path.c_str(),
                traceErrorName(reader.error()),
                reader.errorDetail().c_str());
        return 1;
    }
    std::vector<TraceInst> chunk;
    while (reader.next(chunk)) {
    }
    if (reader.error() != TraceError::None) {
        fprintf(stderr, "info: %s: %s: %s\n", path.c_str(),
                traceErrorName(reader.error()),
                reader.errorDetail().c_str());
        return 1;
    }
    std::string hash, err;
    fatal_if(!tryTraceFileHash(path, hash, err), "info: %s",
             err.c_str());
    const TraceReadStats &st = reader.stats();
    printf("%s\n", path.c_str());
    printf("  format        SHLFTRC2\n");
    printf("  compressed    %s\n",
           reader.compressedChunks() ? "deflate" : "no");
    printf("  chunk size    %u records\n",
           reader.chunkCapacityHint());
    printf("  chunks        %llu\n",
           (unsigned long long)st.chunks);
    printf("  instructions  %llu\n",
           (unsigned long long)st.instructions);
    printf("  content hash  %s\n", hash.c_str());
    return 0;
}

int
cmdVerify(const std::vector<std::string> &args)
{
    TraceReadOptions ro;
    std::string path;
    for (const auto &a : args) {
        if (a == "--skip-corrupt")
            ro.skipCorrupt = true;
        else if (!a.empty() && a[0] == '-')
            fatal("verify: unknown option '%s'", a.c_str());
        else
            path = a;
    }
    fatal_if(path.empty(), "verify: FILE expected");
    Trace trace;
    TraceError te = TraceError::None;
    std::string detail;
    TraceReadStats st;
    if (!tryReadTraceFile(path, trace, ro, &te, &detail, &st)) {
        fprintf(stderr, "%s: %s: %s\n", path.c_str(),
                traceErrorName(te), detail.c_str());
        return 1;
    }
    printf("%s: ok, %zu instructions", path.c_str(), trace.size());
    if (st.corruptChunks)
        printf(", %llu corrupt chunk(s) skipped (%s: %s)",
               (unsigned long long)st.corruptChunks,
               traceErrorName(st.firstError),
               st.firstDetail.c_str());
    printf("\n");
    return 0;
}

int
cmdConvert(const std::vector<std::string> &args)
{
    bool simpleo3 = false;
    TraceImportOptions io;
    std::vector<std::string> files;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--simpleo3") {
            simpleo3 = true;
        } else if (args[i] == "--bubbles") {
            fatal_if(i + 1 >= args.size(),
                     "missing value for --bubbles");
            io.bubbleCount = static_cast<unsigned>(
                u64Flag("--bubbles", args[++i]));
        } else if (!args[i].empty() && args[i][0] == '-') {
            fatal("convert: unknown option '%s'", args[i].c_str());
        } else {
            files.push_back(args[i]);
        }
    }
    fatal_if(files.size() != 2, "convert: IN OUT expected");
    Trace trace;
    std::string err;
    if (simpleo3) {
        fatal_if(!tryImportSimpleO3File(files[0], trace, io, err),
                 "convert: %s", err.c_str());
    } else {
        TraceError te = TraceError::None;
        std::string detail;
        fatal_if(!tryReadTraceFile(files[0], trace, {}, &te,
                                   &detail),
                 "convert: %s: %s: %s", files[0].c_str(),
                 traceErrorName(te), detail.c_str());
    }
    fatal_if(!writeTrace2File(trace, files[1], {}, &err),
             "convert: %s", err.c_str());
    printf("wrote %s: %zu instructions\n", files[1].c_str(),
           trace.size());
    return 0;
}

int
cmdCorrupt(const std::vector<std::string> &args)
{
    uint64_t at = 0, mask = 0xff, truncate = 0;
    bool haveAt = false, haveTrunc = false;
    std::vector<std::string> files;
    for (size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= args.size(), "missing value for %s",
                     args[i].c_str());
            return args[++i];
        };
        if (args[i] == "--at") {
            at = u64Flag("--at", next());
            haveAt = true;
        } else if (args[i] == "--xor") {
            mask = u64Flag("--xor", next(), 1);
            fatal_if(mask > 0xff, "--xor: mask must fit in a byte");
        } else if (args[i] == "--truncate") {
            truncate = u64Flag("--truncate", next());
            haveTrunc = true;
        } else if (!args[i].empty() && args[i][0] == '-') {
            fatal("corrupt: unknown option '%s'", args[i].c_str());
        } else {
            files.push_back(args[i]);
        }
    }
    fatal_if(files.size() != 2, "corrupt: IN OUT expected");
    fatal_if(!haveAt && !haveTrunc,
             "corrupt: --at OFFSET or --truncate N required");
    std::ifstream is(files[0], std::ios::binary);
    fatal_if(!is, "corrupt: cannot open '%s'", files[0].c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = buf.str();
    if (haveTrunc) {
        fatal_if(truncate > bytes.size(),
                 "corrupt: --truncate %llu beyond file size %zu",
                 (unsigned long long)truncate, bytes.size());
        bytes.resize(truncate);
    }
    if (haveAt) {
        fatal_if(at >= bytes.size(),
                 "corrupt: --at %llu beyond file size %zu",
                 (unsigned long long)at, bytes.size());
        bytes[at] = static_cast<char>(
            static_cast<unsigned char>(bytes[at]) ^ mask);
    }
    std::ofstream os(files[1], std::ios::binary | std::ios::trunc);
    fatal_if(!os, "corrupt: cannot open '%s'", files[1].c_str());
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    os.close();
    fatal_if(!os, "corrupt: write to '%s' failed",
             files[1].c_str());
    printf("wrote %s (%zu bytes)\n", files[1].c_str(),
           bytes.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage();
        return 0;
    }
    if (cmd == "record")
        return cmdRecord(args);
    if (cmd == "capture")
        return cmdCapture(args);
    if (cmd == "info")
        return cmdInfo(args);
    if (cmd == "verify")
        return cmdVerify(args);
    if (cmd == "convert")
        return cmdConvert(args);
    if (cmd == "corrupt")
        return cmdCorrupt(args);
    usage();
    fatal("unknown command '%s'", cmd.c_str());
}
