/**
 * @file
 * Fold per-node sweep shard journals into one resumable journal:
 *
 *   shelfsim_journal_merge OUT IN1 [IN2 ...]
 *
 * Inputs are read in order; per job key the last finished record
 * wins (a re-run supersedes the attempt it replaced), lease records
 * are dropped (they mark work as handed out, not done), and torn
 * lines are skipped with a warning. The output contains exactly one
 * record per job, each line byte-identical to its winning input
 * line, in first-seen key order — so `--sweep --resume --journal
 * OUT` replays every finished job byte-identically and re-executes
 * none of them. Missing inputs are treated as empty shards: a node
 * SIGKILLed before journaling anything still merges cleanly.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/journal.hh"

using namespace shelf;

int
main(int argc, char **argv)
{
    if (argc < 3) {
        fprintf(stderr,
                "usage: shelfsim_journal_merge OUT IN1 [IN2 ...]\n");
        return 2;
    }
    std::string outPath = argv[1];
    std::vector<std::string> inputs(argv + 2, argv + argc);

    JournalMergeStats stats;
    std::string err;
    if (!mergeJournals(inputs, outPath, stats, err)) {
        fprintf(stderr, "shelfsim_journal_merge: %s\n", err.c_str());
        return 1;
    }
    fprintf(stderr,
            "merged %zu journal(s), %zu line(s): %zu job(s), "
            "%zu superseded, %zu lease(s) dropped, %zu torn "
            "line(s) skipped -> %s\n",
            stats.inputs, stats.lines, stats.jobs, stats.superseded,
            stats.leases, stats.torn, outPath.c_str());
    return 0;
}
