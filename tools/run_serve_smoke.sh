#!/bin/sh
# End-to-end smoke test of sweep-as-a-service, driven through the
# real shelfsim_cli binary (ctest entry: serve_smoke).
#
# Phases:
#   1. local reference: two plain --sweep runs (two configs).
#   2. cold served run: the same two sweeps through a --serve daemon
#      with a disk cache; stdout must match the local reference
#      byte-for-byte and every cell must be computed exactly once
#      (2 configs x 28 mixes = 56 cells, the >= 50-cell bar).
#   3. warm served run: repeat both sweeps; stdout must again be
#      byte-identical and the daemon must execute ZERO new jobs —
#      100% cache hits, verified against the serve.* counters.
#   4. restart: shut the daemon down, start a fresh one on the same
#      cache directory, and re-run; still byte-identical, still zero
#      executions (the disk tier survives restarts).

set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <shelfsim_cli-binary>" >&2
    exit 2
fi

cli=$1
if [ ! -x "$cli" ]; then
    echo "serve_smoke: '$cli' is not executable" >&2
    exit 2
fi

tmp=$(mktemp -d /tmp/shelfsim_serve_smoke.XXXXXX)
sock="$tmp/sock"
cache="$tmp/cache"
server_pid=""

cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $1" >&2
    exit 1
}

# Short cycles; all 28 standard mixes per config so the sweep clears
# the 50-cell bar (2 x 28 = 56).
common="--warmup 200 --cycles 800 --threads 4"

start_server() {
    "$cli" --serve "$sock" --cache-dir "$cache" 2>"$tmp/server.log" &
    server_pid=$!
    tries=0
    while [ ! -S "$sock" ]; do
        tries=$((tries + 1))
        [ "$tries" -lt 100 ] || fail "server socket never appeared"
        sleep 0.1
    done
}

stop_server() {
    "$cli" --serve-shutdown "$sock" 2>/dev/null \
        || fail "shutdown command failed"
    wait "$server_pid" || fail "server exited nonzero"
    server_pid=""
}

# serve.* counter from the daemon's stats reply.
counter() {
    "$cli" --serve-stats "$sock" \
        | tr ',{' '\n\n' | grep "\"$1\"" | cut -d: -f2
}

run_sweeps() {
    # Two configurations, 28 standard mixes each. $1 labels the
    # output files; the remaining args are extra sweep flags.
    label=$1
    shift
    "$cli" --sweep --config base64 $common "$@" \
        >"$tmp/$label.base64.out" 2>/dev/null \
        || fail "base64 sweep ($label) exited nonzero"
    "$cli" --sweep --config shelf-opt $common "$@" \
        >"$tmp/$label.shelf.out" 2>/dev/null \
        || fail "shelf-opt sweep ($label) exited nonzero"
}

# --- Phase 1: local reference --------------------------------------
run_sweeps local

# --- Phase 2: cold served run --------------------------------------
start_server
served="--connect $sock --cache-dir $cache"
run_sweeps cold $served

cmp -s "$tmp/local.base64.out" "$tmp/cold.base64.out" \
    || fail "cold served base64 sweep differs from local run"
cmp -s "$tmp/local.shelf.out" "$tmp/cold.shelf.out" \
    || fail "cold served shelf-opt sweep differs from local run"

executed=$(counter serve.jobs_executed)
[ "$executed" -eq 56 ] \
    || fail "cold run executed $executed jobs, want 56"
misses=$(counter serve.cache_miss)
[ "$misses" -eq 56 ] || fail "cold run: $misses misses, want 56"

# --- Phase 3: warm served run: 100% hits, zero executions ----------
run_sweeps warm $served

cmp -s "$tmp/cold.base64.out" "$tmp/warm.base64.out" \
    || fail "warm base64 output not byte-identical to cold"
cmp -s "$tmp/cold.shelf.out" "$tmp/warm.shelf.out" \
    || fail "warm shelf-opt output not byte-identical to cold"

executed=$(counter serve.jobs_executed)
[ "$executed" -eq 56 ] \
    || fail "warm run executed $((executed - 56)) new jobs, want 0"
hits=$(counter serve.cache_hit)
[ "$hits" -eq 56 ] || fail "warm run: $hits hits, want 56"

# --- Phase 4: daemon restart on the same cache directory -----------
stop_server
start_server
run_sweeps restart $served

cmp -s "$tmp/cold.base64.out" "$tmp/restart.base64.out" \
    || fail "post-restart base64 output differs"
cmp -s "$tmp/cold.shelf.out" "$tmp/restart.shelf.out" \
    || fail "post-restart shelf-opt output differs"

executed=$(counter serve.jobs_executed)
[ "$executed" -eq 0 ] \
    || fail "restarted daemon executed $executed jobs, want 0"
stop_server

echo "serve_smoke: OK (56 cells computed once, replayed twice warm)"
