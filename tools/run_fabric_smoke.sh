#!/bin/sh
# End-to-end smoke test of the multi-node sweep fabric, driven
# through the real shelfsim_cli + shelfsim_journal_merge binaries
# (ctest entry: fabric_smoke).
#
# Phases:
#   1. node loss: a 28-cell sweep across two --serve daemons, the
#      slower of which is SIGKILLed mid-run after it has finished
#      (and journaled) at least two cells. The sweep must complete
#      via lease reclamation and work stealing, report the node as
#      retired, and produce stdout byte-identical to a plain
#      single-node --sweep.
#   2. merge + resume: fold the two shard journals into one with
#      shelfsim_journal_merge, then rerun single-node with --resume;
#      output byte-identical again and "replayed 28/28" — zero
#      finished jobs re-executed, including the cells the dead node
#      computed.
#   3. faults through the fabric: a second 28-cell config with one
#      crashing and one hanging cell, served by isolating daemons
#      (--serve-allow-faults); the hung worker dies to the server-
#      side watchdog, both cells quarantine, and stdout matches the
#      equivalent local fault-injected sweep byte-for-byte.
#
# 2 configs x 28 mixes = 56 cells end to end.

set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <shelfsim_cli> <shelfsim_journal_merge>" >&2
    exit 2
fi

cli=$1
merge=$2
for bin in "$cli" "$merge"; do
    if [ ! -x "$bin" ]; then
        echo "fabric_smoke: '$bin' is not executable" >&2
        exit 2
    fi
done

tmp=$(mktemp -d /tmp/shelfsim_fabric_smoke.XXXXXX)
pids=""

cleanup() {
    for pid in $pids; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "fabric_smoke: FAIL: $1" >&2
    exit 1
}

common="--warmup 200 --cycles 800 --threads 4"

# Start a daemon, wait for its socket, and remember its pid in $1.
start_server() {
    sock=$1
    shift
    "$cli" --serve "$sock" "$@" 2>>"$tmp/servers.log" &
    last_pid=$!
    pids="$pids $last_pid"
    tries=0
    while [ ! -S "$sock" ]; do
        tries=$((tries + 1))
        [ "$tries" -lt 100 ] || fail "socket $sock never appeared"
        sleep 0.1
    done
}

# --- Phase 1: kill a node mid-sweep --------------------------------
"$cli" --sweep --config base64 $common >"$tmp/ref.base64.out" \
    2>/dev/null || fail "reference base64 sweep exited nonzero"

# Both nodes are artificially slowed (cells are milliseconds at
# these cycle counts) so the sweep is still mid-run when the kill
# lands; node b is slower, so it reliably holds work (and a lease)
# when it dies.
start_server "$tmp/a.sock" --serve-job-delay 0.1
a_pid=$last_pid
start_server "$tmp/b.sock" --serve-job-delay 0.4
b_pid=$last_pid

# --node-retries 0 so the SIGKILLed node retires on its first
# transport failure (with surviving work in the queue deliberately
# short, a higher budget could let the sweep finish before the dead
# node exhausts it).
"$cli" --sweep --config base64 $common \
    --nodes "a=$tmp/a.sock,b=$tmp/b.sock" --node-retries 0 \
    --journal "$tmp/fab.jsonl" \
    >"$tmp/fab.base64.out" 2>"$tmp/fab.err" &
fab_pid=$!

# SIGKILL node b once its shard proves it finished a cell; by then
# it already holds the lease on its next one (the 0.4 s job delay
# keeps it busy long past this poll), so the kill strands in-flight
# work that must be reclaimed and stolen.
tries=0
while :; do
    done_b=$(grep -c '"status"' "$tmp/fab.jsonl.b" 2>/dev/null \
        || true)
    [ "${done_b:-0}" -ge 1 ] && break
    tries=$((tries + 1))
    [ "$tries" -lt 300 ] || fail "node b never finished a cell"
    kill -0 "$fab_pid" 2>/dev/null || fail "sweep ended too early"
    sleep 0.05
done
kill -9 "$b_pid"

wait "$fab_pid" || fail "fabric sweep exited nonzero after node loss"
cmp -s "$tmp/ref.base64.out" "$tmp/fab.base64.out" \
    || fail "fabric sweep output differs from single-node run"
grep -q "node b:.*retired" "$tmp/fab.err" \
    || fail "dead node not reported as retired"
grep -q '"node":"b"' "$tmp/fab.jsonl.b" \
    || fail "node b journaled no finished cells"

# --- Phase 2: merge the shards, resume single-node -----------------
"$merge" "$tmp/merged.jsonl" "$tmp/fab.jsonl.a" "$tmp/fab.jsonl.b" \
    2>"$tmp/merge.err" || fail "journal merge failed"
jobs_merged=$(wc -l <"$tmp/merged.jsonl")
[ "$jobs_merged" -eq 28 ] \
    || fail "merged journal has $jobs_merged records, want 28"

"$cli" --sweep --config base64 $common \
    --journal "$tmp/merged.jsonl" --resume \
    >"$tmp/resume.base64.out" 2>"$tmp/resume.err" \
    || fail "resume sweep exited nonzero"
cmp -s "$tmp/ref.base64.out" "$tmp/resume.base64.out" \
    || fail "resumed sweep output differs from reference"
grep -q "replayed 28/28 jobs from journal" "$tmp/resume.err" \
    || fail "resume re-executed finished jobs"

# --- Phase 3: crash + hang cells through an isolating fabric -------
rc=0
"$cli" --sweep --config shelf-opt $common --isolate --timeout 3 \
    --retries 0 --inject-fault '3=crash,7=hang' \
    >"$tmp/ref.shelf.out" 2>/dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "local faulty sweep: expected exit 1, got $rc"

start_server "$tmp/a2.sock" --isolate --timeout 3 --retries 0 \
    --serve-allow-faults
start_server "$tmp/b2.sock" --isolate --timeout 3 --retries 0 \
    --serve-allow-faults

rc=0
"$cli" --sweep --config shelf-opt $common \
    --inject-fault '3=crash,7=hang' \
    --nodes "a=$tmp/a2.sock,b=$tmp/b2.sock" \
    >"$tmp/fab.shelf.out" 2>"$tmp/fab.shelf.err" || rc=$?
[ "$rc" -eq 1 ] \
    || fail "faulty fabric sweep: expected exit 1, got $rc"
cmp -s "$tmp/ref.shelf.out" "$tmp/fab.shelf.out" \
    || fail "faulty fabric output differs from local faulty run"
[ "$(grep -c QUARANTINED "$tmp/fab.shelf.out")" -eq 2 ] \
    || fail "expected exactly 2 quarantined cells via the fabric"

echo "fabric_smoke: OK (node loss survived, merge resumed 28/28," \
    "faults quarantined remotely)"
