/**
 * @file
 * Cross-configuration fuzz driver for the validation subsystem.
 *
 * Each run samples a random CoreParams and a random per-thread
 * workload from one 64-bit case seed, simulates it for a bounded
 * cycle count with the named invariant checks (src/validate) run
 * periodically, and finishes with the golden functional model's
 * commit-stream comparison plus a forward-progress check. Cases fan
 * out over the parallel runner; the batch stops at the first
 * failure.
 *
 * On failure the driver re-runs the case with per-cycle checking to
 * pin the exact first failing cycle, greedily shrinks the trace
 * start, and prints a single self-contained repro line:
 *
 *   shelfsim_fuzz --runs 1 --seed S --cycles C --insts N \
 *       --trace-start T --check-every 1 --config-json '{...}'
 *
 * The config JSON overrides the sampled configuration while the
 * workload streams still derive from the case seed, so a repro can
 * be hand-edited (e.g. toggle one parameter) without changing the
 * traces it runs.
 *
 * --inject CHECK demonstrates end-to-end capture: it corrupts live
 * core state mid-run via InvariantChecker::corrupt() and verifies
 * the named check fires.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/strutil.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "sim/parallel.hh"
#include "sim/serve.hh"
#include "validate/config_json.hh"
#include "validate/golden.hh"
#include "validate/invariants.hh"
#include "workload/generator.hh"
#include "workload/trace_io.hh"

using namespace shelf;
using namespace shelf::validate;

namespace
{

void
usage()
{
    printf(
        "usage: shelfsim_fuzz [options]\n"
        "  --runs N           number of fuzz cases (default 200)\n"
        "  --seed S           base seed; case i uses seed S+i\n"
        "                     (default 1)\n"
        "  --cycles N         simulated cycles per case\n"
        "                     (default 3000)\n"
        "  --insts N          trace length per thread\n"
        "                     (default 20000)\n"
        "  --trace-start N    skip the first N trace instructions\n"
        "                     (shrunk repros; default 0)\n"
        "  --check-every N    invariant check period in cycles\n"
        "                     (default 16)\n"
        "  --config-json J    fixed core configuration instead of\n"
        "                     sampling one per case\n"
        "  --jobs N           worker threads (default: SHELFSIM_JOBS\n"
        "                     or all hardware threads)\n"
        "  --inject CHECK     corrupt live state mid-run and verify\n"
        "                     the named check catches it\n"
        "  --serve-frame      fuzz the --serve request parser with\n"
        "                     malformed/truncated/oversized frames\n"
        "                     instead of simulating\n"
        "  --trace-file       fuzz the trace-file reader with\n"
        "                     mutated SHLFTRC2/SHLFTRC1 byte streams\n"
        "                     instead of simulating\n"
        "  --list-checks      print the named invariant checks\n");
}

/** SplitMix64 finalizer: independent streams from one case seed. */
uint64_t
mix(uint64_t seed, uint64_t stream)
{
    uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform real in [lo, hi). */
double
realIn(Random &rng, double lo, double hi)
{
    return lo + rng.real() * (hi - lo);
}

template <typename T, size_t N>
T
pick(Random &rng, const T (&options)[N])
{
    return options[rng.below(N)];
}

/**
 * Sample a valid CoreParams. Every dimension the paper varies is in
 * the space: window sizes, shelf size, steering policies, SSR
 * designs, optimistic/conservative issue, release policies, fetch
 * policies, memory models, clustering, and pipeline widths.
 */
CoreParams
sampleConfig(uint64_t case_seed)
{
    Random rng(mix(case_seed, 1));
    CoreParams p;
    p.name = csprintf("fuzz-%llu", (unsigned long long)case_seed);

    const unsigned threadOpts[] = { 1, 2, 4, 8 };
    p.threads = pick(rng, threadOpts);

    const unsigned robPer[] = { 8, 16, 32 };
    p.robEntries = pick(rng, robPer) * p.threads;
    const unsigned iqOpts[] = { 16, 32, 64 };
    p.iqEntries = pick(rng, iqOpts);
    const unsigned lsqPer[] = { 4, 8, 16 };
    p.lqEntries = pick(rng, lsqPer) * p.threads;
    p.sqEntries = pick(rng, lsqPer) * p.threads;
    const unsigned shelfPer[] = { 0, 8, 16, 32 };
    p.shelfEntries = pick(rng, shelfPer) * p.threads;

    const unsigned fetchW[] = { 4, 8 };
    p.fetchWidth = pick(rng, fetchW);
    const unsigned dispW[] = { 2, 4 };
    p.dispatchWidth = pick(rng, dispW);
    const unsigned issueW[] = { 2, 4, 8 };
    p.issueWidth = pick(rng, issueW);
    const unsigned commitW[] = { 2, 4 };
    p.commitWidth = pick(rng, commitW);

    if (p.hasShelf()) {
        const SteerPolicyKind steers[] = {
            SteerPolicyKind::AlwaysIQ, SteerPolicyKind::AlwaysShelf,
            SteerPolicyKind::Practical, SteerPolicyKind::Practical,
            SteerPolicyKind::Oracle,
        };
        p.steering = pick(rng, steers);
        const SsrDesign ssrs[] = { SsrDesign::Single, SsrDesign::Two,
                                   SsrDesign::PerRun };
        p.ssrDesign = pick(rng, ssrs);
        p.optimisticShelf = rng.chance(0.5);
        p.shelfReleaseAtWriteback = rng.chance(0.25);
        const unsigned delays[] = { 0, 0, 1, 2 };
        p.interClusterDelay = pick(rng, delays);
        if (rng.chance(0.15)) {
            p.adaptiveShelf = true;
            p.adaptiveEpochCycles = 512;
        }
    }
    if (p.steering == SteerPolicyKind::Practical) {
        const unsigned bits[] = { 3, 5, 8 };
        p.rctBits = pick(rng, bits);
        const unsigned cols[] = { 2, 4, 8 };
        p.pltColumns = pick(rng, cols);
        const unsigned slack[] = { 0, 0, 2, 4 };
        p.steerSlack = pick(rng, slack);
        p.shadowOracle = rng.chance(0.25);
    }

    p.fetchPolicy = rng.chance(0.3)
        ? CoreParams::FetchPolicy::RoundRobin
        : CoreParams::FetchPolicy::ICount;
    p.memModel = rng.chance(0.3) ? CoreParams::MemModel::TSO
                                 : CoreParams::MemModel::Relaxed;

    p.branchResolveExtra = static_cast<unsigned>(rng.below(4));
    p.loadResolveDelay = 1 + static_cast<unsigned>(rng.below(4));
    p.redirectPenalty = 1 + static_cast<unsigned>(rng.below(3));

    p.validate();
    return p;
}

/** Sample a valid BenchmarkProfile for one thread. */
BenchmarkProfile
sampleProfile(uint64_t case_seed, unsigned tid)
{
    Random rng(mix(case_seed, 100 + tid));
    BenchmarkProfile prof;
    prof.name = csprintf("fuzz-t%u", tid);
    prof.loadFrac = realIn(rng, 0.10, 0.35);
    prof.storeFrac = realIn(rng, 0.05, 0.20);
    prof.branchFrac = realIn(rng, 0.05, 0.20);
    prof.fpFrac = realIn(rng, 0.0, 0.30);
    prof.mulFrac = realIn(rng, 0.0, 0.05);
    prof.divFrac = realIn(rng, 0.0, 0.01);
    prof.depGeoP = realIn(rng, 0.15, 0.60);
    prof.immFrac = realIn(rng, 0.10, 0.50);
    prof.farFrac = realIn(rng, 0.10, 0.50);
    prof.serialChainFrac = realIn(rng, 0.0, 0.50);
    const unsigned ws[] = { 64, 256, 1024 };
    prof.workingSetKB = pick(rng, ws);
    prof.streamFrac = realIn(rng, 0.30, 0.90);
    prof.pointerChaseFrac = realIn(rng, 0.0, 0.30);
    prof.branchRandomFrac = realIn(rng, 0.0, 0.20);
    prof.staticBranches =
        16 + static_cast<unsigned>(rng.below(113));
    prof.validate();
    return prof;
}

struct FuzzOptions
{
    uint64_t runs = 200;
    uint64_t seed = 1;
    Cycle cycles = 3000;
    size_t insts = 20000;
    size_t traceStart = 0;
    Cycle checkEvery = 16;
    std::string configJson;
    unsigned jobs = 0;
};

struct FuzzResult
{
    bool ok = true;
    std::string kind;  ///< "invariant" | "golden" | "progress"
    std::string check; ///< named check for kind == invariant
    std::string detail;
    Cycle failCycle = 0;
};

CoreParams
caseConfig(const FuzzOptions &opt, uint64_t case_seed)
{
    if (!opt.configJson.empty()) {
        CoreParams p = coreParamsFromJson(opt.configJson);
        p.validate();
        return p;
    }
    return sampleConfig(case_seed);
}

/**
 * Run one fuzz case to completion (or first failure). The workload
 * derives entirely from @p case_seed, so the same seed replays the
 * same traces regardless of where the configuration came from.
 */
FuzzResult
runCase(const FuzzOptions &opt, uint64_t case_seed)
{
    FuzzResult res;
    CoreParams params = caseConfig(opt, case_seed);

    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < params.threads; ++t) {
        BenchmarkProfile prof = sampleProfile(case_seed, t);
        traces.push_back(TraceGenerator::extractSubTrace(
            prof, mix(case_seed, 200 + t),
            static_cast<Addr>(t) << 30, opt.traceStart, opt.insts));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);

    Core core(params, mem, ptrs);
    CommitLog log(params.threads);
    core.setCommitObserver(log.observer());

    // Checks run here (value-returning) rather than via
    // setCheckInvariants: the core's own hook panics on the first
    // violation, which would kill the process before a repro line
    // can be printed. Advancing through run() rather than tick()
    // lets the quiescent-cycle skipper engage between check points,
    // so every fuzz case covers the fast-forward path too (a
    // --check-every 1 repro degenerates to per-cycle stepping, which
    // never skips but is cycle-identical by construction).
    for (Cycle c = 0; c < opt.cycles;) {
        Cycle step = std::min<Cycle>(opt.checkEvery, opt.cycles - c);
        core.run(step);
        c += step;
        auto failures = InvariantChecker::runAll(core);
        if (!failures.empty()) {
            res.ok = false;
            res.kind = "invariant";
            res.check = failures.front().check;
            res.detail = failures.front().detail;
            res.failCycle = core.cycle();
            return res;
        }
    }

    uint64_t window = goldenTailWindow(params);
    for (unsigned t = 0; t < params.threads; ++t) {
        GoldenReport rep = checkCommitsAgainstGolden(
            traces[t], log.thread(static_cast<ThreadID>(t)), window);
        if (!rep.ok) {
            res.ok = false;
            res.kind = "golden";
            res.detail = csprintf("t%u: %s", t, rep.detail.c_str());
            res.failCycle = opt.cycles;
            return res;
        }
    }

    // Forward progress: short runs may legitimately retire nothing
    // (deep replay storms), but thousands of cycles without a single
    // retire on some thread is a deadlock.
    if (opt.cycles >= 2000) {
        for (unsigned t = 0; t < params.threads; ++t) {
            if (core.retired(static_cast<ThreadID>(t)) == 0) {
                res.ok = false;
                res.kind = "progress";
                res.detail = csprintf(
                    "t%u retired nothing in %llu cycles", t,
                    (unsigned long long)opt.cycles);
                res.failCycle = opt.cycles;
                return res;
            }
        }
    }
    return res;
}

void
printRepro(const FuzzOptions &opt, uint64_t case_seed,
           const FuzzResult &res)
{
    CoreParams params = caseConfig(opt, case_seed);
    printf("repro: shelfsim_fuzz --runs 1 --seed %llu --cycles %llu "
           "--insts %zu --trace-start %zu --check-every 1 "
           "--config-json '%s'\n",
           (unsigned long long)case_seed,
           (unsigned long long)(res.failCycle
                                    ? res.failCycle
                                    : opt.cycles),
           opt.insts, opt.traceStart,
           coreParamsToJson(params).c_str());
}

/**
 * Minimize a failing case: per-cycle checking pins the exact first
 * failing cycle (the minimal cycle window), then greedy step-halving
 * advances the trace start as long as the same failure still
 * reproduces.
 */
void
shrinkAndReport(const FuzzOptions &opt, uint64_t case_seed,
                const FuzzResult &first)
{
    FuzzOptions min = opt;
    min.checkEvery = 1;

    FuzzResult res = runCase(min, case_seed);
    if (res.ok || res.kind != first.kind ||
        res.check != first.check) {
        // Per-cycle checking changed the outcome (it cannot change
        // the simulation, so this means the original failure was a
        // later symptom of this one); report what per-cycle
        // checking sees if anything, else the original.
        if (res.ok) {
            printRepro(opt, case_seed, first);
            return;
        }
    }
    min.cycles = res.failCycle;

    for (size_t step = min.insts / 2; step > 0; step /= 2) {
        if (min.traceStart + step >= opt.traceStart + opt.insts)
            continue;
        FuzzOptions cand = min;
        cand.traceStart = min.traceStart + step;
        cand.insts = min.insts - step;
        cand.cycles = opt.cycles; // dynamics shift: search again
        FuzzResult r = runCase(cand, case_seed);
        if (!r.ok && r.kind == res.kind && r.check == res.check) {
            cand.cycles = r.failCycle;
            min = cand;
            res = r;
        }
    }

    printf("shrunk to cycle %llu, trace [%zu, %zu)\n",
           (unsigned long long)res.failCycle, min.traceStart,
           min.traceStart + min.insts);
    printRepro(min, case_seed, res);
}

int
fuzzMain(const FuzzOptions &opt)
{
    std::vector<FuzzResult> results(opt.runs);
    std::vector<uint64_t> seeds(opt.runs);
    for (uint64_t i = 0; i < opt.runs; ++i)
        seeds[i] = opt.seed + i;

    runJobsCancellable(opt.runs, [&](size_t i) {
        results[i] = runCase(opt, seeds[i]);
        return results[i].ok;
    }, opt.jobs);

    for (uint64_t i = 0; i < opt.runs; ++i) {
        const FuzzResult &r = results[i];
        if (r.ok)
            continue;
        if (r.kind == "invariant") {
            printf("FAIL seed %llu: invariant '%s' violated at "
                   "cycle %llu: %s\n",
                   (unsigned long long)seeds[i], r.check.c_str(),
                   (unsigned long long)r.failCycle,
                   r.detail.c_str());
        } else {
            printf("FAIL seed %llu: %s check failed: %s\n",
                   (unsigned long long)seeds[i], r.kind.c_str(),
                   r.detail.c_str());
        }
        shrinkAndReport(opt, seeds[i], r);
        return 1;
    }

    printf("fuzz: %llu runs clean (seed %llu, %llu cycles each)\n",
           (unsigned long long)opt.runs,
           (unsigned long long)opt.seed,
           (unsigned long long)opt.cycles);
    return 0;
}

/**
 * Fault-injection demo: run a shelf+TSO configuration (the superset
 * state space — every named check is live), corrupt the requested
 * mechanism once the pipeline offers a site, and verify the check
 * fires.
 */
int
injectMain(const FuzzOptions &opt, const std::string &check)
{
    CoreParams params = shelfCore(4, true, SteerPolicyKind::Practical);
    params.memModel = CoreParams::MemModel::TSO;
    params.name = "fuzz-inject";
    if (!opt.configJson.empty()) {
        params = coreParamsFromJson(opt.configJson);
        params.validate();
    }

    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < params.threads; ++t) {
        BenchmarkProfile prof = sampleProfile(opt.seed, t);
        traces.push_back(TraceGenerator::extractSubTrace(
            prof, mix(opt.seed, 200 + t), static_cast<Addr>(t) << 30,
            0, opt.insts));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(params, mem, ptrs);

    for (Cycle c = 0; c < opt.cycles; ++c) {
        core.tick();
        if (c < 100)
            continue; // let the pipeline fill first
        if (!InvariantChecker::corrupt(core, check))
            continue;
        auto failures = InvariantChecker::run(core, check);
        if (failures.empty()) {
            printf("inject: corrupted '%s' at cycle %llu but the "
                   "check did NOT fire\n", check.c_str(),
                   (unsigned long long)core.cycle());
            return 1;
        }
        printf("inject: '%s' caught at cycle %llu: %s\n",
               check.c_str(), (unsigned long long)core.cycle(),
               failures.front().detail.c_str());
        return 0;
    }
    printf("inject: no corruption site for '%s' within %llu "
           "cycles\n", check.c_str(),
           (unsigned long long)opt.cycles);
    return 1;
}

/**
 * @name Serve-frame fuzzing
 * The --serve daemon parses client frames with parseServeRequest();
 * this mode hammers that parser with mutated, truncated, garbage,
 * deeply-nested, and oversized frames. The contract under test:
 * every frame either parses or is rejected with a non-empty error
 * message — never a crash, never a fatal(), and accepted batches
 * always key to canonical-fixpoint bytes.
 * @{
 */

/** A syntactically valid "run" request to mutate. */
std::string
validServeFrame(Random &rng)
{
    unsigned threads = 1 + static_cast<unsigned>(rng.below(4));
    SweepJobSpec spec;
    spec.core = baseCore64(threads);
    for (unsigned t = 0; t < threads; ++t)
        spec.mixBenchmarks.push_back(rng.below(28));
    spec.warmupCycles = rng.below(5000);
    spec.measureCycles = 1 + rng.below(20000);
    spec.seed = rng.next();
    std::string frame = "{\"cmd\":\"run\",\"jobs\":[";
    size_t jobs = 1 + rng.below(3);
    for (size_t j = 0; j < jobs; ++j) {
        if (j)
            frame += ',';
        frame += spec.toJson();
    }
    frame += "]}";
    return frame;
}

std::string
sampleServeFrame(Random &rng)
{
    switch (rng.below(6)) {
      case 0: { // raw bytes, any value except the frame terminator
        std::string s(rng.below(512), '\0');
        for (char &c : s) {
            do {
                c = static_cast<char>(rng.below(256));
            } while (c == '\n');
        }
        return s;
      }
      case 1: { // truncated valid request
        std::string s = validServeFrame(rng);
        return s.substr(0, rng.below(s.size() + 1));
      }
      case 2: { // byte-mutated valid request
        std::string s = validServeFrame(rng);
        size_t flips = 1 + rng.below(8);
        for (size_t i = 0; i < flips && !s.empty(); ++i)
            s[rng.below(s.size())] =
                static_cast<char>(rng.below(128));
        return s;
      }
      case 3: { // deep nesting drives the parser's depth cap
        size_t depth = 1 + rng.below(4096);
        std::string s(depth, rng.below(2) ? '[' : '{');
        return s;
      }
      case 4: { // structurally valid JSON, wrong schema
        switch (rng.below(5)) {
          case 0: return "{\"cmd\":\"run\",\"jobs\":[{}]}";
          case 1: return "[{\"cmd\":\"run\"}]";
          case 2: return "{\"cmd\":\"run\",\"jobs\":"
                         "[{\"core\":{\"threads\":0},\"mix\":[]}]}";
          case 3: return csprintf("{\"cmd\":\"run\",\"id\":\"%llx\"}",
                                  (unsigned long long)rng.next());
          default: return "{\"cmd\":\"shutdown\",\"jobs\":[1]}";
        }
      }
      default: // untouched valid request (must parse)
        return validServeFrame(rng);
    }
}

int
serveFrameMain(const FuzzOptions &opt)
{
    uint64_t accepted = 0, rejected = 0;
    for (uint64_t i = 0; i < opt.runs; ++i) {
        uint64_t case_seed = opt.seed + i;
        Random rng(mix(case_seed, 7001));
        std::string frame;
        if (rng.below(200) == 0) {
            // Oversized frames are slow to build; a steady trickle
            // is enough to keep the cap path honest.
            frame = std::string(kMaxServeFrameBytes + 1 +
                                    rng.below(4096),
                                'x');
        } else {
            frame = sampleServeFrame(rng);
        }
        ServeRequest req;
        std::string err;
        bool ok = parseServeRequest(frame, req, err,
                                    rng.below(2) == 1);
        if (ok) {
            ++accepted;
            // Accepted keys must be canonical fixpoints: feeding a
            // key back through canonicalization yields itself.
            for (const std::string &key : req.keys) {
                std::string again, kerr;
                if (!tryCanonicalJobKey(key, again, kerr) ||
                    again != key) {
                    printf("case seed %llu: non-canonical key\n"
                           "frame: %s\n",
                           (unsigned long long)case_seed,
                           frame.c_str());
                    printf("repro: shelfsim_fuzz --serve-frame "
                           "--runs 1 --seed %llu\n",
                           (unsigned long long)case_seed);
                    return 1;
                }
            }
        } else {
            ++rejected;
            if (err.empty()) {
                printf("case seed %llu: rejected with empty "
                       "error\nframe: %s\n",
                       (unsigned long long)case_seed,
                       frame.c_str());
                printf("repro: shelfsim_fuzz --serve-frame "
                       "--runs 1 --seed %llu\n",
                       (unsigned long long)case_seed);
                return 1;
            }
        }
    }
    printf("serve-frame fuzz: %llu cases, %llu accepted, %llu "
           "rejected cleanly, 0 crashes\n",
           (unsigned long long)opt.runs,
           (unsigned long long)accepted,
           (unsigned long long)rejected);
    return 0;
}
/** @} */

/**
 * @name Trace-file fuzzing
 * The trace frontend reads untrusted files; this mode hammers the
 * reader with valid, truncated, bit-flipped, spliced, and garbage
 * byte streams (plus the legacy SHLFTRC1 format). The contract
 * under test: every stream either decodes or fails with a non-empty
 * TraceError name + detail — never a crash, never a fatal(), and
 * never an allocation bounded by anything but the configured caps.
 * Unmutated streams must round-trip record-exactly, and skip-mode
 * reads must terminate on the same inputs.
 * @{
 */

bool
sameInst(const TraceInst &a, const TraceInst &b)
{
    return a.pc == b.pc && a.op == b.op && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.dst == b.dst &&
           a.latency == b.latency && a.addr == b.addr &&
           a.size == b.size && a.taken == b.taken;
}

Trace
randomTrace(Random &rng, size_t n)
{
    Trace t;
    t.reserve(n);
    Addr pc = 0x1000;
    for (size_t i = 0; i < n; ++i) {
        TraceInst in;
        pc += 4 * (1 + rng.below(2));
        in.pc = pc;
        in.op = static_cast<OpClass>(
            rng.below(static_cast<size_t>(OpClass::NumOpClasses)));
        auto reg = [&]() -> RegId {
            return rng.below(8) == 0
                ? kNoReg : static_cast<RegId>(rng.below(48));
        };
        in.src1 = reg();
        in.src2 = reg();
        in.dst = reg();
        in.latency = static_cast<uint8_t>(rng.below(20));
        in.addr = rng.next() & 0xffffffffffULL;
        in.size = static_cast<uint8_t>(1u << rng.below(4));
        in.taken = rng.below(2) != 0;
        t.push_back(in);
    }
    return t;
}

int
traceFileMain(const FuzzOptions &opt)
{
    uint64_t accepted = 0, rejected = 0, salvaged = 0;
    for (uint64_t i = 0; i < opt.runs; ++i) {
        uint64_t case_seed = opt.seed + i;
        Random rng(mix(case_seed, 9103));
        auto repro = [&]() {
            printf("repro: shelfsim_fuzz --trace-file --runs 1 "
                   "--seed %llu\n", (unsigned long long)case_seed);
        };

        Trace trace = randomTrace(rng, rng.below(5000));
        bool legacy = rng.below(10) == 0;
        std::ostringstream os;
        if (legacy) {
            writeTrace(trace, os);
        } else {
            TraceWriteOptions wo;
            wo.chunkInsts = 1 + static_cast<uint32_t>(rng.below(1024));
            wo.compress = rng.below(2) != 0;
            std::string werr;
            if (!writeTrace2(trace, os, wo, &werr)) {
                printf("case seed %llu: writer failed: %s\n",
                       (unsigned long long)case_seed, werr.c_str());
                repro();
                return 1;
            }
        }
        std::string bytes = os.str();

        // Mutate. Kind 0 keeps the stream pristine: it must
        // round-trip record-exactly.
        size_t kind = rng.below(8);
        switch (kind) {
          case 1: // truncate
            bytes.resize(rng.below(bytes.size() + 1));
            break;
          case 2: { // flip bytes
            size_t flips = 1 + rng.below(8);
            for (size_t f = 0; f < flips && !bytes.empty(); ++f)
                bytes[rng.below(bytes.size())] ^=
                    static_cast<char>(1 + rng.below(255));
            break;
          }
          case 3: { // overwrite a run
            if (!bytes.empty()) {
                size_t at = rng.below(bytes.size());
                size_t len = std::min(bytes.size() - at,
                                      1 + rng.below(64));
                for (size_t f = 0; f < len; ++f)
                    bytes[at + f] =
                        static_cast<char>(rng.below(256));
            }
            break;
          }
          case 4: { // insert random bytes
            std::string ins(1 + rng.below(64), '\0');
            for (char &c : ins)
                c = static_cast<char>(rng.below(256));
            bytes.insert(rng.below(bytes.size() + 1), ins);
            break;
          }
          case 5: { // delete a run
            if (!bytes.empty()) {
                size_t at = rng.below(bytes.size());
                bytes.erase(at, 1 + rng.below(64));
            }
            break;
          }
          case 6: { // pure garbage
            bytes.assign(rng.below(2048), '\0');
            for (char &c : bytes)
                c = static_cast<char>(rng.below(256));
            break;
          }
          default: // 0 and 7: pristine
            kind = 0;
            break;
        }

        TraceReadOptions ro;
        ro.maxInstructions = 1u << 20;
        ro.maxChunkInsts = 1u << 16;

        // Fail-precise pass.
        {
            std::istringstream is(bytes);
            Trace out;
            TraceError te = TraceError::None;
            std::string detail;
            bool ok = tryReadTrace(is, out, ro, &te, &detail);
            if (kind == 0) {
                bool same = ok && out.size() == trace.size();
                for (size_t k = 0; same && k < out.size(); ++k)
                    same = sameInst(out[k], trace[k]);
                if (!same) {
                    printf("case seed %llu: pristine %s stream did "
                           "not round-trip (%s: %s)\n",
                           (unsigned long long)case_seed,
                           legacy ? "SHLFTRC1" : "SHLFTRC2",
                           traceErrorName(te), detail.c_str());
                    repro();
                    return 1;
                }
            }
            if (ok) {
                ++accepted;
            } else {
                ++rejected;
                if (te == TraceError::None || detail.empty() ||
                    traceErrorName(te)[0] == '\0') {
                    printf("case seed %llu: rejected without a "
                           "precise error (%s: '%s')\n",
                           (unsigned long long)case_seed,
                           traceErrorName(te), detail.c_str());
                    repro();
                    return 1;
                }
            }
            if (out.size() > ro.maxInstructions) {
                printf("case seed %llu: decoded %zu records past "
                       "the cap\n", (unsigned long long)case_seed,
                       out.size());
                repro();
                return 1;
            }
        }

        // Skip-and-resync pass over the same bytes: must terminate
        // and stay within the caps; success with dropped chunks is
        // the expected degraded outcome.
        {
            std::istringstream is(bytes);
            Trace out;
            TraceReadOptions skip = ro;
            skip.skipCorrupt = true;
            TraceError te = TraceError::None;
            std::string detail;
            TraceReadStats st;
            bool ok = tryReadTrace(is, out, skip, &te, &detail, &st);
            if (ok && st.corruptChunks)
                ++salvaged;
            if (!ok && (te == TraceError::None || detail.empty())) {
                printf("case seed %llu: skip-mode rejection without "
                       "a precise error\n",
                       (unsigned long long)case_seed);
                repro();
                return 1;
            }
            if (out.size() > skip.maxInstructions) {
                printf("case seed %llu: skip mode decoded %zu "
                       "records past the cap\n",
                       (unsigned long long)case_seed, out.size());
                repro();
                return 1;
            }
        }
    }
    printf("trace-file fuzz: %llu cases, %llu accepted, %llu "
           "rejected cleanly, %llu salvaged with skipped chunks, "
           "0 crashes\n",
           (unsigned long long)opt.runs,
           (unsigned long long)accepted,
           (unsigned long long)rejected,
           (unsigned long long)salvaged);
    return 0;
}
/** @} */

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opt;
    std::string inject;
    bool listChecks = false;
    bool serveFrame = false;
    bool traceFile = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--runs") opt.runs = std::strtoull(val(), nullptr, 10);
        else if (a == "--seed")
            opt.seed = std::strtoull(val(), nullptr, 10);
        else if (a == "--cycles")
            opt.cycles = std::strtoull(val(), nullptr, 10);
        else if (a == "--insts")
            opt.insts = std::strtoull(val(), nullptr, 10);
        else if (a == "--trace-start")
            opt.traceStart = std::strtoull(val(), nullptr, 10);
        else if (a == "--check-every")
            opt.checkEvery = std::strtoull(val(), nullptr, 10);
        else if (a == "--config-json") opt.configJson = val();
        else if (a == "--jobs")
            opt.jobs = static_cast<unsigned>(
                std::strtoul(val(), nullptr, 10));
        else if (a == "--inject") inject = val();
        else if (a == "--serve-frame") serveFrame = true;
        else if (a == "--trace-file") traceFile = true;
        else if (a == "--list-checks") listChecks = true;
        else if (a == "--help" || a == "-h") { usage(); return 0; }
        else { usage(); fatal("unknown option '%s'", a.c_str()); }
    }
    fatal_if(opt.checkEvery == 0, "--check-every must be >= 1");
    fatal_if(opt.insts == 0, "--insts must be >= 1");

    if (listChecks) {
        for (const std::string &name : InvariantChecker::checkNames())
            printf("%s\n", name.c_str());
        return 0;
    }
    if (opt.jobs)
        setDefaultJobs(opt.jobs);
    if (serveFrame)
        return serveFrameMain(opt);
    if (traceFile)
        return traceFileMain(opt);
    if (!inject.empty())
        return injectMain(opt, inject);
    return fuzzMain(opt);
}
