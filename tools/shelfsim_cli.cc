/**
 * @file
 * shelfsim command-line driver: run any core configuration on any
 * workload and dump the full statistics report.
 *
 * Examples:
 *   shelfsim --list-benchmarks
 *   shelfsim --config shelf-opt --benchmarks hmmer,mcf,gcc,milc
 *   shelfsim --config base64 --threads 2 --benchmarks gcc,mcf \
 *            --warmup 8000 --cycles 32000 --seed 7 --stats
 *   shelfsim --config shelf-opt --benchmarks gcc,mcf,hmmer,milc \
 *            --steering oracle --shelf-entries 128 --ssr per-run
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "diag/crash_dump.hh"
#include "metrics/throughput.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/supervisor.hh"
#include "sim/system.hh"
#include "workload/spec2006.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

void
usage()
{
    printf(
        "usage: shelfsim_cli [options]\n"
        "  --config NAME        base64 | base128 | shelf-cons |\n"
        "                       shelf-opt (default base64)\n"
        "  --benchmarks A,B,..  one profile name per thread\n"
        "  --threads N          default: number of benchmarks\n"
        "  --warmup N           timed warmup cycles (default 4000)\n"
        "  --cycles N           measured cycles (default 16000)\n"
        "  --seed N             workload seed (default 1)\n"
        "  --steering NAME      always-iq | always-shelf |\n"
        "                       practical | oracle\n"
        "  --shelf-entries N    total shelf entries\n"
        "  --ssr NAME           single | two | per-run\n"
        "  --fetch NAME         icount | round-robin\n"
        "  --steer-slack N      shelf preference slack in cycles\n"
        "  --mem-model NAME     relaxed | tso\n"
        "  --cluster-delay N    shelf<->IQ forwarding penalty\n"
        "  --adaptive           epoch-based shelf enable/disable\n"
        "  --release-at-writeback   simple shelf entry release\n"
        "  --shadow-oracle      count practical-vs-oracle missteers\n"
        "  --stats              dump the full statistics report\n"
        "  --json               print the result record as JSON\n"
        "  --sweep [N]          instead of one run, evaluate the\n"
        "                       configured core on the first N (all\n"
        "                       when omitted) standard mixes, in\n"
        "                       parallel, and report per-mix STP\n"
        "  --jobs N             worker threads for --sweep\n"
        "                       (default: SHELFSIM_JOBS or all\n"
        "                       hardware threads)\n"
        "  --isolate            run each sweep job in a sandboxed\n"
        "                       child process (crashes/hangs are\n"
        "                       contained and retried)\n"
        "  --timeout SEC        per-job wall-clock watchdog for\n"
        "                       --isolate (0 = none)\n"
        "  --retries N          re-runs before a failing job is\n"
        "                       quarantined (default 2)\n"
        "  --journal FILE       append one JSONL record per\n"
        "                       finished sweep job\n"
        "  --resume             skip jobs already recorded in the\n"
        "                       --journal file (replayed\n"
        "                       byte-identically)\n"
        "  --inject-fault SPEC  testing aid: fault sweep job K, as\n"
        "                       K=crash|hang|exit|wedge[,K=...]\n"
        "                       (wedge stalls retirement so the\n"
        "                       forward-progress watchdog fires)\n"
        "  --watchdog-cycles N  panic with a structured deadlock\n"
        "                       report after N cycles without a\n"
        "                       retired instruction (0 disables;\n"
        "                       default 100000)\n"
        "  --dump-dir DIR       write crash-dump JSON artifacts to\n"
        "                       DIR on panic/crash (also exported\n"
        "                       to --isolate workers)\n"
        "  --trace-files F,..   replay serialized traces (one per\n"
        "                       thread) instead of generating them\n"
        "  --save-traces PFX    also write each thread's generated\n"
        "                       trace to PFX<t>.trace\n"
        "  --list-benchmarks    print the available profiles\n");
}

CoreParams
configByName(const std::string &name, unsigned threads)
{
    if (name == "base64")
        return baseCore64(threads);
    if (name == "base128")
        return baseCore128(threads);
    if (name == "shelf-cons")
        return shelfCore(threads, false);
    if (name == "shelf-opt")
        return shelfCore(threads, true);
    fatal("unknown --config '%s'", name.c_str());
}

SteerPolicyKind
steeringByName(const std::string &name)
{
    if (name == "always-iq")
        return SteerPolicyKind::AlwaysIQ;
    if (name == "always-shelf")
        return SteerPolicyKind::AlwaysShelf;
    if (name == "practical")
        return SteerPolicyKind::Practical;
    if (name == "oracle")
        return SteerPolicyKind::Oracle;
    fatal("unknown --steering '%s'", name.c_str());
}

SsrDesign
ssrByName(const std::string &name)
{
    if (name == "single")
        return SsrDesign::Single;
    if (name == "two")
        return SsrDesign::Two;
    if (name == "per-run")
        return SsrDesign::PerRun;
    fatal("unknown --ssr '%s'", name.c_str());
}

/**
 * @name Strict flag-operand parsing
 * atoi/atoll silently map typos ("--sweep x", "--jobs 1O") to 0,
 * which used to turn into an empty sweep or a bogus pool size;
 * every numeric operand now fails loudly instead.
 * @{
 */
uint64_t
u64Flag(const std::string &flag, const std::string &val,
        uint64_t min = 0)
{
    uint64_t v;
    fatal_if(!tryParseU64(val, v),
             "%s: '%s' is not a non-negative integer",
             flag.c_str(), val.c_str());
    fatal_if(v < min, "%s must be >= %llu (got '%s')", flag.c_str(),
             (unsigned long long)min, val.c_str());
    return v;
}

double
doubleFlag(const std::string &flag, const std::string &val)
{
    double v;
    fatal_if(!tryParseDouble(val, v) || v < 0,
             "%s: '%s' is not a non-negative number", flag.c_str(),
             val.c_str());
    return v;
}
/** @} */

/** Parse --inject-fault "K=crash[,K=hang,...]" into index->kind. */
std::map<size_t, std::string>
parseFaultSpec(const std::string &spec)
{
    std::map<size_t, std::string> out;
    for (const std::string &part : split(spec, ',')) {
        auto eq = part.find('=');
        fatal_if(eq == std::string::npos,
                 "--inject-fault: '%s' is not K=KIND", part.c_str());
        size_t idx = static_cast<size_t>(
            u64Flag("--inject-fault", part.substr(0, eq)));
        std::string kind = part.substr(eq + 1);
        fatal_if(kind != "crash" && kind != "hang" &&
                 kind != "exit" && kind != "wedge",
                 "--inject-fault: unknown kind '%s' (crash | hang "
                 "| exit | wedge)", kind.c_str());
        out[idx] = kind;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    // Hidden worker mode: the supervised sweep executor re-execs
    // this binary as `shelfsim_cli --worker '<job spec>'` to run one
    // sandboxed job. Must run before any flag parsing.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    std::string config_name = "base64";
    std::vector<std::string> benchmarks;
    unsigned threads = 0;
    Cycle warmup = 4000, cycles = 16000;
    uint64_t seed = 1;
    std::string steering_name, ssr_name, fetch_name;
    int shelf_entries = -1;
    int steer_slack = -1;
    bool release_wb = false, shadow = false, dump_stats = false;
    bool dump_json = false;
    std::vector<std::string> trace_files;
    std::string save_prefix;
    int cluster_delay = -1;
    bool adaptive = false;
    CoreParams::MemModel mem_model = CoreParams::MemModel::Relaxed;
    bool sweep = false;
    int sweep_mixes = -1;
    int watchdog_cycles = -1;
    SupervisorOptions sup = SupervisorOptions::fromEnv();
    std::map<size_t, std::string> faults;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-benchmarks") {
            for (const auto &p : spec2006Profiles())
                printf("%s\n", p.name.c_str());
            return 0;
        } else if (arg == "--config") {
            config_name = next();
        } else if (arg == "--benchmarks") {
            benchmarks = split(next(), ',');
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(u64Flag(arg, next(), 1));
        } else if (arg == "--warmup") {
            warmup = static_cast<Cycle>(u64Flag(arg, next()));
        } else if (arg == "--cycles") {
            cycles = static_cast<Cycle>(u64Flag(arg, next(), 1));
        } else if (arg == "--seed") {
            seed = u64Flag(arg, next());
        } else if (arg == "--steering") {
            steering_name = next();
        } else if (arg == "--shelf-entries") {
            shelf_entries =
                static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--ssr") {
            ssr_name = next();
        } else if (arg == "--fetch") {
            fetch_name = next();
        } else if (arg == "--steer-slack") {
            steer_slack = static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--mem-model") {
            std::string m = next();
            if (m == "relaxed")
                mem_model = CoreParams::MemModel::Relaxed;
            else if (m == "tso")
                mem_model = CoreParams::MemModel::TSO;
            else
                fatal("unknown --mem-model '%s'", m.c_str());
        } else if (arg == "--cluster-delay") {
            cluster_delay = static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--adaptive") {
            adaptive = true;
        } else if (arg == "--release-at-writeback") {
            release_wb = true;
        } else if (arg == "--shadow-oracle") {
            shadow = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--json") {
            dump_json = true;
        } else if (arg == "--trace-files") {
            trace_files = split(next(), ',');
        } else if (arg == "--save-traces") {
            save_prefix = next();
        } else if (arg == "--sweep") {
            sweep = true;
            // Optional mix-count operand.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                sweep_mixes =
                    static_cast<int>(u64Flag(arg, argv[++i], 1));
        } else if (arg == "--jobs") {
            setDefaultJobs(
                static_cast<unsigned>(u64Flag(arg, next(), 1)));
        } else if (arg == "--isolate") {
            sup.isolate = true;
        } else if (arg == "--timeout") {
            sup.timeoutSeconds = doubleFlag(arg, next());
        } else if (arg == "--retries") {
            sup.retries = static_cast<unsigned>(u64Flag(arg, next()));
        } else if (arg == "--journal") {
            sup.journalPath = next();
        } else if (arg == "--resume") {
            sup.resume = true;
        } else if (arg == "--inject-fault") {
            faults = parseFaultSpec(next());
        } else if (arg == "--watchdog-cycles") {
            watchdog_cycles = static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--dump-dir") {
            sup.dumpDir = next();
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    if (!trace_files.empty() && benchmarks.empty())
        benchmarks = trace_files; // labels
    if (benchmarks.empty())
        benchmarks = { "hmmer", "mcf", "gcc", "milc" };
    if (threads == 0)
        threads = static_cast<unsigned>(benchmarks.size());
    fatal_if(threads != benchmarks.size(),
             "--threads %u but %zu benchmarks", threads,
             benchmarks.size());

    SystemConfig cfg;
    cfg.core = configByName(config_name, threads);
    if (!steering_name.empty())
        cfg.core.steering = steeringByName(steering_name);
    if (shelf_entries >= 0)
        cfg.core.shelfEntries =
            static_cast<unsigned>(shelf_entries);
    if (!ssr_name.empty())
        cfg.core.ssrDesign = ssrByName(ssr_name);
    if (!fetch_name.empty()) {
        if (fetch_name == "icount")
            cfg.core.fetchPolicy = CoreParams::FetchPolicy::ICount;
        else if (fetch_name == "round-robin")
            cfg.core.fetchPolicy =
                CoreParams::FetchPolicy::RoundRobin;
        else
            fatal("unknown --fetch '%s'", fetch_name.c_str());
    }
    if (steer_slack >= 0)
        cfg.core.steerSlack = static_cast<unsigned>(steer_slack);
    cfg.core.shelfReleaseAtWriteback = release_wb;
    cfg.core.memModel = mem_model;
    if (cluster_delay >= 0)
        cfg.core.interClusterDelay =
            static_cast<unsigned>(cluster_delay);
    cfg.core.adaptiveShelf = adaptive;
    cfg.core.shadowOracle = shadow;
    if (watchdog_cycles >= 0)
        cfg.core.watchdogCycles =
            static_cast<unsigned>(watchdog_cycles);
    // Crash dumps for this process too, not just --isolate workers:
    // a panic (watchdog or invariant) in a plain run also leaves a
    // structured artifact behind.
    if (!sup.dumpDir.empty()) {
        diag::enableCrashDumps(sup.dumpDir);
        diag::installCrashSignalHandlers();
    }
    cfg.benchmarks = benchmarks;
    for (const auto &f : trace_files)
        cfg.externalTraces.push_back(readTraceFile(f));
    cfg.warmupCycles = warmup;
    cfg.measureCycles = cycles;
    cfg.seed = seed;

    if (sweep) {
        // Supervised standard-mix sweep of the configured core (the
        // same methodology as the figure harnesses). Jobs fan across
        // the worker pool — optionally each in a sandboxed child
        // process — and results are input-ordered and identical for
        // any job count.
        fatal_if(!trace_files.empty(),
                 "--sweep generates its own workloads; drop "
                 "--trace-files");
        fatal_if(sup.resume && sup.journalPath.empty(),
                 "--resume needs --journal FILE");
        SimControls ctl;
        ctl.warmupCycles = cfg.warmupCycles;
        ctl.measureCycles = cfg.measureCycles;
        ctl.seed = cfg.seed;
        auto mixes = standardMixes(cfg.core.threads);
        if (sweep_mixes > 0 &&
            static_cast<size_t>(sweep_mixes) < mixes.size()) {
            mixes.resize(static_cast<size_t>(sweep_mixes));
        }
        for (const auto &f : faults)
            fatal_if(f.first >= mixes.size(),
                     "--inject-fault: job %zu out of range (sweep "
                     "has %zu jobs)", f.first, mixes.size());
        STReference &ref = sharedReference(ctl);
        ref.precompute(mixes);

        std::vector<validate::SweepJobSpec> specs;
        for (size_t i = 0; i < mixes.size(); ++i) {
            validate::SweepJobSpec spec;
            spec.core = cfg.core;
            spec.mixBenchmarks = mixes[i].benchmarks;
            spec.warmupCycles = ctl.warmupCycles;
            spec.measureCycles = ctl.measureCycles;
            spec.seed = ctl.seed;
            auto f = faults.find(i);
            if (f != faults.end())
                spec.fault = f->second;
            specs.push_back(std::move(spec));
        }
        SweepSupervisor supervisor(sup);
        auto outcomes = supervisor.run(specs);

        // Job count goes to stderr: stdout must be byte-identical
        // for any --jobs value.
        fprintf(stderr, "%u jobs\n", defaultJobs());
        printf("config %s: %zu standard %u-thread mixes\n",
               cfg.core.name.c_str(), mixes.size(),
               cfg.core.threads);
        std::vector<double> stps;
        for (size_t i = 0; i < mixes.size(); ++i) {
            if (!outcomes[i].ok()) {
                printf("  %-28s QUARANTINED (no result)\n",
                       mixes[i].name().c_str());
                continue;
            }
            double s = stpOf(outcomes[i].result, mixes[i], ref);
            stps.push_back(s);
            printf("  %-28s ipc %.3f  stp %.3f\n",
                   mixes[i].name().c_str(),
                   outcomes[i].result.totalIpc, s);
        }
        printf("geomean STP %.3f\n", geomean(stps));
        if (dump_json) {
            printf("[");
            for (size_t i = 0; i < outcomes.size(); ++i)
                printf("%s%s", i ? ",\n " : "",
                       outcomes[i].ok()
                           ? outcomes[i].result.toJson().c_str()
                           : "null");
            printf("]\n");
        }
        size_t bad = SweepSupervisor::failures(outcomes);
        if (bad) {
            fprintf(stderr, "%s",
                    SweepSupervisor::failureSummary(outcomes)
                        .c_str());
            fprintf(stderr,
                    "sweep finished with %zu/%zu jobs "
                    "quarantined\n", bad, outcomes.size());
            return 1;
        }
        return 0;
    }

    if (!save_prefix.empty()) {
        // Generate exactly what System would and persist it.
        size_t len = (cfg.warmupCycles + cfg.measureCycles) *
            (cfg.core.issueWidth + 1);
        for (unsigned t = 0; t < threads; ++t) {
            TraceGenerator gen(spec2006Profile(cfg.benchmarks[t]),
                               cfg.seed * 1000003ULL + t,
                               static_cast<Addr>(t) << 30);
            std::string path =
                save_prefix + std::to_string(t) + ".trace";
            writeTraceFile(gen.generate(len), path);
            printf("wrote %s\n", path.c_str());
        }
    }

    System sys(cfg);
    SystemResult res = sys.run();

    printf("config %s, %u threads, %llu measured cycles\n",
           cfg.core.name.c_str(), threads,
           static_cast<unsigned long long>(res.cycles));
    printf("IPC %.3f  in-seq %.1f%%  shelf-steer %.1f%%",
           res.totalIpc, res.inSeqFrac * 100,
           res.shelfSteerFrac * 100);
    if (shadow)
        printf("  missteer %.1f%%", res.missteerFrac * 100);
    printf("\n");
    for (const auto &t : res.threads) {
        printf("  %-12s ipc %.3f insts %llu in-seq %.1f%%\n",
               t.benchmark.c_str(), t.ipc,
               static_cast<unsigned long long>(t.instructions),
               t.inSeqFrac * 100);
    }
    printf("energy/inst %.1f pJ, EDP %.1f, power %.2f W\n",
           res.energy.energyPerInstPJ, res.energy.edp,
           res.energy.avgPowerW);

    if (dump_stats) {
        printf("\n==== statistics ====\n%s",
               sys.statsReport().c_str());
    }
    if (dump_json)
        printf("%s\n", res.toJson().c_str());
    return 0;
}
