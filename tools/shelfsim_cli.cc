/**
 * @file
 * shelfsim command-line driver: run any core configuration on any
 * workload and dump the full statistics report.
 *
 * Examples:
 *   shelfsim --list-benchmarks
 *   shelfsim --config shelf-opt --benchmarks hmmer,mcf,gcc,milc
 *   shelfsim --config base64 --threads 2 --benchmarks gcc,mcf \
 *            --warmup 8000 --cycles 32000 --seed 7 --stats
 *   shelfsim --config shelf-opt --benchmarks gcc,mcf,hmmer,milc \
 *            --steering oracle --shelf-entries 128 --ssr per-run
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "diag/crash_dump.hh"
#include "metrics/throughput.hh"
#include "sim/allocation.hh"
#include "sim/experiment.hh"
#include "sim/fabric.hh"
#include "sim/parallel.hh"
#include "sim/result_cache.hh"
#include "sim/serve.hh"
#include "sim/supervisor.hh"
#include "sim/system.hh"
#include "workload/spec2006.hh"
#include "workload/trace_capture.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

void
usage()
{
    printf(
        "usage: shelfsim_cli [options]\n"
        "  --config NAME        base64 | base128 | shelf-cons |\n"
        "                       shelf-opt (default base64)\n"
        "  --benchmarks A,B,..  one profile name per thread\n"
        "  --threads N          SMT threads per core (default:\n"
        "                       number of benchmarks)\n"
        "  --cores N            multi-core system: N copies of the\n"
        "                       configured core sharing one memory\n"
        "                       hierarchy (default 1)\n"
        "  --alloc NAME         thread-to-core allocation policy for\n"
        "                       --cores > 1: round-robin |\n"
        "                       fill-first | classify | dynamic\n"
        "                       (default round-robin)\n"
        "  --warmup N           timed warmup cycles (default 4000)\n"
        "  --cycles N           measured cycles (default 16000)\n"
        "  --seed N             workload seed (default 1)\n"
        "  --steering NAME      always-iq | always-shelf |\n"
        "                       practical | oracle\n"
        "  --shelf-entries N    total shelf entries\n"
        "  --ssr NAME           single | two | per-run\n"
        "  --fetch NAME         icount | round-robin\n"
        "  --steer-slack N      shelf preference slack in cycles\n"
        "  --mem-model NAME     relaxed | tso\n"
        "  --cluster-delay N    shelf<->IQ forwarding penalty\n"
        "  --adaptive           epoch-based shelf enable/disable\n"
        "  --release-at-writeback   simple shelf entry release\n"
        "  --shadow-oracle      count practical-vs-oracle missteers\n"
        "  --stats              dump the full statistics report\n"
        "  --json               print the result record as JSON\n"
        "  --sweep [N]          instead of one run, evaluate the\n"
        "                       configured core on the first N (all\n"
        "                       when omitted) standard mixes, in\n"
        "                       parallel, and report per-mix STP\n"
        "  --jobs N             worker threads for --sweep\n"
        "                       (default: SHELFSIM_JOBS or all\n"
        "                       hardware threads)\n"
        "  --isolate            run each sweep job in a sandboxed\n"
        "                       child process (crashes/hangs are\n"
        "                       contained and retried)\n"
        "  --timeout SEC        per-job wall-clock watchdog for\n"
        "                       --isolate (0 = none)\n"
        "  --retries N          re-runs before a failing job is\n"
        "                       quarantined (default 2)\n"
        "  --journal FILE       append one JSONL record per\n"
        "                       finished sweep job\n"
        "  --resume             skip jobs already recorded in the\n"
        "                       --journal file (replayed\n"
        "                       byte-identically)\n"
        "  --inject-fault SPEC  testing aid: fault sweep job K, as\n"
        "                       K=crash|hang|exit|stop|wedge[,K=..]\n"
        "                       (stop SIGSTOPs the worker: alive but\n"
        "                       frozen; wedge stalls retirement so\n"
        "                       the forward-progress watchdog "
        "fires)\n"
        "  --watchdog-cycles N  panic with a structured deadlock\n"
        "                       report after N cycles without a\n"
        "                       retired instruction (0 disables;\n"
        "                       default 100000)\n"
        "  --dump-dir DIR       write crash-dump JSON artifacts to\n"
        "                       DIR on panic/crash (also exported\n"
        "                       to --isolate workers)\n"
        "  --trace-files F,..   replay serialized traces (one per\n"
        "                       thread) instead of generating them\n"
        "  --trace F,..         like --trace-files, via the\n"
        "                       checksummed streaming reader:\n"
        "                       corrupt input fails with a precise\n"
        "                       TraceError instead of killing the\n"
        "                       run mid-load\n"
        "  --trace-skip-corrupt with --trace: drop corrupt chunks,\n"
        "                       resync at the next chunk marker, and\n"
        "                       report trace.corrupt_chunks on\n"
        "                       stderr\n"
        "  --record PFX         capture each thread's retired\n"
        "                       instruction stream to\n"
        "                       PFX<t>.shlftrc (streaming, bounded\n"
        "                       memory, atomic publish)\n"
        "  --trace-cell K=F[:F..]  with --sweep: replace cell K's\n"
        "                       generated mix with trace files (one\n"
        "                       per thread; repeatable); the job key\n"
        "                       carries the traces' content hashes\n"
        "  --save-traces PFX    also write each thread's generated\n"
        "                       trace to PFX<t>.trace\n"
        "  --list-benchmarks    print the available profiles\n"
        "service mode (see DESIGN.md, 'Sweep as a service'):\n"
        "  --serve SOCKET       run as a persistent sweep service on\n"
        "                       a unix socket: batches of job specs\n"
        "                       from many clients, answered from a\n"
        "                       content-addressed result cache with\n"
        "                       in-flight deduplication (--jobs sets\n"
        "                       the executor count; --isolate,\n"
        "                       --timeout, --retries apply per job)\n"
        "  --connect SOCKET     run the --sweep against a --serve\n"
        "                       daemon instead of locally (same\n"
        "                       stdout, byte for byte)\n"
        "  --cache-dir DIR      disk tier for the result cache\n"
        "                       (--serve), and for the local\n"
        "                       single-thread reference runs\n"
        "                       (--sweep/--connect): warm runs skip\n"
        "                       every cached simulation\n"
        "  --cache-entries N    in-memory cache bound (default "
        "4096)\n"
        "  --serve-stats SOCKET     print a daemon's counters\n"
        "  --serve-shutdown SOCKET  stop a daemon\n"
        "fabric mode (multi-node sweeps; see DESIGN.md, 'Sweep "
        "fabric'):\n"
        "  --nodes N=S,...      run the --sweep across --serve\n"
        "                       daemons given as name=socket pairs:\n"
        "                       jobs are leased to nodes, dead or\n"
        "                       wedged nodes are detected and their\n"
        "                       work stolen by survivors; per-node\n"
        "                       shard journals (--journal stem)\n"
        "                       merge via shelfsim_journal_merge\n"
        "                       (stdout stays byte-identical to a\n"
        "                       local --sweep)\n"
        "  --lease SEC          per-launch lease / read deadline\n"
        "                       (default 30)\n"
        "  --node-retries N     consecutive transport failures\n"
        "                       before a node is retired (default "
        "2)\n"
        "  --heartbeat SEC      health-gate ping deadline (default "
        "2)\n"
        "  --serve-allow-faults --serve accepts self-faulting specs\n"
        "                       (fault-injection tests only)\n"
        "  --serve-job-delay S  --serve test hook: sleep S seconds\n"
        "                       inside every executed job\n");
}

CoreParams
configByName(const std::string &name, unsigned threads)
{
    if (name == "base64")
        return baseCore64(threads);
    if (name == "base128")
        return baseCore128(threads);
    if (name == "shelf-cons")
        return shelfCore(threads, false);
    if (name == "shelf-opt")
        return shelfCore(threads, true);
    fatal("unknown --config '%s'", name.c_str());
}

SteerPolicyKind
steeringByName(const std::string &name)
{
    if (name == "always-iq")
        return SteerPolicyKind::AlwaysIQ;
    if (name == "always-shelf")
        return SteerPolicyKind::AlwaysShelf;
    if (name == "practical")
        return SteerPolicyKind::Practical;
    if (name == "oracle")
        return SteerPolicyKind::Oracle;
    fatal("unknown --steering '%s'", name.c_str());
}

SsrDesign
ssrByName(const std::string &name)
{
    if (name == "single")
        return SsrDesign::Single;
    if (name == "two")
        return SsrDesign::Two;
    if (name == "per-run")
        return SsrDesign::PerRun;
    fatal("unknown --ssr '%s'", name.c_str());
}

/**
 * @name Strict flag-operand parsing
 * atoi/atoll silently map typos ("--sweep x", "--jobs 1O") to 0,
 * which used to turn into an empty sweep or a bogus pool size;
 * every numeric operand now fails loudly instead.
 * @{
 */
uint64_t
u64Flag(const std::string &flag, const std::string &val,
        uint64_t min = 0)
{
    uint64_t v;
    fatal_if(!tryParseU64(val, v),
             "%s: '%s' is not a non-negative integer",
             flag.c_str(), val.c_str());
    fatal_if(v < min, "%s must be >= %llu (got '%s')", flag.c_str(),
             (unsigned long long)min, val.c_str());
    return v;
}

double
doubleFlag(const std::string &flag, const std::string &val)
{
    double v;
    fatal_if(!tryParseDouble(val, v) || v < 0,
             "%s: '%s' is not a non-negative number", flag.c_str(),
             val.c_str());
    return v;
}
/** @} */

/** Parse --inject-fault "K=crash[,K=hang,...]" into index->kind. */
std::map<size_t, std::string>
parseFaultSpec(const std::string &spec)
{
    std::map<size_t, std::string> out;
    for (const std::string &part : split(spec, ',')) {
        auto eq = part.find('=');
        fatal_if(eq == std::string::npos,
                 "--inject-fault: '%s' is not K=KIND", part.c_str());
        size_t idx = static_cast<size_t>(
            u64Flag("--inject-fault", part.substr(0, eq)));
        std::string kind = part.substr(eq + 1);
        fatal_if(kind != "crash" && kind != "hang" &&
                 kind != "exit" && kind != "stop" &&
                 kind != "wedge",
                 "--inject-fault: unknown kind '%s' (crash | hang "
                 "| exit | stop | wedge)", kind.c_str());
        out[idx] = kind;
    }
    return out;
}

/** One sweep cell as the report printer sees it, whether it came
 * from a local supervisor run or over the wire from a daemon. */
struct SweepCell
{
    bool ok = false;
    SystemResult result; ///< valid only when ok
};

/** Report label of a trace-backed sweep cell: "trace:" plus the
 * basenames of its files. */
std::string
traceCellLabel(const validate::SweepJobSpec &spec)
{
    std::string label = "trace:";
    for (size_t t = 0; t < spec.tracePaths.size(); ++t) {
        const std::string &p = spec.tracePaths[t];
        size_t slash = p.find_last_of('/');
        if (t)
            label += "+";
        label += slash == std::string::npos ? p : p.substr(slash + 1);
    }
    return label;
}

/**
 * Print the standard sweep report (config header, per-cell IPC/STP
 * rows, geomean, optional JSON dump). Shared by the local --sweep
 * path, --connect, and --nodes so a served sweep's stdout is
 * byte-identical to a local one. Generator cells are labeled by mix
 * name and normalized against per-benchmark references;
 * trace-backed cells (--trace-cell) by their file basenames against
 * per-trace references. Returns the number of missing (quarantined
 * or failed) cells.
 */
size_t
printSweepReport(const CoreParams &core,
                 const std::vector<validate::SweepJobSpec> &specs,
                 const std::vector<WorkloadMix> &mixes,
                 const std::vector<SweepCell> &cells,
                 STReference &ref, bool dump_json)
{
    unsigned cores = specs.empty() ? 1 : specs[0].numCores;
    if (cores > 1) {
        printf("config %s: %zu standard %u-thread mixes "
               "(%u cores x %u threads, %s)\n",
               core.name.c_str(), mixes.size(),
               cores * core.threads, cores, core.threads,
               specs[0].allocation.c_str());
    } else {
        printf("config %s: %zu standard %u-thread mixes\n",
               core.name.c_str(), mixes.size(), core.threads);
    }
    std::vector<double> stps;
    size_t bad = 0;
    for (size_t i = 0; i < mixes.size(); ++i) {
        std::string label = specs[i].tracePaths.empty()
            ? mixes[i].name() : traceCellLabel(specs[i]);
        if (!cells[i].ok) {
            ++bad;
            printf("  %-28s QUARANTINED (no result)\n",
                   label.c_str());
            continue;
        }
        double s = stpOfSpec(cells[i].result, specs[i], ref);
        stps.push_back(s);
        printf("  %-28s ipc %.3f  stp %.3f\n",
               label.c_str(), cells[i].result.totalIpc, s);
    }
    printf("geomean STP %.3f\n", geomean(stps));
    if (dump_json) {
        printf("[");
        for (size_t i = 0; i < cells.size(); ++i)
            printf("%s%s", i ? ",\n " : "",
                   cells[i].ok ? cells[i].result.toJson().c_str()
                               : "null");
        printf("]\n");
    }
    return bad;
}

/** Build the job specs of a standard-mix sweep of @p core. */
std::vector<validate::SweepJobSpec>
sweepSpecs(const CoreParams &core,
           const std::vector<WorkloadMix> &mixes,
           const SimControls &ctl,
           const std::map<size_t, std::string> &faults)
{
    std::vector<validate::SweepJobSpec> specs;
    for (size_t i = 0; i < mixes.size(); ++i) {
        validate::SweepJobSpec spec;
        spec.core = core;
        spec.mixBenchmarks = mixes[i].benchmarks;
        spec.warmupCycles = ctl.warmupCycles;
        spec.measureCycles = ctl.measureCycles;
        spec.seed = ctl.seed;
        spec.numCores = ctl.numCores;
        spec.allocation = ctl.allocation;
        auto f = faults.find(i);
        if (f != faults.end())
            spec.fault = f->second;
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    // Hidden worker mode: the supervised sweep executor re-execs
    // this binary as `shelfsim_cli --worker '<job spec>'` to run one
    // sandboxed job. Must run before any flag parsing.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    std::string config_name = "base64";
    std::vector<std::string> benchmarks;
    unsigned threads = 0;
    unsigned num_cores = 1;
    std::string alloc_name = "round-robin";
    Cycle warmup = 4000, cycles = 16000;
    uint64_t seed = 1;
    std::string steering_name, ssr_name, fetch_name;
    int shelf_entries = -1;
    int steer_slack = -1;
    bool release_wb = false, shadow = false, dump_stats = false;
    bool dump_json = false;
    std::vector<std::string> trace_files;
    bool trace_new_reader = false;
    bool trace_skip_corrupt = false;
    std::string record_prefix;
    std::map<size_t, std::vector<std::string>> trace_cells;
    std::string save_prefix;
    int cluster_delay = -1;
    bool adaptive = false;
    CoreParams::MemModel mem_model = CoreParams::MemModel::Relaxed;
    bool sweep = false;
    int sweep_mixes = -1;
    int watchdog_cycles = -1;
    SupervisorOptions sup = SupervisorOptions::fromEnv();
    FabricOptions fab = FabricOptions::fromEnv();
    std::map<size_t, std::string> faults;
    std::string serve_path, connect_path, cache_dir;
    std::string serve_stats_path, serve_shutdown_path;
    size_t cache_entries = 4096;
    bool serve_allow_faults = false;
    double serve_job_delay = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-benchmarks") {
            for (const auto &p : spec2006Profiles())
                printf("%s\n", p.name.c_str());
            return 0;
        } else if (arg == "--config") {
            config_name = next();
        } else if (arg == "--benchmarks") {
            benchmarks = split(next(), ',');
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(u64Flag(arg, next(), 1));
        } else if (arg == "--cores") {
            num_cores =
                static_cast<unsigned>(u64Flag(arg, next(), 1));
        } else if (arg == "--alloc") {
            alloc_name = next();
            fatal_if(!isAllocationPolicy(alloc_name),
                     "unknown --alloc '%s' (have: %s)",
                     alloc_name.c_str(),
                     join(allocationPolicyNames(), " | ").c_str());
        } else if (arg == "--warmup") {
            warmup = static_cast<Cycle>(u64Flag(arg, next()));
        } else if (arg == "--cycles") {
            cycles = static_cast<Cycle>(u64Flag(arg, next(), 1));
        } else if (arg == "--seed") {
            seed = u64Flag(arg, next());
        } else if (arg == "--steering") {
            steering_name = next();
        } else if (arg == "--shelf-entries") {
            shelf_entries =
                static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--ssr") {
            ssr_name = next();
        } else if (arg == "--fetch") {
            fetch_name = next();
        } else if (arg == "--steer-slack") {
            steer_slack = static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--mem-model") {
            std::string m = next();
            if (m == "relaxed")
                mem_model = CoreParams::MemModel::Relaxed;
            else if (m == "tso")
                mem_model = CoreParams::MemModel::TSO;
            else
                fatal("unknown --mem-model '%s'", m.c_str());
        } else if (arg == "--cluster-delay") {
            cluster_delay = static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--adaptive") {
            adaptive = true;
        } else if (arg == "--release-at-writeback") {
            release_wb = true;
        } else if (arg == "--shadow-oracle") {
            shadow = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--json") {
            dump_json = true;
        } else if (arg == "--trace-files") {
            trace_files = split(next(), ',');
        } else if (arg == "--trace") {
            trace_files = split(next(), ',');
            trace_new_reader = true;
        } else if (arg == "--trace-skip-corrupt") {
            trace_skip_corrupt = true;
        } else if (arg == "--record") {
            record_prefix = next();
        } else if (arg == "--trace-cell") {
            std::string v = next();
            auto eq = v.find('=');
            fatal_if(eq == std::string::npos,
                     "--trace-cell: '%s' is not K=FILE[:FILE...]",
                     v.c_str());
            size_t idx = static_cast<size_t>(
                u64Flag("--trace-cell", v.substr(0, eq)));
            auto files = split(v.substr(eq + 1), ':');
            fatal_if(files.empty() || files[0].empty(),
                     "--trace-cell: no trace files in '%s'",
                     v.c_str());
            trace_cells[idx] = std::move(files);
        } else if (arg == "--save-traces") {
            save_prefix = next();
        } else if (arg == "--sweep") {
            sweep = true;
            // Optional mix-count operand.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                sweep_mixes =
                    static_cast<int>(u64Flag(arg, argv[++i], 1));
        } else if (arg == "--jobs") {
            setDefaultJobs(
                static_cast<unsigned>(u64Flag(arg, next(), 1)));
        } else if (arg == "--isolate") {
            sup.isolate = true;
        } else if (arg == "--timeout") {
            sup.timeoutSeconds = doubleFlag(arg, next());
        } else if (arg == "--retries") {
            sup.retries = static_cast<unsigned>(u64Flag(arg, next()));
        } else if (arg == "--journal") {
            sup.journalPath = next();
        } else if (arg == "--resume") {
            sup.resume = true;
        } else if (arg == "--inject-fault") {
            faults = parseFaultSpec(next());
        } else if (arg == "--watchdog-cycles") {
            watchdog_cycles = static_cast<int>(u64Flag(arg, next()));
        } else if (arg == "--dump-dir") {
            sup.dumpDir = next();
        } else if (arg == "--serve") {
            serve_path = next();
        } else if (arg == "--connect") {
            connect_path = next();
        } else if (arg == "--cache-dir") {
            cache_dir = next();
        } else if (arg == "--cache-entries") {
            cache_entries =
                static_cast<size_t>(u64Flag(arg, next(), 1));
        } else if (arg == "--serve-stats") {
            serve_stats_path = next();
        } else if (arg == "--serve-shutdown") {
            serve_shutdown_path = next();
        } else if (arg == "--nodes") {
            std::string err;
            fatal_if(!FabricOptions::parseNodeList(next(), fab.nodes,
                                                   err),
                     "--nodes: %s", err.c_str());
        } else if (arg == "--lease") {
            fab.leaseSeconds = doubleFlag(arg, next());
        } else if (arg == "--node-retries") {
            fab.nodeRetries =
                static_cast<unsigned>(u64Flag(arg, next()));
        } else if (arg == "--heartbeat") {
            fab.heartbeatSeconds = doubleFlag(arg, next());
        } else if (arg == "--serve-allow-faults") {
            serve_allow_faults = true;
        } else if (arg == "--serve-job-delay") {
            serve_job_delay = doubleFlag(arg, next());
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    if (!serve_stats_path.empty() || !serve_shutdown_path.empty()) {
        const std::string &path = serve_stats_path.empty()
            ? serve_shutdown_path : serve_stats_path;
        ServeClient client;
        std::string err;
        fatal_if(!client.connect(path, &err), "%s", err.c_str());
        if (!serve_stats_path.empty()) {
            std::string stats;
            fatal_if(!client.stats(stats, &err), "%s", err.c_str());
            printf("%s\n", stats.c_str());
        } else {
            fatal_if(!client.requestShutdown(&err), "%s",
                     err.c_str());
            fprintf(stderr, "server at %s shutting down\n",
                    path.c_str());
        }
        return 0;
    }

    if (!serve_path.empty()) {
        ServeOptions so;
        so.socketPath = serve_path;
        so.cacheDir = cache_dir;
        so.cacheEntries = cache_entries;
        so.supervisor = sup;
        so.allowFaults = serve_allow_faults;
        so.jobDelaySeconds = serve_job_delay;
        if (!sup.dumpDir.empty()) {
            diag::enableCrashDumps(sup.dumpDir);
            diag::installCrashSignalHandlers();
        }
        return runServeMain(so);
    }

    fatal_if(!connect_path.empty() && !sweep,
             "--connect runs a sweep against a daemon; add --sweep");
    fatal_if(!fab.nodes.empty() && !sweep,
             "--nodes runs a sweep across daemons; add --sweep");
    fatal_if(!fab.nodes.empty() && !connect_path.empty(),
             "--nodes and --connect are mutually exclusive");

    if (!trace_files.empty() && benchmarks.empty())
        benchmarks = trace_files; // labels
    if (benchmarks.empty())
        benchmarks = { "hmmer", "mcf", "gcc", "milc" };
    if (threads == 0) {
        if (num_cores == 1) {
            threads = static_cast<unsigned>(benchmarks.size());
        } else {
            // Deal the benchmarks evenly across the cores; an uneven
            // count needs an explicit per-core width.
            fatal_if(benchmarks.size() % num_cores != 0,
                     "--cores %u with %zu benchmarks: give --threads "
                     "(the per-core SMT width)",
                     num_cores, benchmarks.size());
            threads = static_cast<unsigned>(benchmarks.size() /
                                            num_cores);
        }
    }
    if (num_cores == 1) {
        fatal_if(threads != benchmarks.size(),
                 "--threads %u but %zu benchmarks", threads,
                 benchmarks.size());
    } else {
        fatal_if(benchmarks.size() >
                 static_cast<size_t>(num_cores) * threads,
                 "--cores %u x --threads %u holds %u threads but got "
                 "%zu benchmarks", num_cores, threads,
                 num_cores * threads, benchmarks.size());
    }

    SystemConfig cfg;
    cfg.core = configByName(config_name, threads);
    if (!steering_name.empty())
        cfg.core.steering = steeringByName(steering_name);
    if (shelf_entries >= 0)
        cfg.core.shelfEntries =
            static_cast<unsigned>(shelf_entries);
    if (!ssr_name.empty())
        cfg.core.ssrDesign = ssrByName(ssr_name);
    if (!fetch_name.empty()) {
        if (fetch_name == "icount")
            cfg.core.fetchPolicy = CoreParams::FetchPolicy::ICount;
        else if (fetch_name == "round-robin")
            cfg.core.fetchPolicy =
                CoreParams::FetchPolicy::RoundRobin;
        else
            fatal("unknown --fetch '%s'", fetch_name.c_str());
    }
    if (steer_slack >= 0)
        cfg.core.steerSlack = static_cast<unsigned>(steer_slack);
    cfg.core.shelfReleaseAtWriteback = release_wb;
    cfg.core.memModel = mem_model;
    if (cluster_delay >= 0)
        cfg.core.interClusterDelay =
            static_cast<unsigned>(cluster_delay);
    cfg.core.adaptiveShelf = adaptive;
    cfg.core.shadowOracle = shadow;
    if (watchdog_cycles >= 0)
        cfg.core.watchdogCycles =
            static_cast<unsigned>(watchdog_cycles);
    // Crash dumps for this process too, not just --isolate workers:
    // a panic (watchdog or invariant) in a plain run also leaves a
    // structured artifact behind.
    if (!sup.dumpDir.empty()) {
        diag::enableCrashDumps(sup.dumpDir);
        diag::installCrashSignalHandlers();
    }
    fatal_if(trace_skip_corrupt && !trace_new_reader,
             "--trace-skip-corrupt needs --trace");
    cfg.benchmarks = benchmarks;
    for (const auto &f : trace_files) {
        if (!trace_new_reader) {
            cfg.externalTraces.push_back(readTraceFile(f));
            continue;
        }
        TraceReadOptions ro;
        ro.skipCorrupt = trace_skip_corrupt;
        Trace tr;
        TraceError te = TraceError::None;
        std::string detail;
        TraceReadStats ts;
        fatal_if(!tryReadTraceFile(f, tr, ro, &te, &detail, &ts),
                 "trace '%s': %s: %s", f.c_str(),
                 traceErrorName(te), detail.c_str());
        if (ts.corruptChunks) {
            fprintf(stderr,
                    "trace %s: trace.corrupt_chunks %llu "
                    "(%llu bytes skipped; first: %s: %s)\n",
                    f.c_str(),
                    (unsigned long long)ts.corruptChunks,
                    (unsigned long long)ts.skippedBytes,
                    traceErrorName(ts.firstError),
                    ts.firstDetail.c_str());
        }
        cfg.externalTraces.push_back(std::move(tr));
    }
    cfg.warmupCycles = warmup;
    cfg.measureCycles = cycles;
    cfg.seed = seed;
    cfg.numCores = num_cores;
    cfg.allocation = alloc_name;

    if (sweep) {
        // Supervised standard-mix sweep of the configured core (the
        // same methodology as the figure harnesses). Jobs fan across
        // the worker pool — optionally each in a sandboxed child
        // process — and results are input-ordered and identical for
        // any job count.
        fatal_if(!trace_files.empty(),
                 "--sweep generates its own workloads; drop "
                 "--trace-files (use --trace-cell to replay traces "
                 "in a sweep)");
        fatal_if(!record_prefix.empty(),
                 "--record captures a single run; drop --sweep");
        fatal_if(sup.resume && sup.journalPath.empty(),
                 "--resume needs --journal FILE");
        SimControls ctl;
        ctl.warmupCycles = cfg.warmupCycles;
        ctl.measureCycles = cfg.measureCycles;
        ctl.seed = cfg.seed;
        ctl.numCores = num_cores;
        ctl.allocation = alloc_name;
        // Multi-core sweep cells carry one thread per hardware
        // context across all cores.
        auto mixes = standardMixes(num_cores * cfg.core.threads);
        if (sweep_mixes > 0 &&
            static_cast<size_t>(sweep_mixes) < mixes.size()) {
            mixes.resize(static_cast<size_t>(sweep_mixes));
        }
        for (const auto &f : faults)
            fatal_if(f.first >= mixes.size(),
                     "--inject-fault: job %zu out of range (sweep "
                     "has %zu jobs)", f.first, mixes.size());

        // With a cache directory, single-thread reference runs are
        // content-addressed in the same tier a --serve daemon uses
        // for sweep cells: a warm repeat (or a directory shared with
        // a daemon) skips every reference simulation too.
        std::unique_ptr<ResultCache> refCache;
        if (!cache_dir.empty()) {
            refCache = std::make_unique<ResultCache>(cache_entries,
                                                     cache_dir);
            setReferenceResultCache(refCache.get());
        }
        auto specs = sweepSpecs(cfg.core, mixes, ctl, faults);

        // --trace-cell overrides: cell K replays trace files instead
        // of its generated mix. Hashes are computed here, client
        // side, so the job key is content-addressed before anything
        // touches a cache or a daemon, and an unreadable file fails
        // the sweep up front with a precise message.
        for (const auto &tc : trace_cells) {
            fatal_if(tc.first >= specs.size(),
                     "--trace-cell: cell %zu out of range (sweep "
                     "has %zu cells)", tc.first, specs.size());
            fatal_if(tc.second.size() !=
                     num_cores * cfg.core.threads,
                     "--trace-cell %zu: %zu traces for %u threads",
                     tc.first, tc.second.size(),
                     num_cores * cfg.core.threads);
            auto &spec = specs[tc.first];
            spec.mixBenchmarks.clear();
            spec.tracePaths = tc.second;
            spec.traceHashes.clear();
            std::string herr;
            fatal_if(!validate::fillTraceHashes(spec, herr),
                     "--trace-cell %zu: %s", tc.first, herr.c_str());
        }

        STReference &ref = sharedReference(ctl);
        // Per-benchmark references are only needed for the cells
        // that still generate their workloads; trace-backed cells
        // normalize against per-trace references computed lazily
        // (and cached content-addressed) by the report printer.
        std::vector<WorkloadMix> refMixes;
        for (size_t i = 0; i < mixes.size(); ++i)
            if (specs[i].tracePaths.empty())
                refMixes.push_back(mixes[i]);
        ref.precompute(refMixes);

        if (!connect_path.empty()) {
            // Served sweep: the daemon computes (or remembers) the
            // cells; this process only prints. stdout is
            // byte-identical to a local --sweep because cached
            // results round-trip at full double precision.
            ServeClient client;
            std::string err;
            std::vector<ServeClient::JobReply> replies;
            size_t done = 0;
            // Resilient submission: a daemon restarting mid-batch
            // (or not yet listening) costs a reconnect and a
            // resubmit, not the sweep — finished cells replay from
            // the daemon's cache.
            bool sent = client.submitResilient(
                connect_path, specs, replies, 4, 0.25, &err,
                [&](size_t, const ServeClient::JobReply &) {
                    ++done;
                    fprintf(stderr, "\r%zu/%zu cells", done,
                            specs.size());
                });
            fprintf(stderr, "\n");
            fatal_if(!sent, "--connect %s: %s",
                     connect_path.c_str(), err.c_str());
            std::vector<SweepCell> cells(replies.size());
            for (size_t i = 0; i < replies.size(); ++i) {
                if (!replies[i].ok) {
                    fprintf(stderr, "job %zu failed: %s\n", i,
                            replies[i].error.c_str());
                    continue;
                }
                cells[i].ok = true;
                cells[i].result =
                    SystemResult::fromJson(replies[i].resultJson);
            }
            size_t bad = printSweepReport(cfg.core, specs, mixes, cells,
                                          ref, dump_json);
            if (bad) {
                fprintf(stderr,
                        "sweep finished with %zu/%zu jobs "
                        "failed\n", bad, cells.size());
                return 1;
            }
            return 0;
        }

        if (!fab.nodes.empty()) {
            // Fabric sweep: lease jobs across the --serve fleet.
            // stdout is byte-identical to a local --sweep whatever
            // the node count, loss, or interleaving, because
            // outcomes come back input-ordered and cells round-trip
            // at full precision.
            fab.journalPath = sup.journalPath;
            fab.resume = sup.resume;
            FabricCoordinator coord(fab);
            size_t done = 0;
            coord.setProgressCallback(
                [&](size_t, const JobOutcome &) {
                    ++done;
                    fprintf(stderr, "\r%zu/%zu cells", done,
                            specs.size());
                });
            auto outcomes = coord.run(specs);
            fprintf(stderr, "\n");
            size_t replayed = 0;
            for (const auto &oc : outcomes)
                replayed += oc.fromJournal;
            if (sup.resume) {
                fprintf(stderr,
                        "replayed %zu/%zu jobs from journal\n",
                        replayed, outcomes.size());
            }
            for (const auto &rep : coord.nodeReports()) {
                fprintf(stderr,
                        "node %s: %llu job(s), %llu transport "
                        "failure(s), %llu lease expiry(ies)%s\n",
                        rep.name.c_str(),
                        (unsigned long long)rep.jobsCompleted,
                        (unsigned long long)rep.transportFailures,
                        (unsigned long long)rep.leaseExpiries,
                        rep.dead ? ", retired" : "");
            }
            std::vector<SweepCell> cells(outcomes.size());
            for (size_t i = 0; i < outcomes.size(); ++i) {
                cells[i].ok = outcomes[i].ok();
                if (cells[i].ok)
                    cells[i].result = std::move(outcomes[i].result);
            }
            size_t bad = printSweepReport(cfg.core, specs, mixes, cells,
                                          ref, dump_json);
            if (bad) {
                fprintf(stderr, "%s",
                        SweepSupervisor::failureSummary(outcomes)
                            .c_str());
                fprintf(stderr,
                        "sweep finished with %zu/%zu jobs "
                        "quarantined\n", bad, outcomes.size());
                return 1;
            }
            return 0;
        }

        SweepSupervisor supervisor(sup);
        auto outcomes = supervisor.run(specs);

        // Job count goes to stderr: stdout must be byte-identical
        // for any --jobs value.
        fprintf(stderr, "%u jobs\n", defaultJobs());
        if (sup.resume) {
            size_t replayed = 0;
            for (const auto &oc : outcomes)
                replayed += oc.fromJournal;
            fprintf(stderr, "replayed %zu/%zu jobs from journal\n",
                    replayed, outcomes.size());
        }
        std::vector<SweepCell> cells(outcomes.size());
        for (size_t i = 0; i < outcomes.size(); ++i) {
            cells[i].ok = outcomes[i].ok();
            if (cells[i].ok)
                cells[i].result = std::move(outcomes[i].result);
        }
        size_t bad = printSweepReport(cfg.core, specs, mixes, cells, ref,
                                      dump_json);
        if (bad) {
            fprintf(stderr, "%s",
                    SweepSupervisor::failureSummary(outcomes)
                        .c_str());
            fprintf(stderr,
                    "sweep finished with %zu/%zu jobs "
                    "quarantined\n", bad, outcomes.size());
            return 1;
        }
        return 0;
    }

    if (!save_prefix.empty()) {
        // Generate exactly what System would and persist it.
        size_t len = (cfg.warmupCycles + cfg.measureCycles) *
            (cfg.core.issueWidth + 1);
        unsigned nthreads =
            static_cast<unsigned>(cfg.benchmarks.size());
        for (unsigned t = 0; t < nthreads; ++t) {
            TraceGenerator gen(spec2006Profile(cfg.benchmarks[t]),
                               cfg.seed * 1000003ULL + t,
                               static_cast<Addr>(t) << 30);
            std::string path =
                save_prefix + std::to_string(t) + ".trace";
            writeTraceFile(gen.generate(len), path);
            printf("wrote %s\n", path.c_str());
        }
    }

    fatal_if(!trace_cells.empty(),
             "--trace-cell overrides sweep cells; add --sweep");

    fatal_if(num_cores > 1 && !record_prefix.empty(),
             "--record captures one core's retirement stream; drop "
             "--cores");

    System sys(cfg);
    std::unique_ptr<TraceCapture> capture;
    if (!record_prefix.empty()) {
        capture = std::make_unique<TraceCapture>(threads);
        std::string cerr_;
        fatal_if(!capture->openFiles(record_prefix, {}, cerr_),
                 "--record: %s", cerr_.c_str());
        sys.core().setRetireTap(capture->observer());
    }
    SystemResult res = sys.run();
    if (capture) {
        std::string cerr_;
        std::vector<std::string> paths;
        fatal_if(!capture->finish(cerr_, &paths), "--record: %s",
                 cerr_.c_str());
        for (const auto &p : paths)
            printf("wrote %s\n", p.c_str());
    }

    if (num_cores > 1) {
        printf("config %s, %u cores x %u threads (%zu active, "
               "alloc %s), %llu measured cycles\n",
               cfg.core.name.c_str(), num_cores, threads,
               cfg.benchmarks.size(), cfg.allocation.c_str(),
               static_cast<unsigned long long>(res.cycles));
    } else {
        printf("config %s, %u threads, %llu measured cycles\n",
               cfg.core.name.c_str(), threads,
               static_cast<unsigned long long>(res.cycles));
    }
    printf("IPC %.3f  in-seq %.1f%%  shelf-steer %.1f%%",
           res.totalIpc, res.inSeqFrac * 100,
           res.shelfSteerFrac * 100);
    if (shadow)
        printf("  missteer %.1f%%", res.missteerFrac * 100);
    printf("\n");
    for (const auto &t : res.threads) {
        if (num_cores > 1) {
            printf("  %-12s core %u  ipc %.3f insts %llu "
                   "in-seq %.1f%%\n",
                   t.benchmark.c_str(), t.core, t.ipc,
                   static_cast<unsigned long long>(t.instructions),
                   t.inSeqFrac * 100);
        } else {
            printf("  %-12s ipc %.3f insts %llu in-seq %.1f%%\n",
                   t.benchmark.c_str(), t.ipc,
                   static_cast<unsigned long long>(t.instructions),
                   t.inSeqFrac * 100);
        }
    }
    printf("energy/inst %.1f pJ, EDP %.1f, power %.2f W\n",
           res.energy.energyPerInstPJ, res.energy.edp,
           res.energy.avgPowerW);

    if (dump_stats) {
        printf("\n==== statistics ====\n%s",
               sys.statsReport().c_str());
    }
    if (dump_json)
        printf("%s\n", res.toJson().c_str());
    return 0;
}
