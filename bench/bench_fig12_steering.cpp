/**
 * @file
 * Figure 12: performance impact of practical steering relative to
 * the greedy oracle, plus the mis-steering rate (the paper reports
 * ~16% of instructions steered differently from the oracle, with
 * SMT hiding most of the resulting stalls).
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    CoreParams practical = shelfCore(4, true,
                                     SteerPolicyKind::Practical);
    practical.name = "shelf-practical";
    practical.shadowOracle = true; // count disagreements vs oracle
    CoreParams oracle = shelfCore(4, true, SteerPolicyKind::Oracle);
    oracle.name = "shelf-oracle";

    std::vector<CoreParams> configs = { baseCore64(4), practical,
                                        oracle };

    printf("=== Figure 12: practical vs oracle steering "
           "(STP improvement over Base64) ===\n\n");
    auto evals = evalMixes(configs, ctl);
    auto [lo, med, hi] = minMedianMax(evals, "shelf-practical",
                                      "base64");

    TextTable t({ "mix", "practical", "oracle", "missteer" });
    auto add_mix = [&](const char *label, size_t idx) {
        const MixEval &ev = evals[idx];
        double base = ev.stp.at("base64");
        t.addRow({ csprintf("%s (%s)", label,
                            ev.mix.name().c_str()),
                   TextTable::pct(ev.stp.at("shelf-practical") /
                                  base - 1),
                   TextTable::pct(ev.stp.at("shelf-oracle") / base -
                                  1),
                   TextTable::pct(ev.results.at("shelf-practical")
                                      .missteerFrac) });
    };
    add_mix("min", lo);
    add_mix("median", med);
    add_mix("max", hi);

    std::vector<double> missteers;
    for (const auto &ev : evals)
        missteers.push_back(
            ev.results.at("shelf-practical").missteerFrac);
    t.addRow({ "geomean / mean",
               TextTable::pct(geomeanImprovement(
                   evals, "shelf-practical", "base64") - 1),
               TextTable::pct(geomeanImprovement(
                   evals, "shelf-oracle", "base64") - 1),
               TextTable::pct(mean(missteers)) });
    printf("%s\n", t.render().c_str());

    printf("Paper: ~16%% of instructions steered differently from "
           "the oracle, yet SMT hides most stalls, so practical "
           "steering stays close to oracle performance.\n");
    return 0;
}
