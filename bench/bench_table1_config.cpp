/**
 * @file
 * Table I: the system configuration, printed from the live
 * parameter structures so the table always reflects what the
 * simulator actually models.
 */

#include <cstdio>

#include "base/strutil.hh"
#include "base/table.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"

using namespace shelf;

int
main()
{
    CoreParams base = baseCore64(4);
    CoreParams big = baseCore128(4);
    CoreParams sh = shelfCore(4, false);
    HierarchyParams mem;

    printf("=== Table I: system configuration ===\n\n");
    TextTable t({ "Component", "Configuration" });
    t.addRow({ "Core", csprintf("%u-thread SMT OOO @ 2.0 GHz",
                                base.threads) });
    t.addRow({ "", csprintf("%u-wide OOO with %u-wide fetch",
                            base.issueWidth, base.fetchWidth) });
    t.addRow({ "", csprintf("%u cycles fetch-to-dispatch",
                            base.fetchToDispatch) });
    t.addRow({ "ROB", csprintf("%u or %u", base.robEntries,
                               big.robEntries) });
    t.addRow({ "IQ, LQ, SQ", csprintf("%u or %u", base.iqEntries,
                                      big.iqEntries) });
    t.addRow({ "Shelf", csprintf("%u", sh.shelfEntries) });
    t.addRow({ "Steering",
               csprintf("%u-bit RCT entries, %u-load PLT", sh.rctBits,
                        sh.pltColumns) });
    t.addRow({ "L1I", csprintf("%uKB, %u-way, %u-cycle",
                               mem.l1i.sizeKB, mem.l1i.assoc,
                               mem.l1i.hitLatency) });
    t.addRow({ "L1D", csprintf("%uKB, %u-way, %u-cycle",
                               mem.l1d.sizeKB, mem.l1d.assoc,
                               mem.l1d.hitLatency) });
    t.addRow({ "L2", csprintf("%uMB, %u-way, %u-cycle",
                              mem.l2.sizeKB / 1024, mem.l2.assoc,
                              mem.l2.hitLatency) });
    t.addRow({ "Memory", csprintf("%u cycles (100ns at 2GHz)",
                                  mem.memLatency) });
    printf("%s\n", t.render().c_str());

    printf("Derived: physical registers %u (Base64) / %u (Base128); "
           "extension tags %u (shelf).\n", base.numPhysRegs(),
           big.numPhysRegs(), sh.numExtTags());
    return 0;
}
