/**
 * @file
 * Shared helpers for the per-figure/table bench harnesses: run the
 * 28 standard mixes over a set of core configurations, compute STP
 * against the common single-thread reference, and select the
 * min/median/max mixes the paper highlights.
 */

#ifndef SHELFSIM_BENCH_BENCH_UTIL_HH
#define SHELFSIM_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "metrics/throughput.hh"
#include "sim/experiment.hh"

namespace shelf
{
namespace bench
{

struct MixEval
{
    WorkloadMix mix;
    /** config name -> full result. */
    std::map<std::string, SystemResult> results;
    /** config name -> STP. */
    std::map<std::string, double> stp;
};

/** Run every mix on every configuration, computing STP. */
inline std::vector<MixEval>
evalMixes(const std::vector<CoreParams> &configs,
          const SimControls &ctl, unsigned threads = 4)
{
    auto mixes = standardMixes(threads);
    STReference ref(ctl);
    std::vector<MixEval> evals;
    for (const auto &mix : mixes) {
        MixEval ev;
        ev.mix = mix;
        for (const auto &cfg : configs) {
            SystemResult res = runMix(cfg, mix, ctl);
            ev.stp[cfg.name] = stpOf(res, mix, ref);
            ev.results[cfg.name] = std::move(res);
        }
        evals.push_back(std::move(ev));
        fprintf(stderr, ".");
    }
    fprintf(stderr, "\n");
    return evals;
}

/**
 * Indices of the mixes with minimum, median, and maximum improvement
 * of @p config over @p baseline STP.
 */
inline std::array<size_t, 3>
minMedianMax(const std::vector<MixEval> &evals,
             const std::string &config, const std::string &baseline)
{
    std::vector<size_t> order(evals.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto improvement = [&](size_t i) {
        return evals[i].stp.at(config) / evals[i].stp.at(baseline);
    };
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return improvement(a) < improvement(b);
    });
    return { order.front(), order[order.size() / 2], order.back() };
}

/** Geometric-mean improvement of @p config over @p baseline. */
inline double
geomeanImprovement(const std::vector<MixEval> &evals,
                   const std::string &config,
                   const std::string &baseline)
{
    std::vector<double> ratios;
    for (const auto &ev : evals)
        ratios.push_back(ev.stp.at(config) / ev.stp.at(baseline));
    return geomean(ratios);
}

} // namespace bench
} // namespace shelf

#endif // SHELFSIM_BENCH_BENCH_UTIL_HH
