/**
 * @file
 * Shared helpers for the per-figure/table bench harnesses: run the
 * 28 standard mixes over a set of core configurations in parallel
 * (the sweeps are embarrassingly parallel across (mix, config)
 * pairs; see src/sim/parallel.hh and SHELFSIM_JOBS), compute STP
 * against the common single-thread reference, select the
 * min/median/max mixes the paper highlights, and record wall-clock
 * timing of every sweep in a machine-readable BENCH_sweep.json.
 *
 * Results are input-ordered and bit-identical for any job count:
 * only wall-clock (and the BENCH_sweep.json timing record) changes
 * with SHELFSIM_JOBS.
 */

#ifndef SHELFSIM_BENCH_BENCH_UTIL_HH
#define SHELFSIM_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/json.hh"
#include "metrics/throughput.hh"
#include "sim/experiment.hh"
#include "sim/fabric.hh"
#include "sim/parallel.hh"
#include "sim/supervisor.hh"

namespace shelf
{
namespace bench
{

struct MixEval
{
    WorkloadMix mix;
    /** config name -> full result. */
    std::map<std::string, SystemResult> results;
    /** config name -> STP. */
    std::map<std::string, double> stp;
};

/** One timed sweep, as recorded in BENCH_sweep.json. */
struct SweepRecord
{
    std::string label;
    size_t sims = 0;
    unsigned jobs = 0;
    double wallSeconds = 0;
};

namespace detail
{

struct SweepLog
{
    std::mutex m;
    std::vector<SweepRecord> records;
};

inline SweepLog &
sweepLog()
{
    static SweepLog log;
    return log;
}

/**
 * Sweep records already present in BENCH_sweep.json that no sweep of
 * this process has re-timed. Every bench binary writes the same
 * file, so a plain rewrite from the in-process log would clobber the
 * other harnesses' records; instead the on-disk records are merged
 * in, with in-process records winning on a label collision.
 * Malformed or missing files contribute nothing (first run, or a
 * torn write from a killed process).
 */
inline std::vector<SweepRecord>
readForeignSweepRecords(const std::vector<SweepRecord> &ours)
{
    std::vector<SweepRecord> foreign;
    FILE *f = fopen("BENCH_sweep.json", "r");
    if (!f)
        return foreign;
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    fclose(f);

    JsonValue doc;
    if (!tryParseJson(text, doc))
        return foreign;
    const JsonValue *sweeps = doc.find("sweeps");
    if (!sweeps || !sweeps->isArray())
        return foreign;
    for (const JsonValue &e : sweeps->items) {
        const JsonValue *label = e.find("label");
        if (!label || !label->isString())
            continue;
        bool replaced = false;
        for (const auto &r : ours)
            replaced = replaced || r.label == label->raw;
        if (replaced)
            continue;
        SweepRecord rec;
        rec.label = label->raw;
        if (const JsonValue *v = e.find("sims"))
            rec.sims = static_cast<size_t>(v->asU64());
        if (const JsonValue *v = e.find("jobs"))
            rec.jobs = static_cast<unsigned>(v->asU64());
        if (const JsonValue *v = e.find("wall_s"))
            rec.wallSeconds = v->asDouble();
        foreign.push_back(std::move(rec));
    }
    return foreign;
}

/** Rewrite BENCH_sweep.json: every sweep timed by this process plus
 * the other harnesses' records already on disk. */
inline void
writeSweepJson()
{
    SweepLog &log = sweepLog();
    std::vector<SweepRecord> all =
        readForeignSweepRecords(log.records);
    all.insert(all.end(), log.records.begin(), log.records.end());
    JsonWriter w;
    w.beginObject();
    w.field("jobs_default", static_cast<uint64_t>(defaultJobs()));
    w.beginArray("sweeps");
    for (const auto &r : all) {
        w.beginObject();
        w.field("label", r.label);
        w.field("sims", static_cast<uint64_t>(r.sims));
        w.field("jobs", static_cast<uint64_t>(r.jobs));
        w.field("wall_s", r.wallSeconds);
        w.field("sims_per_s",
                r.wallSeconds > 0 ? r.sims / r.wallSeconds : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (FILE *f = fopen("BENCH_sweep.json", "w")) {
        fputs(w.str().c_str(), f);
        fputc('\n', f);
        fclose(f);
    }
}

/** One (mix, config) simulation as a supervised job spec. */
inline validate::SweepJobSpec
makeSpec(const CoreParams &cfg, const WorkloadMix &mix,
         const SimControls &ctl)
{
    validate::SweepJobSpec spec;
    spec.core = cfg;
    spec.mixBenchmarks = mix.benchmarks;
    spec.warmupCycles = ctl.warmupCycles;
    spec.measureCycles = ctl.measureCycles;
    spec.seed = ctl.seed;
    return spec;
}

/**
 * Run @p specs through the supervised executor configured from the
 * environment (SHELFSIM_ISOLATE / _TIMEOUT / _RETRIES / _JOURNAL /
 * _RESUME), reporting any quarantined jobs on stderr instead of
 * aborting. With a default environment this is exactly runJobs().
 * When SHELFSIM_NODES names a fabric of --serve daemons, the sweep
 * dispatches across them instead (same outcomes, input-ordered;
 * see sim/fabric.hh) — every bench harness becomes multi-node
 * without a code change.
 */
inline std::vector<JobOutcome>
runSupervised(const std::vector<validate::SweepJobSpec> &specs,
              std::function<void(size_t, const JobOutcome &)>
                  progress = nullptr)
{
    std::vector<JobOutcome> outcomes;
    FabricOptions fab = FabricOptions::fromEnv();
    if (!fab.nodes.empty()) {
        FabricCoordinator coord(std::move(fab));
        if (progress)
            coord.setProgressCallback(std::move(progress));
        outcomes = coord.run(specs);
    } else {
        SweepSupervisor supervisor(SupervisorOptions::fromEnv());
        if (progress)
            supervisor.setProgressCallback(std::move(progress));
        outcomes = supervisor.run(specs);
    }
    if (SweepSupervisor::failures(outcomes)) {
        fprintf(stderr, "%s",
                SweepSupervisor::failureSummary(outcomes).c_str());
    }
    return outcomes;
}

} // namespace detail

/**
 * RAII wall-clock timer for one sweep: on destruction, appends its
 * record to the in-process log and rewrites BENCH_sweep.json in the
 * working directory.
 */
class SweepTimer
{
  public:
    SweepTimer(std::string label, size_t sims)
        : rec(), start(std::chrono::steady_clock::now())
    {
        rec.label = std::move(label);
        rec.sims = sims;
        rec.jobs = defaultJobs();
    }

    ~SweepTimer()
    {
        rec.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        detail::SweepLog &log = detail::sweepLog();
        {
            std::lock_guard<std::mutex> lk(log.m);
            log.records.push_back(rec);
        }
        detail::writeSweepJson();
    }

  private:
    SweepRecord rec;
    std::chrono::steady_clock::time_point start;
};

/**
 * Thread-safe "k/N mixes done" progress line on stderr (replaces
 * the old one-dot-per-mix output, which interleaved badly once
 * mixes completed concurrently).
 */
class SweepProgress
{
  public:
    explicit SweepProgress(size_t total_) : total(total_)
    {
        print(0);
    }

    /** Mark one unit done (callable from any worker thread). */
    void
    done()
    {
        size_t k = ++completed;
        print(k);
    }

    ~SweepProgress() { fprintf(stderr, "\n"); }

  private:
    void
    print(size_t k)
    {
        std::lock_guard<std::mutex> lk(m);
        fprintf(stderr, "\r%zu/%zu mixes done", k, total);
        fflush(stderr);
    }

    size_t total;
    std::atomic<size_t> completed{0};
    std::mutex m;
};

/**
 * Run every mix in @p mixes on every configuration, computing STP.
 * (mix, config) simulations fan out across the worker pool; the
 * single-thread references are precomputed (also in parallel) up
 * front. Results are input-ordered and independent of the job
 * count.
 */
inline std::vector<MixEval>
evalMixesOver(const std::vector<CoreParams> &configs,
              const std::vector<WorkloadMix> &mixes,
              const SimControls &ctl,
              const char *label = "mixes")
{
    STReference &ref = sharedReference(ctl);
    ref.precompute(mixes);

    SweepTimer timer(label, mixes.size() * configs.size());
    SweepProgress progress(mixes.size());

    const size_t ncfg = configs.size();
    std::vector<validate::SweepJobSpec> specs;
    for (const auto &mix : mixes)
        for (const auto &cfg : configs)
            specs.push_back(detail::makeSpec(cfg, mix, ctl));

    // A mix counts as done when its last configuration finishes.
    std::vector<std::atomic<unsigned>> left(mixes.size());
    for (auto &l : left)
        l.store(static_cast<unsigned>(ncfg));
    auto outcomes = detail::runSupervised(
        specs, [&](size_t j, const JobOutcome &) {
            if (left[j / ncfg].fetch_sub(1) == 1)
                progress.done();
        });

    std::vector<MixEval> evals(mixes.size());
    for (size_t mi = 0; mi < mixes.size(); ++mi) {
        MixEval &ev = evals[mi];
        ev.mix = mixes[mi];
        for (size_t ci = 0; ci < ncfg; ++ci) {
            JobOutcome &oc = outcomes[mi * ncfg + ci];
            // Quarantined cells stay visible as NaN so downstream
            // tables show the hole instead of silently renumbering.
            ev.stp[configs[ci].name] =
                oc.ok() ? stpOf(oc.result, mixes[mi], ref)
                        : std::nan("");
            ev.results[configs[ci].name] = std::move(oc.result);
        }
    }
    return evals;
}

/** Run every standard mix on every configuration, computing STP. */
inline std::vector<MixEval>
evalMixes(const std::vector<CoreParams> &configs,
          const SimControls &ctl, unsigned threads = 4)
{
    return evalMixesOver(configs, standardMixes(threads), ctl,
                         "standard-mixes");
}

/**
 * STP of @p cfg on each mix of @p mixes (parallel, input-ordered).
 * The workhorse of the ablation/extension sweeps, which evaluate
 * many configurations one at a time.
 */
inline std::vector<double>
stpSweep(const CoreParams &cfg,
         const std::vector<WorkloadMix> &mixes,
         const SimControls &ctl)
{
    STReference &ref = sharedReference(ctl);
    ref.precompute(mixes);
    SweepTimer timer(cfg.name, mixes.size());
    std::vector<validate::SweepJobSpec> specs;
    for (const auto &mix : mixes)
        specs.push_back(detail::makeSpec(cfg, mix, ctl));
    auto outcomes = detail::runSupervised(specs);
    std::vector<double> stps(mixes.size());
    for (size_t i = 0; i < mixes.size(); ++i) {
        stps[i] = outcomes[i].ok()
            ? stpOf(outcomes[i].result, mixes[i], ref)
            : std::nan("");
    }
    return stps;
}

/** Full results of @p cfg on each mix (parallel, input-ordered). */
inline std::vector<SystemResult>
resultSweep(const CoreParams &cfg,
            const std::vector<WorkloadMix> &mixes,
            const SimControls &ctl)
{
    SweepTimer timer(cfg.name, mixes.size());
    std::vector<validate::SweepJobSpec> specs;
    for (const auto &mix : mixes)
        specs.push_back(detail::makeSpec(cfg, mix, ctl));
    auto outcomes = detail::runSupervised(specs);
    std::vector<SystemResult> results(mixes.size());
    for (size_t i = 0; i < mixes.size(); ++i)
        results[i] = std::move(outcomes[i].result);
    return results;
}

/**
 * Indices of the mixes with minimum, median, and maximum improvement
 * of @p config over @p baseline STP.
 */
inline std::array<size_t, 3>
minMedianMax(const std::vector<MixEval> &evals,
             const std::string &config, const std::string &baseline)
{
    std::vector<size_t> order(evals.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto improvement = [&](size_t i) {
        return evals[i].stp.at(config) / evals[i].stp.at(baseline);
    };
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return improvement(a) < improvement(b);
    });
    return { order.front(), order[order.size() / 2], order.back() };
}

/**
 * Geometric mean of a sweep's values with quarantined (NaN) cells
 * skipped and reported on stderr, so a partially quarantined sweep
 * still aggregates while the exclusion stays visible (the strict
 * geomean() would panic on the NaN).
 */
inline double
sweepGeomean(const char *label, const std::vector<double> &values)
{
    FiniteStat st = geomeanFinite(values);
    if (st.excluded) {
        fprintf(stderr,
                "%s: excluded %zu quarantined cell(s) from the "
                "geomean (%zu aggregated)\n",
                label, st.excluded, st.used);
    }
    return st.value;
}

/** Geometric-mean improvement of @p config over @p baseline.
 * Mixes with a quarantined STP on either side are skipped and
 * reported (a NaN ratio would otherwise poison the aggregate). */
inline double
geomeanImprovement(const std::vector<MixEval> &evals,
                   const std::string &config,
                   const std::string &baseline)
{
    std::vector<double> ratios;
    for (const auto &ev : evals)
        ratios.push_back(ev.stp.at(config) / ev.stp.at(baseline));
    return sweepGeomean("improvement", ratios);
}

} // namespace bench
} // namespace shelf

#endif // SHELFSIM_BENCH_BENCH_UTIL_HH
