/**
 * @file
 * Figure 11: per-thread fraction of in-sequence instructions for the
 * mixes with minimum, median, and maximum STP improvement (the same
 * mixes Figure 10 highlights), plus the mean across all mixes.
 * Paper: about half of instructions are in-sequence on average, with
 * considerable imbalance across benchmarks.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    std::vector<CoreParams> configs = {
        baseCore64(4),
        shelfCore(4, true),
    };

    printf("=== Figure 11: per-thread in-sequence fraction "
           "(4-thread mixes, shelf config) ===\n\n");
    auto evals = evalMixes(configs, ctl);
    auto [lo, med, hi] = minMedianMax(evals, "shelf64+64-opt",
                                      "base64");

    TextTable t({ "mix", "thread", "benchmark", "in-sequence" });
    for (auto [label, idx] :
         { std::pair<const char *, size_t>{ "min", lo },
           { "median", med },
           { "max", hi } }) {
        const SystemResult &res =
            evals[idx].results.at("shelf64+64-opt");
        for (size_t th = 0; th < res.threads.size(); ++th) {
            t.addRow({ th == 0 ? label : "",
                       std::to_string(th),
                       res.threads[th].benchmark,
                       TextTable::pct(res.threads[th].inSeqFrac) });
        }
    }
    printf("%s\n", t.render().c_str());

    // Arithmetic mean of per-thread fractions across all mixes.
    std::vector<double> fracs;
    for (const auto &ev : evals)
        for (const auto &th :
             ev.results.at("shelf64+64-opt").threads)
            fracs.push_back(th.inSeqFrac);
    printf("Mean in-sequence fraction across all threads of all "
           "mixes: %.1f%% (paper: about half).\n",
           mean(fracs) * 100);
    return 0;
}
