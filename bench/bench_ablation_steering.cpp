/**
 * @file
 * Ablation: practical-steering structure sizing -- RCT counter width
 * and PLT column count (Table I uses 5 bits and 4 loads) -- plus the
 * degenerate policies (always-IQ / always-shelf) as endpoints.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();
    auto mixes = standardMixes(4);
    std::vector<WorkloadMix> subset(mixes.begin(), mixes.begin() + 8);

    auto avg_stp = [&](const CoreParams &cfg) {
        double v = sweepGeomean(cfg.name.c_str(),
                                stpSweep(cfg, subset, ctl));
        fprintf(stderr, ".");
        return v;
    };

    double base = avg_stp(baseCore64(4));

    printf("=== Ablation: steering structures ===\n\n");

    TextTable rct({ "RCT bits", "STP vs base64" });
    for (unsigned bits : { 3u, 4u, 5u, 8u }) {
        CoreParams p = shelfCore(4, true);
        p.rctBits = bits;
        rct.addRow({ std::to_string(bits),
                     TextTable::pct(avg_stp(p) / base - 1) });
    }
    printf("%s\n", rct.render().c_str());

    TextTable plt({ "PLT columns", "STP vs base64" });
    for (unsigned cols : { 1u, 2u, 4u, 8u }) {
        CoreParams p = shelfCore(4, true);
        p.pltColumns = cols;
        plt.addRow({ std::to_string(cols),
                     TextTable::pct(avg_stp(p) / base - 1) });
    }
    printf("%s\n", plt.render().c_str());

    TextTable pol({ "policy", "STP vs base64" });
    for (auto kind : { SteerPolicyKind::AlwaysShelf,
                       SteerPolicyKind::Practical,
                       SteerPolicyKind::Oracle }) {
        CoreParams p = shelfCore(4, true, kind);
        pol.addRow({ steerPolicyName(kind),
                     TextTable::pct(avg_stp(p) / base - 1) });
    }
    fprintf(stderr, "\n");
    printf("%s\n", pol.render().c_str());
    printf("Paper (Table I) uses 5-bit RCT entries and a 4-load "
           "PLT; always-shelf approximates an in-order core.\n");
    return 0;
}
