/**
 * @file
 * Ablation: shelf capacity sweep (16/32/64/128 entries) and the
 * conservative-vs-optimistic same-cycle-issue assumption, on a
 * subset of the standard mixes. Quantifies the design choices
 * DESIGN.md calls out (the paper evaluates only the 64-entry shelf).
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();
    auto mixes = standardMixes(4);

    printf("=== Ablation: shelf size and same-cycle issue ===\n\n");

    // A subset of mixes keeps the sweep quick; each configuration's
    // mixes simulate in parallel across the worker pool.
    std::vector<WorkloadMix> subset(mixes.begin(), mixes.begin() + 8);

    auto avg_stp = [&](const CoreParams &cfg) {
        double v = sweepGeomean(cfg.name.c_str(),
                                stpSweep(cfg, subset, ctl));
        fprintf(stderr, ".");
        return v;
    };

    double base = avg_stp(baseCore64(4));

    TextTable t({ "shelf entries", "conservative", "optimistic" });
    for (unsigned entries : { 16u, 32u, 64u, 128u }) {
        CoreParams cons = shelfCore(4, false);
        cons.shelfEntries = entries;
        cons.extTags = 0; // auto-size
        CoreParams opt = shelfCore(4, true);
        opt.shelfEntries = entries;
        opt.extTags = 0;
        t.addRow({ std::to_string(entries),
                   TextTable::pct(avg_stp(cons) / base - 1),
                   TextTable::pct(avg_stp(opt) / base - 1) });
    }
    fprintf(stderr, "\n");
    printf("%s\n", t.render().c_str());
    printf("STP improvement over Base64 (8-mix geomean). The paper "
           "evaluates the 64-entry point; returns should diminish "
           "beyond it because in-sequence series are short.\n");
    return 0;
}
