/**
 * @file
 * Figure 10: system-throughput (STP) improvement over the Base64
 * core for the shelf-augmented design under conservative and
 * optimistic assumptions, and for the doubled Base128 core (the
 * theoretical upper bound), on the lowest/median/highest mixes and
 * the geometric mean over all 28 four-thread mixes.
 *
 * Paper headline: +8.6% (cons) / +11.5% (opt) on average, up to
 * +15.1% / +19.2% at best; Base128 roughly doubles the shelf's gain.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    std::vector<CoreParams> configs = {
        baseCore64(4),
        shelfCore(4, false), // conservative
        shelfCore(4, true),  // optimistic
        baseCore128(4),
    };

    printf("=== Figure 10: STP improvement over Base64 "
           "(28 balanced-random 4-thread mixes) ===\n\n");
    auto evals = evalMixes(configs, ctl);

    auto [lo, med, hi] =
        minMedianMax(evals, "shelf64+64-opt", "base64");

    TextTable t({ "mix", "shelf cons", "shelf opt", "base128" });
    auto add_mix = [&](const char *label, size_t idx) {
        const MixEval &ev = evals[idx];
        double base = ev.stp.at("base64");
        t.addRow({ csprintf("%s (%s)", label,
                            ev.mix.name().c_str()),
                   TextTable::pct(ev.stp.at("shelf64+64-cons") /
                                  base - 1),
                   TextTable::pct(ev.stp.at("shelf64+64-opt") /
                                  base - 1),
                   TextTable::pct(ev.stp.at("base128") / base - 1) });
    };
    add_mix("min", lo);
    add_mix("median", med);
    add_mix("max", hi);
    t.addRow({ "geomean (28 mixes)",
               TextTable::pct(geomeanImprovement(
                   evals, "shelf64+64-cons", "base64") - 1),
               TextTable::pct(geomeanImprovement(
                   evals, "shelf64+64-opt", "base64") - 1),
               TextTable::pct(geomeanImprovement(
                   evals, "base128", "base64") - 1) });
    printf("%s\n", t.render().c_str());

    // ANTT (lower is better) as a fairness cross-check: the shelf
    // must not buy STP by starving slow threads. The shared
    // reference cache already holds every single-thread IPC the
    // sweep above precomputed.
    {
        STReference &ref2 = sharedReference(ctl);
        std::vector<double> antt_base, antt_opt;
        for (const auto &ev : evals) {
            WorkloadMix mix = ev.mix;
            antt_base.push_back(
                anttOf(ev.results.at("base64"), mix, ref2));
            antt_opt.push_back(
                anttOf(ev.results.at("shelf64+64-opt"), mix, ref2));
        }
        printf("ANTT (lower = better): base64 %.2f, shelf-opt %.2f "
               "(%+.1f%%)\n\n", mean(antt_base), mean(antt_opt),
               (mean(antt_opt) / mean(antt_base) - 1) * 100);
    }

    printf("Paper: cons +8.6%% avg (+15.1%% max), opt +11.5%% avg "
           "(+19.2%% max); the shelf captures about half of the "
           "doubled core's improvement.\n");

    double opt = geomeanImprovement(evals, "shelf64+64-opt",
                                    "base64") - 1;
    double big = geomeanImprovement(evals, "base128", "base64") - 1;
    printf("Measured: opt %+.1f%%, Base128 %+.1f%% -> shelf captures "
           "%.0f%% of the doubled core's gain.\n", opt * 100,
           big * 100, big > 0 ? 100.0 * opt / big : 0.0);
    return 0;
}
