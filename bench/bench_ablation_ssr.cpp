/**
 * @file
 * Ablation: the three speculation-shift-register designs the paper
 * discusses in section III-B -- one shared SSR (starvation-prone),
 * the proposed two-register design, and precise per-run registers
 * (which the paper rejects as too costly) -- plus the shelf-entry
 * release policy (at issue with a doubled index space, the paper's
 * design, vs the simple release-at-writeback) and the SMT fetch
 * policy (ICOUNT vs round-robin).
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();
    auto mixes = standardMixes(4);
    std::vector<WorkloadMix> subset(mixes.begin(), mixes.begin() + 8);

    double base = sweepGeomean(
        "base", stpSweep(baseCore64(4), subset, ctl));

    auto improvement = [&](const CoreParams &cfg) {
        double v = sweepGeomean(cfg.name.c_str(),
                                stpSweep(cfg, subset, ctl));
        fprintf(stderr, ".");
        return v / base - 1;
    };

    printf("=== Ablation: SSR design, shelf release policy, fetch "
           "policy ===\n\n");

    TextTable ssr({ "SSR design", "STP vs base64" });
    for (auto design : { SsrDesign::Single, SsrDesign::Two,
                         SsrDesign::PerRun }) {
        CoreParams p = shelfCore(4, true);
        p.ssrDesign = design;
        ssr.addRow({ ssrDesignName(design),
                     TextTable::pct(improvement(p)) });
    }
    printf("%s\n", ssr.render().c_str());
    printf("Paper: the single register suffers starvation; two "
           "registers avoid it; per-run precision costs hardware "
           "for (at most) marginal gains.\n\n");

    TextTable rel({ "shelf entry release", "STP vs base64" });
    {
        CoreParams at_issue = shelfCore(4, true);
        rel.addRow({ "at issue (2x index space)",
                     TextTable::pct(improvement(at_issue)) });
        CoreParams at_wb = shelfCore(4, true);
        at_wb.shelfReleaseAtWriteback = true;
        rel.addRow({ "at writeback (simple)",
                     TextTable::pct(improvement(at_wb)) });
    }
    printf("%s\n", rel.render().c_str());
    printf("Paper: releasing at writeback 'greatly increases shelf "
           "occupancy', motivating the decoupled index space.\n\n");

    TextTable fp({ "fetch policy", "STP vs base64" });
    {
        CoreParams icount = shelfCore(4, true);
        fp.addRow({ "ICOUNT",
                    TextTable::pct(improvement(icount)) });
        CoreParams rr = shelfCore(4, true);
        rr.fetchPolicy = CoreParams::FetchPolicy::RoundRobin;
        fp.addRow({ "round-robin",
                    TextTable::pct(improvement(rr)) });
    }
    fprintf(stderr, "\n");
    printf("%s\n", fp.render().c_str());
    printf("Paper: ICOUNT's flexibility is synergistic with simple "
           "steering (section IV-B).\n");
    return 0;
}
