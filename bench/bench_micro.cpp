/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * trace generation, cache lookups, IQ wakeup scans, shelf FIFO
 * operations, and whole-core cycles. These guard the simulator's
 * own performance (all the figure harnesses run hundreds of
 * simulations).
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &prof = spec2006Profile("gcc");
    uint64_t seed = 1;
    for (auto _ : state) {
        TraceGenerator gen(prof, seed++, 0);
        Trace t = gen.generate(static_cast<size_t>(state.range(0)));
        benchmark::DoNotOptimize(t.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void
BM_CacheLookup(benchmark::State &state)
{
    Cache c({ "bm", 32, 2, 64, 2, 8 });
    Random rng(3);
    for (Addr a = 0; a < 32 * 1024; a += 64)
        c.touch(a);
    Cycle now = 0;
    for (auto _ : state) {
        auto o = c.lookup(rng.below(32 * 1024), false, ++now);
        benchmark::DoNotOptimize(o);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_IqReadyScan(benchmark::State &state)
{
    IssueQueue iq(static_cast<unsigned>(state.range(0)), 512);
    Scoreboard sb(512);
    DynInstPool pool;
    for (long i = 0; i < state.range(0); ++i) {
        auto inst = pool.alloc();
        inst->tid = 0;
        inst->gseq = static_cast<SeqNum>(i);
        inst->srcTag[0] = static_cast<Tag>(i % 256);
        iq.insert(inst, sb);
    }
    for (auto _ : state) {
        auto r = iq.readyInsts(100);
        benchmark::DoNotOptimize(r.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IqReadyScan)->Arg(32)->Arg(64);

void
BM_DynInstAlloc(benchmark::State &state)
{
    // Steady-state churn through the slab free list: the per-fetch
    // allocation cost the slab pool is meant to shrink.
    DynInstPool pool;
    std::vector<DynInstPtr> window(64);
    size_t i = 0;
    for (auto _ : state) {
        window[i & 63] = pool.alloc();
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynInstAlloc);

void
BM_ShelfOps(benchmark::State &state)
{
    Shelf sh(1, 16);
    SeqNum seq = 0;
    VIdx retired = 0;
    for (auto _ : state) {
        if (sh.canDispatch(0)) {
            auto inst = makeDynInst();
            inst->tid = 0;
            inst->seq = ++seq;
            sh.dispatch(0, inst);
        }
        if (sh.size(0) > 4)
            sh.issueHead(0);
        while (retired + 20 < sh.tailIndex(0))
            sh.markRetired(0, retired++);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShelfOps);

void
BM_CoreCycle(benchmark::State &state)
{
    bool with_shelf = state.range(0) != 0;
    CoreParams p = with_shelf ? shelfCore(4, true) : baseCore64(4);
    const char *names[4] = { "gcc", "hmmer", "milc", "povray" };
    std::vector<Trace> traces;
    MemHierarchy mem;
    for (unsigned t = 0; t < 4; ++t) {
        TraceGenerator gen(spec2006Profile(names[t]), 7 + t,
                           static_cast<Addr>(t) << 30);
        traces.push_back(gen.generate(200000));
        for (const auto &inst : traces.back()) {
            mem.warmInst(inst.pc);
            if (inst.isMem())
                mem.warmData(inst.addr);
        }
    }
    std::vector<const Trace *> ptrs;
    for (const auto &tr : traces)
        ptrs.push_back(&tr);
    Core core(p, mem, ptrs);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = core.totalIpc();
}
BENCHMARK(BM_CoreCycle)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
