/**
 * @file
 * Figure 13: energy-delay product of the Base128 and shelf designs
 * relative to Base64 (lower is better). Paper: Base128 improves EDP
 * by 4.9% on average; the shelf improves it by 8.6% (conservative)
 * and 10.9% (optimistic), up to 17.5% at best.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

namespace
{

double
edpImprovement(const bench::MixEval &ev, const std::string &cfg)
{
    double base = ev.results.at("base64").energy.edp;
    double val = ev.results.at(cfg).energy.edp;
    return 1.0 - val / base; // positive = better (lower EDP)
}

} // namespace

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    std::vector<CoreParams> configs = {
        baseCore64(4),
        shelfCore(4, false),
        shelfCore(4, true),
        baseCore128(4),
    };

    printf("=== Figure 13: energy-delay improvement over Base64 "
           "===\n\n");
    auto evals = evalMixes(configs, ctl);
    auto [lo, med, hi] = minMedianMax(evals, "shelf64+64-opt",
                                      "base64");

    TextTable t({ "mix", "shelf cons", "shelf opt", "base128" });
    auto add_mix = [&](const char *label, size_t idx) {
        const MixEval &ev = evals[idx];
        t.addRow({ csprintf("%s (%s)", label,
                            ev.mix.name().c_str()),
                   TextTable::pct(
                       edpImprovement(ev, "shelf64+64-cons")),
                   TextTable::pct(
                       edpImprovement(ev, "shelf64+64-opt")),
                   TextTable::pct(edpImprovement(ev, "base128")) });
    };
    add_mix("min", lo);
    add_mix("median", med);
    add_mix("max", hi);

    auto avg = [&](const std::string &cfg) {
        std::vector<double> ratios;
        for (const auto &ev : evals)
            ratios.push_back(ev.results.at(cfg).energy.edp /
                             ev.results.at("base64").energy.edp);
        return 1.0 - geomean(ratios);
    };
    t.addRow({ "geomean (28 mixes)",
               TextTable::pct(avg("shelf64+64-cons")),
               TextTable::pct(avg("shelf64+64-opt")),
               TextTable::pct(avg("base128")) });
    printf("%s\n", t.render().c_str());

    printf("Paper: Base128 +4.9%%; shelf cons +8.6%%, opt +10.9%% "
           "(up to +17.5%%). The shelf must beat the doubled core "
           "on energy-delay.\n");
    return 0;
}
