/**
 * @file
 * Figure 1: fraction of instructions that issue in-sequence (wasting
 * OOO resources) in a 128-entry OOO instruction window, as the SMT
 * thread count grows from 1 to 8. The paper reports the fraction
 * more than doubling, exceeding 50% on average at 4+ threads.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "workload/spec2006.hh"

using namespace shelf;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    printf("=== Figure 1: fraction of in-sequence instructions "
           "(128-entry OOO window) ===\n\n");

    TextTable table({ "threads", "in-sequence", "per-thread IPC",
                      "total IPC" });

    double one_thread = 0;
    double four_thread = 0;
    for (unsigned threads : { 1u, 2u, 4u, 8u }) {
        auto mixes = standardMixes(threads);
        std::vector<double> fracs, ipcs;
        // Average the in-sequence fraction across the balanced
        // mixes (every benchmark appears equally often); the mixes
        // simulate in parallel across the worker pool.
        size_t num = std::min<size_t>(mixes.size(), 14);
        mixes.resize(num);
        auto results =
            bench::resultSweep(baseCore128(threads), mixes, ctl);
        for (const SystemResult &res : results) {
            fracs.push_back(res.inSeqFrac);
            ipcs.push_back(res.totalIpc);
        }
        double frac = mean(fracs);
        double ipc = mean(ipcs);
        table.addRow({ std::to_string(threads), TextTable::pct(frac),
                       TextTable::num(ipc / threads, 3),
                       TextTable::num(ipc, 3) });
        if (threads == 1)
            one_thread = frac;
        if (threads == 4)
            four_thread = frac;
    }

    printf("%s\n", table.render().c_str());
    printf("Paper: <25%% at 1 thread, >50%% average at 4 threads "
           "(fraction more than doubles).\n");
    printf("Measured: %.1f%% at 1 thread -> %.1f%% at 4 threads "
           "(x%.2f).\n", one_thread * 100, four_thread * 100,
           one_thread > 0 ? four_thread / one_thread : 0.0);
    return 0;
}
