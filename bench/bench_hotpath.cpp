/**
 * @file
 * Hot-path perf-regression microbenchmark: single-core simulation
 * speed (cycles/s) and whole-simulation throughput (sims/s), written
 * to BENCH_core.json. Unlike the figure harnesses this runs the core
 * single-threaded on purpose — it measures the per-cycle loop the
 * slab allocator and the incremental IQ ready list optimise, not the
 * parallel runner.
 *
 * Modes:
 *   bench_hotpath                 measure and write BENCH_core.json
 *   bench_hotpath --check FILE    measure and compare cycles/s per
 *                                 workload against the baseline FILE;
 *                                 exit 1 on a >threshold regression
 *                                 or on any behavioural divergence
 *                                 (retired-instruction counts are
 *                                 cycle-exact and machine-independent)
 *   bench_hotpath --threshold X   override every per-workload
 *                                 threshold with one global fraction
 *
 * Each workload carries its own regression threshold (emitted as
 * "min_ratio" in the JSON and read back from the baseline), so a
 * shelf-path slowdown fails the check independently of the base64
 * workloads and of the (noisier) end-to-end sims/s record.
 *
 * Each workload is measured `kRepeats` times and the fastest run is
 * reported, which filters scheduler noise far better than averaging.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"
#include "sim/experiment.hh"
#include "sim/supervisor.hh"
#include "workload/generator.hh"
#include "workload/mix.hh"
#include "workload/spec2006.hh"

using namespace shelf;

namespace
{

constexpr unsigned kRepeats = 3;
constexpr Cycle kMeasureCycles = 300000;
constexpr size_t kTraceLen = 200000;

/** Per-workload regression thresholds: minimum acceptable fraction
 * of the baseline rate. The shelf workloads are the paths this
 * benchmark exists to protect and get the tightest margin; the
 * end-to-end sims/s record spans process setup and is the noisiest. */
double
minRatioFor(const std::string &name)
{
    if (name == "sims")
        return 0.5;
    if (name.rfind("shelf-opt", 0) == 0)
        return 0.75;
    return 0.7;
}

struct WorkloadResult
{
    std::string name;
    Cycle cycles = 0;
    uint64_t retired = 0; ///< cycle-exact behavioural fingerprint
    double wallSeconds = 0;
    double cyclesPerSec = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Build warmed traces + memory for a fixed benchmark set. */
struct Workload
{
    std::vector<Trace> traces;
    MemHierarchy mem;
    std::vector<const Trace *> ptrs;

    explicit Workload(const std::vector<const char *> &names)
    {
        for (size_t t = 0; t < names.size(); ++t) {
            TraceGenerator gen(spec2006Profile(names[t]),
                               7 + static_cast<uint64_t>(t),
                               static_cast<Addr>(t) << 30);
            traces.push_back(gen.generate(kTraceLen));
            for (const auto &inst : traces.back()) {
                mem.warmInst(inst.pc);
                if (inst.isMem())
                    mem.warmData(inst.addr);
            }
        }
        for (const auto &tr : traces)
            ptrs.push_back(&tr);
    }
};

WorkloadResult
measureCore(const std::string &name, const CoreParams &params,
            Workload &wl)
{
    WorkloadResult res;
    res.name = name;
    res.cycles = kMeasureCycles;
    double best = 0;
    for (unsigned rep = 0; rep < kRepeats; ++rep) {
        Core core(params, wl.mem, wl.ptrs);
        auto t0 = std::chrono::steady_clock::now();
        core.run(kMeasureCycles);
        double wall = secondsSince(t0);
        uint64_t retired = core.coreStatistics().retiredAll;
        if (rep == 0)
            res.retired = retired;
        else
            fatal_if(retired != res.retired,
                     "%s: nondeterministic retired count (%llu vs "
                     "%llu)", name.c_str(),
                     (unsigned long long)retired,
                     (unsigned long long)res.retired);
        if (best == 0 || wall < best)
            best = wall;
        // A fresh hierarchy per repeat keeps cache state identical.
        wl.mem = MemHierarchy();
        for (const auto &tr : wl.traces) {
            for (const auto &inst : tr) {
                wl.mem.warmInst(inst.pc);
                if (inst.isMem())
                    wl.mem.warmData(inst.addr);
            }
        }
    }
    res.wallSeconds = best;
    res.cyclesPerSec = best > 0 ? kMeasureCycles / best : 0;
    return res;
}

/** End-to-end sims/s: sequential short full simulations (worker
 * guards off, single job) — the unit of sweep throughput. */
WorkloadResult
measureSims()
{
    WorkloadResult res;
    res.name = "sims";
    const unsigned kSims = 8;
    SimControls ctl;
    ctl.warmupCycles = 2000;
    ctl.measureCycles = 8000;
    auto mixes = standardMixes(4);
    double best = 0;
    for (unsigned rep = 0; rep < kRepeats; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        uint64_t retired = 0;
        for (unsigned s = 0; s < kSims; ++s) {
            SystemResult r =
                runMix(shelfCore(4, true), mixes[s % mixes.size()],
                       ctl);
            for (const auto &tr : r.threads)
                retired += tr.instructions;
        }
        double wall = secondsSince(t0);
        if (rep == 0)
            res.retired = retired;
        else
            fatal_if(retired != res.retired,
                     "sims: nondeterministic retired count");
        if (best == 0 || wall < best)
            best = wall;
    }
    res.cycles = kSims; // count, not cycles, for this record
    res.wallSeconds = best;
    res.cyclesPerSec = best > 0 ? kSims / best : 0; // sims/s
    return res;
}

void
writeJson(const std::vector<WorkloadResult> &results)
{
    JsonWriter w;
    w.beginObject();
    w.field("measure_cycles", static_cast<uint64_t>(kMeasureCycles));
    w.beginArray("workloads");
    for (const auto &r : results) {
        w.beginObject();
        w.field("name", r.name);
        w.field("retired", r.retired);
        w.field("wall_s", r.wallSeconds);
        w.field(r.name == "sims" ? "sims_per_s" : "cycles_per_s",
                r.cyclesPerSec);
        w.field("min_ratio", minRatioFor(r.name));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    if (FILE *f = fopen("BENCH_core.json", "w")) {
        fputs(w.str().c_str(), f);
        fputc('\n', f);
        fclose(f);
    }
}

int
check(const std::vector<WorkloadResult> &results,
      const std::string &baseline_path, double threshold)
{
    std::ifstream in(baseline_path);
    if (!in) {
        fprintf(stderr, "bench_hotpath: cannot open baseline %s\n",
                baseline_path.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue doc = parseJson(ss.str());
    const JsonValue *wls = doc.find("workloads");
    if (!wls || !wls->isArray()) {
        fprintf(stderr, "bench_hotpath: malformed baseline\n");
        return 1;
    }
    int rc = 0;
    for (const auto &r : results) {
        const JsonValue *base = nullptr;
        for (const auto &item : wls->items) {
            const JsonValue *n = item.find("name");
            if (n && n->isString() && n->raw == r.name) {
                base = &item;
                break;
            }
        }
        if (!base) {
            fprintf(stderr, "  %-14s no baseline entry, skipped\n",
                    r.name.c_str());
            continue;
        }
        const char *rate_key =
            r.name == "sims" ? "sims_per_s" : "cycles_per_s";
        const JsonValue *rate = base->find(rate_key);
        const JsonValue *retired = base->find("retired");
        double base_rate = rate ? rate->asDouble() : 0;
        double ratio = base_rate > 0 ? r.cyclesPerSec / base_rate : 1;
        // Per-workload threshold: --threshold override, else the
        // baseline's own min_ratio, else this binary's defaults
        // (covers baselines written before min_ratio existed).
        double thr = threshold;
        if (thr <= 0) {
            const JsonValue *mr = base->find("min_ratio");
            thr = mr ? mr->asDouble() : minRatioFor(r.name);
        }
        bool rate_ok = ratio >= thr;
        // Behaviour is machine-independent: any retired-count drift
        // is a correctness bug, not noise.
        bool behave_ok =
            !retired || retired->asU64() == r.retired;
        fprintf(stderr,
                "  %-14s %12.0f /s vs baseline %12.0f (%.2fx) %s\n",
                r.name.c_str(), r.cyclesPerSec, base_rate, ratio,
                rate_ok && behave_ok ? "ok"
                : !behave_ok         ? "BEHAVIOUR DIVERGED"
                                     : "REGRESSED");
        if (!rate_ok || !behave_ok)
            rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    // The supervisor re-execs sweep binaries with --worker; this
    // bench never fans out, but keep the guard for uniformity.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    std::string baseline;
    double threshold = 0; // 0: use per-workload min_ratio
    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--check") && i + 1 < argc) {
            baseline = argv[++i];
        } else if (!strcmp(argv[i], "--threshold") && i + 1 < argc) {
            fatal_if(!tryParseDouble(argv[++i], threshold),
                     "--threshold: not a number: %s", argv[i]);
        } else {
            fprintf(stderr, "usage: bench_hotpath [--check FILE] "
                            "[--threshold X]\n");
            return 2;
        }
    }

    std::vector<WorkloadResult> results;

    {
        Workload single({ "gcc" });
        results.push_back(
            measureCore("base64-1t", baseCore64(1), single));
        results.push_back(
            measureCore("shelf-opt-1t", shelfCore(1, true), single));
    }
    {
        Workload quad({ "gcc", "hmmer", "milc", "povray" });
        results.push_back(
            measureCore("base64-4t", baseCore64(4), quad));
        results.push_back(
            measureCore("shelf-opt-4t", shelfCore(4, true), quad));
    }
    {
        // Full-width SMT with memory-bound company (mcf, omnetpp,
        // lbm): maximum pressure on the shelf steering structures
        // and the quiescent-span machinery during MSHR pile-ups.
        Workload oct({ "gcc", "hmmer", "milc", "povray", "mcf",
                       "omnetpp", "sjeng", "lbm" });
        results.push_back(
            measureCore("shelf-opt-8t", shelfCore(8, true), oct));
    }
    results.push_back(measureSims());

    for (const auto &r : results) {
        fprintf(stderr, "%-14s %12.0f %s (retired %llu)\n",
                r.name.c_str(), r.cyclesPerSec,
                r.name == "sims" ? "sims/s" : "cycles/s",
                (unsigned long long)r.retired);
    }

    writeJson(results);

    if (!baseline.empty())
        return check(results, baseline, threshold);
    return 0;
}
