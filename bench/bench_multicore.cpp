/**
 * @file
 * Multi-core extension sweep: thread-to-core allocation policies
 * (sim/allocation.hh, after Navarro et al.'s ILP/MLP-aware family)
 * compared across small multi-core SMT systems — 2 and 4 cores of
 * 4-thread cores and 2 cores of 8-thread cores — with the shelf off
 * (base64 cores) and on (shelf64+64-opt cores).
 *
 * Per (shape, core config, policy): geomean STP and mean ANTT over
 * a slice of the standard balanced-random mixes, one global thread
 * per hardware context. Every (mix, config, policy) cell is one
 * supervised sweep job, so SHELFSIM_JOBS / _ISOLATE / _NODES apply,
 * and every sweep's wall-clock lands in BENCH_sweep.json.
 */

#include <cstdio>
#include <vector>

#include "base/strutil.hh"
#include "base/table.hh"
#include "bench_util.hh"
#include "sim/allocation.hh"

using namespace shelf;
using namespace shelf::bench;

namespace
{

struct Shape
{
    unsigned cores;
    unsigned threads; ///< SMT width per core
};

/** Mixes per (shape, config, policy) cell: enough to average over
 * without turning the harness into a marathon at 16 threads. */
constexpr size_t kMixes = 8;

} // namespace

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    const std::vector<Shape> shapes = {
        { 2, 4 }, { 4, 4 }, { 2, 8 },
    };
    const auto &policies = allocationPolicyNames();

    printf("=== Multi-core extension: allocation policies x shelf "
           "(%zu standard mixes per cell) ===\n\n", kMixes);

    TextTable t({ "system", "policy", "base64 STP", "shelf-opt STP",
                  "shelf gain", "shelf-opt ANTT" });

    for (const Shape &shape : shapes) {
        unsigned total = shape.cores * shape.threads;
        auto mixes = standardMixes(total);
        mixes.resize(kMixes);
        STReference &ref = sharedReference(ctl);
        ref.precompute(mixes);

        std::vector<CoreParams> configs = {
            baseCore64(shape.threads),
            shelfCore(shape.threads, true),
        };
        for (const std::string &policy : policies) {
            std::vector<double> stpGeo(configs.size());
            std::vector<double> anttMean(configs.size());
            for (size_t ci = 0; ci < configs.size(); ++ci) {
                const CoreParams &core = configs[ci];
                std::string label = csprintf(
                    "multicore-%ux%u-%s-%s", shape.cores,
                    shape.threads, core.name.c_str(),
                    policy.c_str());
                SweepTimer timer(label, mixes.size());
                std::vector<validate::SweepJobSpec> specs;
                for (const auto &mix : mixes) {
                    validate::SweepJobSpec spec;
                    spec.core = core;
                    spec.mixBenchmarks = mix.benchmarks;
                    spec.warmupCycles = ctl.warmupCycles;
                    spec.measureCycles = ctl.measureCycles;
                    spec.seed = ctl.seed;
                    spec.numCores = shape.cores;
                    spec.allocation = policy;
                    specs.push_back(std::move(spec));
                }
                auto outcomes = detail::runSupervised(specs);
                std::vector<double> stps, antts;
                for (size_t i = 0; i < outcomes.size(); ++i) {
                    if (!outcomes[i].ok()) {
                        stps.push_back(std::nan(""));
                        antts.push_back(std::nan(""));
                        continue;
                    }
                    stps.push_back(
                        stpOf(outcomes[i].result, mixes[i], ref));
                    antts.push_back(
                        anttOf(outcomes[i].result, mixes[i], ref));
                }
                stpGeo[ci] =
                    sweepGeomean(label.c_str(), stps);
                anttMean[ci] = meanFinite(antts).value;
            }
            t.addRow({ csprintf("%ux %u-thread", shape.cores,
                                shape.threads),
                       policy,
                       csprintf("%.3f", stpGeo[0]),
                       csprintf("%.3f", stpGeo[1]),
                       TextTable::pct(stpGeo[1] / stpGeo[0] - 1),
                       csprintf("%.2f", anttMean[1]) });
        }
    }
    printf("%s", t.render().c_str());
    printf("\nSTP upper bound is the total thread count; the shelf "
           "column pair isolates the window gain at identical "
           "placement. See EXPERIMENTS.md, 'Multi-core allocation "
           "policies'.\n");
    return 0;
}
