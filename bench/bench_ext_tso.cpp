/**
 * @file
 * Extension experiment: the shelf under TSO-like consistency.
 *
 * Section III-D argues that stricter models hurt the shelf: every
 * shelf instruction behind an incomplete elder load must delay its
 * writeback (an uncertain interval, e.g. the duration of a cache
 * miss), and shelf stores must allocate store queue entries. The
 * paper scopes the evaluation to the relaxed model; this harness
 * quantifies the TSO cost to test that argument.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();
    auto mixes = standardMixes(4);
    std::vector<WorkloadMix> subset(mixes.begin(), mixes.begin() + 8);

    STReference &ref = sharedReference(ctl);
    ref.precompute(subset);

    auto avg = [&](const CoreParams &cfg, double &shelf_frac) {
        auto results = resultSweep(cfg, subset, ctl);
        std::vector<double> stps;
        shelf_frac = 0;
        for (size_t i = 0; i < results.size(); ++i) {
            stps.push_back(stpOf(results[i], subset[i], ref));
            shelf_frac += results[i].shelfSteerFrac / subset.size();
        }
        fprintf(stderr, ".");
        return geomean(stps);
    };

    printf("=== Extension: the shelf under TSO-like consistency "
           "===\n\n");

    double sf;
    double base = avg(baseCore64(4), sf);

    TextTable t({ "memory model", "STP vs base64", "shelf-steer" });
    {
        CoreParams relaxed = shelfCore(4, true);
        double frac;
        double v = avg(relaxed, frac);
        t.addRow({ "relaxed (paper's)",
                   TextTable::pct(v / base - 1),
                   TextTable::pct(frac) });
    }
    {
        CoreParams tso = shelfCore(4, true);
        tso.memModel = CoreParams::MemModel::TSO;
        double frac;
        double v = avg(tso, frac);
        t.addRow({ "TSO", TextTable::pct(v / base - 1),
                   TextTable::pct(frac) });
    }
    fprintf(stderr, "\n");
    printf("%s\n", t.render().c_str());
    printf("Expected: the shelf's gain shrinks under TSO (deferred "
           "shelf writebacks behind incomplete loads + SQ pressure "
           "from shelf stores), supporting the paper's decision to "
           "evaluate under the relaxed model and to suggest "
           "miss-aware steering for strong models.\n");
    return 0;
}
