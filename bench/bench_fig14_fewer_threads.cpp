/**
 * @file
 * Figure 14: opportunity with fewer threads. The shelf offers no
 * improvement single-threaded and a modest one at two threads, but
 * crucially must not hurt performance or energy-delay when the SMT
 * core runs fewer threads.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "workload/spec2006.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();

    printf("=== Figure 14: STP and EDP with fewer threads ===\n\n");
    TextTable t({ "threads", "config", "STP vs base", "EDP vs base",
                  "in-seq" });

    for (unsigned threads : { 1u, 2u }) {
        std::vector<CoreParams> configs = { baseCore64(threads),
                                            shelfCore(threads,
                                                      true) };
        auto evals = evalMixes(configs, ctl, threads);

        double stp_ratio = geomeanImprovement(
            evals, "shelf64+64-opt", "base64");
        std::vector<double> edp_ratios, fracs;
        for (const auto &ev : evals) {
            edp_ratios.push_back(
                ev.results.at("shelf64+64-opt").energy.edp /
                ev.results.at("base64").energy.edp);
            fracs.push_back(
                ev.results.at("shelf64+64-opt").inSeqFrac);
        }
        t.addRow({ std::to_string(threads), "shelf 64+64 (opt)",
                   TextTable::pct(stp_ratio - 1),
                   TextTable::pct(1 - geomean(edp_ratios)),
                   TextTable::pct(mean(fracs)) });
    }
    printf("%s\n", t.render().c_str());

    printf("Paper: no opportunity at 1 thread but no harm; a modest "
           "win at 2 threads. (The shelf can also be disabled by "
           "steering everything to the IQ.)\n");
    return 0;
}
