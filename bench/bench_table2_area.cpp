/**
 * @file
 * Table II: core area increase over Base64 of the shelf-augmented
 * design (64+64) and the doubled Base128 design, with and without
 * L1 caches. Paper: shelf +3.1% / +2.1%; Base128 +9.7% / +6.6%.
 */

#include <cstdio>

#include "base/table.hh"
#include "energy/energy_model.hh"

using namespace shelf;

int
main()
{
    HierarchyParams mem;
    EnergyModel base64(baseCore64(4), mem);
    EnergyModel shelf(shelfCore(4, false), mem);
    EnergyModel base128(baseCore128(4), mem);

    printf("=== Table II: area increase over Base64 ===\n\n");
    TextTable t({ "L1 caches", "Base+Shelf 64+64", "Base 128" });
    for (bool l1 : { false, true }) {
        double a64 = base64.coreArea(l1);
        t.addRow({ l1 ? "yes" : "no",
                   TextTable::pct(shelf.coreArea(l1) / a64 - 1),
                   TextTable::pct(base128.coreArea(l1) / a64 - 1) });
    }
    printf("%s\n", t.render().c_str());
    printf("Paper: no-L1 row 3.1%% vs 9.7%%; with-L1 row 2.1%% vs "
           "6.6%%.\n\n");

    printf("Per-structure breakdown (area units):\n");
    TextTable bt({ "structure", "base64", "shelf64+64", "base128" });
    auto b64 = base64.areaBreakdown();
    auto bsh = shelf.areaBreakdown();
    auto b128 = base128.areaBreakdown();
    auto find = [](const auto &v, const std::string &name) {
        for (const auto &[n, a] : v)
            if (n == name)
                return a;
        return 0.0;
    };
    std::vector<std::string> names;
    for (const auto &[n, a] : bsh)
        names.push_back(n);
    for (const auto &n : names) {
        bt.addRow({ n, TextTable::num(find(b64, n), 3),
                    TextTable::num(find(bsh, n), 3),
                    TextTable::num(find(b128, n), 3) });
    }
    printf("%s", bt.render().c_str());
    return 0;
}
