/**
 * @file
 * Figure 2: weighted cumulative distribution of consecutive
 * in-sequence and reordered series lengths for single-threaded
 * execution in a 128-entry window. The paper reports 99% of
 * in-sequence instructions in series of <= 30 instructions, while
 * reordered series stretch to the ROB size, and mean series lengths
 * of roughly 5-20 instructions.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "workload/spec2006.hh"

using namespace shelf;

int
main()
{
    SimControls ctl = SimControls::fromEnv();

    printf("=== Figure 2: weighted CDF of consecutive series "
           "lengths (single thread, 128-entry window) ===\n\n");

    const std::vector<uint64_t> lengths = { 1, 2, 3, 5, 8, 10, 15,
                                            20, 30, 50, 100, 128 };

    struct BenchCdfs
    {
        std::vector<double> inSeq;
        std::vector<double> reordered;
        double inSeqMean;
        double reorderedMean;
    };
    std::vector<BenchCdfs> all;

    // One single-threaded run per benchmark, in parallel.
    const auto &profiles = spec2006Profiles();
    {
        bench::SweepTimer timer("fig02-single-thread",
                                profiles.size());
        bench::SweepProgress progress(profiles.size());
        all = parallelMap(profiles.size(), [&](size_t p) {
            SystemResult res =
                runSingle(baseCore128(4), profiles[p].name, ctl);
            BenchCdfs c;
            for (uint64_t len : lengths) {
                c.inSeq.push_back(res.inSeqSeries().cdf(len));
                c.reordered.push_back(
                    res.reorderedSeries().cdf(len));
            }
            c.inSeqMean = res.inSeqSeries().mean();
            c.reorderedMean = res.reorderedSeries().mean();
            progress.done();
            return c;
        });
    }

    TextTable table({ "series len", "in-seq geomean", "in-seq min",
                      "in-seq max", "reord geomean", "reord min",
                      "reord max" });
    for (size_t li = 0; li < lengths.size(); ++li) {
        auto stats_of = [&](bool in_seq) {
            std::vector<double> vals;
            double lo = 1.0, hi = 0.0;
            for (const auto &c : all) {
                double v = in_seq ? c.inSeq[li] : c.reordered[li];
                lo = std::min(lo, v);
                hi = std::max(hi, v);
                vals.push_back(std::max(v, 1e-4));
            }
            return std::tuple<double, double, double>(geomean(vals),
                                                      lo, hi);
        };
        auto [ig, il, ih] = stats_of(true);
        auto [rg, rl, rh] = stats_of(false);
        table.addRow({ std::to_string(lengths[li]),
                       TextTable::pct(ig), TextTable::pct(il),
                       TextTable::pct(ih), TextTable::pct(rg),
                       TextTable::pct(rl), TextTable::pct(rh) });
    }
    printf("%s\n", table.render().c_str());

    std::vector<double> is_means, re_means;
    for (const auto &c : all) {
        if (c.inSeqMean > 0)
            is_means.push_back(c.inSeqMean);
        if (c.reorderedMean > 0)
            re_means.push_back(c.reorderedMean);
    }
    printf("Mean series lengths: in-sequence %.1f, reordered %.1f "
           "(paper: groups average 5-20 instructions).\n",
           mean(is_means), mean(re_means));
    printf("Paper: 99%% of in-sequence weight in series <= 30; "
           "reordered series bounded by the ROB (128).\n");
    return 0;
}
