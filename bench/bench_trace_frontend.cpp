/**
 * @file
 * google-benchmark microbenchmarks of the SHLFTRC2 trace frontend:
 * chunked writer and streaming reader throughput (compressed and
 * raw), skip-and-resync decode over a damaged stream, content
 * hashing, and the SimpleO3 text importer. These guard the
 * ingestion path's cost — trace-backed sweep cells pay it once per
 * job, and the checksumming must stay cheap relative to simulation.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "workload/spec2006.hh"
#include "workload/trace_import.hh"
#include "workload/trace_io.hh"

using namespace shelf;

namespace
{

Trace
benchTrace(size_t n)
{
    static Trace cached;
    if (cached.size() < n) {
        cached = TraceGenerator(spec2006Profile("gcc"), 11, 0)
            .generate(n);
    }
    return Trace(cached.begin(), cached.begin() + n);
}

void
BM_TraceWrite(benchmark::State &state)
{
    Trace t = benchTrace(static_cast<size_t>(state.range(0)));
    TraceWriteOptions wo;
    wo.compress = state.range(1) != 0;
    std::string err;
    for (auto _ : state) {
        std::ostringstream os;
        bool ok = writeTrace2(t, os, wo, &err);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceWrite)
    ->Args({ 10000, 0 })
    ->Args({ 10000, 1 })
    ->Args({ 100000, 1 });

void
BM_TraceRead(benchmark::State &state)
{
    Trace t = benchTrace(static_cast<size_t>(state.range(0)));
    TraceWriteOptions wo;
    wo.compress = state.range(1) != 0;
    std::ostringstream os;
    std::string err;
    if (!writeTrace2(t, os, wo, &err))
        state.SkipWithError(err.c_str());
    std::string bytes = os.str();
    for (auto _ : state) {
        std::istringstream is(bytes);
        Trace back;
        bool ok = tryReadTrace(is, back, {}, nullptr, nullptr);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(back.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_TraceRead)
    ->Args({ 10000, 0 })
    ->Args({ 10000, 1 })
    ->Args({ 100000, 1 });

void
BM_TraceReadSkipCorrupt(benchmark::State &state)
{
    // One damaged chunk mid-stream: the reader must pay the resync
    // scan but still stream the healthy remainder at full speed.
    Trace t = benchTrace(static_cast<size_t>(state.range(0)));
    std::ostringstream os;
    std::string err;
    if (!writeTrace2(t, os, {}, &err))
        state.SkipWithError(err.c_str());
    std::string bytes = os.str();
    bytes[bytes.size() / 2] ^= 0x20;
    TraceReadOptions ro;
    ro.skipCorrupt = true;
    for (auto _ : state) {
        std::istringstream is(bytes);
        Trace back;
        TraceReadStats stats;
        bool ok = tryReadTrace(is, back, ro, nullptr, nullptr,
                               &stats);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(stats.corruptChunks);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceReadSkipCorrupt)->Arg(100000);

void
BM_TraceStreamWriter(benchmark::State &state)
{
    // The capture path: records appended one at a time, flushed a
    // chunk at a time (what a simulation's retire tap pays).
    Trace t = benchTrace(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        std::ostringstream os;
        TraceStreamWriter w(os, {});
        for (const TraceInst &in : t)
            w.append(in);
        std::string err;
        bool ok = w.finish(&err);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceStreamWriter)->Arg(100000);

void
BM_SimpleO3Import(benchmark::State &state)
{
    std::ostringstream text;
    for (long i = 0; i < state.range(0); ++i)
        text << "0x" << std::hex << (0x10000 + 64 * i)
             << (i % 7 == 0 ? " W\n" : " R\n") << std::dec;
    std::string body = text.str();
    for (auto _ : state) {
        std::istringstream is(body);
        Trace out;
        std::string err;
        bool ok = tryImportSimpleO3(is, out, {}, err);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimpleO3Import)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
