/**
 * @file
 * Extension experiments beyond the paper's evaluation:
 *  - clustered shelf/IQ backends (section VI names this as a future
 *    dimension): sweep the inter-cluster forwarding delay;
 *  - the adaptive shelf enable/disable controller (section V-C's
 *    suggestion) on both shelf-friendly and shelf-hostile settings.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"

using namespace shelf;
using namespace shelf::bench;

int
main(int argc, char **argv)
{
    // Serve as our own sandboxed sweep worker under --isolate
    // (SHELFSIM_ISOLATE); see sim/supervisor.hh.
    if (int rc = 0; maybeRunSweepWorker(argc, argv, &rc))
        return rc;

    SimControls ctl = SimControls::fromEnv();
    auto mixes = standardMixes(4);
    std::vector<WorkloadMix> subset(mixes.begin(), mixes.begin() + 8);

    auto improvement = [&](const CoreParams &cfg, double base) {
        double v = sweepGeomean(cfg.name.c_str(),
                                stpSweep(cfg, subset, ctl));
        fprintf(stderr, ".");
        return v / base - 1;
    };

    double base = sweepGeomean(
        "base", stpSweep(baseCore64(4), subset, ctl));

    printf("=== Extension: clustered shelf/IQ backends ===\n\n");
    TextTable cl({ "inter-cluster delay", "STP vs base64" });
    for (unsigned delay : { 0u, 1u, 2u, 4u }) {
        CoreParams p = shelfCore(4, true);
        p.interClusterDelay = delay;
        cl.addRow({ std::to_string(delay),
                    TextTable::pct(improvement(p, base)) });
    }
    printf("%s\n", cl.render().c_str());
    printf("Paper section VI: separating the shelf and IQ into "
           "clusters would relieve the bypass network; the sweep "
           "shows how much forwarding latency the idea can absorb "
           "before the shelf's benefit is gone.\n\n");

    printf("=== Extension: adaptive shelf enable/disable ===\n\n");
    TextTable ad({ "configuration", "STP vs base64" });
    {
        CoreParams p = shelfCore(4, true);
        ad.addRow({ "practical (always on)",
                    TextTable::pct(improvement(p, base)) });
        CoreParams a = shelfCore(4, true);
        a.adaptiveShelf = true;
        ad.addRow({ "practical + adaptive",
                    TextTable::pct(improvement(a, base)) });
        // A hostile setting: always-shelf steering approximates an
        // in-order core; the controller should rescue it.
        CoreParams bad = shelfCore(4, true,
                                   SteerPolicyKind::AlwaysShelf);
        ad.addRow({ "always-shelf (hostile)",
                    TextTable::pct(improvement(bad, base)) });
        CoreParams rescued = shelfCore(4, true,
                                       SteerPolicyKind::AlwaysShelf);
        rescued.adaptiveShelf = true;
        ad.addRow({ "always-shelf + adaptive",
                    TextTable::pct(improvement(rescued, base)) });
    }
    fprintf(stderr, "\n");
    printf("%s\n", ad.render().c_str());
    printf("Paper section V-C: 'the shelf can easily be disabled by "
           "steering all instructions to the IQ if it causes "
           "pathological behavior'. The controller should cost "
           "little when the shelf helps and recover most of the "
           "loss when it hurts.\n");
    return 0;
}
