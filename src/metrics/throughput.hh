/**
 * @file
 * Multiprogram performance metrics (Eyerman & Eeckhout, IEEE Micro
 * 2008), as used by the paper's evaluation:
 *
 *   STP  = sum_i IPC_MT(i) / IPC_ST(i)   (system throughput; higher
 *          is better, reflects jobs completed per unit time)
 *   ANTT = (1/n) sum_i IPC_ST(i) / IPC_MT(i)  (average normalized
 *          turnaround time; lower is better)
 */

#ifndef SHELFSIM_METRICS_THROUGHPUT_HH
#define SHELFSIM_METRICS_THROUGHPUT_HH

#include <vector>

namespace shelf
{

/** System throughput. */
double stp(const std::vector<double> &ipc_mt,
           const std::vector<double> &ipc_st);

/** Average normalized turnaround time. */
double antt(const std::vector<double> &ipc_mt,
            const std::vector<double> &ipc_st);

/** Geometric mean of positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

} // namespace shelf

#endif // SHELFSIM_METRICS_THROUGHPUT_HH
