/**
 * @file
 * Multiprogram performance metrics (Eyerman & Eeckhout, IEEE Micro
 * 2008), as used by the paper's evaluation:
 *
 *   STP  = sum_i IPC_MT(i) / IPC_ST(i)   (system throughput; higher
 *          is better, reflects jobs completed per unit time)
 *   ANTT = (1/n) sum_i IPC_ST(i) / IPC_MT(i)  (average normalized
 *          turnaround time; lower is better)
 */

#ifndef SHELFSIM_METRICS_THROUGHPUT_HH
#define SHELFSIM_METRICS_THROUGHPUT_HH

#include <cstddef>
#include <vector>

namespace shelf
{

/** System throughput. */
double stp(const std::vector<double> &ipc_mt,
           const std::vector<double> &ipc_st);

/** Average normalized turnaround time. */
double antt(const std::vector<double> &ipc_mt,
            const std::vector<double> &ipc_st);

/** Geometric mean of positive values; panics on NaN entries. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; panics on NaN entries. */
double mean(const std::vector<double> &values);

/**
 * Aggregate over the finite subset of a sample. Sweeps mark
 * quarantined cells as NaN so holes stay visible; these variants
 * skip such cells and count them, so callers can aggregate the rest
 * while reporting exactly how much was excluded (the strict
 * geomean()/mean() panic instead of silently absorbing a NaN).
 */
struct FiniteStat
{
    double value = 0;    ///< aggregate of the finite entries
    size_t used = 0;     ///< finite entries aggregated
    size_t excluded = 0; ///< NaN (quarantined) entries skipped
};

/** Geometric mean of the finite entries (which must be positive);
 * value is NaN when no finite entry exists. */
FiniteStat geomeanFinite(const std::vector<double> &values);

/** Arithmetic mean of the finite entries; value is NaN when no
 * finite entry exists. */
FiniteStat meanFinite(const std::vector<double> &values);

} // namespace shelf

#endif // SHELFSIM_METRICS_THROUGHPUT_HH
