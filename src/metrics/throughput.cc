#include "metrics/throughput.hh"

#include <cmath>

#include "base/logging.hh"

namespace shelf
{

double
stp(const std::vector<double> &ipc_mt,
    const std::vector<double> &ipc_st)
{
    panic_if(ipc_mt.size() != ipc_st.size(),
             "STP: mismatched vector sizes");
    double sum = 0.0;
    for (size_t i = 0; i < ipc_mt.size(); ++i) {
        panic_if(ipc_st[i] <= 0.0, "STP: non-positive ST IPC");
        sum += ipc_mt[i] / ipc_st[i];
    }
    return sum;
}

double
antt(const std::vector<double> &ipc_mt,
     const std::vector<double> &ipc_st)
{
    panic_if(ipc_mt.size() != ipc_st.size(),
             "ANTT: mismatched vector sizes");
    double sum = 0.0;
    for (size_t i = 0; i < ipc_mt.size(); ++i) {
        panic_if(ipc_mt[i] <= 0.0, "ANTT: non-positive MT IPC");
        sum += ipc_st[i] / ipc_mt[i];
    }
    return sum / static_cast<double>(ipc_mt.size());
}

double
geomean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        // NaN fails every comparison, so the non-positive check
        // alone would let a quarantined cell poison the result.
        panic_if(std::isnan(v), "geomean of NaN value");
        panic_if(v <= 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    panic_if(values.empty(), "mean of empty vector");
    double sum = 0.0;
    for (double v : values) {
        panic_if(std::isnan(v), "mean of NaN value");
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

FiniteStat
geomeanFinite(const std::vector<double> &values)
{
    FiniteStat st;
    double log_sum = 0.0;
    for (double v : values) {
        if (std::isnan(v)) {
            ++st.excluded;
            continue;
        }
        panic_if(v <= 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
        ++st.used;
    }
    st.value = st.used
        ? std::exp(log_sum / static_cast<double>(st.used))
        : std::nan("");
    return st;
}

FiniteStat
meanFinite(const std::vector<double> &values)
{
    FiniteStat st;
    double sum = 0.0;
    for (double v : values) {
        if (std::isnan(v)) {
            ++st.excluded;
            continue;
        }
        sum += v;
        ++st.used;
    }
    st.value = st.used
        ? sum / static_cast<double>(st.used) : std::nan("");
    return st;
}

} // namespace shelf
