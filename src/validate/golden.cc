#include "validate/golden.hh"

#include <algorithm>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/types.hh"

namespace shelf
{
namespace validate
{

GoldenModel::GoldenModel(const Trace &trace_) : trace(trace_)
{
    panic_if(trace.empty(), "golden model over an empty trace");
    lastWriter.fill(kNoWriter);
}

GoldenModel::Step
GoldenModel::step()
{
    const TraceInst &ti = instAt(cursor);
    Step s{cursor, ti.dst, kNoWriter};
    if (ti.hasDst()) {
        s.prevWriter = lastWriter[ti.dst];
        lastWriter[ti.dst] = cursor;
    }
    ++cursor;
    return s;
}

uint64_t
goldenTailWindow(const CoreParams &params)
{
    // An uncommitted elder instruction bounds how far younger shelf
    // commits can run ahead: IQ instructions between them stay in
    // the ROB partition (gated by the retire pointer), and shelf
    // instructions are capped by the doubled virtual index space
    // (tail - retirePtr < 2 * entries). Slack covers the boundary
    // cases at the cut-off cycle.
    return params.robPerThread() + 2ULL * params.shelfPerThread() + 8;
}

GoldenReport
checkCommitsAgainstGolden(const Trace &trace,
                          const std::vector<CommitRecord> &log,
                          uint64_t tail_window)
{
    GoldenReport rep;
    rep.commitsChecked = log.size();
    if (log.empty())
        return rep;

    auto failed = [&](std::string detail) {
        rep.ok = false;
        rep.detail = std::move(detail);
        return rep;
    };

    // Observer-order sanity: records arrive in retirement order with
    // completion no later than retirement.
    Cycle prevRetire = 0;
    for (const CommitRecord &r : log) {
        if (r.retireCycle < prevRetire) {
            return failed(csprintf(
                "commit log not in retirement order at traceIdx "
                "%llu", (unsigned long long)r.traceIdx));
        }
        prevRetire = r.retireCycle;
        if (r.completeCycle == kCycleNever ||
            r.completeCycle > r.retireCycle) {
            return failed(csprintf(
                "traceIdx %llu retired at %llu before completing "
                "(%llu)", (unsigned long long)r.traceIdx,
                (unsigned long long)r.retireCycle,
                (unsigned long long)r.completeCycle));
        }
    }

    std::vector<const CommitRecord *> sorted;
    sorted.reserve(log.size());
    for (const CommitRecord &r : log)
        sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(),
              [](const CommitRecord *a, const CommitRecord *b) {
                  return a->traceIdx < b->traceIdx;
              });

    // No dynamic trace index commits twice.
    for (size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i]->traceIdx == sorted[i - 1]->traceIdx) {
            return failed(csprintf(
                "traceIdx %llu committed twice",
                (unsigned long long)sorted[i]->traceIdx));
        }
    }

    // Contiguous prefix with a bounded in-flight tail: a gap may only
    // exist within tail_window of the youngest committed index.
    uint64_t maxIdx = sorted.back()->traceIdx;
    uint64_t expect = 0;
    std::unordered_map<uint64_t, const CommitRecord *> byIdx;
    byIdx.reserve(sorted.size());
    for (const CommitRecord *r : sorted) {
        if (r->traceIdx > expect) {
            // [expect, r->traceIdx) never committed.
            if (maxIdx - expect > tail_window) {
                return failed(csprintf(
                    "traceIdx %llu never committed but %llu did "
                    "(beyond the %llu-entry in-flight window)",
                    (unsigned long long)expect,
                    (unsigned long long)maxIdx,
                    (unsigned long long)tail_window));
            }
        }
        expect = r->traceIdx + 1;
        byIdx.emplace(r->traceIdx, r);
    }

    // Golden in-order walk: destination identity and per-register
    // WAW ordering of shelf-steered writers (PRI reuse means a shelf
    // writer's writeback must not precede its predecessor's).
    GoldenModel golden(trace);
    while (golden.executed() <= maxIdx) {
        GoldenModel::Step s = golden.step();
        auto it = byIdx.find(s.dynIdx);
        if (it == byIdx.end())
            continue;
        const CommitRecord &r = *it->second;
        if (r.dst != s.dst) {
            return failed(csprintf(
                "traceIdx %llu committed with dst r%d, trace says "
                "r%d", (unsigned long long)s.dynIdx, r.dst, s.dst));
        }
        if (r.toShelf && s.prevWriter != GoldenModel::kNoWriter) {
            auto pit = byIdx.find(s.prevWriter);
            if (pit != byIdx.end() &&
                r.completeCycle < pit->second->completeCycle) {
                return failed(csprintf(
                    "WAW inversion on r%d: shelf writer traceIdx "
                    "%llu completed at %llu before its predecessor "
                    "traceIdx %llu (%llu)", s.dst,
                    (unsigned long long)s.dynIdx,
                    (unsigned long long)r.completeCycle,
                    (unsigned long long)s.prevWriter,
                    (unsigned long long)pit->second->completeCycle));
            }
        }
    }
    return rep;
}

} // namespace validate
} // namespace shelf
