/**
 * @file
 * Named per-cycle invariant checks over the core's cross-structure
 * state (the validation subsystem's second layer; the golden
 * functional model in golden.hh is the first).
 *
 * The hybrid shelf/IQ window couples many structures whose agreement
 * nothing enforces locally: the issue-tracking bitvector must track
 * IQ occupancy, the shelf retire bitvector's pointer must gate ROB
 * retirement, the SSRs must cover every in-flight speculative issue,
 * and the extended tag space must be conserved across squash
 * walk-backs. Each rule here is a *named* check so a fuzzing failure
 * identifies the broken mechanism directly.
 *
 * Checks run against a quiescent core (between tick() calls — the
 * core itself runs them at the end of a cycle when
 * setCheckInvariants(true)); they never mutate state and report
 * failures as values rather than panicking, so the fuzz driver can
 * emit a repro line before dying.
 */

#ifndef SHELFSIM_VALIDATE_INVARIANTS_HH
#define SHELFSIM_VALIDATE_INVARIANTS_HH

#include <string>
#include <vector>

namespace shelf
{

class Core;

namespace validate
{

/** One violated invariant: which named check, and what it saw. */
struct InvariantFailure
{
    std::string check;
    std::string detail;
};

/**
 * The registry of named checks. All entry points are static; the
 * class exists (rather than free functions) because it is the single
 * friend through which validation reads the core's private state.
 *
 * corrupt() is the fault-injection half: it perturbs live core state
 * so that the named check must fire, exercising the checker itself
 * (every check has a deliberately-broken-state negative test, and
 * the fuzz driver's --inject mode demonstrates end-to-end capture).
 */
class InvariantChecker
{
  public:
    /** Names of every registered check, in evaluation order. */
    static std::vector<std::string> checkNames();

    /** Run every check; empty result = all invariants hold. */
    static std::vector<InvariantFailure> runAll(const Core &core);

    /** Run a single named check (unknown name is a fatal error). */
    static std::vector<InvariantFailure> run(const Core &core,
                                             const std::string &check);

    /**
     * Corrupt live core state so the named check fires. Returns
     * false when the pipeline is not currently in a state that
     * offers a corruption site (e.g. no in-flight speculative
     * instruction); callers tick and retry. After a successful
     * corruption the core is broken for good — check, then discard.
     */
    static bool corrupt(Core &core, const std::string &check);

  private:
    struct Check;
    static const std::vector<Check> &registry();

    /** @name The named checks @{ */
    static void checkInflightOrder(const Core &c,
                                   std::vector<InvariantFailure> &out);
    static void checkRobIssueHead(const Core &c,
                                  std::vector<InvariantFailure> &out);
    static void checkIqConsistency(const Core &c,
                                   std::vector<InvariantFailure> &out);
    static void checkShelfRetirePointer(
        const Core &c, std::vector<InvariantFailure> &out);
    static void checkShelfRobGating(
        const Core &c, std::vector<InvariantFailure> &out);
    static void checkRenameConservation(
        const Core &c, std::vector<InvariantFailure> &out);
    static void checkSsrCoverage(const Core &c,
                                 std::vector<InvariantFailure> &out);
    static void checkLsqOrder(const Core &c,
                              std::vector<InvariantFailure> &out);
    static void checkIncompleteLoads(
        const Core &c, std::vector<InvariantFailure> &out);
    static void checkScoreboardPending(
        const Core &c, std::vector<InvariantFailure> &out);
    static void checkTsoRetireGating(
        const Core &c, std::vector<InvariantFailure> &out);
    /** @} */
};

} // namespace validate
} // namespace shelf

#endif // SHELFSIM_VALIDATE_INVARIANTS_HH
