/**
 * @file
 * Golden functional model: an in-order executor over the trace ISA
 * that produces the canonical per-thread commit stream and
 * architectural register-write order, against which the timing
 * core's observed commit stream is checked after a run.
 *
 * The simulator is execution-driven over deterministic traces, so
 * "functional correctness" of a run reduces to properties of the
 * committed stream the golden in-order walk can predict exactly:
 *
 *  - each trace index commits at most once (squash/replay must not
 *    double-commit);
 *  - the committed indices form a contiguous prefix of the trace
 *    walk, except for a bounded in-flight tail window (shelf
 *    instructions retire out of ROB order, so younger shelf commits
 *    may precede elder pending IQ commits — but never by more than
 *    the window the hardware structures can hold);
 *  - every committed instruction names the destination register the
 *    trace assigns to that index;
 *  - writes to the same architectural register happen in program
 *    order *at the physical register*: a shelf-steered writer reuses
 *    its predecessor's PRI, so its writeback (== completion) must
 *    not precede the predecessor's (the WAW ordering the extended
 *    tag space exists to enforce).
 *
 * What a timing-only golden model cannot check: data values (the
 * trace ISA carries no semantics), so a wrong forwarding *value*
 * with correct ordering is invisible; see DESIGN.md "Validation
 * architecture".
 */

#ifndef SHELFSIM_VALIDATE_GOLDEN_HH
#define SHELFSIM_VALIDATE_GOLDEN_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/params.hh"
#include "isa/arch.hh"
#include "workload/generator.hh"

namespace shelf
{
namespace validate
{

/** One observed commit, recorded in retirement order. */
struct CommitRecord
{
    uint64_t traceIdx = 0;
    SeqNum seq = 0;
    RegId dst = kNoReg;
    Cycle completeCycle = 0;
    Cycle retireCycle = 0;
    bool toShelf = false;
};

/**
 * Per-thread capture of the commit stream; install via
 * Core::setCommitObserver(log.observer()).
 */
class CommitLog
{
  public:
    explicit CommitLog(unsigned threads) : perThread(threads) {}

    void
    record(const DynInst &inst)
    {
        perThread[inst.tid].push_back(
            CommitRecord{inst.traceIdx, inst.seq, inst.si.dst,
                         inst.completeCycle, inst.retireCycle,
                         inst.toShelf});
    }

    std::function<void(const DynInst &)>
    observer()
    {
        return [this](const DynInst &inst) { record(inst); };
    }

    const std::vector<CommitRecord> &
    thread(ThreadID tid) const
    {
        return perThread[tid];
    }

    unsigned
    threads() const
    {
        return static_cast<unsigned>(perThread.size());
    }

  private:
    std::vector<std::vector<CommitRecord>> perThread;
};

/**
 * In-order executor over one thread's trace. Dynamic index k maps to
 * trace[k % size] (threads wrap around at the end of their trace,
 * matching the core's fetch cursor).
 */
class GoldenModel
{
  public:
    static constexpr uint64_t kNoWriter = ~0ULL;

    explicit GoldenModel(const Trace &trace);

    struct Step
    {
        uint64_t dynIdx;        ///< dynamic (monotonic) trace index
        RegId dst;              ///< destination register (kNoReg)
        /** Dynamic index of the previous writer of dst
         * (kNoWriter for the first write). */
        uint64_t prevWriter;
    };

    /** Execute the next instruction of the in-order walk. */
    Step step();

    uint64_t executed() const { return cursor; }

    const TraceInst &
    instAt(uint64_t dyn_idx) const
    {
        return trace[dyn_idx % trace.size()];
    }

  private:
    const Trace &trace;
    uint64_t cursor = 0;
    std::array<uint64_t, kNumArchRegs> lastWriter;
};

/** Result of a golden-vs-observed comparison. */
struct GoldenReport
{
    bool ok = true;
    std::string detail;      ///< first discrepancy when !ok
    uint64_t commitsChecked = 0;
};

/**
 * Tail window for the contiguity check: the largest per-thread gap
 * between a pending elder instruction and a younger committed shelf
 * instruction. Bounded by the ROB partition plus the shelf's doubled
 * virtual index space (see invariants.cc for why), plus slack.
 */
uint64_t goldenTailWindow(const CoreParams &params);

/**
 * Check one thread's observed commit stream against the golden
 * in-order execution of @p trace. @p tail_window bounds how far
 * commit gaps may extend from the youngest committed index.
 */
GoldenReport checkCommitsAgainstGolden(
    const Trace &trace, const std::vector<CommitRecord> &log,
    uint64_t tail_window);

} // namespace validate
} // namespace shelf

#endif // SHELFSIM_VALIDATE_GOLDEN_HH
