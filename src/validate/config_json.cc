#include "validate/config_json.hh"

#include <cctype>
#include <cstdlib>
#include <map>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{
namespace validate
{

namespace
{

const char *
fetchPolicyName(CoreParams::FetchPolicy p)
{
    return p == CoreParams::FetchPolicy::ICount ? "icount"
                                                : "round-robin";
}

const char *
memModelName(CoreParams::MemModel m)
{
    return m == CoreParams::MemModel::TSO ? "tso" : "relaxed";
}

SsrDesign
parseSsrDesign(const std::string &s)
{
    if (s == "single")
        return SsrDesign::Single;
    if (s == "two")
        return SsrDesign::Two;
    if (s == "per-run")
        return SsrDesign::PerRun;
    fatal("bad SSR design '%s'", s.c_str());
}

SteerPolicyKind
parseSteering(const std::string &s)
{
    if (s == "always-iq")
        return SteerPolicyKind::AlwaysIQ;
    if (s == "always-shelf")
        return SteerPolicyKind::AlwaysShelf;
    if (s == "practical")
        return SteerPolicyKind::Practical;
    if (s == "oracle")
        return SteerPolicyKind::Oracle;
    fatal("bad steering policy '%s'", s.c_str());
}

CoreParams::FetchPolicy
parseFetchPolicy(const std::string &s)
{
    if (s == "icount")
        return CoreParams::FetchPolicy::ICount;
    if (s == "round-robin")
        return CoreParams::FetchPolicy::RoundRobin;
    fatal("bad fetch policy '%s'", s.c_str());
}

CoreParams::MemModel
parseMemModel(const std::string &s)
{
    if (s == "relaxed")
        return CoreParams::MemModel::Relaxed;
    if (s == "tso")
        return CoreParams::MemModel::TSO;
    fatal("bad memory model '%s'", s.c_str());
}

/**
 * Minimal recursive-descent parser for the flat object form
 * {"key": value, ...} with string / unsigned-number / boolean
 * values. The repo deliberately has no general JSON reader; this
 * covers exactly what coreParamsToJson() emits.
 */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string &text) : s(text) {}

    /** Parsed key -> raw value (strings unescaped; numbers/bools as
     * written). */
    struct Value
    {
        enum class Kind { String, Number, Bool } kind;
        std::string str;
        uint64_t num = 0;
        bool b = false;
    };

    std::map<std::string, Value>
    parse()
    {
        std::map<std::string, Value> out;
        skipWs();
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos;
            return out;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            out[key] = parseValue();
            skipWs();
            char c = next();
            if (c == '}')
                break;
            fatal_if(c != ',', "config JSON: expected ',' or '}' at "
                     "offset %zu", pos - 1);
        }
        skipWs();
        fatal_if(pos != s.size(),
                 "config JSON: trailing characters after object");
        return out;
    }

  private:
    void skipWs()
    {
        while (pos < s.size() && std::isspace(
                   static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    char
    next()
    {
        fatal_if(pos >= s.size(),
                 "config JSON: unexpected end of input");
        return s[pos++];
    }

    void
    expect(char c)
    {
        char got = next();
        fatal_if(got != c, "config JSON: expected '%c', got '%c' at "
                 "offset %zu", c, got, pos - 1);
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = next();
            if (c == '"')
                return out;
            if (c == '\\') {
                char e = next();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default:
                    fatal("config JSON: unsupported escape '\\%c'",
                          e);
                }
            } else {
                out += c;
            }
        }
    }

    Value
    parseValue()
    {
        char c = peek();
        Value v;
        if (c == '"') {
            v.kind = Value::Kind::String;
            v.str = parseString();
            return v;
        }
        if (s.compare(pos, 4, "true") == 0) {
            pos += 4;
            v.kind = Value::Kind::Bool;
            v.b = true;
            return v;
        }
        if (s.compare(pos, 5, "false") == 0) {
            pos += 5;
            v.kind = Value::Kind::Bool;
            v.b = false;
            return v;
        }
        fatal_if(!std::isdigit(static_cast<unsigned char>(c)),
                 "config JSON: unsupported value at offset %zu", pos);
        size_t start = pos;
        while (pos < s.size() && std::isdigit(
                   static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
        v.kind = Value::Kind::Number;
        v.num = std::strtoull(s.substr(start, pos - start).c_str(),
                              nullptr, 10);
        return v;
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

std::string
coreParamsToJson(const CoreParams &p)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", p.name);
    w.field("threads", static_cast<uint64_t>(p.threads));
    w.field("fetchWidth", static_cast<uint64_t>(p.fetchWidth));
    w.field("dispatchWidth", static_cast<uint64_t>(p.dispatchWidth));
    w.field("issueWidth", static_cast<uint64_t>(p.issueWidth));
    w.field("commitWidth", static_cast<uint64_t>(p.commitWidth));
    w.field("fetchToDispatch",
            static_cast<uint64_t>(p.fetchToDispatch));
    w.field("robEntries", static_cast<uint64_t>(p.robEntries));
    w.field("iqEntries", static_cast<uint64_t>(p.iqEntries));
    w.field("lqEntries", static_cast<uint64_t>(p.lqEntries));
    w.field("sqEntries", static_cast<uint64_t>(p.sqEntries));
    w.field("shelfEntries", static_cast<uint64_t>(p.shelfEntries));
    w.field("optimisticShelf", p.optimisticShelf);
    w.field("ssrDesign", ssrDesignName(p.ssrDesign));
    w.field("interClusterDelay",
            static_cast<uint64_t>(p.interClusterDelay));
    w.field("shelfReleaseAtWriteback", p.shelfReleaseAtWriteback);
    w.field("fetchPolicy", fetchPolicyName(p.fetchPolicy));
    w.field("memModel", memModelName(p.memModel));
    w.field("steering", steerPolicyName(p.steering));
    w.field("adaptiveShelf", p.adaptiveShelf);
    w.field("adaptiveEpochCycles",
            static_cast<uint64_t>(p.adaptiveEpochCycles));
    w.field("shadowOracle", p.shadowOracle);
    w.field("rctBits", static_cast<uint64_t>(p.rctBits));
    w.field("pltColumns", static_cast<uint64_t>(p.pltColumns));
    w.field("steerSlack", static_cast<uint64_t>(p.steerSlack));
    w.field("branchResolveExtra",
            static_cast<uint64_t>(p.branchResolveExtra));
    w.field("loadResolveDelay",
            static_cast<uint64_t>(p.loadResolveDelay));
    w.field("redirectPenalty",
            static_cast<uint64_t>(p.redirectPenalty));
    w.field("intAluUnits", static_cast<uint64_t>(p.intAluUnits));
    w.field("intMultUnits", static_cast<uint64_t>(p.intMultUnits));
    w.field("fpUnits", static_cast<uint64_t>(p.fpUnits));
    w.field("memPorts", static_cast<uint64_t>(p.memPorts));
    w.field("fetchBufferPerThread",
            static_cast<uint64_t>(p.fetchBufferPerThread));
    w.field("physRegs", static_cast<uint64_t>(p.physRegs));
    w.field("extTags", static_cast<uint64_t>(p.extTags));
    w.endObject();
    return w.str();
}

CoreParams
coreParamsFromJson(const std::string &json)
{
    CoreParams p;
    auto values = FlatJsonParser(json).parse();

    auto str = [&](const FlatJsonParser::Value &v,
                   const std::string &key) -> const std::string & {
        fatal_if(v.kind != FlatJsonParser::Value::Kind::String,
                 "config JSON: '%s' must be a string", key.c_str());
        return v.str;
    };
    auto num = [&](const FlatJsonParser::Value &v,
                   const std::string &key) -> unsigned {
        fatal_if(v.kind != FlatJsonParser::Value::Kind::Number,
                 "config JSON: '%s' must be a number", key.c_str());
        return static_cast<unsigned>(v.num);
    };
    auto boolean = [&](const FlatJsonParser::Value &v,
                       const std::string &key) {
        fatal_if(v.kind != FlatJsonParser::Value::Kind::Bool,
                 "config JSON: '%s' must be a boolean", key.c_str());
        return v.b;
    };

    for (const auto &[key, v] : values) {
        if (key == "name") p.name = str(v, key);
        else if (key == "threads") p.threads = num(v, key);
        else if (key == "fetchWidth") p.fetchWidth = num(v, key);
        else if (key == "dispatchWidth")
            p.dispatchWidth = num(v, key);
        else if (key == "issueWidth") p.issueWidth = num(v, key);
        else if (key == "commitWidth") p.commitWidth = num(v, key);
        else if (key == "fetchToDispatch")
            p.fetchToDispatch = num(v, key);
        else if (key == "robEntries") p.robEntries = num(v, key);
        else if (key == "iqEntries") p.iqEntries = num(v, key);
        else if (key == "lqEntries") p.lqEntries = num(v, key);
        else if (key == "sqEntries") p.sqEntries = num(v, key);
        else if (key == "shelfEntries")
            p.shelfEntries = num(v, key);
        else if (key == "optimisticShelf")
            p.optimisticShelf = boolean(v, key);
        else if (key == "ssrDesign")
            p.ssrDesign = parseSsrDesign(str(v, key));
        else if (key == "interClusterDelay")
            p.interClusterDelay = num(v, key);
        else if (key == "shelfReleaseAtWriteback")
            p.shelfReleaseAtWriteback = boolean(v, key);
        else if (key == "fetchPolicy")
            p.fetchPolicy = parseFetchPolicy(str(v, key));
        else if (key == "memModel")
            p.memModel = parseMemModel(str(v, key));
        else if (key == "steering")
            p.steering = parseSteering(str(v, key));
        else if (key == "adaptiveShelf")
            p.adaptiveShelf = boolean(v, key);
        else if (key == "adaptiveEpochCycles")
            p.adaptiveEpochCycles = num(v, key);
        else if (key == "shadowOracle")
            p.shadowOracle = boolean(v, key);
        else if (key == "rctBits") p.rctBits = num(v, key);
        else if (key == "pltColumns") p.pltColumns = num(v, key);
        else if (key == "steerSlack") p.steerSlack = num(v, key);
        else if (key == "branchResolveExtra")
            p.branchResolveExtra = num(v, key);
        else if (key == "loadResolveDelay")
            p.loadResolveDelay = num(v, key);
        else if (key == "redirectPenalty")
            p.redirectPenalty = num(v, key);
        else if (key == "intAluUnits") p.intAluUnits = num(v, key);
        else if (key == "intMultUnits")
            p.intMultUnits = num(v, key);
        else if (key == "fpUnits") p.fpUnits = num(v, key);
        else if (key == "memPorts") p.memPorts = num(v, key);
        else if (key == "fetchBufferPerThread")
            p.fetchBufferPerThread = num(v, key);
        else if (key == "physRegs") p.physRegs = num(v, key);
        else if (key == "extTags") p.extTags = num(v, key);
        else
            fatal("config JSON: unknown key '%s'", key.c_str());
    }
    return p;
}

} // namespace validate
} // namespace shelf
