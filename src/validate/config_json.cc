#include "validate/config_json.hh"

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "sim/allocation.hh"
#include "workload/trace_io.hh"

namespace shelf
{
namespace validate
{

namespace
{

/** Shape check for a trace content hash: 16 lowercase hex digits
 * (what tryTraceFileHash emits). */
bool
looksLikeTraceHash(const std::string &s)
{
    if (s.size() != 16)
        return false;
    for (char c : s) {
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

const char *
fetchPolicyName(CoreParams::FetchPolicy p)
{
    return p == CoreParams::FetchPolicy::ICount ? "icount"
                                                : "round-robin";
}

const char *
memModelName(CoreParams::MemModel m)
{
    return m == CoreParams::MemModel::TSO ? "tso" : "relaxed";
}

bool
tryParseSsrDesign(const std::string &s, SsrDesign &out)
{
    if (s == "single")
        out = SsrDesign::Single;
    else if (s == "two")
        out = SsrDesign::Two;
    else if (s == "per-run")
        out = SsrDesign::PerRun;
    else
        return false;
    return true;
}

bool
tryParseSteering(const std::string &s, SteerPolicyKind &out)
{
    if (s == "always-iq")
        out = SteerPolicyKind::AlwaysIQ;
    else if (s == "always-shelf")
        out = SteerPolicyKind::AlwaysShelf;
    else if (s == "practical")
        out = SteerPolicyKind::Practical;
    else if (s == "oracle")
        out = SteerPolicyKind::Oracle;
    else
        return false;
    return true;
}

bool
tryParseFetchPolicy(const std::string &s, CoreParams::FetchPolicy &out)
{
    if (s == "icount")
        out = CoreParams::FetchPolicy::ICount;
    else if (s == "round-robin")
        out = CoreParams::FetchPolicy::RoundRobin;
    else
        return false;
    return true;
}

bool
tryParseMemModel(const std::string &s, CoreParams::MemModel &out)
{
    if (s == "relaxed")
        out = CoreParams::MemModel::Relaxed;
    else if (s == "tso")
        out = CoreParams::MemModel::TSO;
    else
        return false;
    return true;
}

} // namespace

std::string
coreParamsToJson(const CoreParams &p)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", p.name);
    w.field("threads", static_cast<uint64_t>(p.threads));
    w.field("fetchWidth", static_cast<uint64_t>(p.fetchWidth));
    w.field("dispatchWidth", static_cast<uint64_t>(p.dispatchWidth));
    w.field("issueWidth", static_cast<uint64_t>(p.issueWidth));
    w.field("commitWidth", static_cast<uint64_t>(p.commitWidth));
    w.field("fetchToDispatch",
            static_cast<uint64_t>(p.fetchToDispatch));
    w.field("robEntries", static_cast<uint64_t>(p.robEntries));
    w.field("iqEntries", static_cast<uint64_t>(p.iqEntries));
    w.field("lqEntries", static_cast<uint64_t>(p.lqEntries));
    w.field("sqEntries", static_cast<uint64_t>(p.sqEntries));
    w.field("shelfEntries", static_cast<uint64_t>(p.shelfEntries));
    w.field("optimisticShelf", p.optimisticShelf);
    w.field("ssrDesign", ssrDesignName(p.ssrDesign));
    w.field("interClusterDelay",
            static_cast<uint64_t>(p.interClusterDelay));
    w.field("shelfReleaseAtWriteback", p.shelfReleaseAtWriteback);
    w.field("fetchPolicy", fetchPolicyName(p.fetchPolicy));
    w.field("memModel", memModelName(p.memModel));
    w.field("steering", steerPolicyName(p.steering));
    w.field("adaptiveShelf", p.adaptiveShelf);
    w.field("adaptiveEpochCycles",
            static_cast<uint64_t>(p.adaptiveEpochCycles));
    w.field("shadowOracle", p.shadowOracle);
    w.field("rctBits", static_cast<uint64_t>(p.rctBits));
    w.field("pltColumns", static_cast<uint64_t>(p.pltColumns));
    w.field("steerSlack", static_cast<uint64_t>(p.steerSlack));
    w.field("branchResolveExtra",
            static_cast<uint64_t>(p.branchResolveExtra));
    w.field("loadResolveDelay",
            static_cast<uint64_t>(p.loadResolveDelay));
    w.field("redirectPenalty",
            static_cast<uint64_t>(p.redirectPenalty));
    w.field("intAluUnits", static_cast<uint64_t>(p.intAluUnits));
    w.field("intMultUnits", static_cast<uint64_t>(p.intMultUnits));
    w.field("fpUnits", static_cast<uint64_t>(p.fpUnits));
    w.field("memPorts", static_cast<uint64_t>(p.memPorts));
    w.field("fetchBufferPerThread",
            static_cast<uint64_t>(p.fetchBufferPerThread));
    w.field("physRegs", static_cast<uint64_t>(p.physRegs));
    w.field("extTags", static_cast<uint64_t>(p.extTags));
    w.field("watchdogCycles",
            static_cast<uint64_t>(p.watchdogCycles));
    w.field("flightRecorderEvents",
            static_cast<uint64_t>(p.flightRecorderEvents));
    w.field("skipQuiescentCycles", p.skipQuiescentCycles);
    w.endObject();
    return w.str();
}

CoreParams
coreParamsFromJson(const std::string &json)
{
    JsonValue doc;
    std::string err;
    fatal_if(!tryParseJson(json, doc, &err), "config JSON: %s",
             err.c_str());
    return coreParamsFromJson(doc);
}

CoreParams
coreParamsFromJson(const JsonValue &doc)
{
    CoreParams p;
    std::string err;
    fatal_if(!tryCoreParamsFromJson(doc, p, err), "%s", err.c_str());
    return p;
}

bool
tryCoreParamsFromJson(const JsonValue &doc, CoreParams &p,
                      std::string &err)
{
    p = CoreParams();
    if (!doc.isObject()) {
        err = "config JSON: expected a JSON object";
        return false;
    }

    auto str = [&](const JsonValue &v,
                   const std::string &key) -> const std::string & {
        static const std::string empty;
        if (!v.isString()) {
            err = csprintf("config JSON: '%s' must be a string",
                           key.c_str());
            return empty;
        }
        return v.raw;
    };
    auto num = [&](const JsonValue &v,
                   const std::string &key) -> unsigned {
        if (!v.isNumber()) {
            err = csprintf("config JSON: '%s' must be a number",
                           key.c_str());
            return 0;
        }
        return static_cast<unsigned>(v.asU64());
    };
    auto boolean = [&](const JsonValue &v, const std::string &key) {
        if (!v.isBool()) {
            err = csprintf("config JSON: '%s' must be a boolean",
                           key.c_str());
            return false;
        }
        return v.boolean;
    };

    for (const auto &[key, v] : doc.members) {
        if (key == "name") p.name = str(v, key);
        else if (key == "threads") p.threads = num(v, key);
        else if (key == "fetchWidth") p.fetchWidth = num(v, key);
        else if (key == "dispatchWidth")
            p.dispatchWidth = num(v, key);
        else if (key == "issueWidth") p.issueWidth = num(v, key);
        else if (key == "commitWidth") p.commitWidth = num(v, key);
        else if (key == "fetchToDispatch")
            p.fetchToDispatch = num(v, key);
        else if (key == "robEntries") p.robEntries = num(v, key);
        else if (key == "iqEntries") p.iqEntries = num(v, key);
        else if (key == "lqEntries") p.lqEntries = num(v, key);
        else if (key == "sqEntries") p.sqEntries = num(v, key);
        else if (key == "shelfEntries")
            p.shelfEntries = num(v, key);
        else if (key == "optimisticShelf")
            p.optimisticShelf = boolean(v, key);
        else if (key == "ssrDesign") {
            if (!tryParseSsrDesign(str(v, key), p.ssrDesign) &&
                err.empty()) {
                err = csprintf("bad SSR design '%s'", v.raw.c_str());
            }
        }
        else if (key == "interClusterDelay")
            p.interClusterDelay = num(v, key);
        else if (key == "shelfReleaseAtWriteback")
            p.shelfReleaseAtWriteback = boolean(v, key);
        else if (key == "fetchPolicy") {
            if (!tryParseFetchPolicy(str(v, key), p.fetchPolicy) &&
                err.empty()) {
                err = csprintf("bad fetch policy '%s'",
                               v.raw.c_str());
            }
        }
        else if (key == "memModel") {
            if (!tryParseMemModel(str(v, key), p.memModel) &&
                err.empty()) {
                err = csprintf("bad memory model '%s'",
                               v.raw.c_str());
            }
        }
        else if (key == "steering") {
            if (!tryParseSteering(str(v, key), p.steering) &&
                err.empty()) {
                err = csprintf("bad steering policy '%s'",
                               v.raw.c_str());
            }
        }
        else if (key == "adaptiveShelf")
            p.adaptiveShelf = boolean(v, key);
        else if (key == "adaptiveEpochCycles")
            p.adaptiveEpochCycles = num(v, key);
        else if (key == "shadowOracle")
            p.shadowOracle = boolean(v, key);
        else if (key == "rctBits") p.rctBits = num(v, key);
        else if (key == "pltColumns") p.pltColumns = num(v, key);
        else if (key == "steerSlack") p.steerSlack = num(v, key);
        else if (key == "branchResolveExtra")
            p.branchResolveExtra = num(v, key);
        else if (key == "loadResolveDelay")
            p.loadResolveDelay = num(v, key);
        else if (key == "redirectPenalty")
            p.redirectPenalty = num(v, key);
        else if (key == "intAluUnits") p.intAluUnits = num(v, key);
        else if (key == "intMultUnits")
            p.intMultUnits = num(v, key);
        else if (key == "fpUnits") p.fpUnits = num(v, key);
        else if (key == "memPorts") p.memPorts = num(v, key);
        else if (key == "fetchBufferPerThread")
            p.fetchBufferPerThread = num(v, key);
        else if (key == "physRegs") p.physRegs = num(v, key);
        else if (key == "extTags") p.extTags = num(v, key);
        else if (key == "watchdogCycles")
            p.watchdogCycles = num(v, key);
        else if (key == "flightRecorderEvents")
            p.flightRecorderEvents = num(v, key);
        else if (key == "skipQuiescentCycles")
            p.skipQuiescentCycles = boolean(v, key);
        else if (err.empty())
            err = csprintf("config JSON: unknown key '%s'",
                           key.c_str());
        if (!err.empty())
            return false;
    }
    return true;
}

std::string
SweepJobSpec::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("spec", "sweep-job"); // format marker for journal readers
    w.rawField("core", coreParamsToJson(core));
    w.beginArray("mix");
    for (size_t b : mixBenchmarks)
        w.value(static_cast<double>(b));
    w.endArray();
    // Emitted only for trace-backed jobs: generator-backed specs
    // keep their exact historical bytes (journals, pinned cache
    // fixtures, and repro lines depend on that).
    if (!tracePaths.empty()) {
        w.beginArray("traces");
        for (const std::string &p : tracePaths)
            w.value(p);
        w.endArray();
        w.beginArray("traceHashes");
        for (const std::string &h : traceHashes)
            w.value(h);
        w.endArray();
    }
    // Likewise emitted only for multi-core jobs: single-core specs
    // serialize to the same bytes they always have, so canonical
    // cache keys and journal identities survive the upgrade.
    if (numCores > 1) {
        w.field("cores", static_cast<uint64_t>(numCores));
        w.field("alloc", allocation);
    }
    w.field("warmup", warmupCycles);
    w.field("cycles", measureCycles);
    w.field("seed", seed);
    if (!fault.empty())
        w.field("fault", fault);
    w.endObject();
    return w.str();
}

SweepJobSpec
SweepJobSpec::fromJson(const std::string &json)
{
    SweepJobSpec spec;
    std::string err;
    fatal_if(!trySweepJobSpecFromJson(json, spec, err), "%s",
             err.c_str());
    return spec;
}

bool
trySweepJobSpecFromJson(const std::string &json, SweepJobSpec &out,
                        std::string &err)
{
    JsonValue doc;
    std::string perr;
    if (!tryParseJson(json, doc, &perr)) {
        err = csprintf("job spec JSON: %s", perr.c_str());
        return false;
    }
    return trySweepJobSpecFromJson(doc, out, err);
}

bool
trySweepJobSpecFromJson(const JsonValue &doc, SweepJobSpec &out,
                        std::string &err)
{
    out = SweepJobSpec();
    if (!doc.isObject()) {
        err = "job spec JSON: expected a JSON object";
        return false;
    }

    SweepJobSpec &spec = out;
    bool sawCore = false, sawMix = false;
    for (const auto &[key, v] : doc.members) {
        if (key == "spec") {
            if (!v.isString() || v.raw != "sweep-job") {
                err = "job spec JSON: bad format marker";
                return false;
            }
        } else if (key == "core") {
            if (!tryCoreParamsFromJson(v, spec.core, err))
                return false;
            sawCore = true;
        } else if (key == "mix") {
            if (!v.isArray()) {
                err = "job spec JSON: 'mix' must be an array";
                return false;
            }
            for (const auto &item : v.items) {
                if (!item.isNumber()) {
                    err = "job spec JSON: 'mix' entries must be "
                          "numbers";
                    return false;
                }
                spec.mixBenchmarks.push_back(
                    static_cast<size_t>(item.asU64()));
            }
            sawMix = true;
        } else if (key == "traces") {
            if (!v.isArray()) {
                err = "job spec JSON: 'traces' must be an array";
                return false;
            }
            for (const auto &item : v.items) {
                if (!item.isString() || item.raw.empty()) {
                    err = "job spec JSON: 'traces' entries must be "
                          "non-empty strings";
                    return false;
                }
                spec.tracePaths.push_back(item.raw);
            }
        } else if (key == "traceHashes") {
            if (!v.isArray()) {
                err = "job spec JSON: 'traceHashes' must be an "
                      "array";
                return false;
            }
            for (const auto &item : v.items) {
                if (!item.isString() ||
                    !looksLikeTraceHash(item.raw)) {
                    err = "job spec JSON: 'traceHashes' entries "
                          "must be 16 lowercase hex digits";
                    return false;
                }
                spec.traceHashes.push_back(item.raw);
            }
        } else if (key == "cores") {
            if (!v.isNumber() || v.asU64() < 1) {
                err = "job spec JSON: 'cores' must be a number "
                      ">= 1";
                return false;
            }
            spec.numCores = static_cast<unsigned>(v.asU64());
        } else if (key == "alloc") {
            if (!v.isString() || !isAllocationPolicy(v.raw)) {
                err = csprintf("job spec JSON: 'alloc' must name an "
                               "allocation policy (%s)",
                               v.isString() ? v.raw.c_str() : "");
                return false;
            }
            spec.allocation = v.raw;
        } else if (key == "warmup") {
            if (!v.isNumber()) {
                err = "job spec JSON: 'warmup' must be a number";
                return false;
            }
            spec.warmupCycles = v.asU64();
        } else if (key == "cycles") {
            if (!v.isNumber()) {
                err = "job spec JSON: 'cycles' must be a number";
                return false;
            }
            spec.measureCycles = v.asU64();
        } else if (key == "seed") {
            if (!v.isNumber()) {
                err = "job spec JSON: 'seed' must be a number";
                return false;
            }
            spec.seed = v.asU64();
        } else if (key == "fault") {
            if (!v.isString()) {
                err = "job spec JSON: 'fault' must be a string";
                return false;
            }
            spec.fault = v.raw;
        } else {
            err = csprintf("job spec JSON: unknown key '%s'",
                           key.c_str());
            return false;
        }
    }
    if (!sawCore) {
        err = "job spec JSON: missing 'core'";
        return false;
    }
    // Workload shape: a single-core job names exactly core.threads
    // global threads; a multi-core job anything in [1, capacity].
    size_t capacity =
        static_cast<size_t>(spec.numCores) * spec.core.threads;
    if (!spec.tracePaths.empty()) {
        // Trace-backed job: the traces ARE the workload; a mix
        // would be ambiguous about which one runs.
        if (sawMix && !spec.mixBenchmarks.empty()) {
            err = "job spec JSON: 'mix' must be empty for "
                  "trace-backed jobs";
            return false;
        }
        if (spec.numCores == 1
                ? spec.tracePaths.size() != spec.core.threads
                : spec.tracePaths.size() > capacity) {
            err = csprintf("job spec JSON: %zu traces for %u "
                           "cores x %u threads",
                           spec.tracePaths.size(), spec.numCores,
                           spec.core.threads);
            return false;
        }
        if (!spec.traceHashes.empty() &&
            spec.traceHashes.size() != spec.tracePaths.size()) {
            err = csprintf("job spec JSON: %zu trace hashes for "
                           "%zu traces", spec.traceHashes.size(),
                           spec.tracePaths.size());
            return false;
        }
        return true;
    }
    if (!spec.traceHashes.empty()) {
        err = "job spec JSON: 'traceHashes' without 'traces'";
        return false;
    }
    if (!sawMix) {
        err = "job spec JSON: missing 'mix'";
        return false;
    }
    if (spec.numCores == 1
            ? spec.mixBenchmarks.size() != spec.core.threads
            : spec.mixBenchmarks.size() > capacity ||
              spec.mixBenchmarks.empty()) {
        err = csprintf("job spec JSON: %zu mix entries for %u "
                       "cores x %u threads",
                       spec.mixBenchmarks.size(), spec.numCores,
                       spec.core.threads);
        return false;
    }
    return true;
}

bool
fillTraceHashes(SweepJobSpec &spec, std::string &err)
{
    if (spec.tracePaths.empty() ||
        spec.traceHashes.size() == spec.tracePaths.size())
        return true;
    spec.traceHashes.clear();
    for (const std::string &path : spec.tracePaths) {
        std::string hash, herr;
        if (!tryTraceFileHash(path, hash, herr)) {
            err = csprintf("job spec JSON: trace file '%s' "
                           "unreadable: %s",
                           path.c_str(), herr.c_str());
            return false;
        }
        spec.traceHashes.push_back(std::move(hash));
    }
    return true;
}

bool
tryCanonicalJobKey(const std::string &json, std::string &key,
                   std::string &err)
{
    // Keying on the caller's raw bytes would make the cache
    // identity depend on field order, whitespace, number
    // formatting, and which defaulted fields the client bothered to
    // send. Normalize through the struct: fromJson materializes
    // defaults, toJson emits a fixed field order with canonical
    // number formatting.
    SweepJobSpec spec;
    if (!trySweepJobSpecFromJson(json, spec, err))
        return false;
    // Trace-backed specs are keyed by content: compute any missing
    // hashes now (and reject unreadable files here, at parse time,
    // rather than at worker launch). Present hashes are trusted, so
    // canonicalizing an already-canonical key never touches disk.
    if (!fillTraceHashes(spec, err))
        return false;
    key = spec.toJson();
    return true;
}

std::string
canonicalJobKey(const SweepJobSpec &spec)
{
    return spec.toJson();
}

std::string
LeaseRecord::toJson() const
{
    JsonWriter w(JsonWriter::kFullPrecision);
    w.beginObject();
    w.field("lease", "sweep-lease");
    w.field("key", key);
    w.field("node", node);
    w.field("seq", seq);
    w.field("issued_unix", issuedUnix);
    w.field("deadline_unix", deadlineUnix);
    w.endObject();
    return w.str();
}

bool
isLeaseRecord(const JsonValue &obj)
{
    if (!obj.isObject())
        return false;
    const JsonValue *marker = obj.find("lease");
    return marker && marker->isString() &&
           marker->raw == "sweep-lease";
}

bool
tryLeaseRecordFromJson(const JsonValue &doc, LeaseRecord &out,
                       std::string &err)
{
    out = LeaseRecord();
    if (!isLeaseRecord(doc)) {
        err = "lease record JSON: missing \"lease\":\"sweep-lease\" "
              "marker";
        return false;
    }
    bool sawKey = false, sawNode = false;
    for (const auto &[key, v] : doc.members) {
        if (key == "lease") {
            continue; // marker, checked above
        } else if (key == "key") {
            if (!v.isString()) {
                err = "lease record JSON: 'key' must be a string";
                return false;
            }
            out.key = v.raw;
            sawKey = true;
        } else if (key == "node") {
            if (!v.isString()) {
                err = "lease record JSON: 'node' must be a string";
                return false;
            }
            out.node = v.raw;
            sawNode = true;
        } else if (key == "seq") {
            if (!v.isNumber()) {
                err = "lease record JSON: 'seq' must be a number";
                return false;
            }
            out.seq = v.asU64();
        } else if (key == "issued_unix") {
            if (!v.isNumber()) {
                err = "lease record JSON: 'issued_unix' must be a "
                      "number";
                return false;
            }
            out.issuedUnix = v.asDouble();
        } else if (key == "deadline_unix") {
            if (!v.isNumber()) {
                err = "lease record JSON: 'deadline_unix' must be a "
                      "number";
                return false;
            }
            out.deadlineUnix = v.asDouble();
        } else {
            err = csprintf("lease record JSON: unknown key '%s'",
                           key.c_str());
            return false;
        }
    }
    if (!sawKey) {
        err = "lease record JSON: missing 'key'";
        return false;
    }
    if (!sawNode) {
        err = "lease record JSON: missing 'node'";
        return false;
    }
    return true;
}

bool
tryLeaseRecordFromJson(const std::string &json, LeaseRecord &out,
                       std::string &err)
{
    JsonValue doc;
    std::string perr;
    if (!tryParseJson(json, doc, &perr)) {
        err = csprintf("lease record JSON: %s", perr.c_str());
        return false;
    }
    return tryLeaseRecordFromJson(doc, out, err);
}

} // namespace validate
} // namespace shelf
