#include "validate/config_json.hh"

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{
namespace validate
{

namespace
{

const char *
fetchPolicyName(CoreParams::FetchPolicy p)
{
    return p == CoreParams::FetchPolicy::ICount ? "icount"
                                                : "round-robin";
}

const char *
memModelName(CoreParams::MemModel m)
{
    return m == CoreParams::MemModel::TSO ? "tso" : "relaxed";
}

SsrDesign
parseSsrDesign(const std::string &s)
{
    if (s == "single")
        return SsrDesign::Single;
    if (s == "two")
        return SsrDesign::Two;
    if (s == "per-run")
        return SsrDesign::PerRun;
    fatal("bad SSR design '%s'", s.c_str());
}

SteerPolicyKind
parseSteering(const std::string &s)
{
    if (s == "always-iq")
        return SteerPolicyKind::AlwaysIQ;
    if (s == "always-shelf")
        return SteerPolicyKind::AlwaysShelf;
    if (s == "practical")
        return SteerPolicyKind::Practical;
    if (s == "oracle")
        return SteerPolicyKind::Oracle;
    fatal("bad steering policy '%s'", s.c_str());
}

CoreParams::FetchPolicy
parseFetchPolicy(const std::string &s)
{
    if (s == "icount")
        return CoreParams::FetchPolicy::ICount;
    if (s == "round-robin")
        return CoreParams::FetchPolicy::RoundRobin;
    fatal("bad fetch policy '%s'", s.c_str());
}

CoreParams::MemModel
parseMemModel(const std::string &s)
{
    if (s == "relaxed")
        return CoreParams::MemModel::Relaxed;
    if (s == "tso")
        return CoreParams::MemModel::TSO;
    fatal("bad memory model '%s'", s.c_str());
}

} // namespace

std::string
coreParamsToJson(const CoreParams &p)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", p.name);
    w.field("threads", static_cast<uint64_t>(p.threads));
    w.field("fetchWidth", static_cast<uint64_t>(p.fetchWidth));
    w.field("dispatchWidth", static_cast<uint64_t>(p.dispatchWidth));
    w.field("issueWidth", static_cast<uint64_t>(p.issueWidth));
    w.field("commitWidth", static_cast<uint64_t>(p.commitWidth));
    w.field("fetchToDispatch",
            static_cast<uint64_t>(p.fetchToDispatch));
    w.field("robEntries", static_cast<uint64_t>(p.robEntries));
    w.field("iqEntries", static_cast<uint64_t>(p.iqEntries));
    w.field("lqEntries", static_cast<uint64_t>(p.lqEntries));
    w.field("sqEntries", static_cast<uint64_t>(p.sqEntries));
    w.field("shelfEntries", static_cast<uint64_t>(p.shelfEntries));
    w.field("optimisticShelf", p.optimisticShelf);
    w.field("ssrDesign", ssrDesignName(p.ssrDesign));
    w.field("interClusterDelay",
            static_cast<uint64_t>(p.interClusterDelay));
    w.field("shelfReleaseAtWriteback", p.shelfReleaseAtWriteback);
    w.field("fetchPolicy", fetchPolicyName(p.fetchPolicy));
    w.field("memModel", memModelName(p.memModel));
    w.field("steering", steerPolicyName(p.steering));
    w.field("adaptiveShelf", p.adaptiveShelf);
    w.field("adaptiveEpochCycles",
            static_cast<uint64_t>(p.adaptiveEpochCycles));
    w.field("shadowOracle", p.shadowOracle);
    w.field("rctBits", static_cast<uint64_t>(p.rctBits));
    w.field("pltColumns", static_cast<uint64_t>(p.pltColumns));
    w.field("steerSlack", static_cast<uint64_t>(p.steerSlack));
    w.field("branchResolveExtra",
            static_cast<uint64_t>(p.branchResolveExtra));
    w.field("loadResolveDelay",
            static_cast<uint64_t>(p.loadResolveDelay));
    w.field("redirectPenalty",
            static_cast<uint64_t>(p.redirectPenalty));
    w.field("intAluUnits", static_cast<uint64_t>(p.intAluUnits));
    w.field("intMultUnits", static_cast<uint64_t>(p.intMultUnits));
    w.field("fpUnits", static_cast<uint64_t>(p.fpUnits));
    w.field("memPorts", static_cast<uint64_t>(p.memPorts));
    w.field("fetchBufferPerThread",
            static_cast<uint64_t>(p.fetchBufferPerThread));
    w.field("physRegs", static_cast<uint64_t>(p.physRegs));
    w.field("extTags", static_cast<uint64_t>(p.extTags));
    w.field("watchdogCycles",
            static_cast<uint64_t>(p.watchdogCycles));
    w.field("flightRecorderEvents",
            static_cast<uint64_t>(p.flightRecorderEvents));
    w.field("skipQuiescentCycles", p.skipQuiescentCycles);
    w.endObject();
    return w.str();
}

CoreParams
coreParamsFromJson(const std::string &json)
{
    JsonValue doc;
    std::string err;
    fatal_if(!tryParseJson(json, doc, &err), "config JSON: %s",
             err.c_str());
    return coreParamsFromJson(doc);
}

CoreParams
coreParamsFromJson(const JsonValue &doc)
{
    CoreParams p;
    fatal_if(!doc.isObject(),
             "config JSON: expected a JSON object");

    auto str = [&](const JsonValue &v,
                   const std::string &key) -> const std::string & {
        fatal_if(!v.isString(),
                 "config JSON: '%s' must be a string", key.c_str());
        return v.raw;
    };
    auto num = [&](const JsonValue &v,
                   const std::string &key) -> unsigned {
        fatal_if(!v.isNumber(),
                 "config JSON: '%s' must be a number", key.c_str());
        return static_cast<unsigned>(v.asU64());
    };
    auto boolean = [&](const JsonValue &v, const std::string &key) {
        fatal_if(!v.isBool(),
                 "config JSON: '%s' must be a boolean", key.c_str());
        return v.boolean;
    };

    for (const auto &[key, v] : doc.members) {
        if (key == "name") p.name = str(v, key);
        else if (key == "threads") p.threads = num(v, key);
        else if (key == "fetchWidth") p.fetchWidth = num(v, key);
        else if (key == "dispatchWidth")
            p.dispatchWidth = num(v, key);
        else if (key == "issueWidth") p.issueWidth = num(v, key);
        else if (key == "commitWidth") p.commitWidth = num(v, key);
        else if (key == "fetchToDispatch")
            p.fetchToDispatch = num(v, key);
        else if (key == "robEntries") p.robEntries = num(v, key);
        else if (key == "iqEntries") p.iqEntries = num(v, key);
        else if (key == "lqEntries") p.lqEntries = num(v, key);
        else if (key == "sqEntries") p.sqEntries = num(v, key);
        else if (key == "shelfEntries")
            p.shelfEntries = num(v, key);
        else if (key == "optimisticShelf")
            p.optimisticShelf = boolean(v, key);
        else if (key == "ssrDesign")
            p.ssrDesign = parseSsrDesign(str(v, key));
        else if (key == "interClusterDelay")
            p.interClusterDelay = num(v, key);
        else if (key == "shelfReleaseAtWriteback")
            p.shelfReleaseAtWriteback = boolean(v, key);
        else if (key == "fetchPolicy")
            p.fetchPolicy = parseFetchPolicy(str(v, key));
        else if (key == "memModel")
            p.memModel = parseMemModel(str(v, key));
        else if (key == "steering")
            p.steering = parseSteering(str(v, key));
        else if (key == "adaptiveShelf")
            p.adaptiveShelf = boolean(v, key);
        else if (key == "adaptiveEpochCycles")
            p.adaptiveEpochCycles = num(v, key);
        else if (key == "shadowOracle")
            p.shadowOracle = boolean(v, key);
        else if (key == "rctBits") p.rctBits = num(v, key);
        else if (key == "pltColumns") p.pltColumns = num(v, key);
        else if (key == "steerSlack") p.steerSlack = num(v, key);
        else if (key == "branchResolveExtra")
            p.branchResolveExtra = num(v, key);
        else if (key == "loadResolveDelay")
            p.loadResolveDelay = num(v, key);
        else if (key == "redirectPenalty")
            p.redirectPenalty = num(v, key);
        else if (key == "intAluUnits") p.intAluUnits = num(v, key);
        else if (key == "intMultUnits")
            p.intMultUnits = num(v, key);
        else if (key == "fpUnits") p.fpUnits = num(v, key);
        else if (key == "memPorts") p.memPorts = num(v, key);
        else if (key == "fetchBufferPerThread")
            p.fetchBufferPerThread = num(v, key);
        else if (key == "physRegs") p.physRegs = num(v, key);
        else if (key == "extTags") p.extTags = num(v, key);
        else if (key == "watchdogCycles")
            p.watchdogCycles = num(v, key);
        else if (key == "flightRecorderEvents")
            p.flightRecorderEvents = num(v, key);
        else if (key == "skipQuiescentCycles")
            p.skipQuiescentCycles = boolean(v, key);
        else
            fatal("config JSON: unknown key '%s'", key.c_str());
    }
    return p;
}

std::string
SweepJobSpec::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("spec", "sweep-job"); // format marker for journal readers
    w.rawField("core", coreParamsToJson(core));
    w.beginArray("mix");
    for (size_t b : mixBenchmarks)
        w.value(static_cast<double>(b));
    w.endArray();
    w.field("warmup", warmupCycles);
    w.field("cycles", measureCycles);
    w.field("seed", seed);
    if (!fault.empty())
        w.field("fault", fault);
    w.endObject();
    return w.str();
}

SweepJobSpec
SweepJobSpec::fromJson(const std::string &json)
{
    JsonValue doc;
    std::string err;
    fatal_if(!tryParseJson(json, doc, &err), "job spec JSON: %s",
             err.c_str());
    fatal_if(!doc.isObject(),
             "job spec JSON: expected a JSON object");

    SweepJobSpec spec;
    bool sawCore = false, sawMix = false;
    for (const auto &[key, v] : doc.members) {
        if (key == "spec") {
            fatal_if(!v.isString() || v.raw != "sweep-job",
                     "job spec JSON: bad format marker");
        } else if (key == "core") {
            spec.core = coreParamsFromJson(v);
            sawCore = true;
        } else if (key == "mix") {
            fatal_if(!v.isArray(),
                     "job spec JSON: 'mix' must be an array");
            for (const auto &item : v.items) {
                fatal_if(!item.isNumber(), "job spec JSON: 'mix' "
                         "entries must be numbers");
                spec.mixBenchmarks.push_back(
                    static_cast<size_t>(item.asU64()));
            }
            sawMix = true;
        } else if (key == "warmup") {
            fatal_if(!v.isNumber(),
                     "job spec JSON: 'warmup' must be a number");
            spec.warmupCycles = v.asU64();
        } else if (key == "cycles") {
            fatal_if(!v.isNumber(),
                     "job spec JSON: 'cycles' must be a number");
            spec.measureCycles = v.asU64();
        } else if (key == "seed") {
            fatal_if(!v.isNumber(),
                     "job spec JSON: 'seed' must be a number");
            spec.seed = v.asU64();
        } else if (key == "fault") {
            fatal_if(!v.isString(),
                     "job spec JSON: 'fault' must be a string");
            spec.fault = v.raw;
        } else {
            fatal("job spec JSON: unknown key '%s'", key.c_str());
        }
    }
    fatal_if(!sawCore, "job spec JSON: missing 'core'");
    fatal_if(!sawMix, "job spec JSON: missing 'mix'");
    fatal_if(spec.mixBenchmarks.size() != spec.core.threads,
             "job spec JSON: %zu mix entries for %u threads",
             spec.mixBenchmarks.size(), spec.core.threads);
    return spec;
}

} // namespace validate
} // namespace shelf
