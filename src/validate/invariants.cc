#include "validate/invariants.hh"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/core.hh"

namespace shelf
{
namespace validate
{

namespace
{

/** Still occupying pipeline resources. */
bool
liveInst(const DynInst &inst)
{
    return !inst.squashed && !inst.retired;
}

std::string
ident(const DynInst &inst)
{
    return csprintf("t%d #%llu traceIdx %llu", inst.tid,
                    (unsigned long long)inst.seq,
                    (unsigned long long)inst.traceIdx);
}

void
fail(std::vector<InvariantFailure> &out, const char *check,
     std::string detail)
{
    out.push_back(InvariantFailure{check, std::move(detail)});
}

} // namespace

struct InvariantChecker::Check
{
    const char *name;
    void (*fn)(const Core &, std::vector<InvariantFailure> &);
};

const std::vector<InvariantChecker::Check> &
InvariantChecker::registry()
{
    static const std::vector<Check> checks = {
        {"inflight-order", &InvariantChecker::checkInflightOrder},
        {"rob-issue-head", &InvariantChecker::checkRobIssueHead},
        {"iq-consistency", &InvariantChecker::checkIqConsistency},
        {"shelf-retire-pointer",
         &InvariantChecker::checkShelfRetirePointer},
        {"shelf-rob-gating", &InvariantChecker::checkShelfRobGating},
        {"rename-conservation",
         &InvariantChecker::checkRenameConservation},
        {"ssr-coverage", &InvariantChecker::checkSsrCoverage},
        {"lsq-order", &InvariantChecker::checkLsqOrder},
        {"incomplete-loads", &InvariantChecker::checkIncompleteLoads},
        {"scoreboard-pending",
         &InvariantChecker::checkScoreboardPending},
        {"tso-retire-gating",
         &InvariantChecker::checkTsoRetireGating},
    };
    return checks;
}

std::vector<std::string>
InvariantChecker::checkNames()
{
    std::vector<std::string> names;
    for (const Check &ch : registry())
        names.push_back(ch.name);
    return names;
}

std::vector<InvariantFailure>
InvariantChecker::runAll(const Core &core)
{
    std::vector<InvariantFailure> out;
    for (const Check &ch : registry())
        ch.fn(core, out);
    return out;
}

std::vector<InvariantFailure>
InvariantChecker::run(const Core &core, const std::string &check)
{
    for (const Check &ch : registry()) {
        if (check == ch.name) {
            std::vector<InvariantFailure> out;
            ch.fn(core, out);
            return out;
        }
    }
    fatal("unknown invariant check '%s'", check.c_str());
}

/**
 * The per-thread in-flight window is in program order: per-thread
 * sequence numbers and trace indices strictly increase over the
 * non-squashed instructions (re-fetched instructions may only enter
 * after the squashed originals left).
 */
void
InvariantChecker::checkInflightOrder(
    const Core &c, std::vector<InvariantFailure> &out)
{
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        const DynInst *prev = nullptr;
        for (const auto &inst : c.threads[t].inflight) {
            if (inst->squashed)
                continue;
            if (prev && inst->seq <= prev->seq) {
                fail(out, "inflight-order",
                     csprintf("%s follows %s out of program order",
                              ident(*inst).c_str(),
                              ident(*prev).c_str()));
            }
            if (prev && inst->traceIdx <= prev->traceIdx) {
                fail(out, "inflight-order",
                     csprintf("%s repeats/reverses the trace cursor "
                              "after %s", ident(*inst).c_str(),
                              ident(*prev).c_str()));
            }
            prev = inst.get();
        }
    }
}

/**
 * The issue-tracking bitvector's head pointer equals the ROB index
 * of the oldest unissued IQ instruction (or the tail when everything
 * issued), and the per-cycle snapshot never runs ahead of it.
 */
void
InvariantChecker::checkRobIssueHead(
    const Core &c, std::vector<InvariantFailure> &out)
{
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        VIdx tail = c.rob->tailIndex(tid);
        VIdx oldestUnissued = tail;
        for (const auto &inst : c.threads[t].inflight) {
            if (inst->squashed || inst->toShelf || inst->issued)
                continue;
            oldestUnissued = std::min(oldestUnissued, inst->robIdx);
        }
        VIdx head = c.rob->issueHead(tid);
        VIdx snap = c.rob->issueHeadSnapshot(tid);
        if (head != oldestUnissued) {
            fail(out, "rob-issue-head",
                 csprintf("t%u issue head %llu != oldest unissued IQ "
                          "index %llu", t,
                          (unsigned long long)head,
                          (unsigned long long)oldestUnissued));
        }
        if (snap > head || head > tail) {
            fail(out, "rob-issue-head",
                 csprintf("t%u issue head out of bounds: snapshot "
                          "%llu, head %llu, tail %llu", t,
                          (unsigned long long)snap,
                          (unsigned long long)head,
                          (unsigned long long)tail));
        }
    }
}

/**
 * IQ occupancy agrees with the pipeline: the residents are exactly
 * the dispatched, unissued, non-squashed IQ-steered instructions.
 */
void
InvariantChecker::checkIqConsistency(
    const Core &c, std::vector<InvariantFailure> &out)
{
    auto contents = c.iq->contents();
    std::unordered_set<const DynInst *> resident;
    for (const auto &e : contents) {
        if (e->squashed) {
            fail(out, "iq-consistency",
                 csprintf("squashed instruction %s resident in IQ",
                          ident(*e).c_str()));
        }
        if (e->issued) {
            fail(out, "iq-consistency",
                 csprintf("issued instruction %s still resident in "
                          "IQ", ident(*e).c_str()));
        }
        if (e->toShelf) {
            fail(out, "iq-consistency",
                 csprintf("shelf-steered instruction %s resident in "
                          "IQ", ident(*e).c_str()));
        }
        resident.insert(e.get());
    }
    if (c.iq->size() != contents.size()) {
        fail(out, "iq-consistency",
             csprintf("IQ occupancy counter %zu != %zu residents",
                      c.iq->size(), contents.size()));
    }
    size_t expected = 0;
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        for (const auto &inst : c.threads[t].inflight) {
            if (inst->squashed || inst->toShelf || inst->issued)
                continue;
            ++expected;
            if (!resident.count(inst.get())) {
                fail(out, "iq-consistency",
                     csprintf("dispatched unissued IQ instruction %s "
                              "not resident in the IQ",
                              ident(*inst).c_str()));
            }
        }
    }
    if (expected != contents.size()) {
        fail(out, "iq-consistency",
             csprintf("IQ holds %zu instructions, pipeline expects "
                      "%zu", contents.size(), expected));
    }
}

/**
 * The shelf retire bitvector's pointer equals the eldest unretired
 * shelf index (or the tail when nothing is pending), and the
 * out-of-order-retired set stays strictly between pointer and tail.
 */
void
InvariantChecker::checkShelfRetirePointer(
    const Core &c, std::vector<InvariantFailure> &out)
{
    if (!c.shelfQ->enabled())
        return;
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        VIdx tail = c.shelfQ->tailIndex(tid);
        VIdx eldestUnretired = tail;
        for (const auto &inst : c.threads[t].inflight) {
            if (!liveInst(*inst) || !inst->toShelf)
                continue;
            eldestUnretired = std::min(eldestUnretired,
                                       inst->shelfIdx);
        }
        VIdx ptr = c.shelfQ->retirePointer(tid);
        if (ptr > tail) {
            fail(out, "shelf-retire-pointer",
                 csprintf("t%u retire pointer %llu beyond tail %llu",
                          t, (unsigned long long)ptr,
                          (unsigned long long)tail));
        }
        if (ptr != eldestUnretired) {
            fail(out, "shelf-retire-pointer",
                 csprintf("t%u retire pointer %llu != eldest "
                          "unretired shelf index %llu", t,
                          (unsigned long long)ptr,
                          (unsigned long long)eldestUnretired));
        }
        for (VIdx idx : c.shelfQ->retiredOutOfOrderIndices(tid)) {
            if (idx <= ptr || idx >= tail) {
                fail(out, "shelf-retire-pointer",
                     csprintf("t%u retire bitvector entry %llu "
                              "outside (%llu, %llu)", t,
                              (unsigned long long)idx,
                              (unsigned long long)ptr,
                              (unsigned long long)tail));
            }
        }
    }
}

/**
 * ROB retirement never passed an unretired elder shelf instruction
 * (the retire-pointer gate of paper section III-B): scanning the
 * window in program order, no retired IQ instruction may appear
 * younger than a pending shelf instruction.
 */
void
InvariantChecker::checkShelfRobGating(
    const Core &c, std::vector<InvariantFailure> &out)
{
    if (!c.shelfQ->enabled())
        return;
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        const DynInst *pendingShelf = nullptr;
        for (const auto &inst : c.threads[t].inflight) {
            if (inst->squashed)
                continue;
            if (inst->toShelf && !inst->retired) {
                if (!pendingShelf)
                    pendingShelf = inst.get();
            } else if (!inst->toShelf && inst->retired &&
                       pendingShelf) {
                fail(out, "shelf-rob-gating",
                     csprintf("IQ instruction %s retired past "
                              "pending shelf instruction %s",
                              ident(*inst).c_str(),
                              ident(*pendingShelf).c_str()));
            }
        }
    }
}

/**
 * Exact conservation of physical registers and extension tags: every
 * identifier is in a free list, mapped by a RAT, or held as the
 * previous mapping of a live renamed instruction — exactly once.
 * Catches tag leaks and double frees across squash walk-backs.
 */
void
InvariantChecker::checkRenameConservation(
    const Core &c, std::vector<InvariantFailure> &out)
{
    std::vector<PRI> heldPris;
    std::vector<Tag> heldTags;
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        for (const auto &inst : c.threads[t].inflight) {
            if (!liveInst(*inst) || !inst->hasDst())
                continue;
            // Shelf instructions reuse their destination PRI
            // (prevPri == dstPri, still RAT-reachable); only IQ
            // instructions hold a dead-on-retire previous PRI.
            if (!inst->toShelf)
                heldPris.push_back(inst->prevPri);
            if (inst->prevTag != inst->prevPri)
                heldTags.push_back(inst->prevTag);
        }
    }
    std::string err = c.rename->auditConservation(heldPris, heldTags);
    if (!err.empty())
        fail(out, "rename-conservation", err);
}

/**
 * SSR agreement with in-flight speculation: for every issued,
 * uncompleted speculative instruction still inside its resolution
 * window, the SSR governing same-thread shelf issue covers the
 * remaining cycles. A shelf instruction passing shelfMayIssue() under
 * a stale SSR would write back while an elder branch/load can still
 * squash it.
 */
void
InvariantChecker::checkSsrCoverage(
    const Core &c, std::vector<InvariantFailure> &out)
{
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        for (const auto &inst : c.threads[t].inflight) {
            if (inst->squashed || !inst->issued || inst->completed)
                continue;
            unsigned rd = c.resolveDelay(*inst);
            if (rd == 0)
                continue;
            Cycle resolveAt = inst->issueCycle + rd;
            if (resolveAt <= c.now)
                continue; // window elapsed (e.g. load awaiting data)
            unsigned remaining =
                static_cast<unsigned>(resolveAt - c.now);
            unsigned observed;
            if (inst->toShelf ||
                c.ssr->design() == SsrDesign::PerRun) {
                observed = c.ssr->shelfValue(tid, inst->runId);
            } else {
                observed = c.ssr->iqValue(tid);
            }
            if (observed < remaining) {
                fail(out, "ssr-coverage",
                     csprintf("%s (%s, run %llu) resolves in %u "
                              "cycles but the governing SSR reads "
                              "%u", ident(*inst).c_str(),
                              inst->toShelf ? "shelf" : "iq",
                              (unsigned long long)inst->runId,
                              remaining, observed));
            }
        }
    }
}

/**
 * LQ/SQ discipline: queues are per-thread and age-ordered, loads in
 * the LQ are exactly the live IQ-steered loads, every live IQ store
 * holds its SQ entry, and shelf stores hold SQ entries if and only
 * if the core runs TSO (section III-D).
 */
void
InvariantChecker::checkLsqOrder(
    const Core &c, std::vector<InvariantFailure> &out)
{
    bool tso = c.coreParams.memModel == CoreParams::MemModel::TSO;
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);

        auto lq = c.lsq->lqContents(tid);
        std::unordered_set<const DynInst *> inLq;
        const DynInst *prev = nullptr;
        for (const auto &ld : lq) {
            if (!ld->isLoad() || ld->tid != tid) {
                fail(out, "lsq-order",
                     csprintf("LQ t%u entry %s is not a load of this "
                              "thread", t, ident(*ld).c_str()));
            }
            if (ld->toShelf) {
                fail(out, "lsq-order",
                     csprintf("shelf-steered load %s holds an LQ "
                              "entry", ident(*ld).c_str()));
            }
            if (ld->squashed) {
                fail(out, "lsq-order",
                     csprintf("squashed load %s still in the LQ",
                              ident(*ld).c_str()));
            }
            if (prev && ld->seq <= prev->seq) {
                fail(out, "lsq-order",
                     csprintf("LQ t%u not in program order at %s", t,
                              ident(*ld).c_str()));
            }
            prev = ld.get();
            inLq.insert(ld.get());
        }
        size_t liveIqLoads = 0;
        for (const auto &inst : c.threads[t].inflight) {
            if (!liveInst(*inst) || !inst->isLoad() || inst->toShelf)
                continue;
            ++liveIqLoads;
            if (!inLq.count(inst.get())) {
                fail(out, "lsq-order",
                     csprintf("live IQ load %s missing from the LQ",
                              ident(*inst).c_str()));
            }
        }
        if (liveIqLoads != lq.size()) {
            fail(out, "lsq-order",
                 csprintf("LQ t%u holds %zu entries, pipeline "
                          "expects %zu", t, lq.size(), liveIqLoads));
        }

        auto sq = c.lsq->sqContents(tid);
        std::unordered_set<const DynInst *> inSq;
        prev = nullptr;
        for (const auto &st : sq) {
            if (!st->isStore() || st->tid != tid) {
                fail(out, "lsq-order",
                     csprintf("SQ t%u entry %s is not a store of "
                              "this thread", t, ident(*st).c_str()));
            }
            if (st->squashed) {
                fail(out, "lsq-order",
                     csprintf("squashed store %s still in the SQ",
                              ident(*st).c_str()));
            }
            if (st->toShelf && !tso) {
                fail(out, "lsq-order",
                     csprintf("shelf store %s holds an SQ entry "
                              "under the relaxed model",
                              ident(*st).c_str()));
            }
            if (prev && st->seq <= prev->seq) {
                fail(out, "lsq-order",
                     csprintf("SQ t%u not in program order at %s", t,
                              ident(*st).c_str()));
            }
            prev = st.get();
            inSq.insert(st.get());
        }
        for (const auto &inst : c.threads[t].inflight) {
            if (!liveInst(*inst) || !inst->isStore())
                continue;
            bool needsEntry = !inst->toShelf || tso;
            if (needsEntry && !inSq.count(inst.get())) {
                fail(out, "lsq-order",
                     csprintf("live store %s missing from the SQ",
                              ident(*inst).c_str()));
            }
        }
    }
}

/**
 * The TSO speculation set agrees with the pipeline: a thread's
 * incomplete-load set contains exactly the sequence numbers of its
 * live loads that have not yet obtained data.
 */
void
InvariantChecker::checkIncompleteLoads(
    const Core &c, std::vector<InvariantFailure> &out)
{
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        std::set<SeqNum> expected;
        for (const auto &inst : c.threads[t].inflight) {
            if (!inst->squashed && inst->isLoad() &&
                !inst->completed) {
                expected.insert(inst->seq);
            }
        }
        const auto &actual = c.threads[t].incompleteLoads;
        if (actual == expected)
            continue;
        for (SeqNum s : expected) {
            if (!actual.count(s)) {
                fail(out, "incomplete-loads",
                     csprintf("t%u load #%llu incomplete but not "
                              "tracked", t, (unsigned long long)s));
            }
        }
        for (SeqNum s : actual) {
            if (!expected.count(s)) {
                fail(out, "incomplete-loads",
                     csprintf("t%u tracks #%llu as an incomplete "
                              "load but no such live load exists", t,
                              (unsigned long long)s));
            }
        }
    }
}

/**
 * Scoreboard agreement: a dispatched, unissued destination tag is
 * pending (readyAt == never); a completed producer's tag is ready no
 * later than now. The free lists guarantee a live tag has a single
 * holder (see rename-conservation), so each tag is governed by
 * exactly one instruction. Retired instructions are excluded even
 * though they linger in the inflight list until cleanup: once a
 * younger same-register writer also retires, the tag returns to the
 * free list and may already carry a new producer's pending state.
 */
void
InvariantChecker::checkScoreboardPending(
    const Core &c, std::vector<InvariantFailure> &out)
{
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        for (const auto &inst : c.threads[t].inflight) {
            if (!liveInst(*inst) || !inst->hasDst())
                continue;
            Cycle ready = c.scoreboard->readyAt(inst->dstTag);
            if (!inst->issued && ready != kCycleNever) {
                fail(out, "scoreboard-pending",
                     csprintf("unissued %s has ready destination "
                              "tag %d (readyAt %llu)",
                              ident(*inst).c_str(), inst->dstTag,
                              (unsigned long long)ready));
            }
            if (inst->completed && ready > c.now) {
                fail(out, "scoreboard-pending",
                     csprintf("completed %s has unready destination "
                              "tag %d", ident(*inst).c_str(),
                              inst->dstTag));
            }
        }
    }
}

/**
 * TSO writeback gate (section III-D): no shelf instruction may have
 * retired while an elder load of its thread is still incomplete —
 * scanning in program order, a retired shelf instruction younger
 * than a live incomplete load is a violation (completion is
 * monotonic, so the state at retirement time is implied).
 */
void
InvariantChecker::checkTsoRetireGating(
    const Core &c, std::vector<InvariantFailure> &out)
{
    if (c.coreParams.memModel != CoreParams::MemModel::TSO)
        return;
    for (unsigned t = 0; t < c.coreParams.threads; ++t) {
        const DynInst *incompleteLoad = nullptr;
        for (const auto &inst : c.threads[t].inflight) {
            if (inst->squashed)
                continue;
            if (inst->retired && inst->toShelf && incompleteLoad) {
                fail(out, "tso-retire-gating",
                     csprintf("shelf instruction %s retired under "
                              "incomplete elder load %s",
                              ident(*inst).c_str(),
                              ident(*incompleteLoad).c_str()));
            }
            if (inst->isLoad() && !inst->completed &&
                !inst->retired && !incompleteLoad) {
                incompleteLoad = inst.get();
            }
        }
    }
}

bool
InvariantChecker::corrupt(Core &core, const std::string &check)
{
    unsigned nthreads = core.coreParams.threads;

    if (check == "inflight-order") {
        for (unsigned t = 0; t < nthreads; ++t) {
            std::vector<DynInst *> live;
            for (const auto &inst : core.threads[t].inflight)
                if (!inst->squashed)
                    live.push_back(inst.get());
            if (live.size() >= 2) {
                live.front()->seq = live.back()->seq + 1000;
                return true;
            }
        }
        return false;
    }
    if (check == "rob-issue-head") {
        for (unsigned t = 0; t < nthreads; ++t) {
            for (const auto &inst : core.threads[t].inflight) {
                if (inst->squashed || inst->toShelf || inst->issued)
                    continue;
                // Advance the head past an unissued instruction, as
                // if its bitvector update had been skipped.
                core.rob->parts[t].issueHead = inst->robIdx + 1;
                return true;
            }
        }
        return false;
    }
    if (check == "iq-consistency") {
        auto contents = core.iq->contents();
        if (contents.empty())
            return false;
        contents.front()->issued = true;
        return true;
    }
    if (check == "shelf-retire-pointer") {
        if (!core.shelfQ->enabled())
            return false;
        for (unsigned t = 0; t < nthreads; ++t) {
            for (const auto &inst : core.threads[t].inflight) {
                if (!liveInst(*inst) || !inst->toShelf)
                    continue;
                // Skip the pointer-gating update: jump the pointer
                // past an unretired shelf index.
                core.shelfQ->parts[t].retirePtr =
                    inst->shelfIdx + 1;
                return true;
            }
        }
        return false;
    }
    if (check == "shelf-rob-gating") {
        for (unsigned t = 0; t < nthreads; ++t) {
            const DynInst *pendingShelf = nullptr;
            for (const auto &inst : core.threads[t].inflight) {
                if (inst->squashed)
                    continue;
                if (inst->toShelf && !inst->retired) {
                    pendingShelf = inst.get();
                } else if (!inst->toShelf && !inst->retired &&
                           pendingShelf) {
                    inst->retired = true;
                    return true;
                }
            }
        }
        return false;
    }
    if (check == "rename-conservation") {
        if (!core.rename->extFreeList.empty()) {
            core.rename->extFreeList.pop_back();
            return true;
        }
        if (!core.rename->physFreeList.empty()) {
            core.rename->physFreeList.pop_back();
            return true;
        }
        return false;
    }
    if (check == "ssr-coverage") {
        for (unsigned t = 0; t < nthreads; ++t) {
            for (const auto &inst : core.threads[t].inflight) {
                if (inst->squashed || !inst->issued ||
                    inst->completed) {
                    continue;
                }
                unsigned rd = core.resolveDelay(*inst);
                if (rd == 0 || inst->issueCycle + rd <= core.now)
                    continue;
                core.ssr->clear(static_cast<ThreadID>(t));
                return true;
            }
        }
        return false;
    }
    if (check == "lsq-order") {
        for (unsigned t = 0; t < nthreads; ++t) {
            auto lq = core.lsq->lqContents(static_cast<ThreadID>(t));
            if (!lq.empty()) {
                lq.front()->toShelf = true;
                return true;
            }
        }
        for (unsigned t = 0; t < nthreads; ++t) {
            auto sq = core.lsq->sqContents(static_cast<ThreadID>(t));
            if (!sq.empty()) {
                sq.front()->squashed = true;
                return true;
            }
        }
        return false;
    }
    if (check == "incomplete-loads") {
        for (unsigned t = 0; t < nthreads; ++t) {
            auto &il = core.threads[t].incompleteLoads;
            if (!il.empty()) {
                il.erase(il.begin());
                return true;
            }
        }
        return false;
    }
    if (check == "scoreboard-pending") {
        for (unsigned t = 0; t < nthreads; ++t) {
            for (const auto &inst : core.threads[t].inflight) {
                if (inst->squashed || inst->issued ||
                    !inst->hasDst()) {
                    continue;
                }
                core.scoreboard->setReadyAt(inst->dstTag, core.now);
                return true;
            }
        }
        return false;
    }
    if (check == "tso-retire-gating") {
        if (core.coreParams.memModel != CoreParams::MemModel::TSO)
            return false;
        for (unsigned t = 0; t < nthreads; ++t) {
            DynInst *elderLoad = nullptr;
            for (const auto &inst : core.threads[t].inflight) {
                if (inst->squashed)
                    continue;
                if (inst->retired && inst->toShelf && elderLoad) {
                    // Rewind the elder load's completion, as if the
                    // shelf instruction had retired under it.
                    elderLoad->completed = false;
                    core.threads[t].incompleteLoads.insert(
                        elderLoad->seq);
                    return true;
                }
                if (inst->isLoad() && !inst->retired)
                    elderLoad = inst.get();
            }
        }
        return false;
    }
    fatal("unknown invariant check '%s'", check.c_str());
}

} // namespace validate
} // namespace shelf
