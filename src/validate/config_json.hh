/**
 * @file
 * CoreParams <-> JSON round trip for the fuzz driver's repro lines
 * (`shelfsim_fuzz --config-json '{...}' --seed S ...`) and the
 * sweep-job round trip the supervised sweep executor speaks: one
 * (core config, mix, simulation-controls) job serialized as a
 * single JSON document, handed to a sandboxed `--worker` process
 * and recorded verbatim in journal and quarantine-repro lines.
 *
 * The serialized forms start from defaults, so documents may omit
 * fields. Unknown keys are a fatal error (they are typos, not
 * forward compatibility).
 */

#ifndef SHELFSIM_VALIDATE_CONFIG_JSON_HH
#define SHELFSIM_VALIDATE_CONFIG_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hh"

namespace shelf
{

struct JsonValue;

namespace validate
{

/** Serialize every CoreParams field as a flat JSON object. */
std::string coreParamsToJson(const CoreParams &params);

/**
 * Parse a flat JSON object produced by coreParamsToJson() (or
 * hand-written; missing fields keep their defaults). fatal() on
 * malformed input or unknown keys. The result is NOT validated;
 * callers decide whether to run CoreParams::validate().
 */
CoreParams coreParamsFromJson(const std::string &json);

/** As above, from an already-parsed object node. */
CoreParams coreParamsFromJson(const JsonValue &obj);

/**
 * Non-fatal parser for untrusted input (the --serve daemon parses
 * client-supplied configs; a malformed request must produce an
 * error reply, not exit the process). Returns false with a message
 * in @p err on malformed input; @p out is then unspecified.
 */
bool tryCoreParamsFromJson(const JsonValue &obj, CoreParams &out,
                           std::string &err);

/**
 * One supervised sweep job: everything a worker process needs to
 * reproduce one (mix, config) cell of a sweep, byte-identically,
 * with no shared state beyond the binary itself.
 */
struct SweepJobSpec
{
    CoreParams core;
    /** spec2006Profiles() indices, one per hardware thread.
     * Mutually exclusive with tracePaths. */
    std::vector<size_t> mixBenchmarks;
    /**
     * Trace-backed workload: one trace file per hardware thread
     * (replayed instead of generated). When non-empty, mixBenchmarks
     * must be empty.
     */
    std::vector<std::string> tracePaths;
    /**
     * Content hashes of tracePaths (16 lowercase hex digits each,
     * see tryTraceFileHash). These — not the paths — are what makes
     * the canonical key content-addressed: two different files at
     * the same path can never alias in the result cache, and
     * editing a file in place is a cold miss. Serialized alongside
     * the paths; workers re-verify the hash before running.
     */
    std::vector<std::string> traceHashes;
    /**
     * Multi-core system mode: cores sharing the memory hierarchy
     * and the thread-to-core allocation policy (sim/allocation.hh).
     * Workloads (mixBenchmarks or tracePaths) then list every
     * global thread, up to numCores * core.threads. Serialized only
     * when numCores > 1 so single-core specs keep their exact
     * historical bytes (canonical keys are content addresses).
     */
    unsigned numCores = 1;
    std::string allocation = "round-robin";
    uint64_t warmupCycles = 4000;
    uint64_t measureCycles = 16000;
    uint64_t seed = 1;
    /**
     * Self-faulting hook for supervisor failure-path tests: "" (run
     * normally), "crash" (SIGSEGV before simulating), "hang" (loop
     * until killed), "exit" (exit(3)), "stop" (SIGSTOP itself:
     * alive but frozen, visible only to the wall-clock watchdog),
     * or "wedge" (stall retirement so the forward-progress watchdog
     * fires). Omitted from JSON when empty.
     */
    std::string fault;

    /**
     * Canonical serialized form; also the job's identity key in the
     * sweep journal (field order is fixed, so equal specs serialize
     * to equal bytes).
     */
    std::string toJson() const;

    static SweepJobSpec fromJson(const std::string &json);
};

/** Non-fatal SweepJobSpec parsers (see tryCoreParamsFromJson). */
bool trySweepJobSpecFromJson(const std::string &json,
                             SweepJobSpec &out, std::string &err);
bool trySweepJobSpecFromJson(const JsonValue &obj, SweepJobSpec &out,
                             std::string &err);

/**
 * Compute any missing trace content hashes of @p spec from disk.
 * Hashes already present are trusted (re-canonicalizing a key must
 * not do I/O). Returns false with a precise message in @p err when
 * a referenced trace file cannot be read.
 */
bool fillTraceHashes(SweepJobSpec &spec, std::string &err);

/**
 * Canonical content-address of a job-spec document: parse,
 * normalize (fixed field order, defaults materialized, canonical
 * number formatting, no insignificant whitespace), and
 * re-serialize via SweepJobSpec::toJson(). Two documents describing
 * the same job map to the same bytes regardless of caller field
 * order or formatting; any semantic difference changes the bytes.
 * This — never the caller's raw text — is the key the result cache
 * and the serve daemon deduplicate on.
 *
 * Trace-backed specs are keyed by trace *content*: a spec arriving
 * without traceHashes gets them computed here (the one place disk
 * I/O happens), and a spec referencing an unreadable trace file is
 * rejected right here at parse time, with the file named.
 */
bool tryCanonicalJobKey(const std::string &json, std::string &key,
                        std::string &err);

/** Canonical key of an in-memory spec (same bytes as the above). */
std::string canonicalJobKey(const SweepJobSpec &spec);

/**
 * One time-bounded work lease: the sweep fabric's record that a job
 * (identified by its canonical key) was handed to a node, and until
 * when that node owns it. Lease records share the JSONL journal with
 * finished-job records; a lease with no finished record for the same
 * key means the job was in flight when the writer died, and must be
 * re-run. They are bookkeeping, not results: journal loading and
 * journal-merge drop them from the resumable set.
 */
struct LeaseRecord
{
    std::string key;    ///< canonical job key (SweepJobSpec::toJson)
    std::string node;   ///< name of the node the job was leased to
    uint64_t seq = 0;   ///< per-sweep monotonic lease number
    double issuedUnix = 0;   ///< wall-clock issue time (unix seconds)
    double deadlineUnix = 0; ///< lease expiry (unix seconds)

    /** Canonical serialized form (fixed field order, marked with
     * "lease":"sweep-lease" so journal readers can classify lines
     * without schema guessing). */
    std::string toJson() const;
};

/** Non-fatal LeaseRecord parsers (see tryCoreParamsFromJson). */
bool tryLeaseRecordFromJson(const std::string &json, LeaseRecord &out,
                            std::string &err);
bool tryLeaseRecordFromJson(const JsonValue &obj, LeaseRecord &out,
                            std::string &err);

/** True iff @p obj is a lease record (carries the lease marker). */
bool isLeaseRecord(const JsonValue &obj);

} // namespace validate
} // namespace shelf

#endif // SHELFSIM_VALIDATE_CONFIG_JSON_HH
