/**
 * @file
 * CoreParams <-> JSON round trip for the fuzz driver's repro lines:
 * a failing fuzz case is reported as
 * `shelfsim_fuzz --config-json '{...}' --seed S ...`, so the exact
 * sampled configuration can be replayed without re-deriving it from
 * the seed (and can be hand-edited while narrowing a bug down).
 *
 * The serialized form is a flat JSON object of CoreParams fields;
 * parsing starts from default CoreParams, so documents may omit
 * fields. Unknown keys are a fatal error (they are typos, not
 * forward compatibility).
 */

#ifndef SHELFSIM_VALIDATE_CONFIG_JSON_HH
#define SHELFSIM_VALIDATE_CONFIG_JSON_HH

#include <string>

#include "core/params.hh"

namespace shelf
{
namespace validate
{

/** Serialize every CoreParams field as a flat JSON object. */
std::string coreParamsToJson(const CoreParams &params);

/**
 * Parse a flat JSON object produced by coreParamsToJson() (or
 * hand-written; missing fields keep their defaults). fatal() on
 * malformed input or unknown keys. The result is NOT validated;
 * callers decide whether to run CoreParams::validate().
 */
CoreParams coreParamsFromJson(const std::string &json);

} // namespace validate
} // namespace shelf

#endif // SHELFSIM_VALIDATE_CONFIG_JSON_HH
