/**
 * @file
 * Frontend stages: ICOUNT fetch and decode/steer/rename/dispatch.
 */

#include <algorithm>

#include "base/logging.hh"
#include "core/core.hh"

namespace shelf
{

void
Core::fetchStage()
{
    // Thread selection: ICOUNT (Tullsen et al.) fetches from the
    // thread with the fewest instructions in the pre-issue pipeline
    // stages; round-robin simply rotates over eligible threads.
    ThreadID best = kInvalidThread;
    uint64_t best_count = ~0ULL;
    bool round_robin =
        coreParams.fetchPolicy == CoreParams::FetchPolicy::RoundRobin;
    for (unsigned i = 0; i < coreParams.threads; ++i) {
        unsigned t = round_robin
            ? (fetchRR + i) % coreParams.threads : i;
        ThreadState &ts = threads[t];
        if (ts.fetchStallUntil > now)
            continue;
        if (ts.frontend.size() >= fetchBufCap)
            continue;
        if (round_robin) {
            best = static_cast<ThreadID>(t);
            fetchRR = t + 1;
            break;
        }
        uint64_t icount = ts.frontend.size() + ts.dispatchedNotIssued;
        if (icount < best_count) {
            best_count = icount;
            best = static_cast<ThreadID>(t);
        }
    }
    if (best == kInvalidThread)
        return;

    ThreadState &ts = threads[best];

    // One instruction-cache access per fetch group. A thread stalled
    // on a miss consumes the fill directly when it arrives (fill
    // forwarding): without this, another thread's install could evict
    // the block between fill and retry and livelock the fetch units.
    const TraceInst &first = traceAt(ts, ts.cursor);
    if (ts.pendingFillBlock == (first.pc >> 6) &&
        now >= ts.pendingFillAt) {
        ts.pendingFillBlock = ~Addr(0);
    } else {
        ts.pendingFillBlock = ~Addr(0);
        MemHierarchy::Result ires = mem.accessInst(first.pc, now);
        if (ires.blocked) {
            ts.fetchStallUntil = now + 1;
            return;
        }
        if (ires.level > 1) {
            // Miss: stall until the fill and remember it; prefetch
            // the next line to hide sequential-stream latency.
            ts.fetchStallUntil = now + ires.latency;
            ts.pendingFillBlock = first.pc >> 6;
            ts.pendingFillAt = now + ires.latency;
            mem.accessInst(first.pc + 64, now);
            return;
        }
        // Next-line instruction prefetch on the sequential path.
        mem.accessInst((first.pc | 63) + 1, now);
    }

    for (unsigned n = 0; n < coreParams.fetchWidth; ++n) {
        if (ts.frontend.size() >= fetchBufCap)
            break;
        const TraceInst &tin = traceAt(ts, ts.cursor);

        DynInstPtr inst = instPool.alloc();
        inst->si = tin;
        inst->tid = best;
        inst->seq = ++ts.nextSeq;
        inst->gseq = ++nextGseq;
        inst->traceIdx = ts.cursor;
        inst->fetchCycle = now;
        ++ts.cursor;
        ++events.fetchedInsts;

        if (tin.isBranch()) {
            // Predict and train at fetch (trace-driven model). A
            // wrong prediction marks the branch; the squash happens
            // at resolution.
            inst->mispredictedBranch =
                gshare.update(best, tin.pc, tin.taken);
        }

        tracePipe("fetch", *inst);
        ts.frontend.push_back(inst);

        // A taken branch ends the fetch group.
        if (tin.isBranch() && tin.taken)
            break;
    }
}

void
Core::dispatchStage()
{
    unsigned budget = coreParams.dispatchWidth;
    unsigned nthreads = coreParams.threads;
    unsigned start = dispatchRR++;

    for (unsigned i = 0; i < nthreads && budget > 0; ++i) {
        ThreadID tid = static_cast<ThreadID>((start + i) % nthreads);
        ThreadState &ts = threads[tid];

        while (budget > 0 && !ts.frontend.empty()) {
            DynInstPtr inst = ts.frontend.front();
            // Decode/rename pipeline depth.
            if (now < inst->fetchCycle + coreParams.fetchToDispatch)
                break;

            // Steering decision happens once, at decode, before
            // rename (paper Figure 8); policies are stateful.
            if (!inst->steerDecided) {
                bool to_shelf = coreParams.hasShelf() &&
                    steerPolicy->steerToShelf(*inst, now);
                inst->toShelf = to_shelf;
                inst->steerDecided = true;
                ++events.steerEvals;
                ++events.decodedInsts;
            }

            // Structural hazards stall the thread's dispatch.
            auto &stalls = coreStats.dispatchStalls;
            bool tso = coreParams.memModel ==
                CoreParams::MemModel::TSO;
            if (inst->toShelf) {
                if (!shelfQ->canDispatch(tid)) {
                    ++stalls.shelfFull;
                    break;
                }
                // TSO: shelf stores must hold real SQ entries (no
                // store-buffer coalescing; section III-D).
                if (tso && inst->isStore() && lsq->sqFull(tid)) {
                    ++stalls.sqFull;
                    break;
                }
                if (!rename->canRename(*inst)) {
                    ++rename->extStalls;
                    ++stalls.extTags;
                    break;
                }
            } else {
                if (iq->full()) {
                    ++stalls.iqFull;
                    break;
                }
                if (rob->full(tid)) {
                    ++stalls.robFull;
                    break;
                }
                if (inst->isLoad() && lsq->lqFull(tid)) {
                    ++stalls.lqFull;
                    break;
                }
                if (inst->isStore() && lsq->sqFull(tid)) {
                    ++stalls.sqFull;
                    break;
                }
                if (!rename->canRename(*inst)) {
                    ++rename->physStalls;
                    ++stalls.physRegs;
                    break;
                }
            }

            rename->rename(*inst);
            ++events.renameOps;
            events.prfReads += (inst->si.src1 != kNoReg) +
                (inst->si.src2 != kNoReg);
            if (inst->hasDst())
                scoreboard->markPending(inst->dstTag);

            inst->dispatched = true;
            inst->dispatchCycle = now;

            // Run bookkeeping: an IQ instruction dispatched right
            // after a shelf instruction starts a new run.
            if (!inst->toShelf && ts.lastDispatchWasShelf)
                ++ts.runId;
            inst->runId = ts.runId;

            if (inst->toShelf) {
                inst->shelfIdx = shelfQ->dispatch(tid, inst);
                inst->robTailAtDispatch = rob->tailIndex(tid);
                inst->firstInRun = !ts.lastDispatchWasShelf;
                // A misspeculating shelf instruction squashes from
                // its own index (paper section III-B).
                inst->shelfSquashIdx = inst->shelfIdx;
                if (inst->isMem()) {
                    inst->lqTailAtDispatch = lsq->lqTail(tid);
                    inst->sqTailAtDispatch = lsq->sqTail(tid);
                }
                if (inst->isStore()) {
                    inst->waitStoreSeq = sameThreadStoreWait(
                        tid, storeSets.storeDispatched(
                            inst->si.pc, inst->gseq));
                    storesByGseq[inst->gseq] = inst;
                    if (tso) {
                        inst->sqIdx = lsq->dispatchStore(tid, inst);
                        ++events.sqWrites;
                    }
                }
                ++events.shelfWrites;
            } else {
                inst->robIdx = rob->dispatch(tid, inst);
                inst->shelfSquashIdx =
                    shelfQ->enabled() ? shelfQ->tailIndex(tid) : 0;
                if (inst->isLoad()) {
                    inst->lqIdx = lsq->dispatchLoad(tid, inst);
                    inst->waitStoreSeq = sameThreadStoreWait(
                        tid, storeSets.loadDispatched(inst->si.pc));
                    ++events.lqWrites;
                }
                if (inst->isStore()) {
                    inst->sqIdx = lsq->dispatchStore(tid, inst);
                    inst->waitStoreSeq = sameThreadStoreWait(
                        tid, storeSets.storeDispatched(
                            inst->si.pc, inst->gseq));
                    storesByGseq[inst->gseq] = inst;
                    ++events.sqWrites;
                }
                iq->insert(inst, *scoreboard);
                ++events.iqWrites;
                ++events.robWrites;
            }

            if (inst->isLoad())
                ts.incompleteLoads.insert(inst->seq);

            tracePipe(inst->toShelf ? "dispatch(shelf)"
                                    : "dispatch(iq)", *inst);
            recorder.record(now, diag::PipeEvent::Dispatch, tid,
                            inst->seq, inst->toShelf);
            ts.lastDispatchWasShelf = inst->toShelf;
            ts.inflight.push_back(inst);
            ++ts.dispatchedNotIssued;
            ts.frontend.pop_front();
            --budget;
        }
    }
}

} // namespace shelf
