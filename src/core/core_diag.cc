/**
 * @file
 * Crash diagnostics for the core: the forward-progress watchdog, the
 * per-thread blocking-structure analysis, and the structured state
 * dump. Everything here is side-effect free with respect to the
 * pipeline model — waitReason() mirrors the dispatch and shelf-head
 * eligibility checks of core_fetch.cc / core_issue.cc *without*
 * their state updates (in particular without shelfHeadEligible()'s
 * IQ-SSR -> shelf-SSR latch), so calling it from the watchdog or a
 * dump cannot perturb the simulation it is diagnosing.
 */

#include <algorithm>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/core.hh"
#include "core/steer/practical.hh"
#include "validate/invariants.hh"

namespace shelf
{

namespace
{

/** Emit a compact summary of one instruction under @p key. */
void
instField(JsonWriter &w, const std::string &key,
          const DynInstPtr &inst)
{
    if (!inst) {
        w.rawField(key, "null");
        return;
    }
    w.beginObject(key);
    w.field("tid", static_cast<uint64_t>(inst->tid));
    w.field("seq", inst->seq);
    w.field("gseq", inst->gseq);
    w.field("disasm", inst->si.toString());
    w.field("shelf", inst->toShelf);
    w.field("issued", inst->issued);
    w.field("completed", inst->completed);
    w.field("srcTag0", static_cast<int>(inst->srcTag[0]));
    w.field("srcTag1", static_cast<int>(inst->srcTag[1]));
    w.field("dstTag", static_cast<int>(inst->dstTag));
    w.field("prevTag", static_cast<int>(inst->prevTag));
    w.endObject();
}

} // namespace

void
Core::diagTick()
{
    if (coreStats.retiredAll != watchdogLastRetired) {
        watchdogLastRetired = coreStats.retiredAll;
        watchdogLastProgress = now;
        return;
    }
    if (now - watchdogLastProgress < coreParams.watchdogCycles)
        return;

    // Deadlock: nothing retired for a full watchdog budget. Name the
    // blocking structure per thread and die with a dumpable panic.
    std::string report;
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        WaitReason r = waitReason(static_cast<ThreadID>(t));
        report += csprintf("\n  t%u blocked on %s: %s", t,
                           r.structure.c_str(), r.detail.c_str());
    }
    panic("forward-progress watchdog: no instruction retired for %u "
          "cycles (cycle %llu, %llu retired total)%s",
          coreParams.watchdogCycles, (unsigned long long)now,
          (unsigned long long)coreStats.retiredAll, report.c_str());
}

Core::WaitReason
Core::waitReason(ThreadID tid) const
{
    const ThreadState &ts = threads[tid];

    if (wedged)
        return { "retire-wedged",
                 csprintf("injected retirement wedge active since "
                          "cycle %llu",
                          (unsigned long long)wedgeAtCycle) };

    // Mirror of shelfHeadEligible() (core_issue.cc), const and
    // without the SSR-latch side effect.
    auto shelfWait = [&](const DynInstPtr &head) -> WaitReason {
        VIdx issue_head = coreParams.optimisticShelf
            ? rob->issueHead(tid) : rob->issueHeadSnapshot(tid);
        if (issue_head < head->robTailAtDispatch) {
            return { "shelf-issue-tracking",
                     csprintf("shelf head seq %llu waits for the "
                              "issue-tracking head (%llu) to reach "
                              "its ROB-tail-at-dispatch (%llu)",
                              (unsigned long long)head->seq,
                              (unsigned long long)issue_head,
                              (unsigned long long)
                                  head->robTailAtDispatch) };
        }
        if (!srcReadyForConsumer(head->srcTag[0], true) ||
            !srcReadyForConsumer(head->srcTag[1], true)) {
            return { "shelf-operand",
                     csprintf("shelf head seq %llu source operands "
                              "not ready (tags %d, %d)",
                              (unsigned long long)head->seq,
                              head->srcTag[0], head->srcTag[1]) };
        }
        if (head->hasDst() &&
            !scoreboard->ready(head->prevTag, now)) {
            return { "shelf-waw",
                     csprintf("shelf head seq %llu waits for the "
                              "previous writer of tag %d",
                              (unsigned long long)head->seq,
                              head->prevTag) };
        }
        unsigned min_lat = head->isLoad()
            ? 1 + mem.params().l1d.hitLatency
            : head->si.execLatency();
        if (!ssr->shelfMayIssue(tid, min_lat, head->runId)) {
            return { "shelf-ssr",
                     csprintf("shelf head seq %llu blocked by the "
                              "speculation shift register (value %u, "
                              "min latency %u)",
                              (unsigned long long)head->seq,
                              ssr->shelfValue(tid, head->runId),
                              min_lat) };
        }
        if (!fuPool->canIssue(head->si.op, now)) {
            return { "shelf-fu",
                     csprintf("shelf head seq %llu has no free "
                              "functional unit",
                              (unsigned long long)head->seq) };
        }
        if (head->isStore() && !storeSetSatisfied(*head)) {
            return { "shelf-store-set",
                     csprintf("shelf head seq %llu waits on store "
                              "gseq %llu (store sets)",
                              (unsigned long long)head->seq,
                              (unsigned long long)
                                  head->waitStoreSeq) };
        }
        return { "shelf-eligible",
                 csprintf("shelf head seq %llu is eligible to issue",
                          (unsigned long long)head->seq) };
    };

    DynInstPtr rob_head = rob->head(tid);
    if (rob_head) {
        if (rob_head->completed) {
            if (shelfQ->enabled() &&
                shelfQ->retirePointer(tid) <
                    rob_head->shelfSquashIdx) {
                // ROB retirement gated on elder shelf instructions;
                // explain why the shelf is not draining.
                DynInstPtr sh = shelfQ->head(tid);
                if (sh) {
                    WaitReason inner = shelfWait(sh);
                    inner.detail = csprintf(
                        "ROB head seq %llu retire-gated at shelf "
                        "retire pointer %llu (< %llu); %s",
                        (unsigned long long)rob_head->seq,
                        (unsigned long long)
                            shelfQ->retirePointer(tid),
                        (unsigned long long)
                            rob_head->shelfSquashIdx,
                        inner.detail.c_str());
                    return inner;
                }
                return { "shelf-retire-gate",
                         csprintf("ROB head seq %llu waits for the "
                                  "shelf retire pointer (%llu) to "
                                  "reach %llu, but the shelf is "
                                  "empty (issued-unretired index)",
                                  (unsigned long long)rob_head->seq,
                                  (unsigned long long)
                                      shelfQ->retirePointer(tid),
                                  (unsigned long long)
                                      rob_head->shelfSquashIdx) };
            }
            return { "retire-ready",
                     csprintf("ROB head seq %llu is retireable",
                              (unsigned long long)rob_head->seq) };
        }
        if (!rob_head->issued) {
            // Stuck in the IQ: name the first blocking condition of
            // iqCandidateBlocked()/readyInsts().
            if (!srcReadyForConsumer(rob_head->srcTag[0], false) ||
                !srcReadyForConsumer(rob_head->srcTag[1], false)) {
                return { "iq-operand",
                         csprintf("ROB head seq %llu unissued: "
                                  "source operands not ready (tags "
                                  "%d, %d)",
                                  (unsigned long long)rob_head->seq,
                                  rob_head->srcTag[0],
                                  rob_head->srcTag[1]) };
            }
            if (!storeSetSatisfied(*rob_head)) {
                return { "iq-store-set",
                         csprintf("ROB head seq %llu unissued: "
                                  "waits on store gseq %llu",
                                  (unsigned long long)rob_head->seq,
                                  (unsigned long long)
                                      rob_head->waitStoreSeq) };
            }
            if (!fuPool->canIssue(rob_head->si.op, now)) {
                return { "iq-fu",
                         csprintf("ROB head seq %llu unissued: no "
                                  "free functional unit",
                                  (unsigned long long)
                                      rob_head->seq) };
            }
            return { "iq-select",
                     csprintf("ROB head seq %llu ready but not "
                              "selected (issue bandwidth)",
                              (unsigned long long)rob_head->seq) };
        }
        return { "execute",
                 csprintf("ROB head seq %llu issued at cycle %llu, "
                          "awaiting completion",
                          (unsigned long long)rob_head->seq,
                          (unsigned long long)
                              rob_head->issueCycle) };
    }

    // ROB empty. A completed shelf instruction at the inflight front
    // can still be blocked from retiring under TSO.
    if (!ts.inflight.empty()) {
        const DynInstPtr &front = ts.inflight.front();
        if (front->toShelf && front->completed && !front->retired &&
            coreParams.memModel == CoreParams::MemModel::TSO &&
            elderIncompleteLoad(*front)) {
            return { "tso-retire",
                     csprintf("shelf seq %llu completed but held by "
                              "an incomplete elder load (eldest "
                              "incomplete: seq %llu)",
                              (unsigned long long)front->seq,
                              (unsigned long long)
                                  *ts.incompleteLoads.begin()) };
        }
    }

    if (shelfQ->enabled()) {
        DynInstPtr sh = shelfQ->head(tid);
        if (sh)
            return shelfWait(sh);
    }

    if (!ts.frontend.empty()) {
        // Mirror of the dispatchStage() structural-stall ladder.
        const DynInstPtr &inst = ts.frontend.front();
        if (now < inst->fetchCycle + coreParams.fetchToDispatch ||
            !inst->steerDecided) {
            return { "dispatch-pipe",
                     csprintf("frontend head seq %llu still in the "
                              "decode/rename pipe",
                              (unsigned long long)inst->seq) };
        }
        bool tso = coreParams.memModel == CoreParams::MemModel::TSO;
        auto stall = [&](const char *what) -> WaitReason {
            return { what,
                     csprintf("frontend head seq %llu cannot "
                              "dispatch: %s",
                              (unsigned long long)inst->seq, what) };
        };
        if (inst->toShelf) {
            if (!shelfQ->canDispatch(tid))
                return stall("dispatch-shelf-full");
            if (tso && inst->isStore() && lsq->sqFull(tid))
                return stall("dispatch-sq-full");
            if (!rename->canRename(*inst))
                return stall("dispatch-ext-tags");
        } else {
            if (iq->full())
                return stall("dispatch-iq-full");
            if (rob->full(tid))
                return stall("dispatch-rob-full");
            if (inst->isLoad() && lsq->lqFull(tid))
                return stall("dispatch-lq-full");
            if (inst->isStore() && lsq->sqFull(tid))
                return stall("dispatch-sq-full");
            if (!rename->canRename(*inst))
                return stall("dispatch-phys-regs");
        }
        return { "dispatch-ready",
                 csprintf("frontend head seq %llu is dispatchable",
                          (unsigned long long)inst->seq) };
    }

    if (ts.fetchStallUntil > now) {
        return { "fetch",
                 csprintf("fetch stalled until cycle %llu (icache "
                          "miss)",
                          (unsigned long long)ts.fetchStallUntil) };
    }

    return { "idle", "no in-flight or frontend instructions" };
}

void
Core::dumpState(JsonWriter &w) const
{
    // Bound per-structure entry lists so a dump of a large wedged
    // core stays readable and cheap to write.
    constexpr size_t kMaxEntries = 64;

    w.field("cycle", now);
    w.field("wedged", wedged);

    w.beginObject("watchdog");
    w.field("cycles", static_cast<uint64_t>(
                          coreParams.watchdogCycles));
    w.field("lastProgressCycle", watchdogLastProgress);
    w.field("stalledFor", now - watchdogLastProgress);
    w.field("retiredTotal", coreStats.retiredAll);
    w.endObject();

    w.beginArray("threads");
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        const ThreadState &ts = threads[t];
        WaitReason reason = waitReason(tid);
        w.beginObject();
        w.field("tid", static_cast<uint64_t>(t));
        w.field("structure", reason.structure);
        w.field("detail", reason.detail);
        w.field("retired", coreStats.retired[t]);
        w.field("inflight", ts.inflight.size());
        w.field("frontend", ts.frontend.size());
        w.field("dispatchedNotIssued", ts.dispatchedNotIssued);
        w.field("incompleteLoads", ts.incompleteLoads.size());
        w.field("fetchStallUntil", ts.fetchStallUntil);
        w.field("runId", ts.runId);
        instField(w, "inflightFront",
                  ts.inflight.empty() ? nullptr
                                      : ts.inflight.front());
        w.endObject();
    }
    w.endArray();

    w.beginArray("flight_recorder");
    recorder.dump(w);
    w.endArray();
    w.field("flight_recorder_total", recorder.recorded());

    w.beginObject("structures");

    w.beginObject("rob");
    w.field("capacity", rob->capacity());
    w.beginArray("perThread");
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        w.beginObject();
        w.field("size", rob->size(tid));
        w.field("tail", rob->tailIndex(tid));
        w.field("issueHead", rob->issueHead(tid));
        w.field("issueHeadSnapshot", rob->issueHeadSnapshot(tid));
        // The issue-tracking bitvector, oldest entry first.
        VIdx tail = rob->tailIndex(tid);
        size_t n = rob->size(tid);
        std::string bits;
        bits.reserve(std::min(n, kMaxEntries));
        for (VIdx i = tail - n;
             i < tail && bits.size() < kMaxEntries; ++i)
            bits += rob->at(tid, i)->issued ? '1' : '0';
        w.field("issuedBits", bits);
        w.field("truncated", n > kMaxEntries);
        instField(w, "head", rob->head(tid));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.beginObject("shelf");
    w.field("enabled", shelfQ->enabled());
    w.field("entriesPerThread", static_cast<uint64_t>(
                                    shelfQ->entriesPerThread()));
    if (shelfQ->enabled()) {
        w.beginArray("perThread");
        for (unsigned t = 0; t < coreParams.threads; ++t) {
            ThreadID tid = static_cast<ThreadID>(t);
            w.beginObject();
            w.field("size", shelfQ->size(tid));
            w.field("tail", shelfQ->tailIndex(tid));
            w.field("retirePointer", shelfQ->retirePointer(tid));
            // The retire bitvector: issued-but-unretired indices
            // already marked retired out of order.
            auto ooo = shelfQ->retiredOutOfOrderIndices(tid);
            w.beginArray("retiredOutOfOrder");
            for (size_t i = 0;
                 i < ooo.size() && i < kMaxEntries; ++i)
                w.value(static_cast<double>(ooo[i]));
            w.endArray();
            w.field("truncated", ooo.size() > kMaxEntries);
            instField(w, "head", shelfQ->head(tid));
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();

    w.beginObject("iq");
    w.field("size", iq->size());
    w.field("capacity", iq->capacity());
    auto iq_insts = iq->contents();
    std::sort(iq_insts.begin(), iq_insts.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->gseq < b->gseq;
              });
    w.beginArray("entries");
    for (size_t i = 0; i < iq_insts.size() && i < kMaxEntries; ++i) {
        w.beginObject();
        w.field("tid", static_cast<uint64_t>(iq_insts[i]->tid));
        w.field("seq", iq_insts[i]->seq);
        w.field("disasm", iq_insts[i]->si.toString());
        w.field("srcTag0", static_cast<int>(iq_insts[i]->srcTag[0]));
        w.field("srcTag1", static_cast<int>(iq_insts[i]->srcTag[1]));
        w.endObject();
    }
    w.endArray();
    w.field("truncated", iq_insts.size() > kMaxEntries);
    w.endObject();

    w.beginObject("lsq");
    w.beginArray("perThread");
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        auto lq = lsq->lqContents(tid);
        auto sq = lsq->sqContents(tid);
        w.beginObject();
        w.field("lqSize", lsq->lqSize(tid));
        w.field("lqTail", lsq->lqTail(tid));
        instField(w, "lqHead", lq.empty() ? nullptr : lq.front());
        w.field("sqSize", lsq->sqSize(tid));
        w.field("sqTail", lsq->sqTail(tid));
        instField(w, "sqHead", sq.empty() ? nullptr : sq.front());
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.beginObject("rename");
    w.field("freePhysRegs", static_cast<uint64_t>(
                                rename->freePhysRegs()));
    w.field("freeExtTags", static_cast<uint64_t>(
                               rename->freeExtTags()));
    w.field("physRegs", static_cast<uint64_t>(
                            coreParams.numPhysRegs()));
    w.field("extTags", static_cast<uint64_t>(
                           coreParams.numExtTags()));
    w.field("physStalls", rename->physStalls.value());
    w.field("extStalls", rename->extStalls.value());
    w.endObject();

    w.beginObject("scoreboard");
    unsigned num_tags = scoreboard->numTags();
    uint64_t pending = 0, future = 0;
    for (unsigned tag = 0; tag < num_tags; ++tag) {
        Cycle ready = scoreboard->readyAt(static_cast<Tag>(tag));
        if (ready == kCycleNever)
            ++pending;
        else if (ready > now)
            ++future;
    }
    w.field("numTags", static_cast<uint64_t>(num_tags));
    w.field("pendingTags", pending);
    w.field("futureReadyTags", future);
    w.endObject();

    w.beginObject("ssr");
    w.field("design", ssrDesignName(ssr->design()));
    w.beginArray("perThread");
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        w.beginObject();
        w.field("iq", static_cast<uint64_t>(ssr->iqValue(tid)));
        w.field("shelf", static_cast<uint64_t>(
                             ssr->shelfValue(tid)));
        w.field("liveRuns", ssr->liveRuns(tid));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.beginObject("steering");
    w.field("policy", steerPolicyName(coreParams.steering));
    w.field("steeredToShelf", steerPolicy->steeredToShelf.value());
    w.field("steeredToIq", steerPolicy->steeredToIq.value());
    steerPolicy->dumpState(w);
    w.endObject();

    w.endObject(); // structures

    // Invariant verdicts: run the full validate battery over the
    // frozen state so a dump says not just where the pipeline sits
    // but whether its cross-structure bookkeeping still holds. One
    // verdict per named check — an all-green list is as informative
    // in a crash artifact as a red one.
    auto names = validate::InvariantChecker::checkNames();
    bool allOk = true;
    std::vector<std::vector<validate::InvariantFailure>> verdicts;
    verdicts.reserve(names.size());
    for (const auto &name : names) {
        verdicts.push_back(validate::InvariantChecker::run(*this,
                                                           name));
        allOk = allOk && verdicts.back().empty();
    }
    w.field("invariantsOk", allOk);
    w.beginArray("invariants");
    for (size_t i = 0; i < names.size(); ++i) {
        w.beginObject();
        w.field("check", names[i]);
        w.field("ok", verdicts[i].empty());
        if (!verdicts[i].empty())
            w.field("detail", verdicts[i].front().detail);
        w.endObject();
    }
    w.endArray();
}

} // namespace shelf
