#include "core/ssr.hh"

#include <algorithm>

#include "base/logging.hh"

namespace shelf
{

const char *
ssrDesignName(SsrDesign design)
{
    switch (design) {
      case SsrDesign::Single: return "single";
      case SsrDesign::Two: return "two";
      case SsrDesign::PerRun: return "per-run";
      default: panic("bad SSR design %d", static_cast<int>(design));
    }
}

SpecShiftRegisters::SpecShiftRegisters(unsigned threads,
                                       SsrDesign design)
    : ssrDesign(design), state(threads)
{}

void
SpecShiftRegisters::tick()
{
    for (auto &t : state) {
        if (t.iqSsr > 0)
            --t.iqSsr;
        if (t.shelfSsr > 0)
            --t.shelfSsr;
        for (auto it = t.runSsr.begin(); it != t.runSsr.end();) {
            if (it->second <= 1)
                it = t.runSsr.erase(it);
            else {
                --it->second;
                ++it;
            }
        }
    }
}

void
SpecShiftRegisters::iqIssue(ThreadID tid, unsigned resolve_delay,
                            uint64_t run)
{
    if (resolve_delay == 0)
        return;
    PerThread &t = state[tid];
    switch (ssrDesign) {
      case SsrDesign::Single:
        // One register serves both sides: younger IQ issues directly
        // delay the shelf (the starvation pathology).
        t.iqSsr = std::max(t.iqSsr, resolve_delay);
        t.shelfSsr = std::max(t.shelfSsr, resolve_delay);
        break;
      case SsrDesign::Two:
        t.iqSsr = std::max(t.iqSsr, resolve_delay);
        break;
      case SsrDesign::PerRun: {
        unsigned &v = t.runSsr[run];
        v = std::max(v, resolve_delay);
        break;
      }
    }
}

void
SpecShiftRegisters::loadShelfFromIq(ThreadID tid, uint64_t run)
{
    if (ssrDesign == SsrDesign::Two) {
        // Merge, don't overwrite: the hardware ORs the IQ SSR's bits
        // into the shelf SSR, so protection installed by an elder
        // speculative shelf issue survives the load.
        PerThread &t = state[tid];
        t.shelfSsr = std::max(t.shelfSsr, t.iqSsr);
    }
}

unsigned
SpecShiftRegisters::shelfValue(ThreadID tid, uint64_t run) const
{
    const PerThread &t = state[tid];
    switch (ssrDesign) {
      case SsrDesign::Single:
      case SsrDesign::Two:
        return t.shelfSsr;
      case SsrDesign::PerRun: {
        // Maximum over this run and every elder one; younger runs
        // never delay the shelf (that is the precision win).
        unsigned v = t.shelfSsr; // shelf-issued speculation
        for (const auto &[r, val] : t.runSsr) {
            if (r > run)
                break;
            v = std::max(v, val);
        }
        return v;
      }
      default:
        panic("bad SSR design");
    }
}

bool
SpecShiftRegisters::shelfMayIssue(ThreadID tid, unsigned exec_latency,
                                  uint64_t run) const
{
    return exec_latency >= shelfValue(tid, run);
}

void
SpecShiftRegisters::shelfIssueSpec(ThreadID tid,
                                   unsigned resolve_delay,
                                   uint64_t run)
{
    if (resolve_delay == 0)
        return;
    PerThread &t = state[tid];
    t.shelfSsr = std::max(t.shelfSsr, resolve_delay);
    if (ssrDesign == SsrDesign::PerRun) {
        unsigned &v = t.runSsr[run];
        v = std::max(v, resolve_delay);
    }
}

unsigned
SpecShiftRegisters::iqValue(ThreadID tid) const
{
    return state[tid].iqSsr;
}

size_t
SpecShiftRegisters::liveRuns(ThreadID tid) const
{
    return state[tid].runSsr.size();
}

void
SpecShiftRegisters::clear(ThreadID tid)
{
    state[tid] = PerThread();
}

} // namespace shelf
