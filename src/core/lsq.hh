/**
 * @file
 * Per-thread load and store queues (paper section III-D, relaxed /
 * ARM-like memory model).
 *
 * IQ-steered loads and stores allocate LQ/SQ entries at dispatch.
 * Shelf-steered memory operations allocate *no* entries: they record
 * the LQ/SQ tail pointers at dispatch and, at execution, scan the
 * queues associatively (older stores for forwarding; younger issued
 * loads for ordering). Shelf stores coalesce into an older matching
 * store-queue entry or release directly to the cache.
 *
 * Memory-order violations: a store (IQ or shelf) executing its
 * address finds a younger load that already obtained data that did
 * not come from this store or a younger one -> flush and restart at
 * that load. The store-sets predictor throttles repeat offenders.
 */

#ifndef SHELFSIM_CORE_LSQ_HH
#define SHELFSIM_CORE_LSQ_HH

#include <vector>

#include "base/circular_queue.hh"
#include "base/stats.hh"
#include "core/dyn_inst.hh"
#include "core/types.hh"

namespace shelf
{

class LSQ
{
  public:
    LSQ(unsigned threads, unsigned lq_per_thread,
        unsigned sq_per_thread);

    bool lqFull(ThreadID tid) const { return part(tid).lq.full(); }
    bool sqFull(ThreadID tid) const { return part(tid).sq.full(); }
    size_t lqSize(ThreadID tid) const { return part(tid).lq.size(); }
    size_t sqSize(ThreadID tid) const { return part(tid).sq.size(); }

    VIdx lqTail(ThreadID tid) const { return part(tid).lq.tailIndex(); }
    VIdx sqTail(ThreadID tid) const { return part(tid).sq.tailIndex(); }

    /** Allocate entries for IQ-steered memory ops at dispatch. */
    VIdx dispatchLoad(ThreadID tid, const DynInstPtr &inst);
    VIdx dispatchStore(ThreadID tid, const DynInstPtr &inst);

    struct ForwardResult
    {
        bool forwarded = false;
        SeqNum fromStore = kNoSeq; ///< per-thread seq of the store
    };

    /**
     * A load executes (address known): search older stores for the
     * youngest overlapping one. Works for both IQ and shelf loads
     * (shelf loads pass their recorded SQ bound via seq comparison).
     * Marks the load's data source for later violation checks.
     */
    ForwardResult loadExecute(ThreadID tid, const DynInstPtr &load);

    /**
     * A store executes (address known): find the eldest younger load
     * that already received data neither from this store nor from a
     * younger source. Returns null if no violation. Shelf stores use
     * the same check (paper: shelf stores squash IQ loads that issued
     * speculatively early).
     */
    DynInstPtr storeCheckViolation(ThreadID tid,
                                   const DynInstPtr &store);

    /**
     * Shelf store: does an older store-queue entry to the same block
     * exist to coalesce into? (Occupancy bookkeeping for stats; the
     * data write itself goes to the cache model at writeback.)
     */
    bool shelfStoreCoalesces(ThreadID tid, const DynInstPtr &store);

    /** Retire the LQ/SQ head (IQ memory ops at ROB retirement). */
    void retireLoad(ThreadID tid, const DynInstPtr &inst);
    void retireStore(ThreadID tid, const DynInstPtr &inst);

    /**
     * Release retired stores from the SQ head. Under TSO, shelf
     * stores also occupy SQ entries and retire out of ROB order, so
     * entries free in SQ (program) order as their instructions
     * retire, whoever retires first.
     */
    void drainRetiredStores(ThreadID tid);

    /** Squash all entries of @p tid younger than @p squash_seq. */
    void squash(ThreadID tid, SeqNum squash_seq);

    /** Snapshot of LQ entries, oldest first (validation / tests). */
    std::vector<DynInstPtr> lqContents(ThreadID tid) const;
    /** Snapshot of SQ entries, oldest first (validation / tests). */
    std::vector<DynInstPtr> sqContents(ThreadID tid) const;

    /** Number of associative search operations (energy model). */
    stats::Scalar lqSearches;
    stats::Scalar sqSearches;
    stats::Scalar forwards;
    stats::Scalar coalesces;
    stats::Scalar violations;

  private:
    struct Partition
    {
        CircularQueue<DynInstPtr> lq;
        CircularQueue<DynInstPtr> sq;
    };

    Partition &part(ThreadID tid) { return parts[tid]; }
    const Partition &part(ThreadID tid) const { return parts[tid]; }

    static bool overlap(const DynInstPtr &a, const DynInstPtr &b);

    std::vector<Partition> parts;
};

} // namespace shelf

#endif // SHELFSIM_CORE_LSQ_HH
