/**
 * @file
 * Functional-unit pool: per-cycle issue-port accounting for the
 * shared execution resources (Table I: 4-wide issue over 4 integer
 * ALUs, 1 multiply/divide unit, 2 FP pipes, 2 memory ports). Divide
 * units are unpipelined and stay busy for the operation latency.
 */

#ifndef SHELFSIM_CORE_FU_POOL_HH
#define SHELFSIM_CORE_FU_POOL_HH

#include <vector>

#include "core/params.hh"
#include "core/types.hh"
#include "isa/op_class.hh"

namespace shelf
{

class FUPool
{
  public:
    explicit FUPool(const CoreParams &params);

    /** Reset per-cycle port counters; call once per cycle. */
    void beginCycle();

    /** Could an operation of class @p op issue this cycle? */
    bool canIssue(OpClass op, Cycle now) const;

    /** Claim a unit for this cycle (and its latency if unpipelined). */
    void issue(OpClass op, Cycle now, unsigned latency);

  private:
    enum Group { IntAlu, IntMult, Fp, Mem, NumGroups };

    static Group groupOf(OpClass op);
    static bool unpipelined(OpClass op);

    unsigned unitCount[NumGroups] = {};
    unsigned usedThisCycle[NumGroups] = {};
    /** Busy-until cycles per unpipelined unit in IntMult/Fp groups. */
    std::vector<Cycle> intDivBusy;
    std::vector<Cycle> fpDivBusy;
};

} // namespace shelf

#endif // SHELFSIM_CORE_FU_POOL_HH
