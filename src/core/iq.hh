/**
 * @file
 * The conventional unordered issue queue, shared across SMT threads.
 *
 * Wakeup is event-driven and incremental (behaviourally identical to
 * tag-broadcast CAM wakeup): at insert, each source operand's ready
 * cycle is snapshotted from the scoreboard; sources whose producer
 * has not yet announced a ready cycle put the instruction on that
 * tag's waiter chain, and the core mirrors every
 * Scoreboard::setReadyAt with an IssueQueue::wakeup. Instructions
 * whose sources all have known ready cycles live on an age-ordered
 * (by global sequence) doubly-linked ready list, so per-cycle select
 * walks only that list instead of rebuilding and sorting a candidate
 * vector — the select-logic cost the paper argues a simulator must
 * model cheaply. The energy model still charges CAM broadcast energy
 * per completing producer.
 *
 * The snapshot+notify model matches polling cycle-exactly because a
 * wakeup tag cannot be freed and reallocated while an unissued
 * consumer resides in the IQ: the next writer of the architectural
 * register frees the tag only at retirement, and both retirement
 * paths (in-order ROB retirement, and shelf writeback-retirement
 * gated by the issue-tracking head) require every elder IQ
 * instruction of the thread to have issued first.
 */

#ifndef SHELFSIM_CORE_IQ_HH
#define SHELFSIM_CORE_IQ_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/scoreboard.hh"
#include "core/types.hh"

namespace shelf
{

class IssueQueue
{
  public:
    /**
     * @param entries IQ capacity
     * @param num_tags wakeup-tag space size (waiter-chain heads are
     *        preallocated); chains grow on demand when 0 (tests)
     */
    explicit IssueQueue(unsigned entries, unsigned num_tags = 0);

    bool full() const { return used == slots.size(); }
    size_t size() const { return used; }
    size_t capacity() const { return slots.size(); }

    /**
     * Insert at dispatch. Snapshots operand readiness from @p sb:
     * sources with a known ready cycle contribute to the
     * instruction's ready cycle, pending sources register it on the
     * tag's waiter chain.
     */
    void insert(const DynInstPtr &inst, const Scoreboard &sb);

    /**
     * A producer announced that @p tag becomes consumable at
     * @p cycle. Must mirror every Scoreboard::setReadyAt for a tag
     * that IQ instructions can source.
     */
    void wakeup(Tag tag, Cycle cycle);

    /**
     * Oldest (by global sequence) instruction whose register
     * operands are ready at @p now and for which @p blocked returns
     * false; null when none qualifies. The core's further
     * constraints (FUs, store sets, cluster delay) are the
     * @p blocked predicate.
     */
    template <typename Blocked>
    DynInst *
    selectReady(Cycle now, Blocked &&blocked) const
    {
        for (DynInst *n = readyHead; n; n = n->rdyNext) {
            if (n->readyCycle > now)
                continue;
            if (blocked(*n))
                continue;
            return n;
        }
        return nullptr;
    }

    /**
     * Earliest operand-ready cycle among ready-list residents
     * (kCycleNever when the list is empty). Entries with pending
     * sources are woken by events and therefore not counted; the
     * core's quiescence detector uses this as the IQ's next possible
     * issue cycle.
     */
    Cycle
    nextReadyCycle(Cycle bound) const
    {
        Cycle best = kCycleNever;
        for (DynInst *n = readyHead; n; n = n->rdyNext) {
            // Any entry ready at or before @p bound already forbids
            // skipping; stop scanning (busy cycles exit on the first
            // entry).
            if (n->readyCycle <= bound)
                return n->readyCycle;
            if (n->readyCycle < best)
                best = n->readyCycle;
        }
        return best;
    }

    /**
     * Instructions whose register operands are ready at @p now,
     * oldest first (tests / validation; the issue stage uses
     * selectReady()).
     */
    std::vector<DynInstPtr> readyInsts(Cycle now) const;

    /** Remove an instruction that was selected for issue (or is
     * being squash-rolled-back); panics if it is not resident. */
    void removeIssued(const DynInstPtr &inst);

    /** Remove all squashed instructions of thread @p tid younger than
     * @p squash_seq (per-thread sequence). */
    void squash(ThreadID tid, SeqNum squash_seq);

    /** Snapshot of resident instructions (tests / debugging). */
    std::vector<DynInstPtr> contents() const;

  private:
    /** Splice @p n into the age-ordered ready list. */
    void linkReady(DynInst *n);
    /** Detach @p n from the ready list / its waiter chains. */
    void detach(DynInst *n);
    /** Clear @p n's slot and intrusive state (resident precondition
     * already checked by the caller). */
    void removeResident(DynInst *n);

    std::vector<DynInstPtr> slots; ///< null = free entry
    std::vector<uint32_t> freeSlots; ///< stack of free slot indices
    /** Waiter-chain head per wakeup tag (linked via
     * DynInst::tagNext). */
    std::vector<DynInst *> tagWaiters;
    DynInst *readyHead = nullptr;
    DynInst *readyTail = nullptr;
    size_t used = 0;
};

} // namespace shelf

#endif // SHELFSIM_CORE_IQ_HH
