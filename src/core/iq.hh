/**
 * @file
 * The conventional unordered issue queue, shared across SMT threads.
 *
 * Wakeup is modelled by polling the scoreboard (behaviourally
 * identical to tag-broadcast CAM wakeup because the scoreboard stores
 * the exact cycle a value becomes consumable); the energy model
 * separately charges CAM broadcast energy per completing producer.
 */

#ifndef SHELFSIM_CORE_IQ_HH
#define SHELFSIM_CORE_IQ_HH

#include <vector>

#include "core/dyn_inst.hh"
#include "core/scoreboard.hh"
#include "core/types.hh"

namespace shelf
{

class IssueQueue
{
  public:
    explicit IssueQueue(unsigned entries);

    bool full() const { return used == slots.size(); }
    size_t size() const { return used; }
    size_t capacity() const { return slots.size(); }

    /** Insert at dispatch. */
    void insert(const DynInstPtr &inst);

    /**
     * Collect instructions whose register operands are ready at
     * @p now, oldest (by global sequence) first. The core applies
     * further constraints (FUs, store sets) before selecting.
     */
    std::vector<DynInstPtr> readyInsts(Cycle now,
                                       const Scoreboard &sb) const;

    /** Remove an instruction that was selected for issue. */
    void removeIssued(const DynInstPtr &inst);

    /** Remove all squashed instructions of thread @p tid younger than
     * @p squash_seq (per-thread sequence). */
    void squash(ThreadID tid, SeqNum squash_seq);

    /** Snapshot of resident instructions (tests / debugging). */
    std::vector<DynInstPtr> contents() const;

  private:
    std::vector<DynInstPtr> slots; ///< null = free entry
    size_t used = 0;
};

} // namespace shelf

#endif // SHELFSIM_CORE_IQ_HH
