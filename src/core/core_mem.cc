/**
 * @file
 * Memory execution pipeline (paper section III-D, relaxed model):
 * address generation, store-to-load forwarding, violation detection,
 * shelf loads/stores without LQ/SQ entries, and cache access.
 */

#include "base/logging.hh"
#include "core/core.hh"

namespace shelf
{

void
Core::executeMemEvent(const DynInstPtr &inst)
{
    if (inst->isLoad())
        executeLoad(inst);
    else
        executeStore(inst);
}

void
Core::executeLoad(const DynInstPtr &inst)
{
    ThreadID tid = inst->tid;

    // Associative scan of older stores (IQ loads may speculate past
    // stores with unresolved addresses; shelf loads issue in order so
    // all elder stores are visible by now).
    LSQ::ForwardResult fwd = lsq->loadExecute(tid, inst);
    ++events.lsqSearches;

    Cycle data_ready;
    if (fwd.forwarded) {
        data_ready = now + 1;
        inst->memLevel = 0;
    } else {
        MemHierarchy::Result res =
            mem.accessData(inst->si.addr, false, now);
        if (res.blocked) {
            // L1 MSHRs exhausted: replay the access next cycle.
            scheduleEvent(now + 1, kExecuteMem, inst);
            return;
        }
        data_ready = now + res.latency;
        inst->memLevel = res.level;
    }

    inst->totalLatency = static_cast<unsigned>(data_ready -
                                               inst->issueCycle);
    if (inst->hasDst())
        announceReady(inst->dstTag, data_ready);
    scheduleEvent(data_ready, kComplete, inst);
}

void
Core::executeStore(const DynInstPtr &inst)
{
    ThreadID tid = inst->tid;

    // The address is now known: stores complete for retirement
    // purposes (data drains through the store buffer after commit).
    inst->completed = true;
    inst->completeCycle = now;
    tracePipe("complete", *inst);

    // Memory-order check against younger loads that already issued.
    DynInstPtr victim = lsq->storeCheckViolation(tid, inst);
    ++events.lsqSearches;
    if (victim) {
        storeSets.recordViolation(victim->si.pc, inst->si.pc);
        ++coreStats.memOrderSquashes;
        // Flush and restart at the mispredicted load.
        squashThread(tid, victim->seq - 1, victim->traceIdx,
                     now + coreParams.redirectPenalty);
        // The store itself is elder and survives the squash.
    }

    if (inst->toShelf && !inst->squashed) {
        if (coreParams.memModel == CoreParams::MemModel::TSO) {
            // TSO forbids store-buffer coalescing; the store holds
            // its SQ entry until it retires (in SQ order) and its
            // writeback waits for elder loads like any shelf
            // instruction.
            mem.accessData(inst->si.addr, true, now);
            tryShelfRetire(inst);
        } else {
            // Relaxed: coalesce into an older matching store-queue /
            // store-buffer entry or release to the cache; either way
            // retire at writeback without ever holding an SQ entry.
            if (!lsq->shelfStoreCoalesces(tid, inst))
                mem.accessData(inst->si.addr, true, now);
            retireShelfInst(inst);
        }
    }
}

} // namespace shelf
