/**
 * @file
 * Core-local type definitions: physical register indices and wakeup
 * tags.
 *
 * The paper's central renaming idea (section III-C) is that the
 * physical register index (PRI) and the wakeup tag are distinct
 * namespaces: IQ instructions draw tags from the original space
 * (tag == PRI), while shelf instructions allocate tags from an
 * *extension* space so multiple shelf writes to the same PRI remain
 * distinguishable to IQ consumers.
 */

#ifndef SHELFSIM_CORE_TYPES_HH
#define SHELFSIM_CORE_TYPES_HH

#include <cstdint>

#include "isa/arch.hh"

namespace shelf
{

/** Physical register index. */
using PRI = int32_t;
/** Wakeup tag (physical space [0, numPhysRegs) plus extension). */
using Tag = int32_t;

constexpr PRI kNoPri = -1;
constexpr Tag kNoTag = -1;

/** Virtual index into a circular structure (ROB, shelf, LQ, SQ). */
using VIdx = uint64_t;
constexpr VIdx kNoVIdx = ~0ULL;

/** "No sequence number" marker (also used as +infinity for waits). */
constexpr SeqNum kNoSeq = ~0ULL;

/** A cycle value meaning "not known / never". */
constexpr Cycle kCycleNever = ~0ULL;

} // namespace shelf

#endif // SHELFSIM_CORE_TYPES_HH
