#include "core/iq.hh"

#include <algorithm>

#include "base/logging.hh"

namespace shelf
{

IssueQueue::IssueQueue(unsigned entries, unsigned num_tags)
    : slots(entries), tagWaiters(num_tags, nullptr)
{
    freeSlots.reserve(entries);
    // Stack order: slot 0 on top, matching the old first-free scan.
    for (unsigned i = entries; i > 0; --i)
        freeSlots.push_back(i - 1);
}

void
IssueQueue::linkReady(DynInst *n)
{
    // Age-ordered insert, searching from the tail: newly woken or
    // dispatched instructions are almost always the youngest.
    DynInst *after = readyTail;
    while (after && after->gseq > n->gseq)
        after = after->rdyPrev;
    n->rdyPrev = after;
    if (after) {
        n->rdyNext = after->rdyNext;
        after->rdyNext = n;
    } else {
        n->rdyNext = readyHead;
        readyHead = n;
    }
    if (n->rdyNext)
        n->rdyNext->rdyPrev = n;
    else
        readyTail = n;
}

void
IssueQueue::detach(DynInst *n)
{
    if (n->iqPendingSrcs == 0) {
        // On the ready list.
        if (n->rdyPrev)
            n->rdyPrev->rdyNext = n->rdyNext;
        else
            readyHead = n->rdyNext;
        if (n->rdyNext)
            n->rdyNext->rdyPrev = n->rdyPrev;
        else
            readyTail = n->rdyPrev;
        n->rdyPrev = n->rdyNext = nullptr;
        return;
    }
    // On one or two tag-waiter chains: unlink from each.
    for (int s = 0; s < 2; ++s) {
        if (!(n->iqWaitSlots & (1 << s)))
            continue;
        Tag tag = n->srcTag[s];
        DynInst **link = &tagWaiters[tag];
        while (*link != n) {
            DynInst *w = *link;
            panic_if(!w, "IQ waiter chain corrupt for tag %d", tag);
            link = &w->tagNext[w->srcTag[0] == tag ? 0 : 1];
        }
        *link = n->tagNext[s];
        n->tagNext[s] = nullptr;
    }
    n->iqWaitSlots = 0;
    n->iqPendingSrcs = 0;
}

void
IssueQueue::insert(const DynInstPtr &inst, const Scoreboard &sb)
{
    panic_if(full(), "insert into full IQ");
    DynInst *n = inst.get();
    panic_if(n->iqSlot != DynInst::kNoIqSlot,
             "insert of an instruction already resident in the IQ");

    uint32_t slot = freeSlots.back();
    freeSlots.pop_back();
    slots[slot] = inst;
    n->iqSlot = slot;
    ++used;

    n->iqWaitSlots = 0;
    n->iqPendingSrcs = 0;
    n->readyCycle = 0;
    n->rdyPrev = n->rdyNext = nullptr;
    n->tagNext[0] = n->tagNext[1] = nullptr;

    for (int s = 0; s < 2; ++s) {
        Tag tag = n->srcTag[s];
        if (tag == kNoTag)
            continue;
        // Both sources naming one tag wake together: register once.
        if (s == 1 && tag == n->srcTag[0])
            continue;
        Cycle ready = sb.readyAt(tag);
        if (ready == kCycleNever) {
            if (static_cast<size_t>(tag) >= tagWaiters.size())
                tagWaiters.resize(tag + 1, nullptr);
            n->tagNext[s] = tagWaiters[tag];
            tagWaiters[tag] = n;
            n->iqWaitSlots |= static_cast<uint8_t>(1 << s);
            ++n->iqPendingSrcs;
        } else if (ready > n->readyCycle) {
            n->readyCycle = ready;
        }
    }

    if (n->iqPendingSrcs == 0)
        linkReady(n);
}

void
IssueQueue::wakeup(Tag tag, Cycle cycle)
{
    if (tag == kNoTag ||
        static_cast<size_t>(tag) >= tagWaiters.size()) {
        return;
    }
    DynInst *n = tagWaiters[tag];
    tagWaiters[tag] = nullptr;
    while (n) {
        int s = n->srcTag[0] == tag ? 0 : 1;
        DynInst *next = n->tagNext[s];
        n->tagNext[s] = nullptr;
        n->iqWaitSlots &= static_cast<uint8_t>(~(1 << s));
        if (cycle > n->readyCycle)
            n->readyCycle = cycle;
        if (--n->iqPendingSrcs == 0)
            linkReady(n);
        n = next;
    }
}

std::vector<DynInstPtr>
IssueQueue::readyInsts(Cycle now) const
{
    std::vector<DynInstPtr> ready;
    for (DynInst *n = readyHead; n; n = n->rdyNext) {
        if (n->readyCycle <= now)
            ready.push_back(DynInstPtr(n));
    }
    return ready;
}

void
IssueQueue::removeResident(DynInst *n)
{
    detach(n);
    uint32_t slot = n->iqSlot;
    n->iqSlot = DynInst::kNoIqSlot;
    freeSlots.push_back(slot);
    slots[slot] = nullptr;
    --used;
}

void
IssueQueue::removeIssued(const DynInstPtr &inst)
{
    DynInst *n = inst.get();
    uint32_t slot = n->iqSlot;
    // A miss means double-removal or a foreign instruction: that is
    // structural-state corruption, catch it here rather than letting
    // the watchdog trip thousands of cycles later.
    panic_if(slot == DynInst::kNoIqSlot || slot >= slots.size() ||
                 slots[slot].get() != n,
             "removeIssued: instruction not in IQ");
    removeResident(n);
}

std::vector<DynInstPtr>
IssueQueue::contents() const
{
    std::vector<DynInstPtr> out;
    for (const auto &slot : slots)
        if (slot)
            out.push_back(slot);
    return out;
}

void
IssueQueue::squash(ThreadID tid, SeqNum squash_seq)
{
    for (auto &slot : slots) {
        if (slot && slot->tid == tid && slot->seq > squash_seq)
            removeResident(slot.get());
    }
}

} // namespace shelf
