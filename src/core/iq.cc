#include "core/iq.hh"

#include <algorithm>

#include "base/logging.hh"

namespace shelf
{

IssueQueue::IssueQueue(unsigned entries)
    : slots(entries)
{}

void
IssueQueue::insert(const DynInstPtr &inst)
{
    panic_if(full(), "insert into full IQ");
    for (auto &slot : slots) {
        if (!slot) {
            slot = inst;
            ++used;
            return;
        }
    }
    panic("IQ bookkeeping mismatch");
}

std::vector<DynInstPtr>
IssueQueue::readyInsts(Cycle now, const Scoreboard &sb) const
{
    std::vector<DynInstPtr> ready;
    for (const auto &slot : slots) {
        if (!slot || slot->issued)
            continue;
        if (sb.ready(slot->srcTag[0], now) &&
            sb.ready(slot->srcTag[1], now)) {
            ready.push_back(slot);
        }
    }
    std::sort(ready.begin(), ready.end(),
              [](const DynInstPtr &a, const DynInstPtr &b) {
                  return a->gseq < b->gseq;
              });
    return ready;
}

void
IssueQueue::removeIssued(const DynInstPtr &inst)
{
    for (auto &slot : slots) {
        if (slot == inst) {
            slot = nullptr;
            --used;
            return;
        }
    }
    panic("removeIssued: instruction not in IQ");
}

std::vector<DynInstPtr>
IssueQueue::contents() const
{
    std::vector<DynInstPtr> out;
    for (const auto &slot : slots)
        if (slot)
            out.push_back(slot);
    return out;
}

void
IssueQueue::squash(ThreadID tid, SeqNum squash_seq)
{
    for (auto &slot : slots) {
        if (slot && slot->tid == tid && slot->seq > squash_seq) {
            slot = nullptr;
            --used;
        }
    }
}

} // namespace shelf
