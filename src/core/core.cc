#include "core/core.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "diag/crash_dump.hh"
#include "validate/invariants.hh"

namespace shelf
{

namespace
{

/**
 * Upper bound on how far into the future the core ever schedules an
 * event: a full L1->L2->memory round trip (plus the MSHR-merge case,
 * which never exceeds a fresh miss), the longest FU latency, and the
 * branch-resolution/redirect tail, with slack for generated-trace
 * latency overrides. External traces with larger custom latencies
 * fall back to the calendar queue's overflow path.
 */
Cycle
eventHorizon(const CoreParams &p, const MemHierarchy &mem)
{
    const HierarchyParams &h = mem.params();
    Cycle miss = h.l1d.hitLatency + h.l2.hitLatency + h.memLatency;
    Cycle tail = p.branchResolveExtra + p.redirectPenalty +
        p.interClusterDelay + p.loadResolveDelay;
    return miss + tail + 64;
}

} // namespace

Core::Core(const CoreParams &params, MemHierarchy &mem_,
           std::vector<const Trace *> traces)
    : coreParams(params), mem(mem_),
      gshare(13, 4, params.threads),
      eventQueue(eventHorizon(params, mem_)),
      classifier(params.threads),
      recorder(params.flightRecorderEvents)
{
    coreParams.validate();
    fatal_if(traces.size() != coreParams.threads,
             "%zu traces for %u threads", traces.size(),
             coreParams.threads);

    rename = std::make_unique<RenameUnit>(
        coreParams.threads, coreParams.numPhysRegs(),
        coreParams.numExtTags());
    rob = std::make_unique<ROB>(coreParams.threads,
                                coreParams.robPerThread());
    shelfQ = std::make_unique<Shelf>(
        coreParams.threads, coreParams.shelfPerThread(),
        coreParams.shelfReleaseAtWriteback);
    iq = std::make_unique<IssueQueue>(coreParams.iqEntries,
                                      coreParams.numTags());
    scoreboard = std::make_unique<Scoreboard>(coreParams.numTags());
    ssr = std::make_unique<SpecShiftRegisters>(coreParams.threads,
                                               coreParams.ssrDesign);
    lsq = std::make_unique<LSQ>(coreParams.threads,
                                coreParams.lqPerThread(),
                                coreParams.sqPerThread());
    fuPool = std::make_unique<FUPool>(coreParams);

    SteerContext ctx;
    ctx.mem = &mem;
    ctx.sb = scoreboard.get();
    ctx.rename = rename.get();
    ctx.dcacheHitLatency = mem.params().l1d.hitLatency;
    ctx.branchResolveExtra = coreParams.branchResolveExtra;
    ctx.loadResolveDelay = coreParams.loadResolveDelay;
    ctx.steerSlack = coreParams.steerSlack;
    ctx.retiredCounter = &coreStats.retiredAll;
    steerPolicy = makeSteeringPolicy(coreParams, ctx);

    threads.resize(coreParams.threads);
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        fatal_if(!traces[t] || traces[t]->empty(),
                 "empty trace for thread %u", t);
        threads[t].trace = traces[t];
    }

    coreStats.retired.assign(coreParams.threads, 0);
    tagProducedOnShelf.assign(coreParams.numTags(), 0);

    // Register with the per-thread diag registry so the watchdog's
    // panic path and worker signal handlers can find this core.
    diagPrevCore = diag::setCurrentCore(this);
}

Core::~Core()
{
    diag::setCurrentCore(diagPrevCore);
}

void
Core::tracePipe(const char *stage, const DynInst &inst) const
{
    if (!traceSink)
        return;
    traceSink(csprintf("%8llu: t%d #%-6llu %-14s %s",
                       (unsigned long long)now, inst.tid,
                       (unsigned long long)inst.seq, stage,
                       inst.si.toString().c_str()));
}

const TraceInst &
Core::traceAt(const ThreadState &ts, uint64_t cursor) const
{
    return (*ts.trace)[cursor % ts.trace->size()];
}

void
Core::scheduleEvent(Cycle when, int kind, const DynInstPtr &inst)
{
    panic_if(when <= now, "event scheduled in the past");
    eventQueue.schedule(when, Event{inst->gseq, kind, inst});
}

void
Core::tick()
{
    ++now;

    if (wedgeAtCycle && now >= wedgeAtCycle)
        wedged = true;

    rob->beginCycle();
    fuPool->beginCycle();
    ssr->tick();
    steerPolicy->tick(now);

    commitStage();
    processEvents();
    issueStage();
    dispatchStage();
    fetchStage();

    ++coreStats.cycles;
    coreStats.iqOccupancy.sample(static_cast<double>(iq->size()));
    if (shelfQ->enabled()) {
        size_t occ = 0;
        for (unsigned t = 0; t < coreParams.threads; ++t)
            occ += shelfQ->size(static_cast<ThreadID>(t));
        coreStats.shelfOccupancy.sample(static_cast<double>(occ));
    }
    size_t rob_occ = 0;
    for (unsigned t = 0; t < coreParams.threads; ++t)
        rob_occ += rob->size(static_cast<ThreadID>(t));
    coreStats.robOccupancy.sample(static_cast<double>(rob_occ));

    if (coreParams.watchdogCycles)
        diagTick();

    if (checkInvariants)
        verifyInvariants();
}

void
Core::run(Cycle cycles)
{
    for (Cycle c = 0; c < cycles; ++c)
        tick();
}

Cycle
Core::runUntilRetired(uint64_t per_thread, Cycle max_cycles)
{
    Cycle start = now;
    while (now - start < max_cycles) {
        bool done = true;
        for (unsigned t = 0; t < coreParams.threads; ++t)
            done &= coreStats.retired[t] >= per_thread;
        if (done)
            break;
        tick();
    }
    return now - start;
}

void
Core::resetStats()
{
    coreStats.cycles = 0;
    std::fill(coreStats.retired.begin(), coreStats.retired.end(), 0);
    coreStats.squashes = 0;
    coreStats.branchSquashes = 0;
    coreStats.memOrderSquashes = 0;
    coreStats.dispatchStalls.reset();
    coreStats.iqOccupancy.reset();
    coreStats.shelfOccupancy.reset();
    coreStats.robOccupancy.reset();
    classifier.reset();
    events.reset();
    lsq->lqSearches.reset();
    lsq->sqSearches.reset();
    lsq->forwards.reset();
    lsq->coalesces.reset();
    lsq->violations.reset();
    steerPolicy->steeredToShelf.reset();
    steerPolicy->steeredToIq.reset();
    gshare.lookups.reset();
    gshare.mispredicts.reset();
    storeSets.violations.reset();
}

double
Core::ipc(ThreadID tid) const
{
    return coreStats.cycles
        ? static_cast<double>(coreStats.retired[tid]) /
          static_cast<double>(coreStats.cycles)
        : 0.0;
}

double
Core::totalIpc() const
{
    return coreStats.cycles
        ? static_cast<double>(coreStats.totalRetired()) /
          static_cast<double>(coreStats.cycles)
        : 0.0;
}

void
Core::commitStage()
{
    if (wedged)
        return; // injected fault: retirement is stalled
    unsigned budget = coreParams.commitWidth;
    unsigned tried = 0;
    unsigned nthreads = coreParams.threads;
    while (budget > 0 && tried < nthreads) {
        ThreadID tid = static_cast<ThreadID>(commitRR % nthreads);
        DynInstPtr head = rob->head(tid);
        bool progressed = false;
        while (budget > 0 && head) {
            if (!head->completed)
                break;
            if (shelfQ->enabled() &&
                shelfQ->retirePointer(tid) < head->shelfSquashIdx) {
                // ROB may not retire past unretired elder shelf
                // instructions (paper section III-B).
                break;
            }
            rob->retireHead(tid);
            if (head->isLoad()) {
                lsq->retireLoad(tid, head);
                threads[tid].incompleteLoads.erase(head->seq);
            }
            if (head->isStore()) {
                storesByGseq.erase(head->gseq);
                // Drain via the store buffer into the cache.
                mem.accessData(head->si.addr, true, now);
            }
            rename->retire(*head);
            head->retired = true;
            head->retireCycle = now;
            tracePipe("retire", *head);
            recorder.record(now, diag::PipeEvent::Retire, tid,
                            head->seq, false);
            classifier.recordRetire(*head);
            logRetire(*head);
            if (head->isStore())
                lsq->drainRetiredStores(tid);
            ++coreStats.retired[tid];
            ++coreStats.retiredAll;
            ++events.robRetires;
            --budget;
            progressed = true;
            head = rob->head(tid);
        }
        cleanupInflight(threads[tid]);
        ++tried;
        ++commitRR;
        if (progressed)
            tried = 0;
    }
}

void
Core::processEvents()
{
    dueEvents.clear();
    eventQueue.drain(now, dueEvents);
    if (dueEvents.empty())
        return;
    // Program/fetch order within a cycle: elder instructions act
    // first, so a store's violation check precedes the writeback of
    // any younger shelf instruction (the squash filter of III-B).
    std::stable_sort(dueEvents.begin(), dueEvents.end(),
                     [](const Event &a, const Event &b) {
                         return a.gseq < b.gseq;
                     });
    for (const Event &ev : dueEvents) {
        if (ev.inst->squashed)
            continue;
        if (ev.kind == kExecuteMem)
            executeMemEvent(ev.inst);
        else if (ev.kind == kShelfRetire)
            tryShelfRetire(ev.inst);
        else
            completeEvent(ev.inst);
    }
}

void
Core::completeEvent(const DynInstPtr &inst)
{
    inst->completed = true;
    inst->completeCycle = now;
    tracePipe("complete", *inst);
    recorder.record(now, diag::PipeEvent::Writeback, inst->tid,
                    inst->seq, inst->toShelf);

    if (inst->isLoad())
        threads[inst->tid].incompleteLoads.erase(inst->seq);

    if (inst->hasDst())
        ++events.prfWrites;

    // Wakeup broadcast energy: one CAM compare per occupied IQ entry.
    events.iqWakeupCompares += iq->size();

    if (inst->isLoad())
        steerPolicy->loadCompleted(*inst);

    if (inst->isBranch() && inst->mispredictedBranch) {
        // Resolution: squash younger instructions and redirect.
        ++coreStats.branchSquashes;
        squashThread(inst->tid, inst->seq, inst->traceIdx + 1,
                     now + coreParams.branchResolveExtra +
                         coreParams.redirectPenalty);
    }

    if (inst->toShelf)
        tryShelfRetire(inst);
}

bool
Core::elderIncompleteLoad(const DynInst &inst) const
{
    const auto &loads = threads[inst.tid].incompleteLoads;
    return !loads.empty() && *loads.begin() < inst.seq;
}

void
Core::tryShelfRetire(const DynInstPtr &inst)
{
    // Under TSO every instruction is speculative while an elder load
    // has not completed; a shelf instruction may not write back (and
    // destroy the previous register value) until then (section
    // III-D). The relaxed model retires immediately.
    if (wedged ||
        (coreParams.memModel == CoreParams::MemModel::TSO &&
         elderIncompleteLoad(*inst))) {
        scheduleEvent(now + 1, kShelfRetire, inst);
        return;
    }
    retireShelfInst(inst);
}

void
Core::retireShelfInst(const DynInstPtr &inst)
{
    // Shelf instructions retire at writeback, out of program order
    // with respect to the ROB (paper section III-B).
    panic_if(inst->squashed, "retiring squashed shelf instruction");
    shelfQ->markRetired(inst->tid, inst->shelfIdx);
    rename->retire(*inst);
    inst->retired = true;
    inst->retireCycle = now;
    tracePipe("retire(shelf)", *inst);
    recorder.record(now, diag::PipeEvent::Retire, inst->tid,
                    inst->seq, true);
    classifier.recordRetire(*inst);
    logRetire(*inst);
    if (inst->isStore()) {
        storesByGseq.erase(inst->gseq);
        if (coreParams.memModel == CoreParams::MemModel::TSO)
            lsq->drainRetiredStores(inst->tid);
    }
    ++coreStats.retired[inst->tid];
    ++coreStats.retiredAll;
    cleanupInflight(threads[inst->tid]);
}

void
Core::cleanupInflight(ThreadState &ts)
{
    while (!ts.inflight.empty() &&
           (ts.inflight.front()->retired ||
            ts.inflight.front()->squashed)) {
        ts.inflight.pop_front();
    }
}

bool
Core::eldestUnissued(const ThreadState &ts,
                     const DynInstPtr &inst) const
{
    for (const auto &elder : ts.inflight) {
        if (elder->squashed || elder->issued)
            continue;
        return elder == inst;
    }
    return false;
}

void
Core::verifyInvariants() const
{
    // The named checks live in validate/invariants.cc; this wrapper
    // keeps setCheckInvariants() a hard assertion for tests.
    auto failures = validate::InvariantChecker::runAll(*this);
    if (!failures.empty()) {
        panic("invariant '%s' violated at cycle %llu: %s",
              failures.front().check.c_str(),
              (unsigned long long)now,
              failures.front().detail.c_str());
    }
}

} // namespace shelf
