#include "core/core.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "diag/crash_dump.hh"
#include "validate/invariants.hh"

namespace shelf
{

namespace
{

/**
 * Upper bound on how far into the future the core ever schedules an
 * event: a full L1->L2->memory round trip (plus the MSHR-merge case,
 * which never exceeds a fresh miss), the longest FU latency, and the
 * branch-resolution/redirect tail, with slack for generated-trace
 * latency overrides. External traces with larger custom latencies
 * fall back to the calendar queue's overflow path.
 */
Cycle
eventHorizon(const CoreParams &p, const MemHierarchy &mem)
{
    const HierarchyParams &h = mem.params();
    Cycle miss = h.l1d.hitLatency + h.l2.hitLatency + h.memLatency;
    Cycle tail = p.branchResolveExtra + p.redirectPenalty +
        p.interClusterDelay + p.loadResolveDelay;
    return miss + tail + 64;
}

} // namespace

Core::Core(const CoreParams &params, MemHierarchy &mem_,
           std::vector<const Trace *> traces)
    : coreParams(params), mem(mem_),
      gshare(13, 4, params.threads),
      eventQueue(eventHorizon(params, mem_)),
      classifier(params.threads),
      recorder(params.flightRecorderEvents)
{
    coreParams.validate();
    fatal_if(traces.size() != coreParams.threads,
             "%zu traces for %u threads", traces.size(),
             coreParams.threads);
    fetchBufCap = coreParams.fetchBufferCapacity();

    rename = std::make_unique<RenameUnit>(
        coreParams.threads, coreParams.numPhysRegs(),
        coreParams.numExtTags());
    rob = std::make_unique<ROB>(coreParams.threads,
                                coreParams.robPerThread());
    shelfQ = std::make_unique<Shelf>(
        coreParams.threads, coreParams.shelfPerThread(),
        coreParams.shelfReleaseAtWriteback);
    iq = std::make_unique<IssueQueue>(coreParams.iqEntries,
                                      coreParams.numTags());
    scoreboard = std::make_unique<Scoreboard>(coreParams.numTags());
    ssr = std::make_unique<SpecShiftRegisters>(coreParams.threads,
                                               coreParams.ssrDesign);
    lsq = std::make_unique<LSQ>(coreParams.threads,
                                coreParams.lqPerThread(),
                                coreParams.sqPerThread());
    fuPool = std::make_unique<FUPool>(coreParams);

    SteerContext ctx;
    ctx.mem = &mem;
    ctx.sb = scoreboard.get();
    ctx.rename = rename.get();
    ctx.dcacheHitLatency = mem.params().l1d.hitLatency;
    ctx.branchResolveExtra = coreParams.branchResolveExtra;
    ctx.loadResolveDelay = coreParams.loadResolveDelay;
    ctx.steerSlack = coreParams.steerSlack;
    ctx.retiredCounter = &coreStats.retiredAll;
    steerPolicy = makeSteeringPolicy(coreParams, ctx);

    threads.resize(coreParams.threads);
    for (unsigned t = 0; t < coreParams.threads; ++t) {
        fatal_if(!traces[t] || traces[t]->empty(),
                 "empty trace for thread %u", t);
        threads[t].trace = traces[t];
    }

    coreStats.retired.assign(coreParams.threads, 0);

    // Shelf head-readiness cache: one entry per thread, waiter masks
    // over the full extended tag space. The per-tag waiter word
    // packs one bit per thread.
    fatal_if(shelfQ->enabled() && coreParams.threads > 64,
             "shelf waiter masks support at most 64 threads");
    shelfHeadCache.assign(coreParams.threads, ShelfHeadCache());
    shelfTagWaiters.assign(coreParams.numTags(), 0);
    loadMinLat = 1 + mem.params().l1d.hitLatency;

    // Register with the per-thread diag registry so the watchdog's
    // panic path and worker signal handlers can find this core.
    diagPrevCore = diag::setCurrentCore(this);
}

Core::~Core()
{
    diag::setCurrentCore(diagPrevCore);
}

void
Core::tracePipe(const char *stage, const DynInst &inst) const
{
    if (!traceSink)
        return;
    traceSink(csprintf("%8llu: t%d #%-6llu %-14s %s",
                       (unsigned long long)now, inst.tid,
                       (unsigned long long)inst.seq, stage,
                       inst.si.toString().c_str()));
}

const TraceInst &
Core::traceAt(const ThreadState &ts, uint64_t cursor) const
{
    return (*ts.trace)[cursor % ts.trace->size()];
}

void
Core::scheduleEvent(Cycle when, int kind, const DynInstPtr &inst)
{
    panic_if(when <= now, "event scheduled in the past");
    eventQueue.schedule(when, Event{inst->gseq, kind, inst});
}

void
Core::tick()
{
    ++now;

    if (wedgeAtCycle && now >= wedgeAtCycle)
        wedged = true;

    rob->beginCycle();
    fuPool->beginCycle();
    ssr->tick();
    steerPolicy->tick(now);

    commitStage();
    processEvents();
    issueStage();
    dispatchStage();
    fetchStage();

    ++coreStats.cycles;
    coreStats.iqOccupancy.sample(static_cast<double>(iq->size()));
    if (shelfQ->enabled()) {
        size_t occ = 0;
        for (unsigned t = 0; t < coreParams.threads; ++t)
            occ += shelfQ->size(static_cast<ThreadID>(t));
        coreStats.shelfOccupancy.sample(static_cast<double>(occ));
    }
    size_t rob_occ = 0;
    for (unsigned t = 0; t < coreParams.threads; ++t)
        rob_occ += rob->size(static_cast<ThreadID>(t));
    coreStats.robOccupancy.sample(static_cast<double>(rob_occ));

    if (coreParams.watchdogCycles)
        diagTick();

    if (checkInvariants)
        verifyInvariants();
}

void
Core::run(Cycle cycles)
{
    Cycle end = now + cycles;
    while (now < end)
        stepWithSkip(end);
}

void
Core::stepWithSkip(Cycle end)
{
    uint64_t sig = activitySignature();
    tick();
    if (coreParams.skipQuiescentCycles && now < end &&
        activitySignature() == sig)
        skipQuiescentSpan(end);
}

Cycle
Core::runUntilRetired(uint64_t per_thread, Cycle max_cycles)
{
    Cycle start = now;
    Cycle limit = max_cycles >= kCycleNever - start
        ? kCycleNever : start + max_cycles;
    bool skip = coreParams.skipQuiescentCycles;
    while (now < limit) {
        bool done = true;
        for (unsigned t = 0; t < coreParams.threads; ++t)
            done &= coreStats.retired[t] >= per_thread;
        if (done)
            break;
        uint64_t sig = activitySignature();
        tick();
        // Skipped cycles retire nothing, so the done-check ordering
        // is preserved.
        if (skip && now < limit && activitySignature() == sig)
            skipQuiescentSpan(limit);
    }
    return now - start;
}

Cycle
Core::quiescentWake()
{
    const Cycle no_skip = now + 1;

    // IQ first — on busy cycles its ready list disqualifies skipping
    // on the first entry, keeping the common-case attempt cheap. An
    // entry ready-but-blocked (FU, store set, cluster delay) reads
    // as ready <= now and forbids skipping altogether.
    Cycle wake = kCycleNever;
    Cycle iq_ready = iq->nextReadyCycle(no_skip);
    if (iq_ready <= no_skip)
        return no_skip;
    if (iq_ready != kCycleNever)
        wake = iq_ready;

    skipStallCounters.clear();
    skipRenameStalls.clear();

    unsigned nthreads = coreParams.threads;

    for (unsigned t = 0; t < nthreads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        ThreadState &ts = threads[tid];

        // Commit: a completed, un-gated ROB head retires next cycle
        // (the shelf retire-pointer gate can open only through
        // writeback events, so a gated head stays gated all span).
        if (!wedged) {
            DynInstPtr head = rob->head(tid);
            if (head && head->completed &&
                !(shelfQ->enabled() &&
                  shelfQ->retirePointer(tid) < head->shelfSquashIdx)) {
                return no_skip;
            }
        }

        // Dispatch: the front instruction acts the cycle it becomes
        // decode-ready, unless a structural stall — whose inputs are
        // all frozen while no event fires — holds it; then it
        // charges one stall counter per cycle instead.
        if (!ts.frontend.empty()) {
            const DynInstPtr &front = ts.frontend.front();
            Cycle decode_at =
                front->fetchCycle + coreParams.fetchToDispatch;
            if (decode_at > now) {
                wake = std::min(wake, decode_at);
            } else {
                if (!front->steerDecided)
                    return no_skip; // steering is stateful
                stats::Scalar *ren = nullptr;
                uint64_t *ctr =
                    dispatchStallCounter(tid, *front, &ren);
                if (!ctr)
                    return no_skip;
                skipStallCounters.push_back(ctr);
                if (ren)
                    skipRenameStalls.push_back(ren);
            }
        }

        // Fetch: acts (cache access, at least) as soon as its stall
        // expires while the frontend buffer has room.
        if (ts.frontend.size() < fetchBufCap)
            wake = std::min(wake,
                            std::max(ts.fetchStallUntil, no_skip));

        // Shelf head: the readiness cache knows the earliest eligible
        // cycle; a head with pending operands (or out of order) wakes
        // only through writeback events / IQ issues, both span-enders.
        if (shelfQ->enabled()) {
            DynInstPtr head = shelfQ->head(tid);
            if (head) {
                const ShelfHeadCache &hc = shelfHeadCache[tid];
                if (hc.inst != head.get())
                    return no_skip; // cache not refreshed this cycle
                // The in-order frontier is frozen during a span (it
                // moves only on IQ issue), so both the optimistic and
                // the conservative design see today's issue head.
                if (rob->issueHead(tid) >= head->robTailAtDispatch) {
                    if (head->firstInRun && !head->ssrLoaded)
                        return no_skip; // SSR run latch still pending
                    if (!hc.pendingOps) {
                        Cycle w = hc.operandsReadyAt;
                        if (hc.ssrValid) {
                            w = std::max(w, hc.ssrEligibleAt);
                        } else {
                            unsigned v =
                                ssr->shelfValue(tid, head->runId);
                            if (v > hc.minLat)
                                w = std::max(w,
                                             now + (v - hc.minLat));
                        }
                        wake = std::min(wake, std::max(w, no_skip));
                    }
                }
            }
        }
    }

    // Never skip across the forward-progress watchdog boundary: the
    // panic and its deadlock report must fire on a real tick.
    if (coreParams.watchdogCycles) {
        Cycle panic_at =
            watchdogLastProgress + coreParams.watchdogCycles;
        wake = std::min(wake, std::max(panic_at, no_skip));
    }

    return wake;
}

uint64_t *
Core::dispatchStallCounter(ThreadID tid, const DynInst &inst,
                           stats::Scalar **rename_ctr)
{
    // Mirror of dispatchStage()'s structural checks, in order; keep
    // the two in sync.
    *rename_ctr = nullptr;
    auto &stalls = coreStats.dispatchStalls;
    bool tso = coreParams.memModel == CoreParams::MemModel::TSO;
    if (inst.toShelf) {
        if (!shelfQ->canDispatch(tid))
            return &stalls.shelfFull;
        if (tso && inst.isStore() && lsq->sqFull(tid))
            return &stalls.sqFull;
        if (!rename->canRename(inst)) {
            *rename_ctr = &rename->extStalls;
            return &stalls.extTags;
        }
    } else {
        if (iq->full())
            return &stalls.iqFull;
        if (rob->full(tid))
            return &stalls.robFull;
        if (inst.isLoad() && lsq->lqFull(tid))
            return &stalls.lqFull;
        if (inst.isStore() && lsq->sqFull(tid))
            return &stalls.sqFull;
        if (!rename->canRename(inst)) {
            *rename_ctr = &rename->physStalls;
            return &stalls.physRegs;
        }
    }
    return nullptr;
}

void
Core::skipQuiescentSpan(Cycle limit)
{
    bool tso = coreParams.memModel == CoreParams::MemModel::TSO;

    // A cycle is inert when every event due on it drains to nothing:
    // squashed (dropped silently) or a shelf retirement that stays
    // blocked and re-arms. Inertness is stable across a span: elder
    // loads complete only through events, which end the span first,
    // and the wedge only ever turns on.
    auto inertAt = [&](Cycle c) {
        bool c_wedged = wedged ||
            (wedgeAtCycle && c >= wedgeAtCycle);
        for (const Event &ev : eventQueue.peekAt(c)) {
            if (ev.inst->squashed)
                continue;
            if (ev.kind == kShelfRetire &&
                (c_wedged ||
                 (tso && elderIncompleteLoad(*ev.inst)))) {
                continue;
            }
            return false;
        }
        return true;
    };

    // The dominant reason a dead cycle can't start a span is an
    // event (usually a writeback) due on the very next one; test
    // that bucket before paying for the full wake scan.
    if (eventQueue.overflowDueBy(now + 1) || !inertAt(now + 1))
        return;

    Cycle wake = quiescentWake();
    if (wake <= now + 1)
        return;

    // Phase 1: find the span end — the last cycle before `wake`
    // (bounded by the run limit and the event ring's unambiguous
    // window) all of whose due events are inert.
    Cycle last = std::min(wake - 1, limit);
    last = std::min(last, now + eventQueue.window());
    Cycle end = now + 1; // proven inert above
    while (end < last) {
        Cycle c = end + 1;
        if (eventQueue.overflowDueBy(c) || !inertAt(c))
            break;
        end = c;
    }

    Cycle first = now + 1;
    uint64_t skipped = end - now;

    // Phase 2: reproduce, in batch, exactly the state real ticks
    // would leave behind on cycles where no stage acts.

    // Event queue: advance the cursor over the span in one step. A
    // blocked shelf retirement re-arms cycle by cycle in a real run
    // and ends the span scheduled one cycle past its end, so one
    // re-arm at end+1 leaves the identical queue. (processEvents
    // sorts by unique gseq, so bucket insertion order is
    // immaterial.)
    dueEvents.clear();
    eventQueue.skipTo(end, dueEvents);
    now = end;
    for (const Event &ev : dueEvents) {
        if (ev.inst->squashed)
            continue;
        scheduleEvent(now + 1, kShelfRetire, ev.inst);
    }

    // SSR decay and steering-counter decay have coupled per-cycle
    // dynamics (freeze bits depend on counters crossing zero); run
    // them cycle by cycle — cheap after the SoA rewrites.
    for (Cycle c = first; c <= end; ++c) {
        ssr->tick();
        steerPolicy->tick(c);
    }

    // Wedge arming and the commit round-robin cursor: commitStage
    // scans every thread on a cycle where nothing retires, and is
    // skipped entirely from the arming cycle on. (Batched cursor
    // addition wraps identically to per-cycle increments.)
    uint64_t unwedged_cycles = skipped;
    if (wedged) {
        unwedged_cycles = 0;
    } else if (wedgeAtCycle && end >= wedgeAtCycle) {
        unwedged_cycles = std::max(first, wedgeAtCycle) - first;
        wedged = true;
    }
    commitRR += static_cast<unsigned>(
        unwedged_cycles * coreParams.threads);
    dispatchRR += static_cast<unsigned>(skipped);

    // Structurally-blocked decode-ready front instructions charge
    // their stall counter every cycle (integer-exact batching).
    for (uint64_t *ctr : skipStallCounters)
        *ctr += skipped;
    for (stats::Scalar *ctr : skipRenameStalls)
        *ctr += static_cast<double>(skipped);

    // Per-cycle stats: the sampled values are frozen across the
    // span, and sampleN() is bit-identical for these integer values.
    coreStats.cycles += skipped;
    coreStats.iqOccupancy.sampleN(
        static_cast<double>(iq->size()), skipped);
    if (shelfQ->enabled()) {
        size_t occ = 0;
        for (unsigned t = 0; t < coreParams.threads; ++t)
            occ += shelfQ->size(static_cast<ThreadID>(t));
        coreStats.shelfOccupancy.sampleN(
            static_cast<double>(occ), skipped);
    }
    size_t rob_occ = 0;
    for (unsigned t = 0; t < coreParams.threads; ++t)
        rob_occ += rob->size(static_cast<ThreadID>(t));
    coreStats.robOccupancy.sampleN(
        static_cast<double>(rob_occ), skipped);

    coreStats.quiesceSkippedCycles += skipped;
    ++coreStats.quiesceSpans;
    recorder.record(first, diag::PipeEvent::QuiesceSkip, 0,
                    static_cast<SeqNum>(skipped), false);
}

void
Core::resetStats()
{
    coreStats.cycles = 0;
    std::fill(coreStats.retired.begin(), coreStats.retired.end(), 0);
    coreStats.squashes = 0;
    coreStats.branchSquashes = 0;
    coreStats.memOrderSquashes = 0;
    coreStats.dispatchStalls.reset();
    coreStats.iqOccupancy.reset();
    coreStats.shelfOccupancy.reset();
    coreStats.robOccupancy.reset();
    coreStats.quiesceSkippedCycles = 0;
    coreStats.quiesceSpans = 0;
    classifier.reset();
    events.reset();
    lsq->lqSearches.reset();
    lsq->sqSearches.reset();
    lsq->forwards.reset();
    lsq->coalesces.reset();
    lsq->violations.reset();
    steerPolicy->steeredToShelf.reset();
    steerPolicy->steeredToIq.reset();
    gshare.lookups.reset();
    gshare.mispredicts.reset();
    storeSets.violations.reset();
}

double
Core::ipc(ThreadID tid) const
{
    return coreStats.cycles
        ? static_cast<double>(coreStats.retired[tid]) /
          static_cast<double>(coreStats.cycles)
        : 0.0;
}

double
Core::totalIpc() const
{
    return coreStats.cycles
        ? static_cast<double>(coreStats.totalRetired()) /
          static_cast<double>(coreStats.cycles)
        : 0.0;
}

void
Core::commitStage()
{
    if (wedged)
        return; // injected fault: retirement is stalled
    unsigned budget = coreParams.commitWidth;
    unsigned tried = 0;
    unsigned nthreads = coreParams.threads;
    while (budget > 0 && tried < nthreads) {
        ThreadID tid = static_cast<ThreadID>(commitRR % nthreads);
        DynInstPtr head = rob->head(tid);
        bool progressed = false;
        while (budget > 0 && head) {
            if (!head->completed)
                break;
            if (shelfQ->enabled() &&
                shelfQ->retirePointer(tid) < head->shelfSquashIdx) {
                // ROB may not retire past unretired elder shelf
                // instructions (paper section III-B).
                break;
            }
            rob->retireHead(tid);
            if (head->isLoad()) {
                lsq->retireLoad(tid, head);
                threads[tid].incompleteLoads.erase(head->seq);
            }
            if (head->isStore()) {
                storesByGseq.erase(head->gseq);
                // Drain via the store buffer into the cache.
                mem.accessData(head->si.addr, true, now);
            }
            rename->retire(*head);
            head->retired = true;
            head->retireCycle = now;
            tracePipe("retire", *head);
            recorder.record(now, diag::PipeEvent::Retire, tid,
                            head->seq, false);
            classifier.recordRetire(*head);
            logRetire(*head);
            if (head->isStore())
                lsq->drainRetiredStores(tid);
            ++coreStats.retired[tid];
            ++coreStats.retiredAll;
            ++events.robRetires;
            --budget;
            progressed = true;
            head = rob->head(tid);
        }
        cleanupInflight(threads[tid]);
        ++tried;
        ++commitRR;
        if (progressed)
            tried = 0;
    }
}

void
Core::processEvents()
{
    dueEvents.clear();
    eventQueue.drain(now, dueEvents);
    if (dueEvents.empty())
        return;
    // Program/fetch order within a cycle: elder instructions act
    // first, so a store's violation check precedes the writeback of
    // any younger shelf instruction (the squash filter of III-B).
    std::stable_sort(dueEvents.begin(), dueEvents.end(),
                     [](const Event &a, const Event &b) {
                         return a.gseq < b.gseq;
                     });
    for (const Event &ev : dueEvents) {
        if (ev.inst->squashed)
            continue;
        if (ev.kind == kExecuteMem)
            executeMemEvent(ev.inst);
        else if (ev.kind == kShelfRetire)
            tryShelfRetire(ev.inst);
        else
            completeEvent(ev.inst);
    }
}

void
Core::completeEvent(const DynInstPtr &inst)
{
    inst->completed = true;
    inst->completeCycle = now;
    tracePipe("complete", *inst);
    recorder.record(now, diag::PipeEvent::Writeback, inst->tid,
                    inst->seq, inst->toShelf);

    if (inst->isLoad())
        threads[inst->tid].incompleteLoads.erase(inst->seq);

    if (inst->hasDst())
        ++events.prfWrites;

    // Wakeup broadcast energy: one CAM compare per occupied IQ entry.
    events.iqWakeupCompares += iq->size();

    if (inst->isLoad())
        steerPolicy->loadCompleted(*inst);

    if (inst->isBranch() && inst->mispredictedBranch) {
        // Resolution: squash younger instructions and redirect.
        ++coreStats.branchSquashes;
        squashThread(inst->tid, inst->seq, inst->traceIdx + 1,
                     now + coreParams.branchResolveExtra +
                         coreParams.redirectPenalty);
    }

    if (inst->toShelf)
        tryShelfRetire(inst);
}

bool
Core::elderIncompleteLoad(const DynInst &inst) const
{
    const auto &loads = threads[inst.tid].incompleteLoads;
    return !loads.empty() && *loads.begin() < inst.seq;
}

void
Core::tryShelfRetire(const DynInstPtr &inst)
{
    // Under TSO every instruction is speculative while an elder load
    // has not completed; a shelf instruction may not write back (and
    // destroy the previous register value) until then (section
    // III-D). The relaxed model retires immediately.
    if (wedged ||
        (coreParams.memModel == CoreParams::MemModel::TSO &&
         elderIncompleteLoad(*inst))) {
        scheduleEvent(now + 1, kShelfRetire, inst);
        return;
    }
    retireShelfInst(inst);
}

void
Core::retireShelfInst(const DynInstPtr &inst)
{
    // Shelf instructions retire at writeback, out of program order
    // with respect to the ROB (paper section III-B).
    panic_if(inst->squashed, "retiring squashed shelf instruction");
    shelfQ->markRetired(inst->tid, inst->shelfIdx);
    rename->retire(*inst);
    inst->retired = true;
    inst->retireCycle = now;
    tracePipe("retire(shelf)", *inst);
    recorder.record(now, diag::PipeEvent::Retire, inst->tid,
                    inst->seq, true);
    classifier.recordRetire(*inst);
    logRetire(*inst);
    if (inst->isStore()) {
        storesByGseq.erase(inst->gseq);
        if (coreParams.memModel == CoreParams::MemModel::TSO)
            lsq->drainRetiredStores(inst->tid);
    }
    ++coreStats.retired[inst->tid];
    ++coreStats.retiredAll;
    cleanupInflight(threads[inst->tid]);
}

void
Core::cleanupInflight(ThreadState &ts)
{
    while (!ts.inflight.empty() &&
           (ts.inflight.front()->retired ||
            ts.inflight.front()->squashed)) {
        ts.inflight.pop_front();
    }
}

bool
Core::eldestUnissued(const ThreadState &ts,
                     const DynInstPtr &inst) const
{
    for (const auto &elder : ts.inflight) {
        if (elder->squashed || elder->issued)
            continue;
        return elder == inst;
    }
    return false;
}

void
Core::verifyInvariants() const
{
    // The named checks live in validate/invariants.cc; this wrapper
    // keeps setCheckInvariants() a hard assertion for tests.
    auto failures = validate::InvariantChecker::runAll(*this);
    if (!failures.empty()) {
        panic("invariant '%s' violated at cycle %llu: %s",
              failures.front().check.c_str(),
              (unsigned long long)now,
              failures.front().detail.c_str());
    }
}

} // namespace shelf
