#include "core/rob.hh"

#include "base/logging.hh"

namespace shelf
{

ROB::ROB(unsigned threads, unsigned entries_per_thread)
    : parts(threads)
{
    for (auto &p : parts)
        p.queue.resize(entries_per_thread);
}

VIdx
ROB::dispatch(ThreadID tid, const DynInstPtr &inst)
{
    Partition &p = part(tid);
    VIdx idx = p.queue.push(inst);
    // Dispatch clears the instruction's issue-tracking bit; with the
    // virtual-index model that is implicit (issueHead <= idx).
    return idx;
}

void
ROB::advanceIssueHead(Partition &p)
{
    while (p.issueHead < p.queue.tailIndex()) {
        if (p.issueHead < p.queue.headIndex()) {
            // Already retired, hence issued.
            ++p.issueHead;
        } else if (p.queue.at(p.issueHead)->issued) {
            ++p.issueHead;
        } else {
            break;
        }
    }
}

void
ROB::markIssued(ThreadID tid, VIdx rob_idx)
{
    Partition &p = part(tid);
    panic_if(!p.queue.contains(rob_idx),
             "markIssued of non-resident ROB index");
    panic_if(!p.queue.at(rob_idx)->issued,
             "markIssued before instruction flagged issued");
    advanceIssueHead(p);
}

void
ROB::beginCycle()
{
    for (auto &p : parts) {
        advanceIssueHead(p);
        p.issueHeadSnapshot = p.issueHead;
    }
}

DynInstPtr
ROB::head(ThreadID tid) const
{
    const Partition &p = part(tid);
    return p.queue.empty() ? nullptr : p.queue.front();
}

void
ROB::retireHead(ThreadID tid)
{
    Partition &p = part(tid);
    panic_if(p.queue.empty(), "retire from empty ROB");
    panic_if(!p.queue.front()->completed, "retire of incomplete inst");
    p.queue.popFront();
}

DynInstPtr
ROB::squashTail(ThreadID tid)
{
    Partition &p = part(tid);
    panic_if(p.queue.empty(), "squash from empty ROB");
    DynInstPtr inst = p.queue.back();
    p.queue.popBack();
    if (p.issueHead > p.queue.tailIndex())
        p.issueHead = p.queue.tailIndex();
    if (p.issueHeadSnapshot > p.queue.tailIndex())
        p.issueHeadSnapshot = p.queue.tailIndex();
    return inst;
}

} // namespace shelf
