#include "core/params.hh"

#include "base/logging.hh"

namespace shelf
{

const char *
steerPolicyName(SteerPolicyKind kind)
{
    switch (kind) {
      case SteerPolicyKind::AlwaysIQ: return "always-iq";
      case SteerPolicyKind::AlwaysShelf: return "always-shelf";
      case SteerPolicyKind::Practical: return "practical";
      case SteerPolicyKind::Oracle: return "oracle";
      default: panic("bad steering policy %d", static_cast<int>(kind));
    }
}

void
CoreParams::validate() const
{
    std::string err = validateError();
    fatal_if(!err.empty(), "%s", err.c_str());
}

std::string
CoreParams::validateError() const
{
    if (threads == 0 || threads > kMaxThreads)
        return csprintf("%s: bad thread count %u", name.c_str(),
                        threads);
    if (robEntries % threads != 0)
        return csprintf("%s: ROB (%u) not divisible by %u threads",
                        name.c_str(), robEntries, threads);
    if (lqEntries % threads != 0)
        return csprintf("%s: LQ (%u) not divisible by %u threads",
                        name.c_str(), lqEntries, threads);
    if (sqEntries % threads != 0)
        return csprintf("%s: SQ (%u) not divisible by %u threads",
                        name.c_str(), sqEntries, threads);
    if (shelfEntries % threads != 0)
        return csprintf("%s: shelf (%u) not divisible by %u threads",
                        name.c_str(), shelfEntries, threads);
    if (iqEntries == 0 || robEntries == 0)
        return csprintf("%s: zero-sized window structure",
                        name.c_str());
    if (fetchWidth == 0 || dispatchWidth == 0 || issueWidth == 0 ||
        commitWidth == 0) {
        return csprintf("%s: zero pipeline width (fetch %u, "
                        "dispatch %u, issue %u, commit %u)",
                        name.c_str(), fetchWidth, dispatchWidth,
                        issueWidth, commitWidth);
    }
    if (lqEntries < threads || sqEntries < threads) {
        return csprintf("%s: LQ (%u) / SQ (%u) below one entry per "
                        "thread; memory instructions could never "
                        "dispatch", name.c_str(), lqEntries,
                        sqEntries);
    }
    if (numPhysRegs() < threads * kNumArchRegs + dispatchWidth)
        return csprintf("%s: too few physical registers (%u)",
                        name.c_str(), numPhysRegs());
    if (hasShelf()) {
        // Undersizing the extension tag space below the RAT worst
        // case is a deadlock, not a stall: every architectural
        // register of every thread can end up mapped to an ext tag
        // with nothing left in flight, so no retirement ever frees
        // one. Above that floor tags recycle through retirement
        // (see CoreBehaviour.TinyExtTagSpaceStallsButRecovers).
        unsigned floor = threads * kNumArchRegs + dispatchWidth;
        if (numExtTags() < floor) {
            return csprintf("%s: %u extension tags below the "
                            "deadlock-free floor of %u",
                            name.c_str(), numExtTags(), floor);
        }
    }
    if (!hasShelf() && steering != SteerPolicyKind::AlwaysIQ)
        return csprintf("%s: %s steering requires a shelf",
                        name.c_str(), steerPolicyName(steering));
    if (steering == SteerPolicyKind::Practical) {
        if (rctBits < 1 || rctBits > 8)
            return csprintf("%s: RCT counter width %u outside "
                            "[1, 8]", name.c_str(), rctBits);
        if (pltColumns < 1 || pltColumns > 32)
            return csprintf("%s: PLT column count %u outside "
                            "[1, 32]", name.c_str(), pltColumns);
    }
    if (adaptiveShelf && adaptiveEpochCycles == 0)
        return csprintf("%s: adaptive shelf with a zero-cycle probe "
                        "epoch", name.c_str());
    return "";
}

CoreParams
baseCore64(unsigned threads)
{
    CoreParams p;
    p.name = "base64";
    p.threads = threads;
    p.robEntries = 64;
    p.iqEntries = 32;
    p.lqEntries = 32;
    p.sqEntries = 32;
    p.shelfEntries = 0;
    p.steering = SteerPolicyKind::AlwaysIQ;
    return p;
}

CoreParams
baseCore128(unsigned threads)
{
    CoreParams p;
    p.name = "base128";
    p.threads = threads;
    p.robEntries = 128;
    p.iqEntries = 64;
    p.lqEntries = 64;
    p.sqEntries = 64;
    p.shelfEntries = 0;
    p.steering = SteerPolicyKind::AlwaysIQ;
    return p;
}

CoreParams
shelfCore(unsigned threads, bool optimistic, SteerPolicyKind steering)
{
    CoreParams p = baseCore64(threads);
    p.name = optimistic ? "shelf64+64-opt" : "shelf64+64-cons";
    p.shelfEntries = 64;
    p.optimisticShelf = optimistic;
    p.steering = steering;
    return p;
}

} // namespace shelf
