#include "core/params.hh"

#include "base/logging.hh"

namespace shelf
{

const char *
steerPolicyName(SteerPolicyKind kind)
{
    switch (kind) {
      case SteerPolicyKind::AlwaysIQ: return "always-iq";
      case SteerPolicyKind::AlwaysShelf: return "always-shelf";
      case SteerPolicyKind::Practical: return "practical";
      case SteerPolicyKind::Oracle: return "oracle";
      default: panic("bad steering policy %d", static_cast<int>(kind));
    }
}

void
CoreParams::validate() const
{
    fatal_if(threads == 0 || threads > kMaxThreads,
             "%s: bad thread count %u", name.c_str(), threads);
    fatal_if(robEntries % threads != 0,
             "%s: ROB (%u) not divisible by %u threads", name.c_str(),
             robEntries, threads);
    fatal_if(lqEntries % threads != 0 || sqEntries % threads != 0,
             "%s: LQ/SQ not divisible by thread count", name.c_str());
    fatal_if(shelfEntries % threads != 0,
             "%s: shelf (%u) not divisible by %u threads", name.c_str(),
             shelfEntries, threads);
    fatal_if(iqEntries == 0 || robEntries == 0,
             "%s: zero-sized window structure", name.c_str());
    fatal_if(numPhysRegs() < threads * kNumArchRegs + dispatchWidth,
             "%s: too few physical registers (%u)", name.c_str(),
             numPhysRegs());
    fatal_if(!hasShelf() && steering != SteerPolicyKind::AlwaysIQ,
             "%s: %s steering requires a shelf", name.c_str(),
             steerPolicyName(steering));
}

CoreParams
baseCore64(unsigned threads)
{
    CoreParams p;
    p.name = "base64";
    p.threads = threads;
    p.robEntries = 64;
    p.iqEntries = 32;
    p.lqEntries = 32;
    p.sqEntries = 32;
    p.shelfEntries = 0;
    p.steering = SteerPolicyKind::AlwaysIQ;
    return p;
}

CoreParams
baseCore128(unsigned threads)
{
    CoreParams p;
    p.name = "base128";
    p.threads = threads;
    p.robEntries = 128;
    p.iqEntries = 64;
    p.lqEntries = 64;
    p.sqEntries = 64;
    p.shelfEntries = 0;
    p.steering = SteerPolicyKind::AlwaysIQ;
    return p;
}

CoreParams
shelfCore(unsigned threads, bool optimistic, SteerPolicyKind steering)
{
    CoreParams p = baseCore64(threads);
    p.name = optimistic ? "shelf64+64-opt" : "shelf64+64-cons";
    p.shelfEntries = 64;
    p.optimisticShelf = optimistic;
    p.steering = steering;
    return p;
}

} // namespace shelf
