#include "core/lsq.hh"

#include "base/logging.hh"

namespace shelf
{

LSQ::LSQ(unsigned threads, unsigned lq_per_thread,
         unsigned sq_per_thread)
    : parts(threads)
{
    for (auto &p : parts) {
        p.lq.resize(lq_per_thread);
        p.sq.resize(sq_per_thread);
    }
}

VIdx
LSQ::dispatchLoad(ThreadID tid, const DynInstPtr &inst)
{
    panic_if(part(tid).lq.full(), "LQ dispatch past capacity");
    return part(tid).lq.push(inst);
}

VIdx
LSQ::dispatchStore(ThreadID tid, const DynInstPtr &inst)
{
    panic_if(part(tid).sq.full(), "SQ dispatch past capacity");
    return part(tid).sq.push(inst);
}

bool
LSQ::overlap(const DynInstPtr &a, const DynInstPtr &b)
{
    Addr a_end = a->si.addr + a->si.size;
    Addr b_end = b->si.addr + b->si.size;
    return a->si.addr < b_end && b->si.addr < a_end;
}

LSQ::ForwardResult
LSQ::loadExecute(ThreadID tid, const DynInstPtr &load)
{
    ForwardResult res;
    auto &sq = part(tid).sq;
    ++sqSearches;
    // Youngest older store with a known address that overlaps.
    DynInstPtr best;
    for (VIdx i = sq.headIndex(); i < sq.tailIndex(); ++i) {
        const DynInstPtr &st = sq.at(i);
        if (st->seq >= load->seq)
            break; // SQ is age-ordered
        if (!st->completed)
            continue; // address not yet computed: load speculates past
        if (!overlap(st, load))
            continue;
        best = st;
    }
    if (best) {
        res.forwarded = true;
        res.fromStore = best->seq;
        load->dataFromStore = best->seq;
        ++forwards;
    } else {
        load->dataFromStore = kNoSeq;
    }
    return res;
}

DynInstPtr
LSQ::storeCheckViolation(ThreadID tid, const DynInstPtr &store)
{
    auto &lq = part(tid).lq;
    ++lqSearches;
    for (VIdx i = lq.headIndex(); i < lq.tailIndex(); ++i) {
        const DynInstPtr &ld = lq.at(i);
        if (ld->seq <= store->seq)
            continue;
        if (!ld->issued)
            continue; // has not obtained data yet: will see the store
        if (!overlap(store, ld))
            continue;
        // Did the load's data come from this store or a younger one?
        if (ld->dataFromStore != kNoSeq &&
            ld->dataFromStore >= store->seq) {
            continue;
        }
        ++violations;
        return ld; // eldest violating load (LQ is age-ordered)
    }
    return nullptr;
}

bool
LSQ::shelfStoreCoalesces(ThreadID tid, const DynInstPtr &store)
{
    auto &sq = part(tid).sq;
    ++sqSearches;
    for (VIdx i = sq.headIndex(); i < sq.tailIndex(); ++i) {
        const DynInstPtr &st = sq.at(i);
        if (st->seq >= store->seq)
            break;
        if (!st->completed)
            continue;
        if ((st->si.addr >> 6) == (store->si.addr >> 6)) {
            ++coalesces;
            return true;
        }
    }
    return false;
}

void
LSQ::retireLoad(ThreadID tid, const DynInstPtr &inst)
{
    auto &lq = part(tid).lq;
    panic_if(lq.empty() || lq.front() != inst,
             "LQ retirement out of order");
    lq.popFront();
}

void
LSQ::retireStore(ThreadID tid, const DynInstPtr &inst)
{
    auto &sq = part(tid).sq;
    panic_if(sq.empty() || sq.front() != inst,
             "SQ retirement out of order");
    sq.popFront();
}

void
LSQ::drainRetiredStores(ThreadID tid)
{
    auto &sq = part(tid).sq;
    while (!sq.empty() && sq.front()->retired)
        sq.popFront();
}

void
LSQ::squash(ThreadID tid, SeqNum squash_seq)
{
    auto &p = part(tid);
    while (!p.lq.empty() && p.lq.back()->seq > squash_seq)
        p.lq.popBack();
    while (!p.sq.empty() && p.sq.back()->seq > squash_seq)
        p.sq.popBack();
}

std::vector<DynInstPtr>
LSQ::lqContents(ThreadID tid) const
{
    const auto &lq = part(tid).lq;
    std::vector<DynInstPtr> out;
    out.reserve(lq.size());
    for (VIdx i = lq.headIndex(); i < lq.tailIndex(); ++i)
        out.push_back(lq.at(i));
    return out;
}

std::vector<DynInstPtr>
LSQ::sqContents(ThreadID tid) const
{
    const auto &sq = part(tid).sq;
    std::vector<DynInstPtr> out;
    out.reserve(sq.size());
    for (VIdx i = sq.headIndex(); i < sq.tailIndex(); ++i)
        out.push_back(sq.at(i));
    return out;
}

} // namespace shelf
