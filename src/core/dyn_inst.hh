/**
 * @file
 * Dynamic instruction record: a trace instruction plus everything the
 * pipeline attaches to it (rename results, window positions, timing,
 * and status flags). One DynInst exists per in-flight instruction.
 */

#ifndef SHELFSIM_CORE_DYN_INST_HH
#define SHELFSIM_CORE_DYN_INST_HH

#include <memory>
#include <string>

#include "core/types.hh"
#include "isa/static_inst.hh"

namespace shelf
{

struct DynInst
{
    /** @name Identity @{ */
    SeqNum seq = kNoSeq;        ///< per-thread program-order sequence
    SeqNum gseq = kNoSeq;       ///< global fetch-order sequence (age)
    ThreadID tid = kInvalidThread;
    uint64_t traceIdx = 0;      ///< position in the thread's trace
    TraceInst si;               ///< the static/trace instruction
    /** @} */

    /** @name Steering and rename results @{ */
    bool toShelf = false;
    Tag srcTag[2] = { kNoTag, kNoTag };
    PRI srcPri[2] = { kNoPri, kNoPri };
    Tag dstTag = kNoTag;
    PRI dstPri = kNoPri;
    /** Mapping of the destination register before this instruction. */
    Tag prevTag = kNoTag;
    PRI prevPri = kNoPri;
    /** @} */

    /** @name Window positions (virtual indices) @{ */
    VIdx robIdx = kNoVIdx;        ///< IQ instructions only
    VIdx shelfIdx = kNoVIdx;      ///< shelf instructions only
    /** Shelf insts: ROB tail at dispatch; in-order eligible when the
     * issue-tracking head reaches this value. */
    VIdx robTailAtDispatch = kNoVIdx;
    /** All insts: shelf tail at dispatch == index of the first younger
     * shelf instruction (the paper's shelf squash index). */
    VIdx shelfSquashIdx = kNoVIdx;
    /** First shelf instruction of its run (paper section III-B):
     * triggers the IQ SSR -> shelf SSR copy. */
    bool firstInRun = false;
    /** Run this instruction belongs to (a run is a series of IQ
     * instructions followed by a series of shelf instructions). */
    uint64_t runId = 0;
    VIdx lqIdx = kNoVIdx;         ///< IQ loads: own LQ entry
    VIdx sqIdx = kNoVIdx;         ///< IQ stores: own SQ entry
    /** Shelf memory ops: LQ/SQ tails recorded at dispatch. */
    VIdx lqTailAtDispatch = kNoVIdx;
    VIdx sqTailAtDispatch = kNoVIdx;
    /** @} */

    /** @name Dependence constraints @{ */
    /** Store (by seq) this op must wait for (store sets); kNoSeq if
     * unconstrained. */
    SeqNum waitStoreSeq = kNoSeq;
    /** @} */

    /** @name Status @{ */
    bool steerDecided = false; ///< steering policy consulted once
    bool ssrLoaded = false;    ///< IQ SSR copied to shelf SSR already
    bool dispatched = false;
    bool issued = false;
    bool completed = false;   ///< result produced (writeback done)
    bool retired = false;
    bool squashed = false;
    bool mispredictedBranch = false; ///< fetch-time prediction was wrong
    bool inSequence = false;  ///< classification, valid once issued
    /** Load data was forwarded from this store's seq (kNoSeq = from
     * the cache). Used for memory-order violation checks. */
    SeqNum dataFromStore = kNoSeq;
    int memLevel = 0;         ///< 1=L1, 2=L2, 3=mem (loads)
    /** @} */

    /** @name Timing @{ */
    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = kCycleNever;
    Cycle retireCycle = 0;
    /** Resolved execution latency including memory (set at issue). */
    unsigned totalLatency = 0;
    /** @} */

    /** Branch-history checkpoint for squash recovery. */
    uint64_t branchHistory = 0;

    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isMem() const { return si.isMem(); }
    bool isBranch() const { return si.isBranch(); }
    bool hasDst() const { return si.hasDst(); }

    std::string toString() const;
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace shelf

#endif // SHELFSIM_CORE_DYN_INST_HH
