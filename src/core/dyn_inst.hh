/**
 * @file
 * Dynamic instruction record: a trace instruction plus everything the
 * pipeline attaches to it (rename results, window positions, timing,
 * and status flags). One DynInst exists per in-flight instruction.
 *
 * Allocation and ownership are the per-cycle hot path: every fetched
 * instruction allocates one record and every pipeline structure holds
 * handles to it. DynInst is therefore slab-allocated from a per-core
 * DynInstPool and handled through DynInstPtr, an intrusive
 * *non-atomic* refcounted pointer — a core is single-threaded (the
 * parallel sweep runner shards at whole-simulation granularity), so
 * the shared_ptr control block and its atomic refcount traffic buy
 * nothing. See DESIGN.md §11 for the lifetime rules.
 */

#ifndef SHELFSIM_CORE_DYN_INST_HH
#define SHELFSIM_CORE_DYN_INST_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/types.hh"
#include "isa/static_inst.hh"

namespace shelf
{

class DynInstPool;

struct DynInst
{
    /** @name Identity @{ */
    SeqNum seq = kNoSeq;        ///< per-thread program-order sequence
    SeqNum gseq = kNoSeq;       ///< global fetch-order sequence (age)
    ThreadID tid = kInvalidThread;
    uint64_t traceIdx = 0;      ///< position in the thread's trace
    TraceInst si;               ///< the static/trace instruction
    /** @} */

    /** @name Steering and rename results @{ */
    bool toShelf = false;
    Tag srcTag[2] = { kNoTag, kNoTag };
    PRI srcPri[2] = { kNoPri, kNoPri };
    Tag dstTag = kNoTag;
    PRI dstPri = kNoPri;
    /** Mapping of the destination register before this instruction. */
    Tag prevTag = kNoTag;
    PRI prevPri = kNoPri;
    /** @} */

    /** @name Window positions (virtual indices) @{ */
    VIdx robIdx = kNoVIdx;        ///< IQ instructions only
    VIdx shelfIdx = kNoVIdx;      ///< shelf instructions only
    /** Shelf insts: ROB tail at dispatch; in-order eligible when the
     * issue-tracking head reaches this value. */
    VIdx robTailAtDispatch = kNoVIdx;
    /** All insts: shelf tail at dispatch == index of the first younger
     * shelf instruction (the paper's shelf squash index). */
    VIdx shelfSquashIdx = kNoVIdx;
    /** First shelf instruction of its run (paper section III-B):
     * triggers the IQ SSR -> shelf SSR copy. */
    bool firstInRun = false;
    /** Run this instruction belongs to (a run is a series of IQ
     * instructions followed by a series of shelf instructions). */
    uint64_t runId = 0;
    VIdx lqIdx = kNoVIdx;         ///< IQ loads: own LQ entry
    VIdx sqIdx = kNoVIdx;         ///< IQ stores: own SQ entry
    /** Shelf memory ops: LQ/SQ tails recorded at dispatch. */
    VIdx lqTailAtDispatch = kNoVIdx;
    VIdx sqTailAtDispatch = kNoVIdx;
    /** @} */

    /** @name Dependence constraints @{ */
    /** Store (by seq) this op must wait for (store sets); kNoSeq if
     * unconstrained. */
    SeqNum waitStoreSeq = kNoSeq;
    /** @} */

    /** @name Status @{ */
    bool steerDecided = false; ///< steering policy consulted once
    bool ssrLoaded = false;    ///< IQ SSR copied to shelf SSR already
    bool dispatched = false;
    bool issued = false;
    bool completed = false;   ///< result produced (writeback done)
    bool retired = false;
    bool squashed = false;
    bool mispredictedBranch = false; ///< fetch-time prediction was wrong
    bool inSequence = false;  ///< classification, valid once issued
    /** Load data was forwarded from this store's seq (kNoSeq = from
     * the cache). Used for memory-order violation checks. */
    SeqNum dataFromStore = kNoSeq;
    int memLevel = 0;         ///< 1=L1, 2=L2, 3=mem (loads)
    /** @} */

    /** @name Timing @{ */
    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = kCycleNever;
    Cycle retireCycle = 0;
    /** Resolved execution latency including memory (set at issue). */
    unsigned totalLatency = 0;
    /** @} */

    /** Branch-history checkpoint for squash recovery. */
    uint64_t branchHistory = 0;

    /**
     * @name Intrusive bookkeeping (not microarchitectural state)
     *
     * The refcount backs DynInstPtr; the rest is the issue queue's
     * incremental ready list: slot back-pointer (O(1) removeIssued),
     * per-source tag-waiter chain links, and the age-ordered
     * ready-list links. Owned by IssueQueue while the instruction is
     * resident; meaningless otherwise.
     * @{
     */
    static constexpr uint32_t kNoIqSlot = ~uint32_t(0);

    uint32_t refCount = 0;          ///< DynInstPtr references
    uint32_t iqSlot = kNoIqSlot;    ///< IQ slot index when resident
    /** Source-operand slots registered on a tag-waiter chain
     * (bitmask over {0, 1}). */
    uint8_t iqWaitSlots = 0;
    /** Sources whose ready cycle is still unknown. */
    uint8_t iqPendingSrcs = 0;
    /** Max known source-ready cycle (valid once iqPendingSrcs==0). */
    Cycle readyCycle = 0;
    /** Age-ordered ready-list links (IssueQueue). */
    DynInst *rdyPrev = nullptr;
    DynInst *rdyNext = nullptr;
    /** Per-source tag-waiter chain links (IssueQueue). */
    DynInst *tagNext[2] = { nullptr, nullptr };
    /** Owning slab pool; null for plain heap allocations. */
    DynInstPool *pool = nullptr;
    /** @} */

    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isMem() const { return si.isMem(); }
    bool isBranch() const { return si.isBranch(); }
    bool hasDst() const { return si.hasDst(); }

    std::string toString() const;
};

/** Return a dead instruction's storage to its pool (or the heap). */
void dynInstFree(DynInst *inst);

/**
 * Intrusive non-atomic refcounted handle to a DynInst.
 *
 * Same value semantics as the std::shared_ptr it replaces, minus the
 * separate control block and the atomic refcount ops. NOT
 * thread-safe by design: a DynInst and all its handles belong to one
 * core, and one core runs on one thread.
 */
class DynInstPtr
{
  public:
    constexpr DynInstPtr() noexcept = default;
    constexpr DynInstPtr(std::nullptr_t) noexcept {}

    explicit DynInstPtr(DynInst *raw) noexcept : p(raw) { acquire(); }

    DynInstPtr(const DynInstPtr &o) noexcept : p(o.p) { acquire(); }
    DynInstPtr(DynInstPtr &&o) noexcept : p(o.p) { o.p = nullptr; }

    ~DynInstPtr() { release(); }

    DynInstPtr &
    operator=(const DynInstPtr &o) noexcept
    {
        DynInst *old = p;
        p = o.p;
        acquire();
        if (old && --old->refCount == 0)
            dynInstFree(old);
        return *this;
    }

    DynInstPtr &
    operator=(DynInstPtr &&o) noexcept
    {
        if (this != &o) {
            release();
            p = o.p;
            o.p = nullptr;
        }
        return *this;
    }

    DynInstPtr &
    operator=(std::nullptr_t) noexcept
    {
        release();
        p = nullptr;
        return *this;
    }

    DynInst *get() const noexcept { return p; }
    DynInst &operator*() const noexcept { return *p; }
    DynInst *operator->() const noexcept { return p; }
    explicit operator bool() const noexcept { return p != nullptr; }

    void
    reset() noexcept
    {
        release();
        p = nullptr;
    }

    friend bool
    operator==(const DynInstPtr &a, const DynInstPtr &b) noexcept
    {
        return a.p == b.p;
    }
    friend bool
    operator!=(const DynInstPtr &a, const DynInstPtr &b) noexcept
    {
        return a.p != b.p;
    }
    friend bool
    operator==(const DynInstPtr &a, std::nullptr_t) noexcept
    {
        return a.p == nullptr;
    }
    friend bool
    operator!=(const DynInstPtr &a, std::nullptr_t) noexcept
    {
        return a.p != nullptr;
    }

  private:
    void
    acquire() noexcept
    {
        if (p)
            ++p->refCount;
    }
    void
    release() noexcept
    {
        if (p && --p->refCount == 0)
            dynInstFree(p);
    }

    DynInst *p = nullptr;
};

/**
 * Slab allocator for DynInst records.
 *
 * Storage grows in slabs of @p slab_insts records and is recycled
 * through an in-place free list, so steady-state allocation is a
 * pointer pop plus field initialisation — no malloc, no control
 * block. Slabs are only returned to the OS when the pool dies.
 *
 * Lifetime rule: every DynInst allocated from a pool must drop to
 * refcount zero before the pool is destroyed (the Core declares its
 * pool before every handle-holding member, so members release their
 * handles first). The destructor enforces this.
 */
class DynInstPool
{
  public:
    explicit DynInstPool(size_t slab_insts = 256);
    ~DynInstPool();

    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    /** Construct a fresh (default-initialised) instruction. */
    DynInstPtr alloc();

    /** Currently live (allocated, not yet freed) instructions. */
    size_t live() const { return liveCount; }
    /** Slabs allocated so far (tests). */
    size_t slabCount() const { return slabs.size(); }

  private:
    friend void dynInstFree(DynInst *inst);

    /** A freed record's storage, reused as a free-list node. */
    struct FreeNode
    {
        FreeNode *next;
    };

    void release(DynInst *inst);
    void newSlab();

    size_t slabInsts;
    std::vector<std::unique_ptr<std::byte[]>> slabs;
    /** Bump region of the newest slab. */
    std::byte *bump = nullptr;
    std::byte *bumpEnd = nullptr;
    FreeNode *freeList = nullptr;
    size_t liveCount = 0;
};

/** Heap-allocate a pool-less DynInst (tests and tools). */
DynInstPtr makeDynInst();

} // namespace shelf

#endif // SHELFSIM_CORE_DYN_INST_HH
