#include "core/classify.hh"

namespace shelf
{

Classifier::Classifier(unsigned threads, size_t max_series)
    : counts(threads), inSeqHist(max_series), reorderedHist(max_series)
{}

void
Classifier::closeSeries(PerThread &t)
{
    if (!t.haveOpen || t.openLen == 0)
        return;
    // Weighted by the number of instructions in the series (Figure 2).
    auto &hist = t.openClassInSeq ? inSeqHist : reorderedHist;
    hist.sample(t.openLen, static_cast<double>(t.openLen));
    t.openLen = 0;
}

void
Classifier::recordRetire(const DynInst &inst)
{
    PerThread &t = counts[inst.tid];
    ++t.total;
    if (inst.inSequence)
        ++t.inSeq;

    if (t.haveOpen && t.openClassInSeq == inst.inSequence) {
        ++t.openLen;
    } else {
        closeSeries(t);
        t.haveOpen = true;
        t.openClassInSeq = inst.inSequence;
        t.openLen = 1;
    }
}

void
Classifier::finalize()
{
    for (auto &t : counts)
        closeSeries(t);
}

void
Classifier::reset()
{
    for (auto &t : counts)
        t = PerThread();
    inSeqHist.reset();
    reorderedHist.reset();
}

uint64_t
Classifier::totalRetired() const
{
    uint64_t sum = 0;
    for (const auto &t : counts)
        sum += t.total;
    return sum;
}

uint64_t
Classifier::totalInSequence() const
{
    uint64_t sum = 0;
    for (const auto &t : counts)
        sum += t.inSeq;
    return sum;
}

double
Classifier::inSequenceFraction() const
{
    uint64_t total = totalRetired();
    return total ? static_cast<double>(totalInSequence()) / total : 0.0;
}

double
Classifier::inSequenceFraction(ThreadID tid) const
{
    const PerThread &t = counts[tid];
    return t.total ? static_cast<double>(t.inSeq) / t.total : 0.0;
}

} // namespace shelf
