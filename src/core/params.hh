/**
 * @file
 * Core configuration (paper Table I) and the preset configurations
 * used throughout the evaluation: Base64, Base128, and the
 * shelf-augmented Base64+Shelf64 under conservative or optimistic
 * microarchitecture assumptions.
 */

#ifndef SHELFSIM_CORE_PARAMS_HH
#define SHELFSIM_CORE_PARAMS_HH

#include <string>

#include "core/ssr.hh"
#include "isa/arch.hh"

namespace shelf
{

/** Which dispatch steering policy the core uses. */
enum class SteerPolicyKind
{
    AlwaysIQ,    ///< baseline: shelf unused
    AlwaysShelf, ///< degenerate: behaves like an in-order core
    Practical,   ///< RCT + PLT hardware mechanism (paper section IV-B)
    Oracle,      ///< greedy oracle with future-schedule knowledge (IV-A)
};

const char *steerPolicyName(SteerPolicyKind kind);

struct CoreParams
{
    std::string name = "core";

    unsigned threads = 4;

    /** @name Pipeline widths and depths (Table I) @{ */
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned fetchToDispatch = 6;
    /** @} */

    /** @name Window structures (totals; partitioned per thread where
     * the paper partitions them) @{ */
    unsigned robEntries = 64;    ///< partitioned
    unsigned iqEntries = 32;     ///< shared
    unsigned lqEntries = 32;     ///< partitioned
    unsigned sqEntries = 32;     ///< partitioned
    unsigned shelfEntries = 0;   ///< partitioned; 0 disables the shelf
    /** @} */

    /**
     * Optimistic microarchitecture assumption: a shelf head may issue
     * in the same cycle as the last elder IQ instruction (the
     * issue-tracking bitvector update is bypassed into wakeup-select).
     * Conservative (false) sees only last cycle's updates. (Paper
     * section III-A, "Critical Path Considerations".)
     */
    bool optimisticShelf = false;

    /** Speculation shift register organization (paper section III-B
     * discusses all three; "Two" is the proposed design). */
    SsrDesign ssrDesign = SsrDesign::Two;

    /**
     * Clustered backends (paper section VI: "it is a possible
     * dimension for the shelf and the IQ to belong to different
     * clusters"): extra cycles before a value produced in one
     * cluster (shelf or IQ) is consumable in the other. 0 models the
     * paper's unified bypass network.
     */
    unsigned interClusterDelay = 0;

    /**
     * Release shelf entries only at writeback instead of at issue
     * (the "simple solution" of section III-B, which the paper
     * rejects because it greatly increases occupancy; the proposed
     * design decouples entry from index via the doubled index
     * space).
     */
    bool shelfReleaseAtWriteback = false;

    /** SMT fetch policy: ICOUNT (Table I) or plain round-robin. */
    enum class FetchPolicy { ICount, RoundRobin };
    FetchPolicy fetchPolicy = FetchPolicy::ICount;

    /**
     * Memory consistency model. The paper evaluates the relaxed
     * (ARM-like) model and explicitly scopes out stricter models;
     * the TSO extension here implements the consequences section
     * III-D spells out: loads remain speculative until every elder
     * load completes, so shelf instructions may not write back under
     * an incomplete elder load, and shelf stores must allocate store
     * queue entries (no store-buffer coalescing).
     */
    enum class MemModel { Relaxed, TSO };
    MemModel memModel = MemModel::Relaxed;

    SteerPolicyKind steering = SteerPolicyKind::AlwaysIQ;

    /**
     * Epoch-based adaptive shelf enable/disable (paper section V-C):
     * A/B-probe shelf-on vs shelf-off and lock into the winner.
     */
    bool adaptiveShelf = false;
    unsigned adaptiveEpochCycles = 2048;

    /** Wrap the practical policy with a shadow oracle that counts
     * how many instructions are steered differently (section V-A's
     * mis-steering measurement). Only affects statistics. */
    bool shadowOracle = false;

    /** @name Practical steering structures (Table I) @{ */
    unsigned rctBits = 5;    ///< 5-bit ready-cycle counters
    unsigned pltColumns = 4; ///< tracked in-flight loads per thread
    /**
     * Steer to the shelf when its predicted completion is at most
     * this many cycles later than the IQ's (0 = strict tie-break
     * toward the shelf). A small slack exploits the SMT synergy the
     * paper describes: brief mis-steer stalls are hidden by other
     * threads while the freed OOO window capacity pays off.
     */
    unsigned steerSlack = 0;
    /** @} */

    /** @name Speculation model @{ */
    /** Cycles after execute for a branch to resolve/redirect. */
    unsigned branchResolveExtra = 2;
    /** SSR resolution delay charged by an issuing load (bounded
     * speculation window under the relaxed memory model). */
    unsigned loadResolveDelay = 3;
    /** Cycles from squash to first fetch of the redirected path. */
    unsigned redirectPenalty = 2;
    /** @} */

    /** @name Functional units (shared, 4-wide issue) @{ */
    unsigned intAluUnits = 4;
    unsigned intMultUnits = 1;
    unsigned fpUnits = 2;
    unsigned memPorts = 2;
    /** @} */

    /** Per-thread frontend buffer capacity (partitioned);
     * 0 = auto-size to cover the fetch-to-dispatch pipe depth. */
    unsigned fetchBufferPerThread = 0;

    unsigned
    fetchBufferCapacity() const
    {
        if (fetchBufferPerThread)
            return fetchBufferPerThread;
        unsigned depth = fetchWidth * (fetchToDispatch + 2) / threads;
        return depth < 16 ? 16 : depth;
    }

    /** Physical registers; 0 = auto (threads*archregs + robEntries). */
    unsigned physRegs = 0;
    /** Extension tags; 0 = auto (2 * shelfEntries). */
    unsigned extTags = 0;

    /** @name Diagnostics @{ */
    /**
     * Forward-progress watchdog: panic (with a structured deadlock
     * report) when no thread retires for this many consecutive
     * cycles. 0 disables. The default is far above any legitimate
     * stall (worst-case memory round trips are tens of cycles) so a
     * firing watchdog always means a wedged pipeline protocol.
     */
    unsigned watchdogCycles = 100000;
    /**
     * Fast-forward over provably quiescent cycles (no stage can act
     * before the next scheduled event), reproducing every per-cycle
     * counter, stat sample, and round-robin cursor exactly. Purely a
     * simulator-speed optimization: results are cycle-identical with
     * it off; the differential tests assert as much.
     */
    bool skipQuiescentCycles = true;
    /** Flight-recorder ring capacity (pipeline events); 0 disables. */
    unsigned flightRecorderEvents = 512;
    /** @} */

    /** @name Derived values @{ */
    unsigned robPerThread() const { return robEntries / threads; }
    unsigned lqPerThread() const { return lqEntries / threads; }
    unsigned sqPerThread() const { return sqEntries / threads; }
    unsigned shelfPerThread() const
    {
        return shelfEntries ? shelfEntries / threads : 0;
    }
    unsigned numPhysRegs() const
    {
        return physRegs ? physRegs
            : threads * kNumArchRegs + robEntries;
    }
    /**
     * Extension tag space sizing: every architectural register of
     * every thread can simultaneously be mapped to an extension tag
     * (when its last writer was a shelf instruction), every in-flight
     * instruction can hold one unretired previous mapping, and every
     * shelf index can hold a live destination tag. Undersizing is a
     * *deadlock*, not a stall: if dispatch blocks on every thread, no
     * retirement ever frees a tag.
     */
    unsigned numExtTags() const
    {
        if (shelfEntries == 0)
            return 0;
        if (extTags)
            return extTags;
        return threads * kNumArchRegs + robEntries +
            2 * shelfEntries;
    }
    /** Total wakeup tag space. */
    unsigned numTags() const { return numPhysRegs() + numExtTags(); }
    bool hasShelf() const { return shelfEntries > 0; }
    /** @} */

    /** Sanity-check the configuration; fatal() on user error. */
    void validate() const;

    /**
     * Non-fatal form of validate(): the first violated constraint as
     * a human-readable message, or an empty string for a valid
     * configuration. Long-running services (the --serve daemon)
     * check client-supplied configurations with this instead of
     * validate(), which would exit the whole process on one bad
     * request.
     */
    std::string validateError() const;
};

/** @name Preset configurations of the evaluation @{ */

/** Baseline: 64-entry ROB, 32-entry IQ/LQ/SQ (Table I). */
CoreParams baseCore64(unsigned threads = 4);

/** Doubled core: 128-entry ROB, 64-entry IQ/LQ/SQ (upper bound). */
CoreParams baseCore128(unsigned threads = 4);

/**
 * Shelf-augmented baseline: Base64 + 64-entry shelf with practical
 * steering. @p optimistic selects the same-cycle-issue assumption.
 */
CoreParams shelfCore(unsigned threads = 4, bool optimistic = false,
                     SteerPolicyKind steering =
                         SteerPolicyKind::Practical);

/** @} */

} // namespace shelf

#endif // SHELFSIM_CORE_PARAMS_HH
