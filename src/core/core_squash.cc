/**
 * @file
 * Squash and recovery: walk-back rename restoration (no
 * checkpoints), ROB/IQ/LSQ/shelf rollback, shelf squash-index
 * filtering of in-flight shelf instructions, and frontend redirect.
 */

#include "base/logging.hh"
#include "core/core.hh"

namespace shelf
{

void
Core::squashThread(ThreadID tid, SeqNum squash_seq,
                   uint64_t restart_cursor, Cycle resume)
{
    ThreadState &ts = threads[tid];
    ++coreStats.squashes;

    SeqNum min_squashed_gseq = kNoSeq;

    // Drop not-yet-dispatched instructions from the frontend buffer.
    while (!ts.frontend.empty() &&
           ts.frontend.back()->seq > squash_seq) {
        DynInstPtr inst = ts.frontend.back();
        inst->squashed = true;
        min_squashed_gseq = inst->gseq;
        ts.frontend.pop_back();
        ++events.squashedInsts;
    }

    // Walk dispatched instructions youngest-first, undoing rename and
    // structure allocations in reverse order.
    while (!ts.inflight.empty() &&
           ts.inflight.back()->seq > squash_seq) {
        DynInstPtr inst = ts.inflight.back();
        ts.inflight.pop_back();

        // A shelf instruction that already wrote back is past its
        // squash filter; the SSR mechanism guarantees this cannot
        // happen for recoverable speculation.
        panic_if(inst->retired,
                 "squash past a retired instruction (t%d seq %llu)",
                 tid, (unsigned long long)inst->seq);

        inst->squashed = true;
        tracePipe("squash", *inst);
        recorder.record(now, diag::PipeEvent::Squash, tid, inst->seq,
                        inst->toShelf);
        ++events.squashedInsts;

        if (inst->toShelf) {
            if (!inst->issued) {
                // Still shelved: roll the shelf tail back.
                DynInstPtr popped =
                    shelfQ->squashTail(tid, inst->shelfIdx);
                panic_if(popped != inst,
                         "shelf tail rollback mismatch");
                --ts.dispatchedNotIssued;
            } else {
                // Issued and in flight: the squash filter suppresses
                // its writeback; its index drains immediately so the
                // retire pointer can advance (paper section III-B).
                shelfQ->markRetired(tid, inst->shelfIdx);
            }
        } else {
            DynInstPtr rob_back = rob->squashTail(tid);
            panic_if(rob_back != inst, "ROB rollback mismatch");
            if (!inst->issued) {
                iq->removeIssued(inst); // same slot-clear operation
                --ts.dispatchedNotIssued;
            }
        }

        if (inst->isStore())
            storesByGseq.erase(inst->gseq);
        if (inst->isLoad())
            ts.incompleteLoads.erase(inst->seq);

        if (inst->hasDst())
            scoreboard->clearPending(inst->dstTag);
        rename->unrename(*inst);

        min_squashed_gseq = inst->gseq;
    }

    // LSQ entries of squashed instructions.
    lsq->squash(tid, squash_seq);

    // Store-set LFST entries for squashed stores; PLT columns for
    // squashed tracked loads.
    if (min_squashed_gseq != kNoSeq && min_squashed_gseq > 0) {
        storeSets.squash(min_squashed_gseq - 1);
        steerPolicy->squash(tid, min_squashed_gseq - 1);
    }

    // The shelf head (and any tag its cache waits on) may have been
    // squashed; drop the readiness cache so the surviving head
    // rebuilds from the restored scoreboard state.
    if (shelfQ->enabled())
        shelfHeadReset(tid);

    // Frontend redirect.
    ts.cursor = restart_cursor;
    ts.fetchStallUntil = std::max(ts.fetchStallUntil, resume);
    ts.lastDispatchWasShelf = !ts.inflight.empty() &&
        ts.inflight.back()->toShelf;
}

} // namespace shelf
