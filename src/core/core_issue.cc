/**
 * @file
 * Issue stage: dynamic select over the IQ plus in-order issue of the
 * per-thread shelf heads (paper Figure 4), under the shared issue
 * width and functional-unit constraints.
 */

#include <algorithm>

#include "base/bitutil.hh"
#include "base/logging.hh"
#include "core/core.hh"

namespace shelf
{

unsigned
Core::resolveDelay(const DynInst &inst) const
{
    // Cycles from issue until the instruction can no longer cause a
    // squash of younger instructions.
    if (inst.isBranch())
        return inst.si.execLatency() + coreParams.branchResolveExtra;
    if (inst.isLoad())
        return coreParams.loadResolveDelay;
    return 0;
}

SeqNum
Core::sameThreadStoreWait(ThreadID tid, SeqNum store_gseq) const
{
    if (store_gseq == kNoSeq)
        return kNoSeq;
    auto it = storesByGseq.find(store_gseq);
    if (it == storesByGseq.end() || it->second->tid != tid)
        return kNoSeq;
    return store_gseq;
}

bool
Core::storeSetSatisfied(const DynInst &inst) const
{
    if (inst.waitStoreSeq == kNoSeq)
        return true;
    auto it = storesByGseq.find(inst.waitStoreSeq);
    if (it == storesByGseq.end())
        return true; // store retired or squashed
    return it->second->issued;
}

bool
Core::srcReadyForConsumer(Tag tag, bool consumer_shelf) const
{
    Cycle ready = scoreboard->readyAtFor(tag, consumer_shelf,
                                         coreParams.interClusterDelay);
    return ready != kCycleNever && ready <= now;
}

bool
Core::iqCandidateBlocked(const DynInst &inst) const
{
    if (!storeSetSatisfied(inst))
        return true;
    // Clustered backends: a shelf-produced value needs extra cycles
    // to cross into the IQ cluster (paper section VI).
    if (coreParams.interClusterDelay &&
        (!srcReadyForConsumer(inst.srcTag[0], false) ||
         !srcReadyForConsumer(inst.srcTag[1], false))) {
        return true;
    }
    return !fuPool->canIssue(inst.si.op, now);
}

void
Core::announceReady(Tag tag, Cycle cycle)
{
    scoreboard->setReadyAt(tag, cycle);
    iq->wakeup(tag, cycle);
    shelfWakeup(tag, cycle);
}

void
Core::shelfHeadReset(ThreadID tid)
{
    ShelfHeadCache &hc = shelfHeadCache[tid];
    for (Tag tag : hc.waitTag)
        if (tag != kNoTag)
            shelfTagWaiters[tag] &= ~(uint64_t(1) << tid);
    hc = ShelfHeadCache();
}

void
Core::shelfHeadRebuild(ThreadID tid, const DynInstPtr &head)
{
    shelfHeadReset(tid);
    ShelfHeadCache &hc = shelfHeadCache[tid];
    hc.inst = head.get();
    hc.minLat = head->isLoad() ? loadMinLat : head->si.execLatency();

    // RAW terms: snapshot each source's ready cycle (including the
    // clustered-backend forwarding delay for IQ-produced values); a
    // still-pending source registers a waiter the producer's
    // announceReady() will resolve. Tags have a unique live producer
    // (the shelf allocates fresh extension tags), so a snapshotted
    // cycle cannot change while the head is live except through
    // squash, which resets this cache.
    unsigned delay = coreParams.interClusterDelay;
    for (unsigned s = 0; s < 2; ++s) {
        Tag tag = head->srcTag[s];
        if (tag == kNoTag)
            continue;
        Cycle ready = scoreboard->readyAtFor(tag, true, delay);
        if (ready == kCycleNever) {
            hc.waitTag[s] = tag;
            hc.pendingOps |= 1u << s;
            shelfTagWaiters[tag] |= uint64_t(1) << tid;
        } else if (ready > hc.operandsReadyAt) {
            hc.operandsReadyAt = ready;
        }
    }

    // WAW term: the previous writer of the shared physical register
    // must have written back before we may overwrite it (no cluster
    // adjustment; it gates the overwrite, not a forwarded use).
    if (head->hasDst() && head->prevTag != kNoTag) {
        Cycle ready = scoreboard->readyAt(head->prevTag);
        if (ready == kCycleNever) {
            hc.waitTag[2] = head->prevTag;
            hc.pendingOps |= 1u << 2;
            shelfTagWaiters[head->prevTag] |= uint64_t(1) << tid;
        } else if (ready > hc.operandsReadyAt) {
            hc.operandsReadyAt = ready;
        }
    }
}

void
Core::shelfWakeup(Tag tag, Cycle cycle)
{
    uint64_t waiters = shelfTagWaiters[tag];
    if (!waiters)
        return;
    shelfTagWaiters[tag] = 0;
    unsigned delay = coreParams.interClusterDelay;
    while (waiters) {
        ThreadID tid = static_cast<ThreadID>(
            countTrailingZeros(waiters));
        waiters &= waiters - 1;
        ShelfHeadCache &hc = shelfHeadCache[tid];
        for (unsigned slot = 0; slot < 3; ++slot) {
            if (hc.waitTag[slot] != tag)
                continue;
            hc.waitTag[slot] = kNoTag;
            hc.pendingOps &= ~(1u << slot);
            // Source slots see the cluster-adjusted ready cycle; the
            // WAW slot gates on raw writeback time.
            Cycle ready = slot < 2
                ? scoreboard->readyAtFor(tag, true, delay) : cycle;
            if (ready > hc.operandsReadyAt)
                hc.operandsReadyAt = ready;
        }
    }
}

bool
Core::shelfHeadEligible(ThreadID tid, const DynInstPtr &head)
{
    // (1) In-order condition: every elder IQ instruction has issued.
    // Under the conservative assumption the eligibility logic sees
    // last cycle's issue-tracking state; the optimistic design
    // bypasses this cycle's updates (paper section III-A).
    VIdx issue_head = coreParams.optimisticShelf
        ? rob->issueHead(tid) : rob->issueHeadSnapshot(tid);
    if (issue_head < head->robTailAtDispatch)
        return false;

    ShelfHeadCache &hc = shelfHeadCache[tid];

    // First shelf instruction of a run: latch IQ SSR -> shelf SSR
    // the moment it becomes in-order eligible (paper Figure 5). The
    // latch changes the shelf SSR, so the cached window expires.
    if (head->firstInRun && !head->ssrLoaded) {
        ssr->loadShelfFromIq(tid, head->runId);
        head->ssrLoaded = true;
        ++events.ssrUpdates;
        hc.ssrValid = false;
    }

    // (2) RAW + WAW: pushed by announceReady() via the waiter
    // registrations; once no operand is pending the cached maximum
    // ready cycle decides.
    if (hc.pendingOps || now < hc.operandsReadyAt)
        return false;

    // (3) Speculation: minimum execution delay must cover the shelf
    // SSR so writeback lands after all elder speculation resolves.
    // The SSR decays exactly one per cycle while non-zero, so the
    // poll becomes a cached earliest-eligible cycle invalidated on
    // SSR transitions (run latch above, IQ speculative issue).
    if (!hc.ssrValid) {
        unsigned v = ssr->shelfValue(tid, head->runId);
        hc.ssrEligibleAt = v > hc.minLat ? now + (v - hc.minLat) : now;
        hc.ssrValid = true;
    }
    if (now < hc.ssrEligibleAt)
        return false;

    // (4) Structural: a functional unit / memory port.
    if (!fuPool->canIssue(head->si.op, now))
        return false;

    // Shelf stores respect store-set ordering like IQ stores do.
    if (head->isStore() && !storeSetSatisfied(*head))
        return false;

    return true;
}

void
Core::issueInst(const DynInstPtr &inst)
{
    ThreadID tid = inst->tid;
    ThreadState &ts = threads[tid];

    // Classification must be observed before the issued flag flips:
    // in-sequence <=> no elder instruction of the thread is unissued.
    inst->inSequence = eldestUnissued(ts, inst);

    inst->issued = true;
    inst->issueCycle = now;
    tracePipe(inst->toShelf ? "issue(shelf)" : "issue(iq)", *inst);
    recorder.record(now, diag::PipeEvent::Issue, tid, inst->seq,
                    inst->toShelf);
    --ts.dispatchedNotIssued;
    ++events.fuOps;

    unsigned exec_lat = inst->si.execLatency();
    fuPool->issue(inst->si.op, now, exec_lat);

    if (inst->hasDst())
        scoreboard->setProducedOnShelf(inst->dstTag, inst->toShelf);

    if (inst->toShelf) {
        shelfQ->issueHead(tid);
        // Head advance: eagerly empty the readiness cache so the
        // next head rebuilds (and a recycled DynInst slab address
        // can never falsely match the cached identity).
        shelfHeadReset(tid);
        ++events.shelfIssues;
        if (resolveDelay(*inst) > 0) {
            ssr->shelfIssueSpec(tid, resolveDelay(*inst),
                                inst->runId);
            ++events.ssrUpdates;
        }
    } else {
        iq->removeIssued(inst);
        rob->markIssued(tid, inst->robIdx);
        ++events.iqIssues;
        if (resolveDelay(*inst) > 0) {
            ssr->iqIssue(tid, resolveDelay(*inst), inst->runId);
            ++events.ssrUpdates;
            // The IQ-side SSR moved; the thread's cached shelf
            // speculation window may now be stale.
            shelfHeadCache[tid].ssrValid = false;
        }
    }

    if (inst->isStore())
        storeSets.storeIssued(inst->si.pc, inst->gseq);

    if (inst->isMem()) {
        // Address generation, then the LSQ/cache pipeline.
        scheduleEvent(now + 1, kExecuteMem, inst);
        return;
    }

    // Non-memory: the result is consumable exec_lat cycles later.
    Cycle done = now + exec_lat;
    if (inst->hasDst())
        announceReady(inst->dstTag, done);
    scheduleEvent(done, kComplete, inst);
}

void
Core::issueStage()
{
    unsigned budget = coreParams.issueWidth;

    while (budget > 0) {
        // Gather the current candidates: ready IQ instructions and
        // each thread's shelf head. Re-evaluated after every issue so
        // that (a) multiple shelf entries of one thread can drain in
        // a cycle and (b) the optimistic design sees same-cycle
        // issue-tracking updates.
        DynInstPtr pick;

        // The ready list is age-ordered: the first unblocked entry is
        // the IQ's select winner.
        if (DynInst *cand = iq->selectReady(now, [this](const DynInst &c) {
                return iqCandidateBlocked(c);
            })) {
            pick = DynInstPtr(cand);
        }

        if (shelfQ->enabled()) {
            for (unsigned t = 0; t < coreParams.threads; ++t) {
                ThreadID tid = static_cast<ThreadID>(t);
                DynInstPtr head = shelfQ->head(tid);
                if (!head)
                    continue;
                shelfHeadEnsure(tid, head);
                if (!shelfHeadEligible(tid, head))
                    continue;
                if (!pick || head->gseq < pick->gseq)
                    pick = head;
            }
        }

        if (!pick)
            break;
        issueInst(pick);
        --budget;
    }
}

} // namespace shelf
