/**
 * @file
 * Issue stage: dynamic select over the IQ plus in-order issue of the
 * per-thread shelf heads (paper Figure 4), under the shared issue
 * width and functional-unit constraints.
 */

#include <algorithm>

#include "base/logging.hh"
#include "core/core.hh"

namespace shelf
{

unsigned
Core::resolveDelay(const DynInst &inst) const
{
    // Cycles from issue until the instruction can no longer cause a
    // squash of younger instructions.
    if (inst.isBranch())
        return inst.si.execLatency() + coreParams.branchResolveExtra;
    if (inst.isLoad())
        return coreParams.loadResolveDelay;
    return 0;
}

SeqNum
Core::sameThreadStoreWait(ThreadID tid, SeqNum store_gseq) const
{
    if (store_gseq == kNoSeq)
        return kNoSeq;
    auto it = storesByGseq.find(store_gseq);
    if (it == storesByGseq.end() || it->second->tid != tid)
        return kNoSeq;
    return store_gseq;
}

bool
Core::storeSetSatisfied(const DynInst &inst) const
{
    if (inst.waitStoreSeq == kNoSeq)
        return true;
    auto it = storesByGseq.find(inst.waitStoreSeq);
    if (it == storesByGseq.end())
        return true; // store retired or squashed
    return it->second->issued;
}

bool
Core::srcReadyForConsumer(Tag tag, bool consumer_shelf) const
{
    if (tag == kNoTag)
        return true;
    Cycle ready = scoreboard->readyAt(tag);
    if (ready == kCycleNever)
        return false;
    if (coreParams.interClusterDelay &&
        (tagProducedOnShelf[tag] != 0) != consumer_shelf) {
        ready += coreParams.interClusterDelay;
    }
    return ready <= now;
}

bool
Core::iqCandidateBlocked(const DynInst &inst) const
{
    if (!storeSetSatisfied(inst))
        return true;
    // Clustered backends: a shelf-produced value needs extra cycles
    // to cross into the IQ cluster (paper section VI).
    if (coreParams.interClusterDelay &&
        (!srcReadyForConsumer(inst.srcTag[0], false) ||
         !srcReadyForConsumer(inst.srcTag[1], false))) {
        return true;
    }
    return !fuPool->canIssue(inst.si.op, now);
}

void
Core::announceReady(Tag tag, Cycle cycle)
{
    scoreboard->setReadyAt(tag, cycle);
    iq->wakeup(tag, cycle);
}

bool
Core::shelfHeadEligible(ThreadID tid, const DynInstPtr &head)
{
    // (1) In-order condition: every elder IQ instruction has issued.
    // Under the conservative assumption the eligibility logic sees
    // last cycle's issue-tracking state; the optimistic design
    // bypasses this cycle's updates (paper section III-A).
    VIdx issue_head = coreParams.optimisticShelf
        ? rob->issueHead(tid) : rob->issueHeadSnapshot(tid);
    if (issue_head < head->robTailAtDispatch)
        return false;

    // First shelf instruction of a run: latch IQ SSR -> shelf SSR
    // the moment it becomes in-order eligible (paper Figure 5).
    if (head->firstInRun && !head->ssrLoaded) {
        ssr->loadShelfFromIq(tid, head->runId);
        head->ssrLoaded = true;
        ++events.ssrUpdates;
    }

    // (2) RAW: source operands ready (scoreboard poll), including
    // the inter-cluster forwarding delay for IQ-produced values when
    // the backends are clustered.
    if (!srcReadyForConsumer(head->srcTag[0], true) ||
        !srcReadyForConsumer(head->srcTag[1], true)) {
        return false;
    }

    // (3) WAW: the previous writer of the shared physical register
    // must have written back before we may overwrite it.
    if (head->hasDst() && !scoreboard->ready(head->prevTag, now))
        return false;

    // (4) Speculation: minimum execution delay must cover the shelf
    // SSR so writeback lands after all elder speculation resolves.
    unsigned min_lat = head->isLoad()
        ? 1 + mem.params().l1d.hitLatency : head->si.execLatency();
    if (!ssr->shelfMayIssue(tid, min_lat, head->runId))
        return false;

    // (5) Structural: a functional unit / memory port.
    if (!fuPool->canIssue(head->si.op, now))
        return false;

    // Shelf stores respect store-set ordering like IQ stores do.
    if (head->isStore() && !storeSetSatisfied(*head))
        return false;

    return true;
}

void
Core::issueInst(const DynInstPtr &inst)
{
    ThreadID tid = inst->tid;
    ThreadState &ts = threads[tid];

    // Classification must be observed before the issued flag flips:
    // in-sequence <=> no elder instruction of the thread is unissued.
    inst->inSequence = eldestUnissued(ts, inst);

    inst->issued = true;
    inst->issueCycle = now;
    tracePipe(inst->toShelf ? "issue(shelf)" : "issue(iq)", *inst);
    recorder.record(now, diag::PipeEvent::Issue, tid, inst->seq,
                    inst->toShelf);
    --ts.dispatchedNotIssued;
    ++events.fuOps;

    unsigned exec_lat = inst->si.execLatency();
    fuPool->issue(inst->si.op, now, exec_lat);

    if (inst->hasDst())
        tagProducedOnShelf[inst->dstTag] = inst->toShelf ? 1 : 0;

    if (inst->toShelf) {
        shelfQ->issueHead(tid);
        ++events.shelfIssues;
        if (resolveDelay(*inst) > 0) {
            ssr->shelfIssueSpec(tid, resolveDelay(*inst),
                                inst->runId);
            ++events.ssrUpdates;
        }
    } else {
        iq->removeIssued(inst);
        rob->markIssued(tid, inst->robIdx);
        ++events.iqIssues;
        if (resolveDelay(*inst) > 0) {
            ssr->iqIssue(tid, resolveDelay(*inst), inst->runId);
            ++events.ssrUpdates;
        }
    }

    if (inst->isStore())
        storeSets.storeIssued(inst->si.pc, inst->gseq);

    if (inst->isMem()) {
        // Address generation, then the LSQ/cache pipeline.
        scheduleEvent(now + 1, kExecuteMem, inst);
        return;
    }

    // Non-memory: the result is consumable exec_lat cycles later.
    Cycle done = now + exec_lat;
    if (inst->hasDst())
        announceReady(inst->dstTag, done);
    scheduleEvent(done, kComplete, inst);
}

void
Core::issueStage()
{
    unsigned budget = coreParams.issueWidth;

    while (budget > 0) {
        // Gather the current candidates: ready IQ instructions and
        // each thread's shelf head. Re-evaluated after every issue so
        // that (a) multiple shelf entries of one thread can drain in
        // a cycle and (b) the optimistic design sees same-cycle
        // issue-tracking updates.
        DynInstPtr pick;

        // The ready list is age-ordered: the first unblocked entry is
        // the IQ's select winner.
        if (DynInst *cand = iq->selectReady(now, [this](const DynInst &c) {
                return iqCandidateBlocked(c);
            })) {
            pick = DynInstPtr(cand);
        }

        if (shelfQ->enabled()) {
            for (unsigned t = 0; t < coreParams.threads; ++t) {
                ThreadID tid = static_cast<ThreadID>(t);
                DynInstPtr head = shelfQ->head(tid);
                if (!head)
                    continue;
                if (!shelfHeadEligible(tid, head))
                    continue;
                if (!pick || head->gseq < pick->gseq)
                    pick = head;
            }
        }

        if (!pick)
            break;
        issueInst(pick);
        --budget;
    }
}

} // namespace shelf
