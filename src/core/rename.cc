#include "core/rename.hh"

#include <unordered_set>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

RenameUnit::RenameUnit(unsigned threads, unsigned phys_regs,
                       unsigned ext_tags)
    : numThreads(threads), numPhysRegs(phys_regs), numExtTags(ext_tags)
{
    fatal_if(phys_regs < threads * kNumArchRegs,
             "%u physical registers cannot back %u threads", phys_regs,
             threads);

    rat.assign(threads, std::vector<MapEntry>(kNumArchRegs));
    PRI next = 0;
    for (unsigned t = 0; t < threads; ++t) {
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            rat[t][r].pri = next;
            rat[t][r].tag = next;
            ++next;
        }
    }
    for (PRI p = next; p < static_cast<PRI>(phys_regs); ++p)
        physFreeList.push_back(p);
    for (unsigned e = 0; e < ext_tags; ++e)
        extFreeList.push_back(static_cast<Tag>(phys_regs + e));
}

bool
RenameUnit::canRename(const DynInst &inst) const
{
    if (!inst.hasDst())
        return true;
    return inst.toShelf ? !extFreeList.empty() : !physFreeList.empty();
}

void
RenameUnit::rename(DynInst &inst)
{
    const auto &map = rat[inst.tid];
    RegId srcs[2] = { inst.si.src1, inst.si.src2 };
    for (int i = 0; i < 2; ++i) {
        if (srcs[i] == kNoReg)
            continue;
        inst.srcPri[i] = map[srcs[i]].pri;
        inst.srcTag[i] = map[srcs[i]].tag;
    }

    ++renames;
    if (!inst.hasDst())
        return;

    MapEntry &dst = rat[inst.tid][inst.si.dst];
    inst.prevPri = dst.pri;
    inst.prevTag = dst.tag;

    if (inst.toShelf) {
        ++shelfRenames;
        panic_if(extFreeList.empty(), "rename without free ext tag");
        inst.dstPri = dst.pri; // reuse the existing physical register
        inst.dstTag = extFreeList.back();
        extFreeList.pop_back();
        dst.tag = inst.dstTag;
    } else {
        panic_if(physFreeList.empty(), "rename without free phys reg");
        inst.dstPri = physFreeList.back();
        physFreeList.pop_back();
        inst.dstTag = inst.dstPri;
        dst.pri = inst.dstPri;
        dst.tag = inst.dstTag;
    }
}

void
RenameUnit::retire(const DynInst &inst)
{
    if (!inst.hasDst())
        return;
    if (inst.toShelf) {
        // The PRI stays live; only an extension tag can be released.
        if (inst.prevTag != inst.prevPri)
            extFreeList.push_back(inst.prevTag);
    } else {
        physFreeList.push_back(inst.prevPri);
        if (inst.prevTag != inst.prevPri)
            extFreeList.push_back(inst.prevTag);
    }
}

void
RenameUnit::unrename(const DynInst &inst)
{
    if (!inst.hasDst())
        return;
    MapEntry &dst = rat[inst.tid][inst.si.dst];
    panic_if(dst.tag != inst.dstTag,
             "out-of-order unrename: RAT tag %d != inst dst tag %d",
             dst.tag, inst.dstTag);
    dst.pri = inst.prevPri;
    dst.tag = inst.prevTag;
    if (inst.toShelf)
        extFreeList.push_back(inst.dstTag);
    else
        physFreeList.push_back(inst.dstPri);
}

PRI
RenameUnit::lookupPri(ThreadID tid, RegId reg) const
{
    return rat[tid][reg].pri;
}

Tag
RenameUnit::lookupTag(ThreadID tid, RegId reg) const
{
    return rat[tid][reg].tag;
}

unsigned
RenameUnit::mappedPhysCount() const
{
    std::unordered_set<PRI> seen;
    for (const auto &map : rat)
        for (const auto &e : map)
            seen.insert(e.pri);
    return static_cast<unsigned>(seen.size());
}

std::string
RenameUnit::auditConservation(const std::vector<PRI> &held_pris,
                              const std::vector<Tag> &held_tags) const
{
    std::vector<unsigned> priRefs(numPhysRegs, 0);
    std::vector<unsigned> tagRefs(numExtTags, 0);

    auto notePri = [&](PRI p, const char *where) -> std::string {
        if (p < 0 || p >= static_cast<PRI>(numPhysRegs))
            return csprintf("PRI %d out of range in %s", p, where);
        ++priRefs[p];
        return "";
    };
    auto noteTag = [&](Tag t, const char *where) -> std::string {
        if (!isExtTag(t) ||
            t >= static_cast<Tag>(numPhysRegs + numExtTags)) {
            return csprintf("tag %d out of extension range in %s", t,
                            where);
        }
        ++tagRefs[t - static_cast<Tag>(numPhysRegs)];
        return "";
    };

    std::string err;
    for (PRI p : physFreeList)
        if (!(err = notePri(p, "phys free list")).empty())
            return err;
    for (Tag t : extFreeList)
        if (!(err = noteTag(t, "ext free list")).empty())
            return err;
    for (const auto &map : rat) {
        for (const auto &e : map) {
            if (!(err = notePri(e.pri, "RAT")).empty())
                return err;
            // Original-space tags equal their PRI and carry no
            // separate life cycle; only extension tags are a second
            // resource.
            if (e.tag != e.pri &&
                !(err = noteTag(e.tag, "RAT")).empty()) {
                return err;
            }
        }
    }
    for (PRI p : held_pris)
        if (!(err = notePri(p, "held prev mappings")).empty())
            return err;
    for (Tag t : held_tags)
        if (!(err = noteTag(t, "held prev mappings")).empty())
            return err;

    for (unsigned p = 0; p < numPhysRegs; ++p) {
        if (priRefs[p] != 1) {
            return csprintf("PRI %u referenced %u times "
                            "(%s)", p, priRefs[p],
                            priRefs[p] ? "double-mapped/double-freed"
                                       : "leaked");
        }
    }
    for (unsigned e = 0; e < numExtTags; ++e) {
        if (tagRefs[e] != 1) {
            return csprintf("extension tag %u referenced %u times "
                            "(%s)", numPhysRegs + e, tagRefs[e],
                            tagRefs[e] ? "double-mapped/double-freed"
                                       : "leaked");
        }
    }
    return "";
}

} // namespace shelf
