#include "core/rename.hh"

#include <unordered_set>

#include "base/logging.hh"

namespace shelf
{

RenameUnit::RenameUnit(unsigned threads, unsigned phys_regs,
                       unsigned ext_tags)
    : numThreads(threads), numPhysRegs(phys_regs), numExtTags(ext_tags)
{
    fatal_if(phys_regs < threads * kNumArchRegs,
             "%u physical registers cannot back %u threads", phys_regs,
             threads);

    rat.assign(threads, std::vector<MapEntry>(kNumArchRegs));
    PRI next = 0;
    for (unsigned t = 0; t < threads; ++t) {
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            rat[t][r].pri = next;
            rat[t][r].tag = next;
            ++next;
        }
    }
    for (PRI p = next; p < static_cast<PRI>(phys_regs); ++p)
        physFreeList.push_back(p);
    for (unsigned e = 0; e < ext_tags; ++e)
        extFreeList.push_back(static_cast<Tag>(phys_regs + e));
}

bool
RenameUnit::canRename(const DynInst &inst) const
{
    if (!inst.hasDst())
        return true;
    return inst.toShelf ? !extFreeList.empty() : !physFreeList.empty();
}

void
RenameUnit::rename(DynInst &inst)
{
    const auto &map = rat[inst.tid];
    RegId srcs[2] = { inst.si.src1, inst.si.src2 };
    for (int i = 0; i < 2; ++i) {
        if (srcs[i] == kNoReg)
            continue;
        inst.srcPri[i] = map[srcs[i]].pri;
        inst.srcTag[i] = map[srcs[i]].tag;
    }

    ++renames;
    if (!inst.hasDst())
        return;

    MapEntry &dst = rat[inst.tid][inst.si.dst];
    inst.prevPri = dst.pri;
    inst.prevTag = dst.tag;

    if (inst.toShelf) {
        ++shelfRenames;
        panic_if(extFreeList.empty(), "rename without free ext tag");
        inst.dstPri = dst.pri; // reuse the existing physical register
        inst.dstTag = extFreeList.back();
        extFreeList.pop_back();
        dst.tag = inst.dstTag;
    } else {
        panic_if(physFreeList.empty(), "rename without free phys reg");
        inst.dstPri = physFreeList.back();
        physFreeList.pop_back();
        inst.dstTag = inst.dstPri;
        dst.pri = inst.dstPri;
        dst.tag = inst.dstTag;
    }
}

void
RenameUnit::retire(const DynInst &inst)
{
    if (!inst.hasDst())
        return;
    if (inst.toShelf) {
        // The PRI stays live; only an extension tag can be released.
        if (inst.prevTag != inst.prevPri)
            extFreeList.push_back(inst.prevTag);
    } else {
        physFreeList.push_back(inst.prevPri);
        if (inst.prevTag != inst.prevPri)
            extFreeList.push_back(inst.prevTag);
    }
}

void
RenameUnit::unrename(const DynInst &inst)
{
    if (!inst.hasDst())
        return;
    MapEntry &dst = rat[inst.tid][inst.si.dst];
    panic_if(dst.tag != inst.dstTag,
             "out-of-order unrename: RAT tag %d != inst dst tag %d",
             dst.tag, inst.dstTag);
    dst.pri = inst.prevPri;
    dst.tag = inst.prevTag;
    if (inst.toShelf)
        extFreeList.push_back(inst.dstTag);
    else
        physFreeList.push_back(inst.dstPri);
}

PRI
RenameUnit::lookupPri(ThreadID tid, RegId reg) const
{
    return rat[tid][reg].pri;
}

Tag
RenameUnit::lookupTag(ThreadID tid, RegId reg) const
{
    return rat[tid][reg].tag;
}

unsigned
RenameUnit::mappedPhysCount() const
{
    std::unordered_set<PRI> seen;
    for (const auto &map : rat)
        for (const auto &e : map)
            seen.insert(e.pri);
    return static_cast<unsigned>(seen.size());
}

} // namespace shelf
