#include "core/steer/oracle.hh"

#include <algorithm>

#include "core/rename.hh"
#include "core/scoreboard.hh"
#include "mem/hierarchy.hh"

namespace shelf
{

OracleSteering::OracleSteering(const CoreParams &params,
                               const SteerContext &ctx_)
    : ctx(ctx_),
      predReady(params.threads, std::vector<Cycle>(kNumArchRegs, 0)),
      earliestIssueAbs(params.threads, 0),
      earliestWbAbs(params.threads, 0)
{}

Cycle
OracleSteering::srcReadyCycle(const DynInst &inst, int src_idx,
                              Cycle now, RegId reg) const
{
    // Observed schedule, when available: the scoreboard knows the
    // exact ready cycle once the producer has issued.
    Tag tag = ctx.rename->lookupTag(inst.tid, reg);
    Cycle sb_ready = ctx.sb->readyAt(tag);
    if (sb_ready != kCycleNever)
        return std::max(sb_ready, now);
    // Producer still unissued: fall back to our prediction.
    return std::max(predReady[inst.tid][reg], now);
}

bool
OracleSteering::steerToShelf(const DynInst &inst, Cycle now)
{
    ThreadID tid = inst.tid;

    Cycle src_ready = now;
    RegId srcs[2] = { inst.si.src1, inst.si.src2 };
    for (int i = 0; i < 2; ++i)
        if (srcs[i] != kNoReg)
            src_ready = std::max(src_ready,
                                 srcReadyCycle(inst, i, now, srcs[i]));

    // Exact latency: functional cache probe for loads.
    unsigned lat;
    if (inst.isLoad())
        lat = 1 + ctx.mem->probeDataLatency(inst.si.addr, now);
    else
        lat = inst.si.execLatency();

    Cycle pred_issue_iq = src_ready;

    // Shelf issue is additionally delayed by in-order issue (all
    // previous instructions must have issued), by the WAW hazard on
    // the shared destination register (section III-C), and by the
    // SSR (its writeback must land after elder speculation resolves,
    // i.e. it may not issue before earliestWb - latency).
    Cycle pred_issue_shelf =
        std::max(src_ready, earliestIssueAbs[tid]);
    if (inst.hasDst())
        pred_issue_shelf = std::max(
            pred_issue_shelf,
            srcReadyCycle(inst, -1, now, inst.si.dst));
    if (earliestWbAbs[tid] > lat)
        pred_issue_shelf =
            std::max(pred_issue_shelf, earliestWbAbs[tid] - lat);

    // The paper's greedy oracle steers by which side would *issue*
    // earlier, breaking ties toward the shelf (section IV-A), plus
    // the configured slack.
    bool to_shelf = pred_issue_shelf <= pred_issue_iq +
        ctx.steerSlack;
    Cycle pred_issue = to_shelf ? pred_issue_shelf : pred_issue_iq;
    Cycle pred_complete = pred_issue + lat;

    earliestIssueAbs[tid] =
        std::max(earliestIssueAbs[tid], pred_issue);
    if (inst.isBranch()) {
        earliestWbAbs[tid] = std::max(
            earliestWbAbs[tid],
            pred_issue + lat + ctx.branchResolveExtra);
    } else if (inst.isLoad()) {
        earliestWbAbs[tid] = std::max(
            earliestWbAbs[tid], pred_issue + ctx.loadResolveDelay);
    }

    if (inst.hasDst())
        predReady[tid][inst.si.dst] = pred_complete;

    count(to_shelf);
    return to_shelf;
}

void
OracleSteering::reset()
{
    for (auto &t : predReady)
        std::fill(t.begin(), t.end(), 0);
    std::fill(earliestIssueAbs.begin(), earliestIssueAbs.end(), 0);
    std::fill(earliestWbAbs.begin(), earliestWbAbs.end(), 0);
}

} // namespace shelf
