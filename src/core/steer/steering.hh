/**
 * @file
 * Instruction steering interface (paper section IV): decide at decode
 * whether each instruction dispatches to the IQ or to the shelf.
 * The microarchitecture is correct under any policy; steering quality
 * only affects performance.
 */

#ifndef SHELFSIM_CORE_STEER_STEERING_HH
#define SHELFSIM_CORE_STEER_STEERING_HH

#include <memory>

#include "base/stats.hh"
#include "core/dyn_inst.hh"
#include "core/params.hh"

namespace shelf
{

class JsonWriter;
class MemHierarchy;
class RenameUnit;
class Scoreboard;

/** Read-only view of core state offered to steering policies. */
struct SteerContext
{
    const MemHierarchy *mem = nullptr;  ///< for oracle cache probes
    const Scoreboard *sb = nullptr;     ///< actual readiness
    const RenameUnit *rename = nullptr; ///< current register mappings
    unsigned dcacheHitLatency = 2;
    unsigned branchResolveExtra = 2;
    unsigned loadResolveDelay = 3;
    unsigned steerSlack = 0;
    /** Monotonic retired-instruction counter (adaptive control). */
    const uint64_t *retiredCounter = nullptr;
};

class SteeringPolicy
{
  public:
    virtual ~SteeringPolicy() = default;

    /**
     * Decide (and record, for stateful policies) the steering of
     * @p inst; called once per instruction in program order at the
     * current cycle @p now.
     */
    virtual bool steerToShelf(const DynInst &inst, Cycle now) = 0;

    /** Advance per-cycle state (RCT countdowns); once per cycle. */
    virtual void tick(Cycle now) {}

    /** A tracked load produced its value. */
    virtual void loadCompleted(const DynInst &inst) {}

    /** Thread squash: instructions younger than @p seq vanished. */
    virtual void squash(ThreadID tid, SeqNum seq) {}

    virtual void reset() {}

    /**
     * Crash diagnostics: emit policy-internal state (RCT/PLT
     * contents for the practical policy) as fields into the
     * writer's open JSON object. Stateless policies emit nothing.
     */
    virtual void dumpState(JsonWriter &w) const {}

    stats::Scalar steeredToShelf;
    stats::Scalar steeredToIq;

    double
    shelfFraction() const
    {
        double total = steeredToShelf.value() + steeredToIq.value();
        return total > 0 ? steeredToShelf.value() / total : 0.0;
    }

  protected:
    void
    count(bool to_shelf)
    {
        if (to_shelf)
            ++steeredToShelf;
        else
            ++steeredToIq;
    }
};

/** Baseline: everything to the IQ (shelf unused). */
class AlwaysIqSteering : public SteeringPolicy
{
  public:
    bool
    steerToShelf(const DynInst &inst, Cycle now) override
    {
        count(false);
        return false;
    }
};

/** Degenerate: everything to the shelf (in-order-core behaviour). */
class AlwaysShelfSteering : public SteeringPolicy
{
  public:
    bool
    steerToShelf(const DynInst &inst, Cycle now) override
    {
        count(true);
        return true;
    }
};

/** Build the policy selected by @p params. */
std::unique_ptr<SteeringPolicy> makeSteeringPolicy(
    const CoreParams &params, const SteerContext &ctx);

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_STEERING_HH
