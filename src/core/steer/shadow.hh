/**
 * @file
 * Shadow steering: the primary policy drives the machine while a
 * reference policy is consulted in parallel and disagreements are
 * counted. Used to reproduce the paper's measurement that roughly
 * 16% of instructions are steered differently by the practical
 * mechanism than by the oracle (section V-A).
 */

#ifndef SHELFSIM_CORE_STEER_SHADOW_HH
#define SHELFSIM_CORE_STEER_SHADOW_HH

#include <memory>

#include "core/steer/steering.hh"

namespace shelf
{

class ShadowSteering : public SteeringPolicy
{
  public:
    ShadowSteering(std::unique_ptr<SteeringPolicy> primary_policy,
                   std::unique_ptr<SteeringPolicy> reference_policy)
        : primary(std::move(primary_policy)),
          reference(std::move(reference_policy))
    {}

    bool
    steerToShelf(const DynInst &inst, Cycle now) override
    {
        bool chosen = primary->steerToShelf(inst, now);
        bool ref = reference->steerToShelf(inst, now);
        if (chosen != ref)
            ++disagreements;
        count(chosen);
        return chosen;
    }

    void
    tick(Cycle now) override
    {
        primary->tick(now);
        reference->tick(now);
    }

    void
    loadCompleted(const DynInst &inst) override
    {
        primary->loadCompleted(inst);
        reference->loadCompleted(inst);
    }

    void
    squash(ThreadID tid, SeqNum gseq) override
    {
        primary->squash(tid, gseq);
        reference->squash(tid, gseq);
    }

    void
    reset() override
    {
        primary->reset();
        reference->reset();
        disagreements.reset();
    }

    void
    dumpState(JsonWriter &w) const override
    {
        primary->dumpState(w);
    }

    /** Fraction of decisions where primary and reference differ. */
    double
    missteerFraction() const
    {
        double total = steeredToShelf.value() + steeredToIq.value();
        return total > 0 ? disagreements.value() / total : 0.0;
    }

    stats::Scalar disagreements;

  private:
    std::unique_ptr<SteeringPolicy> primary;
    std::unique_ptr<SteeringPolicy> reference;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_SHADOW_HH
