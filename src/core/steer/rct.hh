/**
 * @file
 * Ready Cycle Table (paper Figure 9): one small saturating countdown
 * counter per architectural register per thread predicting how many
 * cycles remain until the register's value is ready. Counters
 * decrement each cycle unless frozen by the Parent Loads Table
 * recovery mechanism.
 */

#ifndef SHELFSIM_CORE_STEER_RCT_HH
#define SHELFSIM_CORE_STEER_RCT_HH

#include <vector>

#include "core/types.hh"

namespace shelf
{

class ReadyCycleTable
{
  public:
    /**
     * @param threads SMT thread count
     * @param bits counter width (Table I: 5 bits, range 0..31)
     */
    ReadyCycleTable(unsigned threads, unsigned bits);

    /** Predicted cycles until register @p r of @p tid is ready. */
    unsigned get(ThreadID tid, RegId r) const
    {
        return table[tid][r];
    }

    /** Record a new prediction (saturates at the counter maximum). */
    void set(ThreadID tid, RegId r, unsigned cycles);

    /**
     * Decrement all counters of @p tid except registers whose bit is
     * set in @p freeze_mask (indexed by register).
     */
    void tick(ThreadID tid, const std::vector<bool> &freeze_mask);

    /** Decrement all counters of @p tid. */
    void tickAll(ThreadID tid);

    unsigned maxValue() const { return maxVal; }

    void reset();

  private:
    unsigned maxVal;
    std::vector<std::vector<uint8_t>> table;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_RCT_HH
