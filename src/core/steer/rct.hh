/**
 * @file
 * Ready Cycle Table (paper Figure 9): one small saturating countdown
 * counter per architectural register per thread predicting how many
 * cycles remain until the register's value is ready. Counters
 * decrement each cycle unless frozen by the Parent Loads Table
 * recovery mechanism.
 *
 * Storage is a single packed array (threads x kNumArchRegs) plus a
 * per-thread bitmask of non-zero counters, so the per-cycle tick only
 * visits live counters and never allocates. Bulk clear is epoch
 * based: reset() bumps a generation stamp and rows are lazily
 * re-materialised on first write, so clearing is O(threads) instead
 * of O(threads x registers).
 */

#ifndef SHELFSIM_CORE_STEER_RCT_HH
#define SHELFSIM_CORE_STEER_RCT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace shelf
{

class ReadyCycleTable
{
  public:
    /**
     * @param threads SMT thread count
     * @param bits counter width (Table I: 5 bits, range 0..31)
     */
    ReadyCycleTable(unsigned threads, unsigned bits);

    /** Predicted cycles until register @p r of @p tid is ready. */
    unsigned get(ThreadID tid, RegId r) const
    {
        if (rowEpoch[tid] != epoch)
            return 0;
        return table[index(tid, r)];
    }

    /** Record a new prediction (saturates at the counter maximum). */
    void set(ThreadID tid, RegId r, unsigned cycles);

    /**
     * Decrement all non-zero counters of @p tid except registers
     * whose bit is set in @p freeze_bits (bit r = register r).
     */
    void tick(ThreadID tid, uint64_t freeze_bits);

    /**
     * Legacy freeze-mask form (kept for unit tests and external
     * callers): converts to the bitmask form above.
     */
    void tick(ThreadID tid, const std::vector<bool> &freeze_mask);

    /** Decrement all counters of @p tid. */
    void tickAll(ThreadID tid) { tick(tid, uint64_t(0)); }

    /** Bitmask of registers with a non-zero counter. */
    uint64_t nonzeroMask(ThreadID tid) const
    {
        return rowEpoch[tid] == epoch ? nonzero[tid] : 0;
    }

    unsigned maxValue() const { return maxVal; }

    void reset();

  private:
    static size_t index(ThreadID tid, RegId r)
    {
        return static_cast<size_t>(tid) * kNumArchRegs + r;
    }

    /** Re-materialise a row whose epoch stamp is stale. */
    void ensureRow(ThreadID tid);

    unsigned maxVal;
    uint16_t epoch = 0;
    /** Packed counters: table[tid * kNumArchRegs + r]. */
    std::vector<uint8_t> table;
    /** Per-thread bitmask of non-zero counters. */
    std::vector<uint64_t> nonzero;
    /** Per-thread generation stamp; != epoch means "all zero". */
    std::vector<uint16_t> rowEpoch;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_RCT_HH
