#include "core/steer/steering.hh"

#include "base/logging.hh"
#include "core/steer/oracle.hh"
#include "core/steer/practical.hh"
#include "core/steer/adaptive.hh"
#include "core/steer/shadow.hh"

namespace shelf
{

namespace
{

std::unique_ptr<SteeringPolicy>
makeBasePolicy(const CoreParams &params, const SteerContext &ctx);

} // namespace

std::unique_ptr<SteeringPolicy>
makeSteeringPolicy(const CoreParams &params, const SteerContext &ctx)
{
    std::unique_ptr<SteeringPolicy> policy =
        makeBasePolicy(params, ctx);
    if (params.adaptiveShelf && params.hasShelf()) {
        panic_if(!ctx.retiredCounter,
                 "adaptive steering needs a retired counter");
        policy = std::make_unique<AdaptiveSteering>(
            std::move(policy), ctx.retiredCounter,
            params.adaptiveEpochCycles);
    }
    return policy;
}

namespace
{

std::unique_ptr<SteeringPolicy>
makeBasePolicy(const CoreParams &params, const SteerContext &ctx)
{
    if (params.shadowOracle &&
        params.steering == SteerPolicyKind::Practical) {
        return std::make_unique<ShadowSteering>(
            std::make_unique<PracticalSteering>(params, ctx),
            std::make_unique<OracleSteering>(params, ctx));
    }
    switch (params.steering) {
      case SteerPolicyKind::AlwaysIQ:
        return std::make_unique<AlwaysIqSteering>();
      case SteerPolicyKind::AlwaysShelf:
        return std::make_unique<AlwaysShelfSteering>();
      case SteerPolicyKind::Practical:
        return std::make_unique<PracticalSteering>(params, ctx);
      case SteerPolicyKind::Oracle:
        return std::make_unique<OracleSteering>(params, ctx);
      default:
        panic("bad steering policy");
    }
}

} // namespace

} // namespace shelf
