/**
 * @file
 * Greedy oracle steering (paper section IV-A): steer each instruction
 * to wherever it would issue (complete) earlier, breaking ties toward
 * the shelf, using knowledge a real pipeline cannot have -- exact
 * instruction latencies and a functional (state-preserving) query of
 * the cache hierarchy for load latencies -- and correcting its view
 * of the schedule against the actually observed one (the scoreboard).
 *
 * Like the paper's oracle, this remains greedy and approximate: it
 * does not search the global schedule (which the paper argues is
 * intractable), and a few percent of instructions are still steered
 * differently from what hindsight would choose.
 */

#ifndef SHELFSIM_CORE_STEER_ORACLE_HH
#define SHELFSIM_CORE_STEER_ORACLE_HH

#include <vector>

#include "core/steer/steering.hh"

namespace shelf
{

class OracleSteering : public SteeringPolicy
{
  public:
    OracleSteering(const CoreParams &params, const SteerContext &ctx);

    bool steerToShelf(const DynInst &inst, Cycle now) override;
    void reset() override;

  private:
    /** Best-known absolute ready cycle of a register's current
     * value: the observed schedule when the scoreboard knows it,
     * otherwise our own prediction. */
    Cycle srcReadyCycle(const DynInst &inst, int src_idx, Cycle now,
                        RegId reg) const;

    SteerContext ctx;
    /** Predicted absolute ready cycle per thread x arch register. */
    std::vector<std::vector<Cycle>> predReady;
    std::vector<Cycle> earliestIssueAbs;
    std::vector<Cycle> earliestWbAbs;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_ORACLE_HH
