#include "core/steer/plt.hh"

#include <algorithm>

namespace shelf
{

ParentLoadsTable::ParentLoadsTable(unsigned threads, unsigned columns)
    : numColumns(columns),
      rows(threads, std::vector<uint32_t>(kNumArchRegs, 0)),
      columnLoad(threads, std::vector<SeqNum>(columns, kNoSeq))
{}

int
ParentLoadsTable::assignColumn(ThreadID tid, SeqNum gseq)
{
    auto &cols = columnLoad[tid];
    for (unsigned c = 0; c < numColumns; ++c) {
        if (cols[c] == kNoSeq) {
            cols[c] = gseq;
            return static_cast<int>(c);
        }
    }
    return -1;
}

void
ParentLoadsTable::setRow(ThreadID tid, RegId dst, uint32_t bits)
{
    rows[tid][dst] = bits;
}

void
ParentLoadsTable::release(ThreadID tid, SeqNum gseq)
{
    auto &cols = columnLoad[tid];
    for (unsigned c = 0; c < numColumns; ++c) {
        if (cols[c] == gseq) {
            cols[c] = kNoSeq;
            uint32_t clear = ~(1u << c);
            for (auto &row : rows[tid])
                row &= clear;
            return;
        }
    }
}

void
ParentLoadsTable::squash(ThreadID tid, SeqNum gseq)
{
    auto &cols = columnLoad[tid];
    for (unsigned c = 0; c < numColumns; ++c) {
        if (cols[c] != kNoSeq && cols[c] > gseq) {
            cols[c] = kNoSeq;
            uint32_t clear = ~(1u << c);
            for (auto &row : rows[tid])
                row &= clear;
        }
    }
}

bool
ParentLoadsTable::tracked(ThreadID tid, SeqNum gseq) const
{
    const auto &cols = columnLoad[tid];
    return std::find(cols.begin(), cols.end(), gseq) != cols.end();
}

void
ParentLoadsTable::reset()
{
    for (auto &t : rows)
        std::fill(t.begin(), t.end(), 0);
    for (auto &t : columnLoad)
        std::fill(t.begin(), t.end(), kNoSeq);
}

} // namespace shelf
