#include "core/steer/plt.hh"

#include <algorithm>

#include "base/bitutil.hh"

namespace shelf
{

static_assert(kNumArchRegs <= 64,
              "PLT non-zero-row masks pack one bit per architectural "
              "register into a uint64_t");

ParentLoadsTable::ParentLoadsTable(unsigned threads, unsigned columns)
    : numColumns(columns),
      rows(static_cast<size_t>(threads) * kNumArchRegs, 0),
      nonzeroRows(threads, 0),
      rowEpoch(threads, 0),
      columnLoad(threads, std::vector<SeqNum>(columns, kNoSeq))
{}

void
ParentLoadsTable::ensureThread(ThreadID tid)
{
    if (rowEpoch[tid] == epoch)
        return;
    std::fill_n(rows.begin() + index(tid, 0), kNumArchRegs,
                uint32_t(0));
    nonzeroRows[tid] = 0;
    std::fill(columnLoad[tid].begin(), columnLoad[tid].end(), kNoSeq);
    rowEpoch[tid] = epoch;
}

int
ParentLoadsTable::assignColumn(ThreadID tid, SeqNum gseq)
{
    ensureThread(tid);
    auto &cols = columnLoad[tid];
    for (unsigned c = 0; c < numColumns; ++c) {
        if (cols[c] == kNoSeq) {
            cols[c] = gseq;
            return static_cast<int>(c);
        }
    }
    return -1;
}

void
ParentLoadsTable::setRow(ThreadID tid, RegId dst, uint32_t bits)
{
    ensureThread(tid);
    rows[index(tid, dst)] = bits;
    if (bits)
        nonzeroRows[tid] |= uint64_t(1) << dst;
    else
        nonzeroRows[tid] &= ~(uint64_t(1) << dst);
}

void
ParentLoadsTable::clearColumn(ThreadID tid, unsigned c)
{
    uint32_t clear = ~(1u << c);
    uint64_t live = nonzeroRows[tid];
    uint32_t *base = rows.data() + index(tid, 0);
    while (live) {
        unsigned r = static_cast<unsigned>(countTrailingZeros(live));
        live &= live - 1;
        if ((base[r] &= clear) == 0)
            nonzeroRows[tid] &= ~(uint64_t(1) << r);
    }
}

void
ParentLoadsTable::release(ThreadID tid, SeqNum gseq)
{
    if (rowEpoch[tid] != epoch)
        return;
    auto &cols = columnLoad[tid];
    for (unsigned c = 0; c < numColumns; ++c) {
        if (cols[c] == gseq) {
            cols[c] = kNoSeq;
            clearColumn(tid, c);
            return;
        }
    }
}

void
ParentLoadsTable::squash(ThreadID tid, SeqNum gseq)
{
    if (rowEpoch[tid] != epoch)
        return;
    auto &cols = columnLoad[tid];
    for (unsigned c = 0; c < numColumns; ++c) {
        if (cols[c] != kNoSeq && cols[c] > gseq) {
            cols[c] = kNoSeq;
            clearColumn(tid, c);
        }
    }
}

bool
ParentLoadsTable::tracked(ThreadID tid, SeqNum gseq) const
{
    if (rowEpoch[tid] != epoch)
        return false;
    const auto &cols = columnLoad[tid];
    return std::find(cols.begin(), cols.end(), gseq) != cols.end();
}

void
ParentLoadsTable::reset()
{
    if (++epoch == 0) {
        std::fill(rows.begin(), rows.end(), uint32_t(0));
        std::fill(nonzeroRows.begin(), nonzeroRows.end(),
                  uint64_t(0));
        std::fill(rowEpoch.begin(), rowEpoch.end(), uint16_t(0));
        for (auto &t : columnLoad)
            std::fill(t.begin(), t.end(), kNoSeq);
    }
}

} // namespace shelf
