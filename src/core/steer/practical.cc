#include "core/steer/practical.hh"

#include <algorithm>

#include "base/bitutil.hh"
#include "base/json.hh"
#include "core/rename.hh"
#include "core/scoreboard.hh"

namespace shelf
{

PracticalSteering::PracticalSteering(const CoreParams &params,
                                     const SteerContext &ctx_)
    : ctx(ctx_),
      predictedLoadLatency(1 + ctx_.dcacheHitLatency),
      rct(params.threads, params.rctBits),
      plt(params.threads, params.pltColumns),
      earliestIssueCtr(params.threads, 0),
      earliestWbCtr(params.threads, 0)
{}

bool
PracticalSteering::steerToShelf(const DynInst &inst, Cycle now)
{
    ThreadID tid = inst.tid;

    // Predicted cycles until source operands are ready.
    unsigned src_ready = 0;
    for (RegId src : {inst.si.src1, inst.si.src2})
        if (src != kNoReg)
            src_ready = std::max(src_ready, rct.get(tid, src));

    // Predicted latency; loads are assumed to hit in L1 so no
    // prediction table is needed (paper section IV-B).
    unsigned lat = inst.isLoad() ? predictedLoadLatency
                                 : inst.si.execLatency();

    unsigned pred_issue_iq = src_ready;
    unsigned pred_complete_iq = pred_issue_iq + lat;

    // The shelf reuses the destination's physical register, so it
    // must additionally stall until the previous writer of that
    // register completes (the WAW hazard of section III-C) -- which
    // is exactly what the RCT already predicts for the register.
    unsigned waw_ready = inst.hasDst()
        ? rct.get(tid, inst.si.dst) : 0;
    unsigned pred_issue_shelf = std::max(
        std::max(src_ready, waw_ready), earliestIssueCtr[tid]);
    unsigned pred_complete_shelf =
        std::max(pred_issue_shelf + lat, earliestWbCtr[tid]);

    // Choose the earlier completion, breaking ties toward the shelf
    // (plus the configured slack; see CoreParams::steerSlack).
    bool to_shelf =
        pred_complete_shelf <= pred_complete_iq + ctx.steerSlack;
    unsigned pred_issue = to_shelf ? pred_issue_shelf : pred_issue_iq;
    unsigned pred_complete =
        to_shelf ? pred_complete_shelf : pred_complete_iq;

    // Any future shelf instruction must issue after this one.
    earliestIssueCtr[tid] =
        std::max(earliestIssueCtr[tid], pred_issue);

    // Speculative instructions delay future shelf writebacks.
    if (inst.isBranch()) {
        earliestWbCtr[tid] = std::max(
            earliestWbCtr[tid],
            pred_issue + lat + ctx.branchResolveExtra);
    } else if (inst.isLoad()) {
        earliestWbCtr[tid] = std::max(
            earliestWbCtr[tid], pred_issue + ctx.loadResolveDelay);
    }

    // Dependence tracking for schedule recovery.
    uint32_t parent_bits = 0;
    for (RegId src : {inst.si.src1, inst.si.src2})
        if (src != kNoReg)
            parent_bits |= plt.row(tid, src);
    if (inst.isLoad()) {
        int col = plt.assignColumn(tid, inst.gseq);
        if (col >= 0)
            parent_bits |= 1u << col;
    }
    if (inst.hasDst()) {
        rct.set(tid, inst.si.dst, pred_complete);
        plt.setRow(tid, inst.si.dst, parent_bits);
    }

    count(to_shelf);
    return to_shelf;
}

void
PracticalSteering::tick(Cycle now)
{
    for (ThreadID tid = 0;
         tid < static_cast<ThreadID>(earliestIssueCtr.size()); ++tid) {
        // Registers whose countdown expired but whose value is not
        // actually ready identify stalled parent loads; freeze the
        // countdown of everything dependent on those loads. Only
        // registers with an expired counter AND a live PLT row can
        // contribute, so walk that (usually tiny) set directly.
        uint32_t stalled_bits = 0;
        uint64_t tracked_rows = plt.nonzeroRowMask(tid);
        uint64_t candidates = tracked_rows & ~rct.nonzeroMask(tid);
        while (candidates) {
            unsigned r = static_cast<unsigned>(
                countTrailingZeros(candidates));
            candidates &= candidates - 1;
            Tag tag = ctx.rename->lookupTag(tid, static_cast<RegId>(r));
            if (!ctx.sb->ready(tag, now))
                stalled_bits |= plt.row(tid, static_cast<RegId>(r));
        }
        uint64_t freeze_bits = 0;
        if (stalled_bits) {
            ++rctFreezes;
            uint64_t live = tracked_rows;
            while (live) {
                unsigned r = static_cast<unsigned>(
                    countTrailingZeros(live));
                live &= live - 1;
                if (plt.row(tid, static_cast<RegId>(r)) & stalled_bits)
                    freeze_bits |= uint64_t(1) << r;
            }
        }
        rct.tick(tid, freeze_bits);

        // The earliest-allowable shelf issue/writeback horizons are
        // part of the same predicted schedule: while a stalled load
        // freezes its dependency tree, the shelf cannot drain past
        // the frozen instructions either, so the horizons freeze too
        // (the "push back the entire dependency tree" recovery of
        // paper section IV-B).
        if (!stalled_bits) {
            if (earliestIssueCtr[tid] > 0)
                --earliestIssueCtr[tid];
            if (earliestWbCtr[tid] > 0)
                --earliestWbCtr[tid];
        }
    }
}

void
PracticalSteering::loadCompleted(const DynInst &inst)
{
    plt.release(inst.tid, inst.gseq);
}

void
PracticalSteering::squash(ThreadID tid, SeqNum gseq)
{
    plt.squash(tid, gseq);
}

void
PracticalSteering::reset()
{
    rct.reset();
    plt.reset();
    std::fill(earliestIssueCtr.begin(), earliestIssueCtr.end(), 0);
    std::fill(earliestWbCtr.begin(), earliestWbCtr.end(), 0);
}

void
PracticalSteering::dumpState(JsonWriter &w) const
{
    unsigned threads =
        static_cast<unsigned>(earliestIssueCtr.size());
    w.field("rctFreezes", rctFreezes.value());
    w.beginArray("perThread");
    for (unsigned t = 0; t < threads; ++t) {
        ThreadID tid = static_cast<ThreadID>(t);
        w.beginObject();
        w.field("earliestIssue", static_cast<uint64_t>(
                                     earliestIssueCtr[t]));
        w.field("earliestWriteback", static_cast<uint64_t>(
                                         earliestWbCtr[t]));
        w.beginArray("rct");
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            w.value(static_cast<double>(
                rct.get(tid, static_cast<RegId>(r))));
        w.endArray();
        // PLT rows as bitmasks over the tracked-load columns; only
        // non-zero rows are interesting, so emit sparse pairs.
        w.beginArray("pltRows");
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            uint32_t row = plt.row(tid, static_cast<RegId>(r));
            if (!row)
                continue;
            w.beginObject();
            w.field("reg", static_cast<uint64_t>(r));
            w.field("mask", static_cast<uint64_t>(row));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
}

} // namespace shelf
