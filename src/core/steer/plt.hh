/**
 * @file
 * Parent Loads Table (paper Figure 9): a small per-thread bit matrix
 * relating architectural registers (rows) to a handful of sampled
 * in-flight loads (columns). A register's row records which tracked
 * loads it transitively depends on; when a tracked load runs longer
 * than predicted, the RCT countdown of every dependent register is
 * frozen until the load completes.
 */

#ifndef SHELFSIM_CORE_STEER_PLT_HH
#define SHELFSIM_CORE_STEER_PLT_HH

#include <vector>

#include "core/types.hh"

namespace shelf
{

class ParentLoadsTable
{
  public:
    /**
     * @param threads SMT thread count
     * @param columns tracked loads per thread (Table I: 4)
     */
    ParentLoadsTable(unsigned threads, unsigned columns);

    /**
     * Try to assign a column to a newly steered load identified by
     * @p gseq; returns the column or -1 if all are in use.
     */
    int assignColumn(ThreadID tid, SeqNum gseq);

    /** Row of register @p r (bitmask over columns). */
    uint32_t row(ThreadID tid, RegId r) const
    {
        return rows[tid][r];
    }

    /** Destination row := OR of operand rows (plus @p extra bits). */
    void setRow(ThreadID tid, RegId dst, uint32_t bits);

    /** Tracked load @p gseq completed or was squashed: free its
     * column and clear the column's bits everywhere. */
    void release(ThreadID tid, SeqNum gseq);

    /** Free all columns of loads younger than @p gseq (squash). */
    void squash(ThreadID tid, SeqNum gseq);

    /** Is this gseq currently tracked? */
    bool tracked(ThreadID tid, SeqNum gseq) const;

    unsigned columns() const { return numColumns; }

    void reset();

  private:
    unsigned numColumns;
    /** rows[tid][reg] = bitmask of parent-load columns. */
    std::vector<std::vector<uint32_t>> rows;
    /** columnLoad[tid][col] = gseq of the tracked load (kNoSeq free) */
    std::vector<std::vector<SeqNum>> columnLoad;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_PLT_HH
