/**
 * @file
 * Parent Loads Table (paper Figure 9): a small per-thread bit matrix
 * relating architectural registers (rows) to a handful of sampled
 * in-flight loads (columns). A register's row records which tracked
 * loads it transitively depends on; when a tracked load runs longer
 * than predicted, the RCT countdown of every dependent register is
 * frozen until the load completes.
 *
 * Rows live in one packed array (threads x kNumArchRegs) and each
 * thread keeps a bitmask of non-zero rows, so column release/squash
 * and the per-cycle steering scan only touch live rows. Bulk clear
 * is epoch based, matching the RCT.
 */

#ifndef SHELFSIM_CORE_STEER_PLT_HH
#define SHELFSIM_CORE_STEER_PLT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace shelf
{

class ParentLoadsTable
{
  public:
    /**
     * @param threads SMT thread count
     * @param columns tracked loads per thread (Table I: 4)
     */
    ParentLoadsTable(unsigned threads, unsigned columns);

    /**
     * Try to assign a column to a newly steered load identified by
     * @p gseq; returns the column or -1 if all are in use.
     */
    int assignColumn(ThreadID tid, SeqNum gseq);

    /** Row of register @p r (bitmask over columns). */
    uint32_t row(ThreadID tid, RegId r) const
    {
        if (rowEpoch[tid] != epoch)
            return 0;
        return rows[index(tid, r)];
    }

    /** Destination row := OR of operand rows (plus @p extra bits). */
    void setRow(ThreadID tid, RegId dst, uint32_t bits);

    /** Tracked load @p gseq completed or was squashed: free its
     * column and clear the column's bits everywhere. */
    void release(ThreadID tid, SeqNum gseq);

    /** Free all columns of loads younger than @p gseq (squash). */
    void squash(ThreadID tid, SeqNum gseq);

    /** Is this gseq currently tracked? */
    bool tracked(ThreadID tid, SeqNum gseq) const;

    /** Bitmask of registers with a non-zero row. */
    uint64_t nonzeroRowMask(ThreadID tid) const
    {
        return rowEpoch[tid] == epoch ? nonzeroRows[tid] : 0;
    }

    unsigned columns() const { return numColumns; }

    void reset();

  private:
    static size_t index(ThreadID tid, RegId r)
    {
        return static_cast<size_t>(tid) * kNumArchRegs + r;
    }

    /** Re-materialise a thread whose epoch stamp is stale. */
    void ensureThread(ThreadID tid);

    /** Clear column @p c from every live row of @p tid. */
    void clearColumn(ThreadID tid, unsigned c);

    unsigned numColumns;
    uint16_t epoch = 0;
    /** Packed rows: rows[tid * kNumArchRegs + r]. */
    std::vector<uint32_t> rows;
    /** Per-thread bitmask of non-zero rows. */
    std::vector<uint64_t> nonzeroRows;
    /** Per-thread generation stamp; != epoch means "all clear". */
    std::vector<uint16_t> rowEpoch;
    /** columnLoad[tid][col] = gseq of the tracked load (kNoSeq free) */
    std::vector<std::vector<SeqNum>> columnLoad;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_PLT_HH
