#include "core/steer/rct.hh"

#include <algorithm>

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace shelf
{

static_assert(kNumArchRegs <= 64,
              "RCT non-zero masks pack one bit per architectural "
              "register into a uint64_t");

ReadyCycleTable::ReadyCycleTable(unsigned threads, unsigned bits)
    : maxVal(static_cast<unsigned>(mask(bits))),
      table(static_cast<size_t>(threads) * kNumArchRegs, 0),
      nonzero(threads, 0),
      rowEpoch(threads, 0)
{
    fatal_if(bits == 0 || bits > 8, "RCT width %u out of range", bits);
}

void
ReadyCycleTable::ensureRow(ThreadID tid)
{
    if (rowEpoch[tid] == epoch)
        return;
    std::fill_n(table.begin() + index(tid, 0), kNumArchRegs,
                uint8_t(0));
    nonzero[tid] = 0;
    rowEpoch[tid] = epoch;
}

void
ReadyCycleTable::set(ThreadID tid, RegId r, unsigned cycles)
{
    ensureRow(tid);
    uint8_t v = static_cast<uint8_t>(std::min(cycles, maxVal));
    table[index(tid, r)] = v;
    if (v)
        nonzero[tid] |= uint64_t(1) << r;
    else
        nonzero[tid] &= ~(uint64_t(1) << r);
}

void
ReadyCycleTable::tick(ThreadID tid, uint64_t freeze_bits)
{
    if (rowEpoch[tid] != epoch)
        return; // all counters already zero
    uint64_t live = nonzero[tid] & ~freeze_bits;
    uint8_t *row = table.data() + index(tid, 0);
    while (live) {
        unsigned r = static_cast<unsigned>(countTrailingZeros(live));
        live &= live - 1;
        if (--row[r] == 0)
            nonzero[tid] &= ~(uint64_t(1) << r);
    }
}

void
ReadyCycleTable::tick(ThreadID tid, const std::vector<bool> &freeze_mask)
{
    uint64_t bits = 0;
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        if (freeze_mask[r])
            bits |= uint64_t(1) << r;
    tick(tid, bits);
}

void
ReadyCycleTable::reset()
{
    if (++epoch == 0) {
        // Stamp wrapped: hard-clear so stale stamps cannot collide.
        std::fill(table.begin(), table.end(), uint8_t(0));
        std::fill(nonzero.begin(), nonzero.end(), uint64_t(0));
        std::fill(rowEpoch.begin(), rowEpoch.end(), uint16_t(0));
    }
}

} // namespace shelf
