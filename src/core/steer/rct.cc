#include "core/steer/rct.hh"

#include <algorithm>

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace shelf
{

ReadyCycleTable::ReadyCycleTable(unsigned threads, unsigned bits)
    : maxVal(static_cast<unsigned>(mask(bits))),
      table(threads, std::vector<uint8_t>(kNumArchRegs, 0))
{
    fatal_if(bits == 0 || bits > 8, "RCT width %u out of range", bits);
}

void
ReadyCycleTable::set(ThreadID tid, RegId r, unsigned cycles)
{
    table[tid][r] =
        static_cast<uint8_t>(std::min(cycles, maxVal));
}

void
ReadyCycleTable::tick(ThreadID tid, const std::vector<bool> &freeze_mask)
{
    auto &row = table[tid];
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        if (row[r] > 0 && !freeze_mask[r])
            --row[r];
    }
}

void
ReadyCycleTable::tickAll(ThreadID tid)
{
    auto &row = table[tid];
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        if (row[r] > 0)
            --row[r];
}

void
ReadyCycleTable::reset()
{
    for (auto &row : table)
        std::fill(row.begin(), row.end(), 0);
}

} // namespace shelf
