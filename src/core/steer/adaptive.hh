/**
 * @file
 * Adaptive shelf enable/disable (paper section V-C: "the shelf can
 * easily be disabled by steering all instructions to the IQ if it
 * causes pathological behavior in a particular workload").
 *
 * A small epoch-based A/B controller wraps the real steering policy:
 * it alternately probes one epoch with the shelf enabled and one
 * with it disabled (all instructions forced to the IQ), compares
 * retired-instruction counts, locks into the better mode for a
 * number of epochs, then re-probes. The wrapped policy keeps
 * receiving every decision so its prediction state stays warm.
 */

#ifndef SHELFSIM_CORE_STEER_ADAPTIVE_HH
#define SHELFSIM_CORE_STEER_ADAPTIVE_HH

#include <memory>

#include "core/steer/steering.hh"

namespace shelf
{

struct CoreStats;

class AdaptiveSteering : public SteeringPolicy
{
  public:
    /**
     * @param inner the policy that decides when the shelf is enabled
     * @param retired_counter monotonically increasing count of
     *        retired instructions (the controller's reward signal)
     * @param epoch_cycles probe/lock epoch length
     * @param lock_epochs epochs to stay in the winning mode
     */
    AdaptiveSteering(std::unique_ptr<SteeringPolicy> inner,
                     const uint64_t *retired_counter,
                     unsigned epoch_cycles = 2048,
                     unsigned lock_epochs = 8)
        : inner(std::move(inner)), retired(retired_counter),
          epochCycles(epoch_cycles), lockEpochs(lock_epochs)
    {}

    bool
    steerToShelf(const DynInst &inst, Cycle now) override
    {
        bool inner_choice = inner->steerToShelf(inst, now);
        bool chosen = shelfEnabled && inner_choice;
        count(chosen);
        return chosen;
    }

    void
    tick(Cycle now) override
    {
        inner->tick(now);
        if (++cycleInEpoch < epochCycles)
            return;
        cycleInEpoch = 0;
        uint64_t cur = *retired;
        // Statistics resets can move the counter backwards; treat
        // that epoch as empty rather than wrapping.
        uint64_t delta =
            cur >= epochStartRetired ? cur - epochStartRetired : 0;
        epochStartRetired = cur;

        switch (phase) {
          case Phase::ProbeOn:
            onScore = delta;
            phase = Phase::ProbeOff;
            shelfEnabled = false;
            break;
          case Phase::ProbeOff:
            offScore = delta;
            phase = Phase::Locked;
            lockRemaining = lockEpochs;
            shelfEnabled = onScore >= offScore;
            if (shelfEnabled)
                ++epochsLockedOn;
            else
                ++epochsLockedOff;
            break;
          case Phase::Locked:
            if (--lockRemaining == 0) {
                phase = Phase::ProbeOn;
                shelfEnabled = true;
            } else if (shelfEnabled) {
                ++epochsLockedOn;
            } else {
                ++epochsLockedOff;
            }
            break;
        }
    }

    void
    loadCompleted(const DynInst &inst) override
    {
        inner->loadCompleted(inst);
    }

    void
    squash(ThreadID tid, SeqNum gseq) override
    {
        inner->squash(tid, gseq);
    }

    void
    reset() override
    {
        inner->reset();
        shelfEnabled = true;
        phase = Phase::ProbeOn;
        cycleInEpoch = 0;
        epochStartRetired = *retired;
        epochsLockedOn = epochsLockedOff = 0;
    }

    void
    dumpState(JsonWriter &w) const override
    {
        inner->dumpState(w);
    }

    bool shelfCurrentlyEnabled() const { return shelfEnabled; }
    uint64_t lockedOnEpochs() const { return epochsLockedOn; }
    uint64_t lockedOffEpochs() const { return epochsLockedOff; }

  private:
    enum class Phase { ProbeOn, ProbeOff, Locked };

    std::unique_ptr<SteeringPolicy> inner;
    const uint64_t *retired;
    unsigned epochCycles;
    unsigned lockEpochs;

    bool shelfEnabled = true;
    Phase phase = Phase::ProbeOn;
    unsigned cycleInEpoch = 0;
    unsigned lockRemaining = 0;
    uint64_t epochStartRetired = 0;
    uint64_t onScore = 0;
    uint64_t offScore = 0;
    uint64_t epochsLockedOn = 0;
    uint64_t epochsLockedOff = 0;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_ADAPTIVE_HH
