/**
 * @file
 * The practical steering mechanism (paper section IV-B, Figure 9):
 * Ready Cycle Table prediction with all-loads-hit-in-L1 assumption,
 * per-thread earliest-allowable shelf issue and writeback cycles, and
 * Parent Loads Table based schedule recovery that freezes RCT
 * countdowns of registers dependent on loads that outran their
 * prediction.
 */

#ifndef SHELFSIM_CORE_STEER_PRACTICAL_HH
#define SHELFSIM_CORE_STEER_PRACTICAL_HH

#include <vector>

#include "core/steer/plt.hh"
#include "core/steer/rct.hh"
#include "core/steer/steering.hh"

namespace shelf
{

class PracticalSteering : public SteeringPolicy
{
  public:
    PracticalSteering(const CoreParams &params, const SteerContext &ctx);

    bool steerToShelf(const DynInst &inst, Cycle now) override;
    void tick(Cycle now) override;
    void loadCompleted(const DynInst &inst) override;
    void squash(ThreadID tid, SeqNum gseq) override;
    void reset() override;
    void dumpState(JsonWriter &w) const override;

    /** Exposed for unit tests. */
    const ReadyCycleTable &rctTable() const { return rct; }
    const ParentLoadsTable &pltTable() const { return plt; }
    unsigned earliestIssue(ThreadID tid) const
    {
        return earliestIssueCtr[tid];
    }
    unsigned earliestWriteback(ThreadID tid) const
    {
        return earliestWbCtr[tid];
    }

    stats::Scalar rctFreezes;

  private:
    SteerContext ctx;
    unsigned predictedLoadLatency;

    ReadyCycleTable rct;
    ParentLoadsTable plt;
    /** Relative cycles until the shelf may issue / write back. */
    std::vector<unsigned> earliestIssueCtr;
    std::vector<unsigned> earliestWbCtr;
};

} // namespace shelf

#endif // SHELFSIM_CORE_STEER_PRACTICAL_HH
