/**
 * @file
 * The extended rename stage (paper Figure 8).
 *
 * Each architectural register maps to a pair (PRI, tag). IQ-steered
 * instructions allocate a fresh physical register from the physical
 * free list and set both PRI and tag to it (tags in the original
 * space equal their PRI). Shelf-steered instructions *reuse* the
 * current PRI and allocate only a tag from the extension free list,
 * so their writes remain uniquely identifiable for IQ wakeup.
 *
 * Recovery is by walking squashed instructions youngest-first and
 * restoring each one's previous mapping (no checkpoints, matching the
 * paper's "our mechanism does not require checkpoints").
 */

#ifndef SHELFSIM_CORE_RENAME_HH
#define SHELFSIM_CORE_RENAME_HH

#include <string>
#include <vector>

#include "base/stats.hh"
#include "core/dyn_inst.hh"
#include "core/types.hh"

namespace shelf
{

namespace validate
{
class InvariantChecker;
} // namespace validate

class RenameUnit
{
  public:
    /**
     * @param threads SMT thread count
     * @param phys_regs physical register file size (original tags)
     * @param ext_tags extension tag space size
     */
    RenameUnit(unsigned threads, unsigned phys_regs, unsigned ext_tags);

    /** Free physical registers currently available. */
    unsigned freePhysRegs() const
    {
        return static_cast<unsigned>(physFreeList.size());
    }
    /** Free extension tags currently available. */
    unsigned freeExtTags() const
    {
        return static_cast<unsigned>(extFreeList.size());
    }

    /** Can the given instruction be renamed right now? */
    bool canRename(const DynInst &inst) const;

    /**
     * Rename @p inst in place: fills srcTag/srcPri, dstTag/dstPri and
     * prevTag/prevPri, updates the RAT, and draws from the free lists.
     * The caller must have checked canRename().
     */
    void rename(DynInst &inst);

    /**
     * Retirement: return the previous mapping's identifiers to the
     * free lists (paper section III-C). IQ instructions free prevPri
     * and, if it differs, prevTag; shelf instructions free only
     * prevTag when it differs from prevPri.
     */
    void retire(const DynInst &inst);

    /**
     * Squash recovery for one instruction (call youngest-first):
     * restores the previous mapping and returns this instruction's
     * own allocations to the free lists.
     */
    void unrename(const DynInst &inst);

    /** Current mapping (for steering predictors and checks). */
    PRI lookupPri(ThreadID tid, RegId reg) const;
    Tag lookupTag(ThreadID tid, RegId reg) const;

    bool isExtTag(Tag t) const
    {
        return t >= static_cast<Tag>(numPhysRegs);
    }

    stats::Scalar renames;
    stats::Scalar shelfRenames;
    stats::Scalar physStalls; ///< canRename failed for phys registers
    stats::Scalar extStalls;  ///< canRename failed for extension tags

    /** Invariant check: every PRI/tag is either mapped, in a free
     * list, or held by an in-flight instruction. Tests call this. */
    unsigned mappedPhysCount() const;

    /**
     * Exact conservation audit over *both* namespaces: every physical
     * register and every extension tag must be accounted for exactly
     * once across the free lists, the per-thread RATs, and the
     * previous mappings held by in-flight instructions (the caller
     * collects those from the pipeline: prevPri of live IQ-steered
     * instructions with a destination, and every live instruction's
     * extension prevTag). Catches both leaks (count 0: lost across a
     * squash walk-back) and double frees (count > 1).
     *
     * @return empty string if conserved, else a description of the
     *         first violation found.
     */
    std::string auditConservation(
        const std::vector<PRI> &held_pris,
        const std::vector<Tag> &held_tags) const;

  private:
    /** Fault-injection tests leak free-list entries deliberately. */
    friend class validate::InvariantChecker;

    struct MapEntry
    {
        PRI pri = kNoPri;
        Tag tag = kNoTag;
    };

    unsigned numThreads;
    unsigned numPhysRegs;
    unsigned numExtTags;

    /** Per-thread register alias tables (physical + extension view). */
    std::vector<std::vector<MapEntry>> rat;

    std::vector<PRI> physFreeList;
    std::vector<Tag> extFreeList;
};

} // namespace shelf

#endif // SHELFSIM_CORE_RENAME_HH
