/**
 * @file
 * The SMT out-of-order core model with the hybrid shelf/IQ
 * instruction window.
 *
 * Pipeline: fetch (ICOUNT) -> decode/steer -> rename (dual RAT) ->
 * dispatch (ROB/IQ/LSQ or shelf) -> issue (IQ select + in-order shelf
 * heads) -> execute (FUs, LSQ, caches) -> writeback -> commit.
 *
 * The model is execution-driven over deterministic synthetic traces;
 * squash recovery re-fetches from the trace. Mispredicted branches
 * squash younger in-flight instructions at resolution; memory-order
 * violations flush and restart at the offending load (paper section
 * III-D). Every mechanism of the paper's hybrid window is modelled:
 * issue-tracking bitvector, two SSRs per thread, shelf squash index
 * and retire pointer with doubled index space, extended tag space,
 * and LQ/SQ-less shelf memory operations.
 */

#ifndef SHELFSIM_CORE_CORE_HH
#define SHELFSIM_CORE_CORE_HH

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "branch/gshare.hh"
#include "branch/store_sets.hh"
#include "core/classify.hh"
#include "core/dyn_inst.hh"
#include "core/event_queue.hh"
#include "core/fu_pool.hh"
#include "core/iq.hh"
#include "core/lsq.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/scoreboard.hh"
#include "core/shelf.hh"
#include "core/ssr.hh"
#include "core/steer/steering.hh"
#include "diag/flight_recorder.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"

namespace shelf
{

class JsonWriter;

namespace validate
{
class InvariantChecker;
} // namespace validate

/**
 * Microarchitectural event counts consumed by the energy model.
 * Counters cover the access types whose dynamic energy McPAT-style
 * models charge.
 */
struct EventCounts
{
    uint64_t fetchedInsts = 0;
    uint64_t decodedInsts = 0;
    uint64_t renameOps = 0;
    uint64_t iqWrites = 0;
    uint64_t iqWakeupCompares = 0; ///< broadcasts x IQ occupancy
    uint64_t iqIssues = 0;
    uint64_t shelfWrites = 0;
    uint64_t shelfIssues = 0;
    uint64_t robWrites = 0;
    uint64_t robRetires = 0;
    uint64_t prfReads = 0;
    uint64_t prfWrites = 0;
    uint64_t lqWrites = 0;
    uint64_t sqWrites = 0;
    uint64_t lsqSearches = 0;
    uint64_t fuOps = 0;
    uint64_t ssrUpdates = 0;
    uint64_t steerEvals = 0;
    uint64_t squashedInsts = 0;

    void reset() { *this = EventCounts(); }
};

/** Dispatch-stall attribution (cycles x threads blocked, by the
 * first structural reason encountered). */
struct DispatchStalls
{
    uint64_t iqFull = 0;
    uint64_t robFull = 0;
    uint64_t lqFull = 0;
    uint64_t sqFull = 0;
    uint64_t shelfFull = 0;
    uint64_t physRegs = 0;
    uint64_t extTags = 0;

    void reset() { *this = DispatchStalls(); }
};

/** Aggregate performance statistics. */
struct CoreStats
{
    Cycle cycles = 0;
    std::vector<uint64_t> retired;   ///< per thread
    /** Monotonic total (NOT reset with statistics; feeds the
     * adaptive steering controller). */
    uint64_t retiredAll = 0;
    uint64_t squashes = 0;
    uint64_t branchSquashes = 0;
    uint64_t memOrderSquashes = 0;
    DispatchStalls dispatchStalls;
    stats::Average iqOccupancy;
    stats::Average shelfOccupancy;
    stats::Average robOccupancy;
    /** Quiescent cycles fast-forwarded instead of ticked, and the
     * number of contiguous spans (simulator diagnostics; the skipped
     * cycles are still counted in `cycles` and every stat). */
    uint64_t quiesceSkippedCycles = 0;
    uint64_t quiesceSpans = 0;

    uint64_t
    totalRetired() const
    {
        uint64_t sum = 0;
        for (uint64_t r : retired)
            sum += r;
        return sum;
    }
};

class Core
{
  public:
    /**
     * @param params core configuration
     * @param mem shared cache hierarchy (externally owned)
     * @param traces one trace per hardware thread (externally owned;
     *        threads wrap around at the end of their trace)
     */
    Core(const CoreParams &params, MemHierarchy &mem,
         std::vector<const Trace *> traces);
    ~Core();

    /** Advance one cycle. */
    void tick();

    /** Run for @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Advance exactly one tick toward @p end, then fast-forward any
     * quiescent span the tick exposes (never past @p end). This is
     * the body of run()'s loop; the multi-core system loop calls it
     * directly so cores interleave at cycle granularity while each
     * keeps its own quiescent-skip semantics — a quiescent core
     * touches no shared memory-hierarchy state during its span, so
     * skipping it locally cannot reorder cross-core interactions.
     */
    void stepWithSkip(Cycle end);

    /**
     * Run until every thread has retired @p per_thread instructions
     * or @p max_cycles elapse; returns the cycle count executed.
     */
    Cycle runUntilRetired(uint64_t per_thread, Cycle max_cycles);

    /** Zero all statistics (end of warmup). */
    void resetStats();

    Cycle cycle() const { return now; }
    const CoreParams &params() const { return coreParams; }

    uint64_t retired(ThreadID tid) const
    {
        return coreStats.retired[tid];
    }
    double ipc(ThreadID tid) const;
    double totalIpc() const;

    CoreStats &statsRef() { return coreStats; }
    const CoreStats &coreStatistics() const { return coreStats; }
    EventCounts &eventCounts() { return events; }
    Classifier &classify() { return classifier; }
    SteeringPolicy &steering() { return *steerPolicy; }
    GsharePredictor &branchPredictor() { return gshare; }
    const RenameUnit &renameUnit() const { return *rename; }
    const LSQ &lsqUnit() const { return *lsq; }
    const Shelf &shelfUnit() const { return *shelfQ; }
    const IssueQueue &iqUnit() const { return *iq; }

    /** Enable expensive per-cycle invariant checking (tests). */
    void setCheckInvariants(bool on) { checkInvariants = on; }

    /**
     * Observer invoked for every retiring instruction, in retirement
     * order (ROB and shelf retirement interleave). Drives the golden
     * functional model's commit-stream comparison (src/validate);
     * pass an empty function to disable. The observer must outlive
     * the core. Unset, this costs one branch per retire.
     */
    using CommitObserver = std::function<void(const DynInst &)>;
    void
    setCommitObserver(CommitObserver obs)
    {
        commitObserver = std::move(obs);
    }

    /**
     * Second, independent retire-stream tap. The golden model owns
     * the commit observer slot, so trace self-capture
     * (workload/trace_capture) gets its own — both may be armed at
     * once. Same ordering and lifetime rules as the observer.
     */
    void setRetireTap(CommitObserver tap) { retireTap = std::move(tap); }

    /**
     * Record the first @p n retired (thread, trace-index) pairs per
     * thread. Used by differential tests: any configuration must
     * retire exactly the same per-thread instruction sequence.
     */
    void
    setRetireLog(size_t n)
    {
        retireLogLimit = n;
        retireLog.assign(coreParams.threads, {});
    }

    const std::vector<uint64_t> &
    retiredTraceIndices(ThreadID tid) const
    {
        return retireLog[tid];
    }

    /**
     * Pipeline event tracing (like gem5's Exec debug flag): when a
     * sink is installed, every stage transition of every instruction
     * emits one line "<cycle>: t<tid> #<seq> <stage> <disasm>".
     * Pass nullptr to disable. The sink must outlive the core.
     */
    using TraceSink = std::function<void(const std::string &)>;
    void setTraceSink(TraceSink sink) { traceSink = std::move(sink); }

    /** In-flight instructions of a thread, program order (tests). */
    const std::deque<DynInstPtr> &
    inflightInsts(ThreadID tid) const
    {
        return threads[tid].inflight;
    }

    /** Scoreboard ready cycle of a tag (tests / debugging). */
    Cycle tagReadyAt(Tag t) const { return scoreboard->readyAt(t); }

    /** @name Shelf head-readiness cache introspection (tests) @{ */
    /** Pending-operand bits of a thread's cached shelf head
     * (bit 0/1 = source operands, bit 2 = WAW previous writer). */
    unsigned
    shelfHeadPendingOps(ThreadID tid) const
    {
        return shelfHeadCache[tid].pendingOps;
    }
    /** Cached cycle at which all known operands are ready. */
    Cycle
    shelfHeadOperandsReadyAt(ThreadID tid) const
    {
        return shelfHeadCache[tid].operandsReadyAt;
    }
    /** Is the cached SSR earliest-eligible cycle valid? */
    bool
    shelfHeadSsrValid(ThreadID tid) const
    {
        return shelfHeadCache[tid].ssrValid;
    }
    /** Cached SSR earliest-eligible cycle (valid only when
     * shelfHeadSsrValid()). */
    Cycle
    shelfHeadSsrEligibleAt(ThreadID tid) const
    {
        return shelfHeadCache[tid].ssrEligibleAt;
    }
    /** Bitmask of threads whose shelf head waits on @p tag. */
    uint64_t
    shelfTagWaiterMask(Tag t) const
    {
        return shelfTagWaiters[t];
    }
    /** Instruction identity of the cached shelf head (null when the
     * cache is empty). */
    const DynInst *
    shelfHeadCached(ThreadID tid) const
    {
        return shelfHeadCache[tid].inst;
    }
    /** @} */

    /** Frontend-buffer occupancy of a thread (tests / debugging). */
    size_t
    frontendSize(ThreadID tid) const
    {
        return threads[tid].frontend.size();
    }

    /** Cycle until which a thread's fetch is stalled. */
    Cycle
    fetchStallUntil(ThreadID tid) const
    {
        return threads[tid].fetchStallUntil;
    }

    /** Trace cursor of a thread (tests / debugging). */
    uint64_t fetchCursor(ThreadID tid) const
    {
        return threads[tid].cursor;
    }

    /** Oldest not-yet-dispatched instruction (tests / debugging). */
    DynInstPtr
    frontendHead(ThreadID tid) const
    {
        return threads[tid].frontend.empty()
            ? nullptr : threads[tid].frontend.front();
    }

    /** @name Crash diagnostics (core_diag.cc) @{ */
    /**
     * Serialize the complete core state — per-thread wait reasons,
     * the flight recorder, every pipeline structure, and the
     * validate invariant verdicts — as fields into the writer's
     * currently-open JSON object. Side-effect free.
     */
    void dumpState(JsonWriter &w) const;

    /**
     * Why @p tid is not retiring right now: the name of the
     * blocking structure ("rob", "shelf-operand", "dispatch:iq-full",
     * ...) plus a human-readable detail line. Mirrors the dispatch/
     * issue eligibility checks without their side effects.
     */
    struct WaitReason
    {
        std::string structure;
        std::string detail;
    };
    WaitReason waitReason(ThreadID tid) const;

    /**
     * Fault injection: from cycle @p when on, the commit stage
     * retires nothing, wedging every thread — the forward-progress
     * watchdog's end-to-end test vehicle. 0 disarms.
     */
    void wedgeRetirementAt(Cycle when) { wedgeAtCycle = when; }

    const diag::FlightRecorder &flightRecorder() const
    {
        return recorder;
    }
    /** @} */

  private:
    /** The validation subsystem reads (and, for fault-injection
     * tests, corrupts) private pipeline state. */
    friend class validate::InvariantChecker;

    struct ThreadState
    {
        const Trace *trace = nullptr;
        uint64_t cursor = 0;      ///< monotonic; index = cursor % size
        Cycle fetchStallUntil = 0;
        SeqNum nextSeq = 0;
        std::deque<DynInstPtr> frontend; ///< fetched, pre-dispatch
        std::deque<DynInstPtr> inflight; ///< dispatched, live
        bool lastDispatchWasShelf = false;
        uint64_t dispatchedNotIssued = 0;
        /** Current run id (a run = IQ series then shelf series). */
        uint64_t runId = 0;
        /** In-flight loads that have not yet obtained their data
         * (TSO: everything younger is speculative until they do). */
        std::set<SeqNum> incompleteLoads;
        /** Fill forwarding: instruction block whose miss this thread
         * is stalled on; consumed directly when the fill arrives
         * (a later eviction cannot strand the thread). */
        Addr pendingFillBlock = ~Addr(0);
        Cycle pendingFillAt = 0;
    };

    struct Event
    {
        SeqNum gseq;      ///< processing order within a cycle
        int kind;         ///< kExecuteMem or kComplete
        DynInstPtr inst;
    };
    static constexpr int kExecuteMem = 0;
    static constexpr int kComplete = 1;
    /** TSO: shelf retirement deferred behind incomplete elder
     * loads. */
    static constexpr int kShelfRetire = 2;

    /** @name Pipeline stages (called in reverse order each tick) @{ */
    void commitStage();
    void processEvents();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    /** @} */

    /**
     * Per-thread shelf head-readiness cache: the shelf head's
     * operand readiness is pushed by announceReady() through waiter
     * registrations instead of the head polling the scoreboard every
     * cycle, and the SSR speculation-window term is a cached
     * earliest-eligible cycle invalidated only on SSR transitions
     * (IQ issue with resolve delay, the run latch), squash, and head
     * advance (issue). The cache is rebuilt whenever the shelf head
     * identity changes; it is eagerly reset at the two places the
     * head can change while populated (shelf issue, squash) so slab
     * recycling can never produce a false pointer-identity match.
     */
    struct ShelfHeadCache
    {
        DynInst *inst = nullptr; ///< identity of the cached head
        uint8_t pendingOps = 0;  ///< bits 0/1 = srcs, bit 2 = prev
        bool ssrValid = false;
        Cycle operandsReadyAt = 0; ///< max over known operand terms
        Cycle ssrEligibleAt = 0;
        unsigned minLat = 0; ///< min execution delay (SSR covering)
        Tag waitTag[3] = { kNoTag, kNoTag, kNoTag };
    };

    /** @name Shelf head-readiness cache (core_issue.cc) @{ */
    /** Deregister waiters and empty the cache of @p tid. */
    void shelfHeadReset(ThreadID tid);
    /** Snapshot the current head's readiness, registering waiters on
     * still-pending source/WAW tags. */
    void shelfHeadRebuild(ThreadID tid, const DynInstPtr &head);
    /** Rebuild iff the cached identity is not @p head. */
    void
    shelfHeadEnsure(ThreadID tid, const DynInstPtr &head)
    {
        if (shelfHeadCache[tid].inst != head.get())
            shelfHeadRebuild(tid, head);
    }
    /** A produced tag became ready: wake registered shelf heads. */
    void shelfWakeup(Tag tag, Cycle cycle);
    /** @} */

    /** @name Issue helpers (core_issue.cc) @{ */
    bool iqCandidateBlocked(const DynInst &inst) const;
    /** Cross-cluster forwarding: is @p tag's value consumable now by
     * a consumer in the shelf (true) or IQ (false) cluster? */
    bool srcReadyForConsumer(Tag tag, bool consumer_shelf) const;
    bool shelfHeadEligible(ThreadID tid, const DynInstPtr &head);
    void issueInst(const DynInstPtr &inst);
    unsigned resolveDelay(const DynInst &inst) const;
    bool storeSetSatisfied(const DynInst &inst) const;
    /** Announce a produced value to the scoreboard and the IQ's
     * incremental wakeup in one step. */
    void announceReady(Tag tag, Cycle cycle);
    /**
     * SMT threads have disjoint address spaces, so a store-set wait
     * on another thread's store (SSIT aliasing) is both useless and,
     * combined with the shelf's in-order issue, a potential
     * cross-thread deadlock cycle: drop it.
     */
    SeqNum sameThreadStoreWait(ThreadID tid, SeqNum store_gseq) const;
    /** @} */

    /** @name Memory pipeline (core_mem.cc) @{ */
    void executeMemEvent(const DynInstPtr &inst);
    void executeLoad(const DynInstPtr &inst);
    void executeStore(const DynInstPtr &inst);
    /** @} */

    /** @name Completion / squash (core.cc, core_squash.cc) @{ */
    void completeEvent(const DynInstPtr &inst);
    void retireShelfInst(const DynInstPtr &inst);
    /** TSO: retire the shelf instruction now if no elder load is
     * still incomplete; otherwise re-arm for the next cycle. */
    void tryShelfRetire(const DynInstPtr &inst);
    bool elderIncompleteLoad(const DynInst &inst) const;
    void squashThread(ThreadID tid, SeqNum squash_seq,
                      uint64_t restart_cursor, Cycle resume);
    /** @} */

    /** @name Quiescent-cycle skipping (core.cc) @{ */
    /**
     * Earliest future cycle at which any stage could act, ignoring
     * the event queue (the skip loop checks events cycle by cycle).
     * now+1 means "cannot skip". Side effect: fills the
     * skipStallCounters / skipRenameStalls lists with the dispatch
     * stall counters each structurally-blocked, decode-ready front
     * instruction charges every quiescent cycle.
     */
    Cycle quiescentWake();
    /**
     * Fast-forward dead cycles after a tick, up to @p limit,
     * reproducing exactly the state a real tick leaves behind on a
     * cycle where no stage acts: SSR decay, steering-counter decay,
     * round-robin cursors, dispatch stall counters, stat samples,
     * wedge arming, and blocked TSO shelf-retire event re-arms.
     */
    void skipQuiescentSpan(Cycle limit);
    /**
     * Which stall counter dispatchStage would charge for @p tid's
     * blocked front instruction (null when dispatch could proceed);
     * mirrors the structural checks without side effects.
     * @p rename_ctr receives the rename-unit stat charged alongside
     * a tag/register stall, or null.
     */
    uint64_t *dispatchStallCounter(ThreadID tid, const DynInst &inst,
                                   stats::Scalar **rename_ctr);
    /** @} */

    void scheduleEvent(Cycle when, int kind, const DynInstPtr &inst);
    void cleanupInflight(ThreadState &ts);
    bool eldestUnissued(const ThreadState &ts,
                        const DynInstPtr &inst) const;
    void verifyInvariants() const;

    const TraceInst &traceAt(const ThreadState &ts,
                             uint64_t cursor) const;

    CoreParams coreParams;
    MemHierarchy &mem;

    /** Slab storage for every in-flight DynInst. Declared before all
     * handle-holding members so it is destroyed last; its destructor
     * panics if any handle outlives the core. */
    DynInstPool instPool;

    Cycle now = 0;
    SeqNum nextGseq = 0;
    unsigned dispatchRR = 0; ///< round-robin cursors
    unsigned commitRR = 0;
    unsigned fetchRR = 0;

    std::vector<ThreadState> threads;

    std::unique_ptr<RenameUnit> rename;
    std::unique_ptr<ROB> rob;
    std::unique_ptr<Shelf> shelfQ;
    std::unique_ptr<IssueQueue> iq;
    std::unique_ptr<Scoreboard> scoreboard;
    std::unique_ptr<SpecShiftRegisters> ssr;
    std::unique_ptr<LSQ> lsq;
    std::unique_ptr<FUPool> fuPool;
    std::unique_ptr<SteeringPolicy> steerPolicy;

    GsharePredictor gshare;
    StoreSets storeSets;

    /** In-flight stores by global sequence (store-set waits). */
    std::unordered_map<SeqNum, DynInstPtr> storesByGseq;

    /**
     * Pending execute/complete/retire events, bucketed by cycle.
     * Sized so that the longest modelled latency (a full memory
     * round trip plus FU and resolve delays) stays on the ring's
     * allocation-free fast path.
     */
    CalendarQueue<Event> eventQueue;
    /** Scratch for processEvents(); member so its capacity and the
     * bucket vectors' survive across ticks. */
    std::vector<Event> dueEvents;

    /** Per-thread shelf head-readiness caches (see ShelfHeadCache). */
    std::vector<ShelfHeadCache> shelfHeadCache;
    /** Per-tag bitmask of threads whose shelf head waits on the tag
     * becoming ready (the shelf's waiter chains). */
    std::vector<uint64_t> shelfTagWaiters;
    /** Cached minimum load latency (1 + L1D hit latency). */
    unsigned loadMinLat = 0;

    /** Cached CoreParams::fetchBufferCapacity() (it divides). */
    unsigned fetchBufCap = 0;

    /** Scratch for skipQuiescentSpan(): per-cycle dispatch-stall
     * increments of the current quiescent span (members so their
     * capacity survives across spans). */
    std::vector<uint64_t *> skipStallCounters;
    std::vector<stats::Scalar *> skipRenameStalls;

    /**
     * Monotone sum over every stage-activity counter: unchanged
     * across a tick iff no stage did anything. The run loops use it
     * as a free pre-filter — a quiescence attempt only ever pays off
     * right after a dead cycle.
     */
    uint64_t
    activitySignature() const
    {
        return events.fetchedInsts + events.renameOps +
            events.fuOps + events.squashedInsts +
            events.iqWakeupCompares + coreStats.retiredAll;
    }

    Classifier classifier;
    CoreStats coreStats;
    EventCounts events;

    bool checkInvariants = false;

    /** @name Crash diagnostics @{ */
    /** Recent pipeline events (diag dump); capacity from params. */
    diag::FlightRecorder recorder;
    /** Watchdog: last observed retiredAll and when it last moved. */
    uint64_t watchdogLastRetired = 0;
    Cycle watchdogLastProgress = 0;
    /** Injected retirement wedge (0 = off) and its armed state. */
    Cycle wedgeAtCycle = 0;
    bool wedged = false;
    /** Previous thread-local diag registration, restored in dtor. */
    const Core *diagPrevCore = nullptr;
    /** Watchdog check + wedge arming, called once per tick. */
    void diagTick();
    /** @} */

    size_t retireLogLimit = 0;
    std::vector<std::vector<uint64_t>> retireLog;
    TraceSink traceSink;
    CommitObserver commitObserver;
    CommitObserver retireTap;

    /** Emit a pipeline-trace line if a sink is installed. */
    void tracePipe(const char *stage, const DynInst &inst) const;

    void
    logRetire(const DynInst &inst)
    {
        if (commitObserver)
            commitObserver(inst);
        if (retireTap)
            retireTap(inst);
        if (retireLogLimit == 0)
            return;
        auto &log = retireLog[inst.tid];
        if (log.size() < retireLogLimit)
            log.push_back(inst.traceIdx);
    }
};

} // namespace shelf

#endif // SHELFSIM_CORE_CORE_HH
