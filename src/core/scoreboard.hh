/**
 * @file
 * Register readiness scoreboard over the *extended* tag space
 * (physical tags plus the shelf's extension tags).
 *
 * Readiness is stored as the cycle at which the value becomes
 * available to consumers (issue-time bypass included), which lets the
 * IQ's polling-based wakeup model behave identically to a broadcast
 * CAM: a consumer may issue at cycle c iff readyAt(tag) <= c.
 *
 * Each tag is one packed 64-bit word:
 *
 *   [63..49] epoch stamp   [48] produced-on-shelf   [47..0] cycle
 *
 * The cycle field saturates at an all-ones sentinel meaning "pending"
 * (kCycleNever). The producing-cluster bit rides in the same word so
 * the issue stage's clustered-backend check costs a single load. The
 * epoch stamp makes reset() an O(1) generation bump: a word whose
 * stamp does not match the current epoch reads as the initial
 * "ready at cycle 0, IQ cluster" state.
 */

#ifndef SHELFSIM_CORE_SCOREBOARD_HH
#define SHELFSIM_CORE_SCOREBOARD_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "core/types.hh"

namespace shelf
{

class Scoreboard
{
  public:
    explicit Scoreboard(unsigned num_tags = 0) : words(num_tags, 0) {}

    void resize(unsigned num_tags) { words.assign(num_tags, 0); }

    /** Mark a newly allocated destination tag as pending. */
    void markPending(Tag t)
    {
        checkTag(t);
        store(t, (load(t) & kShelfBit) | kNeverBits);
    }

    /** The producer's result becomes consumable at @p cycle. */
    void setReadyAt(Tag t, Cycle cycle)
    {
        checkTag(t);
        uint64_t c = cycle < kNeverBits ? cycle : kNeverBits;
        store(t, (load(t) & kShelfBit) | c);
    }

    /** Record which cluster produces the tag (issue time). */
    void setProducedOnShelf(Tag t, bool on_shelf)
    {
        checkTag(t);
        uint64_t w = load(t) & ~kShelfBit;
        store(t, w | (on_shelf ? kShelfBit : 0));
    }

    /** Does the shelf cluster produce this tag's value? */
    bool producedOnShelf(Tag t) const
    {
        checkTag(t);
        return (load(t) & kShelfBit) != 0;
    }

    /** Is the value ready for a consumer issuing at @p now? */
    bool ready(Tag t, Cycle now) const
    {
        if (t == kNoTag)
            return true;
        checkTag(t);
        return (load(t) & kNeverBits) <= now;
    }

    /** When the value becomes ready (kCycleNever while unknown). */
    Cycle readyAt(Tag t) const
    {
        if (t == kNoTag)
            return 0;
        checkTag(t);
        uint64_t c = load(t) & kNeverBits;
        return c == kNeverBits ? kCycleNever : c;
    }

    /**
     * readyAt() adjusted for a clustered consumer: adds @p delay when
     * the producing cluster differs from the consumer's. One word
     * load serves both the cycle and the cluster bit.
     */
    Cycle readyAtFor(Tag t, bool consumer_shelf, unsigned delay) const
    {
        if (t == kNoTag)
            return 0;
        checkTag(t);
        uint64_t w = load(t);
        uint64_t c = w & kNeverBits;
        if (c == kNeverBits)
            return kCycleNever;
        if (delay && ((w & kShelfBit) != 0) != consumer_shelf)
            c += delay;
        return c;
    }

    /** Squash recovery: a pending tag's producer was squashed. */
    void clearPending(Tag t)
    {
        if (t == kNoTag)
            return;
        store(t, load(t) & kShelfBit);
    }

    /** All-ready initial state: an O(1) epoch bump. */
    void reset()
    {
        if (++epoch == kEpochLimit) {
            std::fill(words.begin(), words.end(), uint64_t(0));
            epoch = 0;
        }
    }

    unsigned numTags() const
    {
        return static_cast<unsigned>(words.size());
    }

  private:
    static constexpr unsigned kCycleBits = 48;
    static constexpr uint64_t kNeverBits = (uint64_t(1) << kCycleBits) - 1;
    static constexpr uint64_t kShelfBit = uint64_t(1) << kCycleBits;
    static constexpr unsigned kEpochShift = kCycleBits + 1;
    static constexpr uint16_t kEpochLimit = uint16_t(1) << (64 - kEpochShift);

    void checkTag(Tag t) const
    {
        panic_if(t < 0 || static_cast<size_t>(t) >= words.size(),
                 "scoreboard tag %d out of range", t);
    }

    /** Payload of @p t, or the reset state if the stamp is stale. */
    uint64_t load(Tag t) const
    {
        uint64_t w = words[t];
        return (w >> kEpochShift) == epoch
            ? w & (kShelfBit | kNeverBits) : 0;
    }

    void store(Tag t, uint64_t payload)
    {
        words[t] = (uint64_t(epoch) << kEpochShift) | payload;
    }

    uint16_t epoch = 0;
    std::vector<uint64_t> words;
};

} // namespace shelf

#endif // SHELFSIM_CORE_SCOREBOARD_HH
