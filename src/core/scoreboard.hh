/**
 * @file
 * Register readiness scoreboard over the *extended* tag space
 * (physical tags plus the shelf's extension tags).
 *
 * Readiness is stored as the cycle at which the value becomes
 * available to consumers (issue-time bypass included), which lets the
 * IQ's polling-based wakeup model behave identically to a broadcast
 * CAM: a consumer may issue at cycle c iff readyAt(tag) <= c.
 */

#ifndef SHELFSIM_CORE_SCOREBOARD_HH
#define SHELFSIM_CORE_SCOREBOARD_HH

#include <vector>

#include "core/types.hh"

namespace shelf
{

class Scoreboard
{
  public:
    explicit Scoreboard(unsigned num_tags = 0);

    void resize(unsigned num_tags);

    /** Mark a newly allocated destination tag as pending. */
    void markPending(Tag t);

    /** The producer's result becomes consumable at @p cycle. */
    void setReadyAt(Tag t, Cycle cycle);

    /** Is the value ready for a consumer issuing at @p now? */
    bool ready(Tag t, Cycle now) const;

    /** When the value becomes ready (kCycleNever while unknown). */
    Cycle readyAt(Tag t) const;

    /** Squash recovery: a pending tag's producer was squashed. */
    void clearPending(Tag t);

    /** All-ready initial state. */
    void reset();

    unsigned numTags() const
    {
        return static_cast<unsigned>(readyCycle.size());
    }

  private:
    std::vector<Cycle> readyCycle;
};

} // namespace shelf

#endif // SHELFSIM_CORE_SCOREBOARD_HH
