#include "core/fu_pool.hh"

#include "base/logging.hh"

namespace shelf
{

FUPool::FUPool(const CoreParams &params)
{
    unitCount[IntAlu] = params.intAluUnits;
    unitCount[IntMult] = params.intMultUnits;
    unitCount[Fp] = params.fpUnits;
    unitCount[Mem] = params.memPorts;
    intDivBusy.assign(params.intMultUnits, 0);
    fpDivBusy.assign(params.fpUnits, 0);
}

FUPool::Group
FUPool::groupOf(OpClass op)
{
    switch (op) {
      case OpClass::Nop:
      case OpClass::IntAlu:
      case OpClass::Branch:
        return IntAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return IntMult;
      case OpClass::FloatAdd:
      case OpClass::FloatMult:
      case OpClass::FloatDiv:
        return Fp;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return Mem;
      default:
        panic("bad op class %d", static_cast<int>(op));
    }
}

bool
FUPool::unpipelined(OpClass op)
{
    return op == OpClass::IntDiv || op == OpClass::FloatDiv;
}

void
FUPool::beginCycle()
{
    for (auto &u : usedThisCycle)
        u = 0;
}

bool
FUPool::canIssue(OpClass op, Cycle now) const
{
    Group g = groupOf(op);
    if (usedThisCycle[g] >= unitCount[g])
        return false;
    if (unpipelined(op)) {
        const auto &busy =
            (op == OpClass::IntDiv) ? intDivBusy : fpDivBusy;
        for (Cycle b : busy)
            if (b <= now)
                return true;
        return false;
    }
    return true;
}

void
FUPool::issue(OpClass op, Cycle now, unsigned latency)
{
    Group g = groupOf(op);
    panic_if(usedThisCycle[g] >= unitCount[g],
             "FU issue past port limit");
    ++usedThisCycle[g];
    if (unpipelined(op)) {
        auto &busy = (op == OpClass::IntDiv) ? intDivBusy : fpDivBusy;
        for (Cycle &b : busy) {
            if (b <= now) {
                b = now + latency;
                return;
            }
        }
        panic("unpipelined FU issue without a free unit");
    }
}

} // namespace shelf
