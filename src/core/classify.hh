/**
 * @file
 * In-sequence / reordered classification (paper sections I-II).
 *
 * An instruction is *in-sequence* if, at the moment it issues to the
 * functional units, every elder instruction of its thread has already
 * issued (it would not have stalled an in-order core's issue stage);
 * otherwise it is *reordered*. The classifier also builds the
 * weighted series-length distributions of Figure 2: runs of
 * consecutive same-class instructions in program order, weighted by
 * their length.
 */

#ifndef SHELFSIM_CORE_CLASSIFY_HH
#define SHELFSIM_CORE_CLASSIFY_HH

#include <vector>

#include "base/stats.hh"
#include "core/dyn_inst.hh"

namespace shelf
{

class Classifier
{
  public:
    explicit Classifier(unsigned threads, size_t max_series = 512);

    /** Record a retiring (non-squashed) instruction in program
     * order. The inst must carry its issue-time classification. */
    void recordRetire(const DynInst &inst);

    /** Flush open series into the histograms (end of measurement). */
    void finalize();

    /** Reset all statistics (e.g. after warmup). */
    void reset();

    uint64_t retired(ThreadID tid) const { return counts[tid].total; }
    uint64_t inSequence(ThreadID tid) const
    {
        return counts[tid].inSeq;
    }

    uint64_t totalRetired() const;
    uint64_t totalInSequence() const;

    /** Fraction of retired instructions that issued in-sequence. */
    double inSequenceFraction() const;
    double inSequenceFraction(ThreadID tid) const;

    /** Series-length distributions, weighted by series length. */
    const stats::Histogram &inSeqSeries() const { return inSeqHist; }
    const stats::Histogram &reorderedSeries() const
    {
        return reorderedHist;
    }

  private:
    struct PerThread
    {
        uint64_t total = 0;
        uint64_t inSeq = 0;
        bool haveOpen = false;
        bool openClassInSeq = false;
        uint64_t openLen = 0;
    };

    void closeSeries(PerThread &t);

    std::vector<PerThread> counts;
    stats::Histogram inSeqHist;
    stats::Histogram reorderedHist;
};

} // namespace shelf

#endif // SHELFSIM_CORE_CLASSIFY_HH
