#include "core/dyn_inst.hh"

#include "base/strutil.hh"

namespace shelf
{

std::string
DynInst::toString() const
{
    return csprintf("[t%d #%llu %s %s%s%s%s]", tid,
                    (unsigned long long)seq, si.toString().c_str(),
                    toShelf ? "shelf" : "iq",
                    issued ? " issued" : "",
                    completed ? " done" : "",
                    squashed ? " squashed" : "");
}

} // namespace shelf
