#include "core/dyn_inst.hh"

#include <new>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

static_assert(std::is_trivially_destructible_v<DynInst>,
              "DynInst slab recycling relies on trivial destruction");

std::string
DynInst::toString() const
{
    return csprintf("[t%d #%llu %s %s%s%s%s]", tid,
                    (unsigned long long)seq, si.toString().c_str(),
                    toShelf ? "shelf" : "iq",
                    issued ? " issued" : "",
                    completed ? " done" : "",
                    squashed ? " squashed" : "");
}

void
dynInstFree(DynInst *inst)
{
    if (inst->pool)
        inst->pool->release(inst);
    else
        delete inst;
}

DynInstPtr
makeDynInst()
{
    return DynInstPtr(new DynInst());
}

DynInstPool::DynInstPool(size_t slab_insts)
    : slabInsts(slab_insts ? slab_insts : 1)
{}

DynInstPool::~DynInstPool()
{
    // A handle outliving its pool would be a use-after-free the
    // moment the slabs go away; fail loudly instead (see DESIGN.md
    // §11 for who may hold handles for how long).
    panic_if(liveCount != 0,
             "DynInstPool destroyed with %zu live instructions",
             liveCount);
}

void
DynInstPool::newSlab()
{
    slabs.push_back(std::make_unique<std::byte[]>(
        slabInsts * sizeof(DynInst)));
    bump = slabs.back().get();
    bumpEnd = bump + slabInsts * sizeof(DynInst);
}

DynInstPtr
DynInstPool::alloc()
{
    void *slot;
    if (freeList) {
        slot = freeList;
        freeList = freeList->next;
    } else {
        if (bump == bumpEnd)
            newSlab();
        slot = bump;
        bump += sizeof(DynInst);
    }
    DynInst *inst = new (slot) DynInst();
    inst->pool = this;
    ++liveCount;
    return DynInstPtr(inst);
}

void
DynInstPool::release(DynInst *inst)
{
    // DynInst is trivially destructible; reuse the storage as the
    // free-list node.
    auto *node = new (static_cast<void *>(inst)) FreeNode{ freeList };
    freeList = node;
    --liveCount;
}

} // namespace shelf
