#include "core/shelf.hh"

#include "base/logging.hh"

namespace shelf
{

Shelf::Shelf(unsigned threads, unsigned entries_per_thread,
             bool release_at_writeback)
    : perThread(entries_per_thread),
      releaseAtWriteback(release_at_writeback), parts(threads)
{
    for (auto &p : parts) {
        p.queue.resize(entries_per_thread ? entries_per_thread : 1);
        p.ringSize = 2 * (entries_per_thread ? entries_per_thread : 1);
        p.retireBits.assign((p.ringSize + 63) / 64, 0);
    }
}

bool
Shelf::canDispatch(ThreadID tid) const
{
    if (!enabled())
        return false;
    const Partition &p = part(tid);
    if (p.queue.full())
        return false;
    if (releaseAtWriteback) {
        // The entry itself is held until retirement, so capacity is
        // bounded by unretired instructions; no index-space doubling
        // is needed (index and entry lifetimes coincide).
        return (p.queue.tailIndex() - p.retirePtr) <
            static_cast<VIdx>(perThread);
    }
    // Doubled virtual index space: an index may not be reallocated
    // until the retire pointer has released it.
    return (p.queue.tailIndex() - p.retirePtr) <
        static_cast<VIdx>(2 * perThread);
}

VIdx
Shelf::dispatch(ThreadID tid, const DynInstPtr &inst)
{
    panic_if(!canDispatch(tid), "shelf dispatch without capacity");
    return part(tid).queue.push(inst);
}

DynInstPtr
Shelf::head(ThreadID tid) const
{
    const Partition &p = part(tid);
    return p.queue.empty() ? nullptr : p.queue.front();
}

void
Shelf::issueHead(ThreadID tid)
{
    Partition &p = part(tid);
    panic_if(p.queue.empty(), "shelf issue from empty queue");
    p.queue.popFront();
}

void
Shelf::advanceRetirePtr(Partition &p)
{
    while (p.test(p.retirePtr)) {
        p.clear(p.retirePtr);
        ++p.retirePtr;
    }
}

void
Shelf::markRetired(ThreadID tid, VIdx shelf_idx)
{
    Partition &p = part(tid);
    panic_if(shelf_idx < p.retirePtr,
             "double retirement of shelf index");
    panic_if(shelf_idx >= p.queue.headIndex(),
             "retirement of unissued shelf index");
    p.set(shelf_idx);
    advanceRetirePtr(p);
}

std::vector<VIdx>
Shelf::retiredOutOfOrderIndices(ThreadID tid) const
{
    const Partition &p = part(tid);
    std::vector<VIdx> out;
    // Map each set bit back to the unique index in
    // (retirePtr, retirePtr + ringSize] congruent to it mod the ring.
    VIdx base = p.retirePtr + 1;
    for (VIdx b = 0; b < p.ringSize; ++b) {
        if (!p.test(b))
            continue;
        VIdx idx = base + (b + p.ringSize - base % p.ringSize)
            % p.ringSize;
        out.push_back(idx);
    }
    std::sort(out.begin(), out.end());
    return out;
}

DynInstPtr
Shelf::squashTail(ThreadID tid, VIdx from_idx)
{
    Partition &p = part(tid);
    if (p.queue.empty() || p.queue.tailIndex() <= from_idx ||
        p.queue.tailIndex() - 1 < p.queue.headIndex()) {
        return nullptr;
    }
    DynInstPtr popped = p.queue.back();
    p.queue.popBack();
    return popped;
}

std::vector<DynInstPtr>
Shelf::squashFrom(ThreadID tid, VIdx from_idx)
{
    std::vector<DynInstPtr> squashed;
    while (DynInstPtr popped = squashTail(tid, from_idx))
        squashed.push_back(std::move(popped));
    return squashed;
}

} // namespace shelf
