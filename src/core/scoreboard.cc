#include "core/scoreboard.hh"

#include <algorithm>

#include "base/logging.hh"

namespace shelf
{

Scoreboard::Scoreboard(unsigned num_tags)
    : readyCycle(num_tags, 0)
{}

void
Scoreboard::resize(unsigned num_tags)
{
    readyCycle.assign(num_tags, 0);
}

void
Scoreboard::markPending(Tag t)
{
    panic_if(t < 0 || static_cast<size_t>(t) >= readyCycle.size(),
             "scoreboard tag %d out of range", t);
    readyCycle[t] = kCycleNever;
}

void
Scoreboard::setReadyAt(Tag t, Cycle cycle)
{
    panic_if(t < 0 || static_cast<size_t>(t) >= readyCycle.size(),
             "scoreboard tag %d out of range", t);
    readyCycle[t] = cycle;
}

bool
Scoreboard::ready(Tag t, Cycle now) const
{
    if (t == kNoTag)
        return true;
    panic_if(t < 0 || static_cast<size_t>(t) >= readyCycle.size(),
             "scoreboard tag %d out of range", t);
    return readyCycle[t] <= now;
}

Cycle
Scoreboard::readyAt(Tag t) const
{
    if (t == kNoTag)
        return 0;
    panic_if(t < 0 || static_cast<size_t>(t) >= readyCycle.size(),
             "scoreboard tag %d out of range", t);
    return readyCycle[t];
}

void
Scoreboard::clearPending(Tag t)
{
    if (t == kNoTag)
        return;
    readyCycle[t] = 0;
}

void
Scoreboard::reset()
{
    std::fill(readyCycle.begin(), readyCycle.end(), 0);
}

} // namespace shelf
