#include "core/scoreboard.hh"

// The scoreboard is a packed, header-inline structure; this
// translation unit only anchors the header's out-of-line needs.
