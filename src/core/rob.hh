/**
 * @file
 * Per-thread reorder buffer partition, including the paper's
 * issue-tracking bitvector (Figure 4): one bit per ROB entry recording
 * whether the corresponding IQ instruction has issued, plus a head
 * pointer tracking the oldest unissued IQ instruction. A shelf
 * instruction becomes in-order eligible once this head pointer reaches
 * the ROB tail value captured at its dispatch.
 *
 * Only IQ-steered instructions occupy ROB entries; shelf instructions
 * skip the ROB entirely (that is the point of the design).
 */

#ifndef SHELFSIM_CORE_ROB_HH
#define SHELFSIM_CORE_ROB_HH

#include <vector>

#include "base/circular_queue.hh"
#include "core/dyn_inst.hh"
#include "core/types.hh"

namespace shelf
{

namespace validate
{
class InvariantChecker;
} // namespace validate

class ROB
{
  public:
    ROB(unsigned threads, unsigned entries_per_thread);

    bool full(ThreadID tid) const { return part(tid).queue.full(); }
    bool empty(ThreadID tid) const { return part(tid).queue.empty(); }
    size_t size(ThreadID tid) const { return part(tid).queue.size(); }
    size_t capacity() const { return parts[0].queue.capacity(); }

    /** Virtual index the next dispatch will receive. */
    VIdx tailIndex(ThreadID tid) const
    {
        return part(tid).queue.tailIndex();
    }

    /** Insert at dispatch; returns the instruction's ROB index. */
    VIdx dispatch(ThreadID tid, const DynInstPtr &inst);

    /** Mark issued in the issue-tracking bitvector and advance the
     * issue head past any contiguous issued prefix. */
    void markIssued(ThreadID tid, VIdx rob_idx);

    /**
     * Oldest unissued IQ instruction (the issue-tracking head
     * pointer). Equals tailIndex() when everything has issued.
     */
    VIdx issueHead(ThreadID tid) const { return part(tid).issueHead; }

    /**
     * The issue head as visible to shelf-eligibility logic under the
     * conservative assumption: last cycle's value (bitvector updates
     * are not bypassed into wakeup-select; paper section III-A).
     */
    VIdx issueHeadSnapshot(ThreadID tid) const
    {
        return part(tid).issueHeadSnapshot;
    }

    /** Latch the per-cycle snapshot; call once at the top of a cycle. */
    void beginCycle();

    /** Oldest instruction (retire candidate); null if empty. */
    DynInstPtr head(ThreadID tid) const;

    /** Retire the head. */
    void retireHead(ThreadID tid);

    /** Squash: remove the youngest entry (walk-back). */
    DynInstPtr squashTail(ThreadID tid);

    DynInstPtr at(ThreadID tid, VIdx idx) const
    {
        return part(tid).queue.at(idx);
    }

    unsigned threads() const
    {
        return static_cast<unsigned>(parts.size());
    }

  private:
    /** Fault-injection tests corrupt the issue-tracking state. */
    friend class validate::InvariantChecker;

    struct Partition
    {
        CircularQueue<DynInstPtr> queue;
        VIdx issueHead = 0;
        VIdx issueHeadSnapshot = 0;
    };

    Partition &part(ThreadID tid) { return parts[tid]; }
    const Partition &part(ThreadID tid) const { return parts[tid]; }

    void advanceIssueHead(Partition &p);

    std::vector<Partition> parts;
};

} // namespace shelf

#endif // SHELFSIM_CORE_ROB_HH
