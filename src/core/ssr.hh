/**
 * @file
 * Speculation shift registers (paper section III-B, Figure 5).
 *
 * The registers are modelled as countdown values (the hardware
 * right-shifts a bitvector each cycle; the countdown of the highest
 * set bit is equivalent). Three designs the paper discusses are
 * implemented, selectable per core:
 *
 *  - Single: one shared SSR per thread. All issuing speculative
 *    instructions (elder or younger) merge their resolution delay
 *    into it; the paper identifies the starvation pathology where
 *    younger reordered instructions keep pushing the value up and
 *    indefinitely delay an eldest shelf instruction.
 *  - Two (the paper's design): an IQ SSR and a shelf SSR. IQ issues
 *    update only the IQ SSR; the shelf SSR is loaded from the IQ SSR
 *    when the first shelf instruction of a run becomes in-order
 *    eligible, after which younger IQ issues cannot stall the shelf.
 *  - PerRun (the paper's rejected precise design): one SSR per
 *    in-flight run; a shelf instruction waits only on the maximum
 *    over its own and elder runs, never on younger runs.
 *
 * In every design a shelf instruction may issue only when its
 * minimum execution delay covers the governing SSR value, so that by
 * writeback (when it destroys the previous value of its destination
 * register) no elder speculation can still require recovery.
 */

#ifndef SHELFSIM_CORE_SSR_HH
#define SHELFSIM_CORE_SSR_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/types.hh"

namespace shelf
{

enum class SsrDesign
{
    Single, ///< one shared register (starvation-prone)
    Two,    ///< IQ + shelf registers (the paper's design)
    PerRun, ///< precise per-run registers (the costly alternative)
};

const char *ssrDesignName(SsrDesign design);

class SpecShiftRegisters
{
  public:
    explicit SpecShiftRegisters(unsigned threads,
                                SsrDesign design = SsrDesign::Two);

    SsrDesign design() const { return ssrDesign; }

    /** Shift all registers of every thread (once per cycle). */
    void tick();

    /** An IQ instruction of run @p run issued with @p resolve_delay
     * cycles of speculation left (0 for non-speculative ones). */
    void iqIssue(ThreadID tid, unsigned resolve_delay, uint64_t run);

    /** The first shelf instruction of a run became in-order
     * eligible: Two-design copies IQ SSR -> shelf SSR; the other
     * designs need no action. */
    void loadShelfFromIq(ThreadID tid, uint64_t run);

    /** May a shelf instruction of run @p run with execution latency
     * @p exec_latency issue now? */
    bool shelfMayIssue(ThreadID tid, unsigned exec_latency,
                       uint64_t run) const;

    /** A speculative *shelf* instruction issued: it protects younger
     * shelf instructions (in-order result-shift-register setting of
     * Smith & Pleszkun). */
    void shelfIssueSpec(ThreadID tid, unsigned resolve_delay,
                        uint64_t run);

    /** Governing value a shelf instruction of @p run compares
     * against (for tests and statistics). */
    unsigned shelfValue(ThreadID tid, uint64_t run = ~0ULL) const;

    /** IQ-side value (Two design) / shared value (Single design). */
    unsigned iqValue(ThreadID tid) const;

    /** Number of live per-run registers (PerRun cost proxy). */
    size_t liveRuns(ThreadID tid) const;

    /** Squash: speculation state of the thread collapses. */
    void clear(ThreadID tid);

  private:
    struct PerThread
    {
        unsigned iqSsr = 0;
        unsigned shelfSsr = 0;
        /** PerRun design: run id -> countdown. */
        std::map<uint64_t, unsigned> runSsr;
    };

    SsrDesign ssrDesign;
    std::vector<PerThread> state;
};

} // namespace shelf

#endif // SHELFSIM_CORE_SSR_HH
