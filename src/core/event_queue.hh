/**
 * @file
 * Calendar (ring-of-buckets) event queue for the core's cycle loop.
 *
 * The core schedules every event at most a bounded number of cycles
 * into the future (the worst case is a full memory round trip plus
 * the longest functional-unit latency), and drains exactly one cycle
 * per tick. That access pattern makes a std::map<Cycle, ...> — one
 * red-black-tree node allocation and rebalance per schedule — pure
 * overhead: a power-of-two ring of per-cycle buckets gives O(1)
 * schedule and drain with no allocation in the steady state (bucket
 * vectors keep their capacity across laps of the ring).
 *
 * Contract: drain() must be called with strictly increasing cycles
 * and for *every* cycle (the core ticks one cycle at a time), so a
 * bucket is always emptied before the ring wraps back onto it.
 * Events scheduled beyond the ring's horizon — possible only with
 * external traces carrying latencies larger than any modelled
 * hardware path — spill into an ordered overflow map, preserving
 * correctness at std::map speed for that (cold) fringe.
 */

#ifndef SHELFSIM_CORE_EVENT_QUEUE_HH
#define SHELFSIM_CORE_EVENT_QUEUE_HH

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "isa/arch.hh"

namespace shelf
{

template <typename EventT>
class CalendarQueue
{
  public:
    /**
     * @param horizon the maximum distance (in cycles) an event may
     *        be scheduled into the future and still take the fast
     *        path; rounded up to a power of two internally.
     */
    explicit CalendarQueue(Cycle horizon)
    {
        size_t n = 1;
        while (n < horizon + 1)
            n <<= 1;
        buckets.resize(n);
        mask = n - 1;
    }

    /** Number of ring buckets (>= the requested horizon). */
    size_t horizon() const { return buckets.size(); }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /**
     * Schedule @p ev at cycle @p when. @p when must be in the future
     * relative to the last drained cycle; within one bucket of a
     * cycle, events keep insertion (FIFO) order.
     */
    void
    schedule(Cycle when, EventT ev)
    {
        panic_if(when <= cursor, "event scheduled in the past");
        ++count;
        if (when - cursor > mask) {
            overflow.emplace(when, std::move(ev));
            return;
        }
        buckets[when & mask].push_back(std::move(ev));
    }

    /**
     * Append every event scheduled for cycle @p now to @p out
     * (insertion order) and advance the drain cursor. Must be called
     * once per cycle, in increasing cycle order.
     */
    void
    drain(Cycle now, std::vector<EventT> &out)
    {
        panic_if(now != cursor + 1,
                 "calendar queue drained out of order");
        cursor = now;
        auto &bucket = buckets[now & mask];
        for (auto &ev : bucket)
            out.push_back(std::move(ev));
        count -= bucket.size();
        bucket.clear(); // keeps capacity: no steady-state allocation
        while (!overflow.empty() && overflow.begin()->first == now) {
            out.push_back(std::move(overflow.begin()->second));
            overflow.erase(overflow.begin());
            --count;
        }
    }

    /**
     * Events already scheduled for cycle @p when, without draining.
     * Valid for undrained cycles within the ring window (beyond it a
     * bucket is ambiguous across laps). Used by the core's
     * quiescent-cycle skipper to prove cycles inert before skipping
     * them.
     */
    const std::vector<EventT> &
    peekAt(Cycle when) const
    {
        panic_if(when <= cursor || when - cursor > mask,
                 "calendar queue peeked outside the ring window");
        return buckets[when & mask];
    }

    /** Any overflow-map event due at or before @p when? (The skipper
     * treats the cold overflow fringe as never skippable.) */
    bool
    overflowDueBy(Cycle when) const
    {
        return !overflow.empty() && overflow.begin()->first <= when;
    }

    /** Ring-window length: how far past the drain cursor peekAt()
     * and skipTo() may reach. */
    Cycle window() const { return mask; }

    /**
     * Fast-forward the drain cursor to @p to — equivalent to
     * draining every cycle in (drainedThrough(), to] — appending
     * the collected events to @p out in cycle order. The caller has
     * already proven every such event inert; no overflow event may
     * be due in the range.
     */
    void
    skipTo(Cycle to, std::vector<EventT> &out)
    {
        panic_if(to <= cursor || to - cursor > mask,
                 "calendar queue skipped outside the ring window");
        panic_if(!overflow.empty() && overflow.begin()->first <= to,
                 "calendar queue skipped over an overflow event");
        for (Cycle c = cursor + 1; count > 0 && c <= to; ++c) {
            auto &bucket = buckets[c & mask];
            for (auto &ev : bucket)
                out.push_back(std::move(ev));
            count -= bucket.size();
            bucket.clear();
        }
        cursor = to;
    }

    /** Last cycle handed to drain(). */
    Cycle drainedThrough() const { return cursor; }

  private:
    std::vector<std::vector<EventT>> buckets;
    /** Events beyond the ring horizon (rare; see file comment). */
    std::multimap<Cycle, EventT> overflow;
    size_t mask = 0;
    size_t count = 0;
    Cycle cursor = 0;
};

} // namespace shelf

#endif // SHELFSIM_CORE_EVENT_QUEUE_HH
