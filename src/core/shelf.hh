/**
 * @file
 * The per-thread FIFO shelf (paper sections II-III).
 *
 * A circular buffer of in-sequence instructions between dispatch and
 * issue. Key properties modelled from the paper:
 *
 *  - Entries are recycled as soon as the instruction *issues*, but
 *    the instruction's shelf *index* (a virtual resource spanning
 *    twice the entry count in hardware) is reserved until it retires
 *    or its squash filter drains, because the ROB references shelf
 *    indices for squash and retirement coordination (section III-B,
 *    "Shelf Retirement and Squashing" / "ROB Retirement").
 *  - A shelf retire bitvector with a retire pointer tracks the eldest
 *    unretired shelf index; ROB retirement may not pass it.
 *
 * With the simulator's monotonically increasing virtual indices the
 * hardware's doubled index space becomes the allocation constraint
 *   tail - retirePointer < 2 * entries.
 */

#ifndef SHELFSIM_CORE_SHELF_HH
#define SHELFSIM_CORE_SHELF_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/circular_queue.hh"
#include "core/dyn_inst.hh"
#include "core/types.hh"

namespace shelf
{

namespace validate
{
class InvariantChecker;
} // namespace validate

class Shelf
{
  public:
    /**
     * @param release_at_writeback keep an entry allocated until the
     *        instruction retires instead of recycling it at issue
     *        (the paper's rejected simple scheme; it needs no
     *        doubled index space but wastes capacity)
     */
    Shelf(unsigned threads, unsigned entries_per_thread,
          bool release_at_writeback = false);

    bool enabled() const { return perThread > 0; }
    unsigned entriesPerThread() const { return perThread; }

    /** Can this thread accept a new shelf instruction? Checks both
     * entry capacity and the doubled virtual index space. */
    bool canDispatch(ThreadID tid) const;

    /** Occupied entries (dispatched, unissued). */
    size_t size(ThreadID tid) const { return part(tid).queue.size(); }

    /** Virtual index the next dispatch will get (== the shelf squash
     * index to record in concurrently dispatched IQ instructions). */
    VIdx tailIndex(ThreadID tid) const
    {
        return part(tid).queue.tailIndex();
    }

    /** Eldest unretired shelf index (the shelf retire pointer). */
    VIdx retirePointer(ThreadID tid) const
    {
        return part(tid).retirePtr;
    }

    /** Insert at dispatch; returns the assigned shelf index. */
    VIdx dispatch(ThreadID tid, const DynInstPtr &inst);

    /** Head instruction (next to issue); null if empty. */
    DynInstPtr head(ThreadID tid) const;

    /** Issue the head: the entry is recycled immediately, but the
     * index stays reserved until markRetired(). */
    void issueHead(ThreadID tid);

    /**
     * A shelf instruction wrote back (and retired, shelf retirement
     * is at writeback) or was squash-filtered: release its index and
     * advance the retire pointer over contiguous retired indices.
     */
    void markRetired(ThreadID tid, VIdx shelf_idx);

    /** Squash: pop the youngest unissued instruction if its index is
     * >= @p from_idx; null when none qualifies. The core's squash
     * walk pops one instruction at a time, interleaved with its own
     * per-instruction rollback, so no temporary vector is needed. */
    DynInstPtr squashTail(ThreadID tid, VIdx from_idx);

    /** Squash: pop unissued instructions with index >= @p from_idx
     * (youngest first); returns them for rename walk-back. */
    std::vector<DynInstPtr> squashFrom(ThreadID tid, VIdx from_idx);

    /**
     * Snapshot of the retire bitvector for diagnostics and the
     * invariant checker: the indices past the retire pointer already
     * marked retired, sorted. Reconstructed from the ring bitvector
     * by mapping each set bit to the unique index in
     * (retirePtr, retirePtr + ringSize] congruent to it.
     */
    std::vector<VIdx> retiredOutOfOrderIndices(ThreadID tid) const;

  private:
    /** Fault-injection tests corrupt the retire bitvector state. */
    friend class validate::InvariantChecker;

    struct Partition
    {
        CircularQueue<DynInstPtr> queue;
        /**
         * The retire bitvector: a ring of 2 * entries bits keyed by
         * virtual shelf index modulo the ring size. The doubled
         * index space guarantees tail - retirePtr < ringSize, so the
         * modulo mapping is injective over live indices and no
         * hashing is needed on the squash/retire path.
         */
        std::vector<uint64_t> retireBits;
        VIdx ringSize = 1;
        VIdx retirePtr = 0;

        bool test(VIdx idx) const
        {
            size_t b = static_cast<size_t>(idx % ringSize);
            return (retireBits[b >> 6] >> (b & 63)) & 1;
        }
        void set(VIdx idx)
        {
            size_t b = static_cast<size_t>(idx % ringSize);
            retireBits[b >> 6] |= uint64_t(1) << (b & 63);
        }
        void clear(VIdx idx)
        {
            size_t b = static_cast<size_t>(idx % ringSize);
            retireBits[b >> 6] &= ~(uint64_t(1) << (b & 63));
        }
    };

    Partition &part(ThreadID tid) { return parts[tid]; }
    const Partition &part(ThreadID tid) const { return parts[tid]; }

    void advanceRetirePtr(Partition &p);

    unsigned perThread;
    bool releaseAtWriteback;
    std::vector<Partition> parts;
};

} // namespace shelf

#endif // SHELFSIM_CORE_SHELF_HH
