#include "energy/energy_model.hh"

#include <cmath>

#include "base/bitutil.hh"

namespace shelf
{

namespace
{

// Area coefficients (arbitrary consistent "area units"; see header).
constexpr double kFixedCoreArea = 14.0; ///< FUs, frontend, bypass, misc
constexpr double kRobAreaPerEntry = 0.005;
constexpr double kIqAreaPerEntry = 0.012;   // CAM-heavy
constexpr double kLsqAreaPerEntry = 0.009;  // CAM-heavy
constexpr double kPrfAreaPerReg = 0.0022;
constexpr double kSchedAreaPerIqEntry = 0.004;
constexpr double kShelfAreaPerEntry = 0.0015; // plain RAM FIFO
constexpr double kL1AreaPerKB = 0.117; // 64KB of L1 ~= 7.5 units

// Dynamic energy coefficients (pJ).
constexpr double kFetchPJ = 10.0;
constexpr double kDecodePJ = 2.0;
constexpr double kRenamePJ = 4.0;
constexpr double kIqWritePJ = 0.20;    // per entry of capacity
constexpr double kWakeupComparePJ = 0.10; // per entry-compare
constexpr double kIqIssuePJ = 0.12;    // select tree, per entry
constexpr double kShelfOpPJ = 2.0;     // FIFO push/pop
constexpr double kRobOpPJ = 0.05;      // per entry of capacity
constexpr double kPrfOpPJ = 0.10;      // per sqrt(regs)
constexpr double kLsqWritePJ = 3.0;
constexpr double kLsqSearchPJ = 0.15;  // per searched entry
constexpr double kFuOpPJ = 12.0;
constexpr double kSsrPJ = 0.5;
constexpr double kSteerPJ = 1.5;
constexpr double kSquashPJ = 3.0;
constexpr double kL1AccessPJ = 25.0;

// Leakage power per area unit (W), charged over measured time.
// Calibrated so the leakage:dynamic split (~2:1 at 4-thread mix
// IPCs) reproduces the paper's Figure 13 EDP relationships between
// Base64, Base128 and the shelf designs.
constexpr double kLeakWPerArea = 0.009;

} // namespace

EnergyModel::EnergyModel(const CoreParams &core_,
                         const HierarchyParams &mem_)
    : core(core_), mem(mem_)
{}

double
EnergyModel::ratArea() const
{
    // Physical RAT: threads x archregs entries of log2(phys) bits;
    // the extension RAT adds log2(tags) bits per entry plus the
    // extension free list.
    double bits_per_entry = log2Ceil(core.numPhysRegs());
    if (core.hasShelf())
        bits_per_entry += log2Ceil(core.numTags());
    double entries = core.threads * kNumArchRegs;
    return 0.00004 * entries * bits_per_entry;
}

double
EnergyModel::shelfExtrasArea() const
{
    if (!core.hasShelf())
        return 0.0;
    double area = 0.0;
    // Shelf scheduling/select logic.
    area += 0.0019 * core.shelfEntries;
    // Extension free list.
    area += 0.00002 * core.numExtTags() * log2Ceil(core.numTags());
    // Issue-tracking bitvectors: one bit per ROB entry.
    area += 0.0002 * core.robEntries;
    // SSRs: two small countdown registers per thread.
    area += 0.004 * core.threads;
    // Steering: RCT (rctBits per arch reg per thread) + PLT
    // (columns x archregs bits per thread) + prediction adders.
    if (core.steering == SteerPolicyKind::Practical ||
        core.steering == SteerPolicyKind::Oracle) {
        area += 0.0004 * core.threads * kNumArchRegs * core.rctBits /
            5.0;
        area += 0.0002 * core.threads * kNumArchRegs *
            core.pltColumns / 4.0;
        area += 0.01; // comparison/selection logic
    }
    return area;
}

std::vector<std::pair<std::string, double>>
EnergyModel::areaBreakdown() const
{
    std::vector<std::pair<std::string, double>> parts;
    parts.emplace_back("fixed(FUs+frontend)", kFixedCoreArea);
    parts.emplace_back("rob", kRobAreaPerEntry * core.robEntries);
    parts.emplace_back("iq", kIqAreaPerEntry * core.iqEntries);
    parts.emplace_back("lsq", kLsqAreaPerEntry *
                       (core.lqEntries + core.sqEntries));
    parts.emplace_back("prf", kPrfAreaPerReg * core.numPhysRegs());
    parts.emplace_back("sched", kSchedAreaPerIqEntry * core.iqEntries);
    parts.emplace_back("rat", ratArea());
    if (core.hasShelf()) {
        parts.emplace_back("shelf",
                           kShelfAreaPerEntry * core.shelfEntries);
        parts.emplace_back("shelf-extras", shelfExtrasArea());
    }
    return parts;
}

double
EnergyModel::coreArea(bool include_l1) const
{
    double area = 0.0;
    for (const auto &[name, a] : areaBreakdown())
        area += a;
    if (include_l1)
        area += kL1AreaPerKB * (mem.l1i.sizeKB + mem.l1d.sizeKB);
    return area;
}

EnergyReport
EnergyModel::evaluate(const EventCounts &ev, double l1i_accesses,
                      double l1d_accesses, Cycle cycles,
                      uint64_t instructions) const
{
    EnergyReport rep;
    double e = 0.0;

    double iq_entries = core.iqEntries;
    double rob_entries = core.robPerThread();
    double prf_scale = std::sqrt(static_cast<double>(
        core.numPhysRegs()));

    e += kFetchPJ * ev.fetchedInsts;
    e += kDecodePJ * ev.decodedInsts;
    e += kRenamePJ * ev.renameOps;
    e += kIqWritePJ * iq_entries * ev.iqWrites;
    e += kWakeupComparePJ * ev.iqWakeupCompares;
    e += kIqIssuePJ * iq_entries * ev.iqIssues;
    e += kShelfOpPJ * (ev.shelfWrites + ev.shelfIssues);
    e += kRobOpPJ * rob_entries * (ev.robWrites + ev.robRetires);
    e += kPrfOpPJ * prf_scale * (ev.prfReads + ev.prfWrites);
    e += kLsqWritePJ * (ev.lqWrites + ev.sqWrites);
    e += kLsqSearchPJ *
        (core.lqPerThread() + core.sqPerThread()) * ev.lsqSearches;
    e += kFuOpPJ * ev.fuOps;
    e += kSsrPJ * ev.ssrUpdates;
    if (core.steering == SteerPolicyKind::Practical ||
        core.steering == SteerPolicyKind::Oracle) {
        e += kSteerPJ * ev.steerEvals;
    }
    e += kSquashPJ * ev.squashedInsts;
    e += kL1AccessPJ * (l1i_accesses + l1d_accesses);

    rep.dynamicPJ = e;

    double seconds = static_cast<double>(cycles) /
        (EnergyModel::kClockGHz * 1e9);
    rep.leakagePJ = kLeakWPerArea * coreArea(true) * seconds * 1e12;
    rep.totalPJ = rep.dynamicPJ + rep.leakagePJ;

    if (instructions > 0) {
        rep.energyPerInstPJ = rep.totalPJ / instructions;
        rep.cyclesPerInst =
            static_cast<double>(cycles) / instructions;
        rep.edp = rep.energyPerInstPJ * rep.cyclesPerInst;
    }
    if (seconds > 0)
        rep.avgPowerW = rep.totalPJ * 1e-12 / seconds;
    return rep;
}

} // namespace shelf
