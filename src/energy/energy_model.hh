/**
 * @file
 * "McPAT-lite": an analytic structure-level energy and area model.
 *
 * The paper uses McPAT (with the Xi et al. corrections) to compare
 * *relative* power/area between configurations that differ only in
 * window-structure sizes. This model preserves exactly that: each
 * structure's area and per-access energy scale with its entry count,
 * entry width, and organization (RAM vs CAM), and leakage scales with
 * area. Absolute numbers are in arbitrary-but-consistent units
 * (picojoules / "area units"); every reported result is a ratio.
 *
 * Modelled structures: frontend (fetch/decode/predictor), rename
 * RAT + free lists (physical and extension), ROB, IQ (CAM), shelf
 * (RAM FIFO), LQ/SQ (CAM), PRF, scoreboard, functional units, SSRs,
 * steering (RCT + PLT), issue-tracking bitvectors, and L1 caches.
 */

#ifndef SHELFSIM_ENERGY_ENERGY_MODEL_HH
#define SHELFSIM_ENERGY_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "core/core.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"

namespace shelf
{

struct EnergyReport
{
    double dynamicPJ = 0;     ///< total dynamic energy (pJ)
    double leakagePJ = 0;     ///< total leakage energy (pJ)
    double totalPJ = 0;
    double energyPerInstPJ = 0;
    double cyclesPerInst = 0;
    /** Energy-delay product per instruction (pJ x cycles), the
     * quantity whose ratios Figure 13 reports. */
    double edp = 0;
    double avgPowerW = 0;     ///< at the 2GHz clock
};

class EnergyModel
{
  public:
    /** Modelled clock (GHz); exposed so multi-core aggregation can
     * recompute derived report fields from summed energies. */
    static constexpr double kClockGHz = 2.0;

    EnergyModel(const CoreParams &core, const HierarchyParams &mem);

    /** Core area excluding / including L1 caches (Table II). */
    double coreArea(bool include_l1) const;

    /** Per-structure area breakdown for documentation. */
    std::vector<std::pair<std::string, double>> areaBreakdown() const;

    /**
     * Energy/EDP for a measured interval.
     * @param ev microarchitectural event counts
     * @param l1i_accesses / l1d_accesses cache activity
     * @param cycles measured cycles
     * @param instructions retired instructions
     */
    EnergyReport evaluate(const EventCounts &ev, double l1i_accesses,
                          double l1d_accesses, Cycle cycles,
                          uint64_t instructions) const;

  private:
    CoreParams core;
    HierarchyParams mem;

    double ratArea() const;
    double shelfExtrasArea() const;
};

} // namespace shelf

#endif // SHELFSIM_ENERGY_ENERGY_MODEL_HH
