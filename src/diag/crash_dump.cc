#include "diag/crash_dump.hh"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/core.hh"

namespace shelf
{
namespace diag
{

namespace
{

thread_local const Core *tlsCore = nullptr;

std::string dumpDirectory;
std::string reproLine;

/** Monotonic suffix so repeated dumps in one process never collide. */
std::atomic<unsigned> dumpSeq{0};

/**
 * Set once the process-death path (panic hook or signal handler)
 * has written its dump; a panic's abort() re-enters via SIGABRT and
 * must not produce a second, half-duplicated artifact.
 */
std::atomic<bool> deathDumpDone{false};

void
panicDumpHook(const std::string &msg)
{
    if (deathDumpDone.exchange(true))
        return;
    writeCrashDump("panic: " + msg);
}

void
crashSignalHandler(int sig)
{
    // Whatever happens next, the default disposition must win: the
    // supervisor keys on the real termination signal.
    std::signal(sig, SIG_DFL);
    if (!deathDumpDone.exchange(true))
        writeCrashDump(csprintf("signal %d (%s)", sig,
                                strsignal(sig)));
    raise(sig);
}

} // namespace

const Core *
setCurrentCore(const Core *core)
{
    const Core *prev = tlsCore;
    tlsCore = core;
    return prev;
}

const Core *
currentCore()
{
    return tlsCore;
}

void
setDumpDir(const std::string &dir)
{
    dumpDirectory = dir;
}

const std::string &
dumpDir()
{
    return dumpDirectory;
}

void
setRepro(const std::string &repro)
{
    reproLine = repro;
}

const std::string &
repro()
{
    return reproLine;
}

std::string
buildCrashDump(const Core &core, const std::string &reason)
{
    JsonWriter w(JsonWriter::kFullPrecision);
    w.beginObject();
    w.field("shelfsim_dump", 1);
    w.field("reason", reason);
    if (!reproLine.empty())
        w.field("repro", reproLine);
    core.dumpState(w);
    w.endObject();
    return w.str();
}

std::string
writeCrashDump(const std::string &reason)
{
    const Core *core = tlsCore;
    if (dumpDirectory.empty() || !core)
        return "";

    std::string path = csprintf(
        "%s/shelfsim-dump-%d-%u.json", dumpDirectory.c_str(),
        static_cast<int>(getpid()), dumpSeq.fetch_add(1));

    std::string doc = buildCrashDump(*core, reason);

    FILE *f = fopen(path.c_str(), "w");
    if (!f) {
        fprintf(stderr, "diag: cannot write dump to %s\n",
                path.c_str());
        return "";
    }
    fwrite(doc.data(), 1, doc.size(), f);
    fputc('\n', f);
    fclose(f);

    // Line-anchored marker the supervisor scans out of the worker's
    // stderr tail to link the artifact from the quarantine record.
    fprintf(stderr, "SHELFSIM-DUMP %s\n", path.c_str());
    fflush(stderr);
    return path;
}

void
enableCrashDumps(const std::string &dir)
{
    setDumpDir(dir);
    setPanicHook(panicDumpHook);
}

void
installCrashSignalHandlers()
{
    for (int sig : { SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT })
        std::signal(sig, crashSignalHandler);
}

} // namespace diag
} // namespace shelf
