/**
 * @file
 * Pipeline flight recorder: a fixed-size ring buffer of the most
 * recent pipeline events on one core. Recording is a handful of POD
 * stores into preallocated storage, cheap enough to stay on by
 * default; the buffer is only ever read out on the crash/deadlock
 * path, where the last few hundred dispatch/issue/writeback/squash/
 * retire events are usually the difference between "watchdog
 * timeout" and an actual diagnosis of which structure wedged.
 */

#ifndef SHELFSIM_DIAG_FLIGHT_RECORDER_HH
#define SHELFSIM_DIAG_FLIGHT_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/arch.hh"

namespace shelf
{

class JsonWriter;

namespace diag
{

/** Pipeline lifecycle points captured by the recorder. */
enum class PipeEvent : uint8_t
{
    Dispatch,
    Issue,
    Writeback,
    Squash,
    Retire,
    /** A span of skipped quiescent cycles (seq = span length). */
    QuiesceSkip,
};

/** Stable lower-case name for dump output. */
const char *pipeEventName(PipeEvent ev);

class FlightRecorder
{
  public:
    /** One recorded event. Plain data; no per-record allocation. */
    struct Record
    {
        Cycle cycle;
        SeqNum seq;
        ThreadID tid;
        PipeEvent event;
        /** Steer target: true = shelf cluster, false = IQ. */
        bool shelf;
    };

    /** @p capacity 0 disables recording entirely. */
    explicit FlightRecorder(size_t capacity)
        : ring(capacity), cap(capacity)
    {
    }

    bool enabled() const { return cap != 0; }
    size_t capacity() const { return cap; }
    /** Number of events currently held (<= capacity). */
    size_t size() const { return count < cap ? count : cap; }
    /** Total events ever recorded (monotonic, survives wrap). */
    uint64_t recorded() const { return count; }

    /** Append one event, overwriting the oldest once full. */
    void
    record(Cycle cycle, PipeEvent ev, ThreadID tid, SeqNum seq,
           bool shelf)
    {
        if (!cap)
            return;
        Record &r = ring[next];
        r.cycle = cycle;
        r.seq = seq;
        r.tid = tid;
        r.event = ev;
        r.shelf = shelf;
        if (++next == cap)
            next = 0;
        ++count;
    }

    /** The held events, oldest first. */
    std::vector<Record> events() const;

    /**
     * Emit the held events (oldest first) as JSON objects into the
     * writer's currently-open array scope.
     */
    void dump(JsonWriter &w) const;

  private:
    std::vector<Record> ring;
    size_t cap;
    size_t next = 0;
    uint64_t count = 0;
};

} // namespace diag
} // namespace shelf

#endif // SHELFSIM_DIAG_FLIGHT_RECORDER_HH
