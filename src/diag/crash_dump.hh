/**
 * @file
 * Crash dumps: structured core-state snapshots emitted when a
 * simulation dies — from the forward-progress watchdog, from any
 * panic() (via the hook in base/logging), and best-effort from fatal
 * signals in sandboxed sweep workers.
 *
 * A per-thread registry tracks the core a simulation thread is
 * currently ticking (parallel in-process sweeps run one core per
 * worker thread, and synchronous signals are delivered on the
 * faulting thread, so thread-local is exactly the right scope). The
 * dump document bundles the per-thread blocking-structure verdicts,
 * the flight recorder, a full snapshot of every pipeline structure,
 * the validate invariant results, and the canonical repro line.
 *
 * Signal-safety caveat: writeCrashDump() allocates and does buffered
 * I/O, neither of which is async-signal-safe. The signal handlers
 * use it anyway — deliberately. They only run when the process is
 * already dead (handlers reset to SIG_DFL first and re-raise after),
 * so the worst case is that the dump itself crashes and we lose a
 * diagnostic we never had before; the common case (a deterministic
 * simulator bug in ordinary code) yields a full snapshot.
 */

#ifndef SHELFSIM_DIAG_CRASH_DUMP_HH
#define SHELFSIM_DIAG_CRASH_DUMP_HH

#include <string>

namespace shelf
{

class Core;

namespace diag
{

/**
 * Register @p core as the one this thread is simulating; returns
 * the previous registration so nested scopes can restore it.
 * Pass nullptr to deregister.
 */
const Core *setCurrentCore(const Core *core);

/** The core registered on this thread (nullptr if none). */
const Core *currentCore();

/** Directory dump files are written into ("" disables dumps). */
void setDumpDir(const std::string &dir);
const std::string &dumpDir();

/**
 * Canonical repro command line (`<binary> --worker '<spec>'`)
 * embedded in every dump so an artifact is self-describing.
 */
void setRepro(const std::string &repro);
const std::string &repro();

/**
 * Serialize a complete dump document for @p core into a string
 * (the JSON the dump file would contain). Exposed for tests.
 */
std::string buildCrashDump(const Core &core, const std::string &reason);

/**
 * Write a dump for this thread's registered core into dumpDir().
 * Returns the file path, or "" when disabled, no core is
 * registered, or the write failed. On success a
 * `SHELFSIM-DUMP <path>` marker line is printed to stderr so the
 * supervisor can link the artifact from the quarantine record.
 */
std::string writeCrashDump(const std::string &reason);

/**
 * Enable dump-on-panic: set the dump directory and register the
 * base/logging panic hook that writes a dump before abort().
 */
void enableCrashDumps(const std::string &dir);

/**
 * Install best-effort SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT
 * handlers that write a dump and re-raise. Worker-mode only; see
 * the signal-safety caveat above. At most one dump is written per
 * process death (a panic-path dump suppresses the SIGABRT one).
 */
void installCrashSignalHandlers();

} // namespace diag
} // namespace shelf

#endif // SHELFSIM_DIAG_CRASH_DUMP_HH
