#include "diag/flight_recorder.hh"

#include "base/json.hh"

namespace shelf
{
namespace diag
{

const char *
pipeEventName(PipeEvent ev)
{
    switch (ev) {
      case PipeEvent::Dispatch:
        return "dispatch";
      case PipeEvent::Issue:
        return "issue";
      case PipeEvent::Writeback:
        return "writeback";
      case PipeEvent::Squash:
        return "squash";
      case PipeEvent::Retire:
        return "retire";
      case PipeEvent::QuiesceSkip:
        return "quiesce-skip";
    }
    return "?";
}

std::vector<FlightRecorder::Record>
FlightRecorder::events() const
{
    std::vector<Record> out;
    size_t held = size();
    out.reserve(held);
    // When wrapped, `next` points at the oldest record.
    size_t start = count > cap ? next : 0;
    for (size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % cap]);
    return out;
}

void
FlightRecorder::dump(JsonWriter &w) const
{
    for (const Record &r : events()) {
        w.beginObject();
        w.field("cycle", r.cycle);
        w.field("event", pipeEventName(r.event));
        w.field("tid", static_cast<uint64_t>(r.tid));
        w.field("seq", r.seq);
        w.field("shelf", r.shelf);
        w.endObject();
    }
}

} // namespace diag
} // namespace shelf
