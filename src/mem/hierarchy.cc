#include "mem/hierarchy.hh"

namespace shelf
{

MemHierarchy::MemHierarchy(const HierarchyParams &params)
    : hierParams(params),
      l1iCache(std::make_unique<Cache>(params.l1i)),
      l1dCache(std::make_unique<Cache>(params.l1d)),
      l2Cache(std::make_unique<Cache>(params.l2))
{
    l2Ptr = l2Cache.get();
}

MemHierarchy::MemHierarchy(const HierarchyParams &params,
                           Cache *shared_l2)
    : hierParams(params),
      l1iCache(std::make_unique<Cache>(params.l1i)),
      l1dCache(std::make_unique<Cache>(params.l1d)),
      l2Ptr(shared_l2)
{}

MemHierarchy::Result
MemHierarchy::accessThrough(Cache &l1, Addr addr, bool write, Cycle now)
{
    Result res;
    unsigned l1_lat = l1.params().hitLatency;

    Cache::Outcome o1 = l1.lookup(addr, write, now);
    if (o1.blocked) {
        res.blocked = true;
        return res;
    }
    if (o1.hit) {
        res.latency = l1_lat;
        res.level = 1;
        return res;
    }
    if (o1.mshrHit) {
        res.latency = l1_lat + static_cast<unsigned>(o1.extraDelay);
        res.level = 2; // treated as beyond-L1 for stats
        return res;
    }

    // Fresh L1 miss: go to L2 (lookup starts after the L1 access).
    Cycle l2_start = now + l1_lat;
    Cache::Outcome o2 = l2Ptr->lookup(addr, write, l2_start);
    unsigned l2_lat = l2Ptr->params().hitLatency;
    Cycle data_ready;
    if (o2.hit) {
        data_ready = l2_start + l2_lat;
        res.level = 2;
    } else if (o2.mshrHit) {
        data_ready = l2_start + l2_lat +
            static_cast<Cycle>(o2.extraDelay);
        res.level = 3;
    } else if (o2.blocked) {
        // L2 MSHRs exhausted: serialize behind them with a pessimistic
        // full memory trip rather than deadlocking the core.
        data_ready = l2_start + l2_lat + hierParams.memLatency;
        res.level = 3;
    } else {
        // Fresh L2 miss: fill from memory.
        data_ready = l2_start + l2_lat + hierParams.memLatency;
        l2Ptr->install(addr, write, l2_start, data_ready);
        res.level = 3;
    }
    l1.install(addr, write, now, data_ready);
    res.latency = static_cast<unsigned>(data_ready - now);
    return res;
}

MemHierarchy::Result
MemHierarchy::accessData(Addr addr, bool write, Cycle now)
{
    return accessThrough(*l1dCache, addr, write, now);
}

MemHierarchy::Result
MemHierarchy::accessInst(Addr pc, Cycle now)
{
    return accessThrough(*l1iCache, pc, false, now);
}

unsigned
MemHierarchy::probeDataLatency(Addr addr, Cycle now) const
{
    unsigned l1_lat = l1dCache->params().hitLatency;
    if (l1dCache->probe(addr, now))
        return l1_lat;
    if (l2Ptr->probe(addr, now + l1_lat))
        return l1_lat + l2Ptr->params().hitLatency;
    return l1_lat + l2Ptr->params().hitLatency + hierParams.memLatency;
}

void
MemHierarchy::warmInst(Addr pc)
{
    l1iCache->touch(pc);
    l2Ptr->touch(pc);
}

void
MemHierarchy::warmData(Addr addr)
{
    l1dCache->touch(addr);
    l2Ptr->touch(addr);
}

void
MemHierarchy::resetStats()
{
    l1iCache->resetStats();
    l1dCache->resetStats();
    // A shared L2 is reset by its owner, exactly once.
    if (ownsL2())
        l2Cache->resetStats();
}

void
MemHierarchy::flush()
{
    l1iCache->flush();
    l1dCache->flush();
    if (ownsL2())
        l2Cache->flush();
}

} // namespace shelf
