/**
 * @file
 * A single set-associative cache level with LRU replacement,
 * write-back/write-allocate policy, and a bounded pool of miss status
 * holding registers (MSHRs) that coalesce accesses to in-flight blocks.
 *
 * The model is latency-oriented: an access returns the number of
 * cycles until the data is available, and the block is installed
 * immediately with a "ready" timestamp carried by its MSHR. A
 * functional probe (no state change) supports the oracle steering
 * mechanism, which "functionally queries the cache" (paper section
 * IV-A).
 */

#ifndef SHELFSIM_MEM_CACHE_HH
#define SHELFSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "isa/arch.hh"

namespace shelf
{

struct CacheParams
{
    std::string name = "cache";
    unsigned sizeKB = 32;
    unsigned assoc = 2;
    unsigned blockBytes = 64;
    unsigned hitLatency = 1;
    unsigned mshrs = 8;
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    struct Outcome
    {
        bool hit = false;       ///< present and ready at access time
        bool mshrHit = false;   ///< miss merged into an in-flight fill
        bool blocked = false;   ///< no MSHR available; retry later
        /** Extra cycles this level adds beyond its own hit latency
         * (0 on hit; time until an in-flight fill completes on an
         * MSHR hit; undefined when blocked). */
        Cycle extraDelay = 0;
        bool writebackDirty = false; ///< eviction produced a writeback
    };

    /**
     * Timing access. On a fresh miss the caller must tell us when the
     * fill will complete (@p fill_ready, absolute cycle), obtained from
     * the next level; pass fill_ready = 0 for a first call and re-call
     * with commit=true. To keep the interface simple we instead expose
     * a two-step protocol: lookup() then, if a fresh miss, install().
     */
    Outcome lookup(Addr addr, bool write, Cycle now);

    /** Install a block whose fill completes at @p ready_at. */
    void install(Addr addr, bool write, Cycle now, Cycle ready_at);

    /** Functional probe: would this address hit right now? */
    bool probe(Addr addr, Cycle now) const;

    /** Warmup: install a block as present-and-ready without going
     * through the timing path or touching statistics. */
    void touch(Addr addr);

    /** Debug/tests: the fill-ready cycle of a resident line, or
     * ~Cycle(0) when the block is not resident at all. */
    Cycle residentReadyAt(Addr addr) const;

    /** Invalidate everything (between experiments). */
    void flush();

    /** Zero the statistics (end of warmup), keeping cache state. */
    void resetStats();

    const CacheParams &params() const { return cacheParams; }

    /** @name Statistics @{ */
    stats::Scalar accesses;
    stats::Scalar misses;
    stats::Scalar mshrHits;
    stats::Scalar mshrBlocked;
    stats::Scalar writebacks;
    /** @} */

    double
    missRate() const
    {
        return accesses.value() > 0
            ? misses.value() / accesses.value() : 0.0;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        Cycle readyAt = 0;   ///< fill completion time
        uint64_t lastUse = 0;
    };

    Addr blockAlign(Addr a) const { return a / blockBytes_; }

    /** Hashed set index: upper address bits participate so that
     * power-of-two-strided streams (and SMT threads whose segments
     * sit at large aligned offsets) do not collapse onto one set.
     * A multiplicative (golden-ratio) hash avoids the structured
     * cancellations a shifted-XOR fold suffers on the synthetic
     * address layout. */
    size_t
    setIndex(Addr block) const
    {
        Addr h = block * 0x9E3779B97F4A7C15ULL;
        return static_cast<size_t>((h >> 24) % numSets);
    }

    CacheParams cacheParams;
    unsigned blockBytes_;
    size_t numSets;
    std::vector<std::vector<Line>> sets;
    uint64_t useCounter = 0;

    /** In-flight fills by block address -> completion cycle. */
    std::unordered_map<Addr, Cycle> inflight;
};

} // namespace shelf

#endif // SHELFSIM_MEM_CACHE_HH
