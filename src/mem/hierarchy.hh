/**
 * @file
 * The two-level cache hierarchy of Table I: 32KB 2-way L1I (1 cycle),
 * 32KB 2-way L1D (2 cycles), 2MB 8-way shared L2 (32 cycles), and a
 * fixed-latency main memory (100ns = 200 cycles at 2GHz).
 *
 * SMT threads share all levels, so cross-thread interference (capacity
 * and MSHR contention) is modelled naturally; the workload generator
 * gives each thread a disjoint address-space base.
 */

#ifndef SHELFSIM_MEM_HIERARCHY_HH
#define SHELFSIM_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"

namespace shelf
{

struct HierarchyParams
{
    CacheParams l1i{ "l1i", 32, 2, 64, 1, 4 };
    CacheParams l1d{ "l1d", 32, 2, 64, 2, 8 };
    CacheParams l2 { "l2", 2048, 8, 64, 32, 16 };
    /** Main-memory latency in cycles (100ns at 2GHz). */
    unsigned memLatency = 200;
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams &params = {});

    /**
     * A hierarchy whose L2 lives elsewhere: private L1s backed by an
     * externally owned shared L2 (the multi-core shape — one of
     * these per core, all pointing at the same L2). The caller keeps
     * @p shared_l2 alive for this object's lifetime; flush() and
     * resetStats() leave it alone, since sharing means several
     * hierarchies would otherwise each clear it.
     */
    MemHierarchy(const HierarchyParams &params, Cache *shared_l2);

    /** False when the L2 is a shared, externally owned cache. */
    bool ownsL2() const { return l2Cache != nullptr; }

    struct Result
    {
        bool blocked = false;  ///< L1 MSHRs full: retry next cycle
        /** Total cycles from issue until data available (includes the
         * L1 hit latency). */
        unsigned latency = 0;
        /** 1 = L1, 2 = L2, 3 = memory. */
        int level = 1;
    };

    /** Timing access through L1D. */
    Result accessData(Addr addr, bool write, Cycle now);

    /** Timing access through L1I (by fetch block). */
    Result accessInst(Addr pc, Cycle now);

    /**
     * Functional probe of the data path: the latency a load issued now
     * would see, without modifying any state. Used by oracle steering.
     */
    unsigned probeDataLatency(Addr addr, Cycle now) const;

    /** Warmup helpers: install blocks as ready, statistics-free. */
    void warmInst(Addr pc);
    void warmData(Addr addr);

    /** Invalidate all levels. */
    void flush();

    /** Zero statistics at all levels, keeping cache contents. */
    void resetStats();

    Cache &l1i() { return *l1iCache; }
    Cache &l1d() { return *l1dCache; }
    Cache &l2() { return *l2Ptr; }
    const Cache &l1i() const { return *l1iCache; }
    const Cache &l1d() const { return *l1dCache; }
    const Cache &l2() const { return *l2Ptr; }
    const HierarchyParams &params() const { return hierParams; }

  private:
    Result accessThrough(Cache &l1, Addr addr, bool write, Cycle now);

    HierarchyParams hierParams;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    /** Owned L2; null when the L2 is shared. */
    std::unique_ptr<Cache> l2Cache;
    /** The L2 all accesses go through (owned or shared). */
    Cache *l2Ptr = nullptr;
};

} // namespace shelf

#endif // SHELFSIM_MEM_HIERARCHY_HH
