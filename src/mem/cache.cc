#include "mem/cache.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace shelf
{

Cache::Cache(const CacheParams &params)
    : cacheParams(params), blockBytes_(params.blockBytes)
{
    fatal_if(!isPowerOf2(params.blockBytes),
             "%s: block size must be a power of two", params.name.c_str());
    size_t bytes = static_cast<size_t>(params.sizeKB) * 1024;
    fatal_if(bytes % (params.blockBytes * params.assoc) != 0,
             "%s: size not divisible by way size", params.name.c_str());
    numSets = bytes / (params.blockBytes * params.assoc);
    sets.assign(numSets, std::vector<Line>(params.assoc));
}

Cache::Outcome
Cache::lookup(Addr addr, bool write, Cycle now)
{
    Outcome out;
    ++accesses;
    Addr block = blockAlign(addr);
    auto &set = sets[setIndex(block)];

    // Drop completed fills from the MSHR pool lazily.
    for (auto it = inflight.begin(); it != inflight.end();) {
        if (it->second <= now)
            it = inflight.erase(it);
        else
            ++it;
    }

    for (auto &line : set) {
        if (line.valid && line.tag == block) {
            line.lastUse = ++useCounter;
            line.dirty |= write;
            if (line.readyAt > now) {
                // Block still being filled: behaves like an MSHR hit.
                ++mshrHits;
                out.mshrHit = true;
                out.extraDelay = line.readyAt - now;
            } else {
                out.hit = true;
            }
            return out;
        }
    }

    ++misses;
    auto mshr = inflight.find(block);
    if (mshr != inflight.end()) {
        // Fill already outstanding but the line was evicted before the
        // data returned (rare); treat as an MSHR hit.
        ++mshrHits;
        out.mshrHit = true;
        out.extraDelay = mshr->second > now ? mshr->second - now : 0;
        return out;
    }
    if (inflight.size() >= cacheParams.mshrs) {
        // Rejected for lack of an MSHR: the access never happened
        // (the core retries), so do not charge an access or a miss.
        ++mshrBlocked;
        accesses += -1;
        misses += -1;
        out.blocked = true;
        return out;
    }
    return out; // fresh miss: caller must install()
}

void
Cache::install(Addr addr, bool write, Cycle now, Cycle ready_at)
{
    Addr block = blockAlign(addr);
    auto &set = sets[setIndex(block)];

    // Victim selection: an invalid way first, then the LRU way whose
    // fill has completed. Lines still being filled are pinned (the
    // data lives in the MSHR until the fill completes), so they are
    // only victimized as a last resort when every way is in flight.
    Line *victim = nullptr;
    Line *inflight_victim = nullptr;
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.readyAt > now) {
            if (!inflight_victim ||
                line.lastUse < inflight_victim->lastUse) {
                inflight_victim = &line;
            }
            continue;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (!victim)
        victim = inflight_victim;
    if (victim->valid && victim->dirty)
        ++writebacks;

    victim->valid = true;
    victim->tag = block;
    victim->dirty = write;
    victim->readyAt = ready_at;
    victim->lastUse = ++useCounter;
    inflight[block] = ready_at;
}

void
Cache::touch(Addr addr)
{
    Addr block = blockAlign(addr);
    auto &set = sets[setIndex(block)];
    for (auto &line : set) {
        if (line.valid && line.tag == block) {
            line.lastUse = ++useCounter;
            return;
        }
    }
    Line *victim = nullptr;
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = block;
    victim->dirty = false;
    victim->readyAt = 0;
    victim->lastUse = ++useCounter;
}

Cycle
Cache::residentReadyAt(Addr addr) const
{
    Addr block = blockAlign(addr);
    const auto &set = sets[setIndex(block)];
    for (const auto &line : set)
        if (line.valid && line.tag == block)
            return line.readyAt;
    return ~Cycle(0);
}

bool
Cache::probe(Addr addr, Cycle now) const
{
    Addr block = blockAlign(addr);
    const auto &set = sets[setIndex(block)];
    for (const auto &line : set)
        if (line.valid && line.tag == block && line.readyAt <= now)
            return true;
    return false;
}

void
Cache::resetStats()
{
    accesses.reset();
    misses.reset();
    mshrHits.reset();
    mshrBlocked.reset();
    writebacks.reset();
}

void
Cache::flush()
{
    for (auto &set : sets)
        for (auto &line : set)
            line = Line();
    inflight.clear();
    useCounter = 0;
}

} // namespace shelf
