#include "workload/mix.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/strutil.hh"
#include "workload/spec2006.hh"

namespace shelf
{

std::string
WorkloadMix::name() const
{
    std::vector<std::string> names;
    const auto &profiles = spec2006Profiles();
    for (size_t b : benchmarks) {
        if (b < profiles.size())
            names.push_back(profiles[b].name);
        else
            names.push_back(csprintf("bench%zu", b));
    }
    return join(names, "+");
}

std::vector<WorkloadMix>
balancedRandomMixes(size_t num_benchmarks, size_t threads,
                    size_t num_mixes, uint64_t seed)
{
    fatal_if(threads > num_benchmarks,
             "cannot build duplicate-free mixes: %zu threads > %zu "
             "benchmarks", threads, num_benchmarks);
    fatal_if((num_mixes * threads) % num_benchmarks != 0,
             "mixes*threads (%zu) not divisible by benchmarks (%zu)",
             num_mixes * threads, num_benchmarks);

    // Pool with each benchmark repeated equally often.
    std::vector<size_t> pool;
    size_t appearances = num_mixes * threads / num_benchmarks;
    for (size_t b = 0; b < num_benchmarks; ++b)
        for (size_t k = 0; k < appearances; ++k)
            pool.push_back(b);

    Random rng(seed);
    auto shuffle = [&](std::vector<size_t> &v) {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[rng.below(i)]);
    };

    // Shuffle, then repair intra-mix duplicates by swapping with later
    // slots. Bounded retries; with 28 benchmarks x 4 threads repairs
    // nearly always succeed on the first pass.
    for (int attempt = 0; attempt < 100; ++attempt) {
        shuffle(pool);
        bool ok = true;
        for (size_t m = 0; m < num_mixes && ok; ++m) {
            size_t base = m * threads;
            for (size_t t = 1; t < threads; ++t) {
                // Is pool[base+t] a duplicate within this mix so far?
                bool dup = false;
                for (size_t u = 0; u < t; ++u)
                    dup |= pool[base + u] == pool[base + t];
                if (!dup)
                    continue;
                // Find a later slot whose value is unique here and
                // whose mix would accept ours.
                bool fixed = false;
                for (size_t j = base + threads; j < pool.size(); ++j) {
                    bool cand_ok = true;
                    for (size_t u = 0; u < threads; ++u) {
                        if (u != t &&
                            pool[base + u] == pool[j]) {
                            cand_ok = false;
                            break;
                        }
                    }
                    if (!cand_ok)
                        continue;
                    size_t jm = (j / threads) * threads;
                    for (size_t u = 0; u < threads; ++u) {
                        if (jm + u != j &&
                            pool[jm + u] == pool[base + t]) {
                            cand_ok = false;
                            break;
                        }
                    }
                    if (cand_ok) {
                        std::swap(pool[base + t], pool[j]);
                        fixed = true;
                        break;
                    }
                }
                if (!fixed) {
                    ok = false;
                    break;
                }
            }
        }
        if (!ok)
            continue;
        std::vector<WorkloadMix> mixes(num_mixes);
        for (size_t m = 0; m < num_mixes; ++m)
            mixes[m].benchmarks.assign(pool.begin() + m * threads,
                                       pool.begin() + (m + 1) * threads);
        return mixes;
    }
    // Dense shapes (e.g. 16 threads from 28 benchmarks) defeat the
    // random repair with high probability even though balanced
    // duplicate-free designs exist. Fall back to a rotation design:
    // mix m takes `threads` consecutive benchmarks starting at
    // m*threads (mod num_benchmarks), which is duplicate-free for
    // threads <= num_benchmarks and lands each benchmark in exactly
    // mixes*threads/num_benchmarks slots. A seed-derived offset and a
    // per-mix shuffle keep the result seed-dependent.
    size_t offset = rng.below(num_benchmarks);
    std::vector<WorkloadMix> mixes(num_mixes);
    for (size_t m = 0; m < num_mixes; ++m) {
        auto &bs = mixes[m].benchmarks;
        for (size_t t = 0; t < threads; ++t)
            bs.push_back((offset + m * threads + t) % num_benchmarks);
        shuffle(bs);
    }
    return mixes;
}

} // namespace shelf
