/**
 * @file
 * Self-capture of the simulator's own retired instruction stream:
 * a retire-tap observer (Core::setRetireTap) that records each
 * thread's committed instructions, in program order, to SHLFTRC2
 * trace files for deterministic replay.
 *
 * Two sink modes, chosen at construction:
 *  - streaming (openFiles): records flow straight into per-thread
 *    TraceStreamWriters, so memory stays bounded by one chunk per
 *    thread no matter how long the run is (the bounded streaming
 *    logger idiom);
 *  - buffered: records accumulate in memory (capped by
 *    maxInstsPerThread) for tests and short runs, written out by
 *    writeAll().
 */

#ifndef SHELFSIM_WORKLOAD_TRACE_CAPTURE_HH
#define SHELFSIM_WORKLOAD_TRACE_CAPTURE_HH

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "workload/trace_io.hh"

namespace shelf
{

class TraceCapture
{
  public:
    /**
     * Capture @p threads hardware threads. @p maxInstsPerThread
     * bounds buffered capture (0 = unbounded); once a thread hits
     * the cap, further retires are dropped and truncated() reports
     * it. Streaming capture ignores the cap.
     */
    explicit TraceCapture(unsigned threads,
                          uint64_t maxInstsPerThread = 0);
    ~TraceCapture();

    /**
     * Switch to streaming mode: open "<prefix><t>.shlftrc" per
     * thread (written atomically: temp files now, published by
     * finish()). Must be called before any instruction retires.
     * Returns false with a message in @p err on failure.
     */
    bool openFiles(const std::string &prefix,
                   const TraceWriteOptions &opt, std::string &err);

    /** The observer to install via Core::setRetireTap. The capture
     * object must outlive the core. */
    std::function<void(const DynInst &)> observer();

    /** Record one retired instruction (what the observer calls). */
    void record(const DynInst &inst);

    /** Buffered mode: the captured per-thread trace. */
    const Trace &thread(unsigned t) const { return buffers[t]; }
    /** Buffered mode: true if the cap dropped instructions. */
    bool truncated(unsigned t) const { return dropped[t] != 0; }

    uint64_t captured(unsigned t) const { return counts[t]; }
    unsigned threads() const { return (unsigned)counts.size(); }

    /**
     * Buffered mode: write every thread's capture to
     * "<prefix><t>.shlftrc" (atomic publish). On success @p paths
     * (optional) receives the file names.
     */
    bool writeAll(const std::string &prefix,
                  const TraceWriteOptions &opt, std::string &err,
                  std::vector<std::string> *paths = nullptr);

    /**
     * Streaming mode: finish and atomically publish every
     * per-thread file. On success @p paths (optional) receives the
     * file names.
     */
    bool finish(std::string &err,
                std::vector<std::string> *paths = nullptr);

  private:
    struct StreamSink;

    uint64_t cap;
    std::vector<Trace> buffers;
    std::vector<uint64_t> counts;
    std::vector<uint64_t> dropped;
    std::vector<std::unique_ptr<StreamSink>> sinks;
    std::vector<std::string> sinkPaths;
};

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_TRACE_CAPTURE_HH
