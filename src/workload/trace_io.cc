#include "workload/trace_io.hh"

#include <zlib.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "isa/arch.hh"

namespace shelf
{

namespace
{

constexpr char kMagicV1[8] = { 'S', 'H', 'L', 'F', 'T', 'R', 'C',
                               '1' };
constexpr char kMagicV2[8] = { 'S', 'H', 'L', 'F', 'T', 'R', 'C',
                               '2' };
constexpr char kChunkMagic[8] = { 'S', 'H', 'L', 'F', 'C', 'H', 'N',
                                  'K' };
constexpr char kEndMagic[8] = { 'S', 'H', 'L', 'F', 'T', 'E', 'N',
                                'D' };

constexpr size_t kRecordBytes = 8 + 8 + 1 + 2 + 2 + 2 + 1 + 1 + 1;
constexpr uint32_t kFlagDeflate = 1u;
constexpr uint32_t kMaxChunkCapacity = 1u << 24;

/** One-shot SHLFTRC1 deprecation warning. */
std::atomic<bool> warnedV1{false};

void
putLE(std::string &buf, uint64_t v, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t
get32(const unsigned char *p)
{
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8) |
           ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
}

uint64_t
get64(const unsigned char *p)
{
    return (uint64_t)get32(p) | ((uint64_t)get32(p + 4) << 32);
}

int16_t
getI16(const unsigned char *p)
{
    return static_cast<int16_t>((uint16_t)p[0] |
                                ((uint16_t)p[1] << 8));
}

void
encodeRecord(std::string &buf, const TraceInst &inst)
{
    putLE(buf, inst.pc, 8);
    putLE(buf, inst.addr, 8);
    putLE(buf, static_cast<uint8_t>(inst.op), 1);
    putLE(buf, static_cast<uint16_t>(inst.src1), 2);
    putLE(buf, static_cast<uint16_t>(inst.src2), 2);
    putLE(buf, static_cast<uint16_t>(inst.dst), 2);
    putLE(buf, inst.latency, 1);
    putLE(buf, inst.size, 1);
    putLE(buf, inst.taken ? 1 : 0, 1);
}

bool
validReg(int16_t r)
{
    return r == kNoReg ||
           (r >= 0 && r < static_cast<int16_t>(kNumArchRegs));
}

/** Decode one 26-byte record, validating that the bytes can only
 * mean a real instruction: op class in range, register operands
 * either kNoReg or architectural. */
bool
decodeRecord(const unsigned char *p, TraceInst &inst,
             std::string &why)
{
    inst.pc = get64(p);
    inst.addr = get64(p + 8);
    uint8_t op = p[16];
    if (op >= static_cast<uint8_t>(OpClass::NumOpClasses)) {
        why = csprintf("corrupt trace: bad op class %u", op);
        return false;
    }
    inst.op = static_cast<OpClass>(op);
    inst.src1 = getI16(p + 17);
    inst.src2 = getI16(p + 19);
    inst.dst = getI16(p + 21);
    if (!validReg(inst.src1) || !validReg(inst.src2) ||
        !validReg(inst.dst)) {
        why = csprintf("corrupt trace: impossible operand index "
                       "(src1 %d, src2 %d, dst %d)",
                       (int)inst.src1, (int)inst.src2, (int)inst.dst);
        return false;
    }
    inst.latency = p[23];
    inst.size = p[24];
    inst.taken = p[25] != 0;
    return true;
}

/** Read up to @p n bytes; returns how many arrived. Clears stream
 * failure state so callers can keep probing after a short read. */
size_t
readSome(std::istream &is, char *buf, size_t n)
{
    is.read(buf, static_cast<std::streamsize>(n));
    size_t got = static_cast<size_t>(is.gcount());
    if (got < n)
        is.clear();
    return got;
}

/** Bytes the stream can still deliver, or UINT64_MAX if unseekable. */
uint64_t
remainingBytes(std::istream &is)
{
    std::istream::pos_type here = is.tellg();
    if (here == std::istream::pos_type(-1)) {
        is.clear();
        return UINT64_MAX;
    }
    is.seekg(0, std::ios::end);
    std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (end == std::istream::pos_type(-1) || !is) {
        is.clear();
        is.seekg(here);
        return UINT64_MAX;
    }
    return static_cast<uint64_t>(end - here);
}

} // namespace

const char *
traceErrorName(TraceError e)
{
    switch (e) {
      case TraceError::None: return "None";
      case TraceError::BadMagic: return "BadMagic";
      case TraceError::BadVersion: return "BadVersion";
      case TraceError::TruncatedHeader: return "TruncatedHeader";
      case TraceError::BadHeader: return "BadHeader";
      case TraceError::TruncatedChunk: return "TruncatedChunk";
      case TraceError::BadChunkHeader: return "BadChunkHeader";
      case TraceError::ChunkTooLarge: return "ChunkTooLarge";
      case TraceError::CrcMismatch: return "CrcMismatch";
      case TraceError::DecompressError: return "DecompressError";
      case TraceError::BadOperand: return "BadOperand";
      case TraceError::TruncatedTrailer: return "TruncatedTrailer";
      case TraceError::CountMismatch: return "CountMismatch";
      case TraceError::FileCrcMismatch: return "FileCrcMismatch";
      case TraceError::TrailingGarbage: return "TrailingGarbage";
      case TraceError::TooManyInstructions:
        return "TooManyInstructions";
      case TraceError::Io: return "Io";
    }
    return "Unknown";
}

//
// Writer
//

TraceStreamWriter::TraceStreamWriter(std::ostream &os_,
                                     TraceWriteOptions opt_)
    : os(os_), opt(opt_),
      fileCrc(static_cast<uint32_t>(crc32(0L, Z_NULL, 0)))
{
    if (opt.chunkInsts == 0)
        opt.chunkInsts = 1;
    if (opt.chunkInsts > kMaxChunkCapacity)
        opt.chunkInsts = kMaxChunkCapacity;
    pending.reserve(static_cast<size_t>(opt.chunkInsts) *
                    kRecordBytes);
}

TraceStreamWriter::~TraceStreamWriter()
{
    if (!finished && (total != 0 || pendingCount != 0))
        warn("TraceStreamWriter destroyed without finish(); trace "
             "has no trailer");
}

void
TraceStreamWriter::append(const TraceInst &inst)
{
    if (!wroteHeader) {
        os.write(kMagicV2, sizeof(kMagicV2));
        std::string hdr;
        putLE(hdr, opt.chunkInsts, 4);
        putLE(hdr, opt.compress ? kFlagDeflate : 0u, 4);
        os.write(hdr.data(),
                 static_cast<std::streamsize>(hdr.size()));
        wroteHeader = true;
    }
    encodeRecord(pending, inst);
    if (++pendingCount >= opt.chunkInsts)
        flushChunk();
}

void
TraceStreamWriter::flushChunk()
{
    if (pendingCount == 0)
        return;
    const unsigned char *rawBytes =
        reinterpret_cast<const unsigned char *>(pending.data());
    const unsigned char *payload = rawBytes;
    uLongf payloadLen = static_cast<uLongf>(pending.size());
    std::string compBuf;
    if (opt.compress) {
        compBuf.resize(compressBound(
            static_cast<uLong>(pending.size())));
        uLongf destLen = static_cast<uLongf>(compBuf.size());
        int rc = compress2(
            reinterpret_cast<Bytef *>(compBuf.data()), &destLen,
            rawBytes, static_cast<uLong>(pending.size()),
            Z_BEST_SPEED);
        if (rc != Z_OK) {
            failed = true;
            return;
        }
        payload = reinterpret_cast<const unsigned char *>(
            compBuf.data());
        payloadLen = destLen;
    }

    std::string hdr;
    putLE(hdr, pendingCount, 4);
    putLE(hdr, pending.size(), 4);
    putLE(hdr, payloadLen, 4);
    // The chunk CRC covers the header words and the payload, so a
    // flipped bit in a length is caught just like one in the data.
    uint32_t crc = static_cast<uint32_t>(crc32(0L, Z_NULL, 0));
    crc = static_cast<uint32_t>(
        crc32(crc, reinterpret_cast<const Bytef *>(hdr.data()),
              static_cast<uInt>(hdr.size())));
    crc = static_cast<uint32_t>(
        crc32(crc, payload, static_cast<uInt>(payloadLen)));
    putLE(hdr, crc, 4);

    os.write(kChunkMagic, sizeof(kChunkMagic));
    os.write(hdr.data(), static_cast<std::streamsize>(hdr.size()));
    os.write(reinterpret_cast<const char *>(payload),
             static_cast<std::streamsize>(payloadLen));

    fileCrc = static_cast<uint32_t>(
        crc32(fileCrc, rawBytes, static_cast<uInt>(pending.size())));
    total += pendingCount;
    pending.clear();
    pendingCount = 0;
}

bool
TraceStreamWriter::finish(std::string *err)
{
    if (finished)
        return !failed;
    if (!wroteHeader) {
        // Empty trace: header + trailer, no chunks.
        os.write(kMagicV2, sizeof(kMagicV2));
        std::string hdr;
        putLE(hdr, opt.chunkInsts, 4);
        putLE(hdr, opt.compress ? kFlagDeflate : 0u, 4);
        os.write(hdr.data(),
                 static_cast<std::streamsize>(hdr.size()));
        wroteHeader = true;
    }
    flushChunk();
    std::string tail;
    putLE(tail, total, 8);
    putLE(tail, fileCrc, 4);
    uint32_t tcrc = static_cast<uint32_t>(crc32(
        0L, reinterpret_cast<const Bytef *>(tail.data()),
        static_cast<uInt>(tail.size())));
    putLE(tail, tcrc, 4);
    os.write(kEndMagic, sizeof(kEndMagic));
    os.write(tail.data(), static_cast<std::streamsize>(tail.size()));
    os.flush();
    finished = true;
    if (failed || !os) {
        failed = true;
        if (err)
            *err = "trace stream write failure";
        return false;
    }
    return true;
}

bool
writeTrace2(const Trace &trace, std::ostream &os,
            const TraceWriteOptions &opt, std::string *err)
{
    TraceStreamWriter w(os, opt);
    for (const TraceInst &inst : trace)
        w.append(inst);
    return w.finish(err);
}

bool
writeTrace2File(const Trace &trace, const std::string &path,
                const TraceWriteOptions &opt, std::string *err)
{
    AtomicFile out(path);
    if (!out.open(err))
        return false;
    {
        std::ofstream os(out.tmpPath(),
                         std::ios::binary | std::ios::trunc);
        if (!os) {
            if (err)
                *err = csprintf("cannot open '%s' for writing",
                                out.tmpPath().c_str());
            return false;
        }
        if (!writeTrace2(trace, os, opt, err))
            return false;
        os.close();
        if (!os) {
            if (err)
                *err = csprintf("write failure on '%s'",
                                out.tmpPath().c_str());
            return false;
        }
    }
    return out.publish(err);
}

//
// Reader
//

TraceReader::TraceReader(std::istream &is_, TraceReadOptions opt_)
    : is(is_), opt(opt_),
      runningCrc(static_cast<uint32_t>(crc32(0L, Z_NULL, 0)))
{
}

bool
TraceReader::fail(TraceError e, std::string why)
{
    if (err == TraceError::None) {
        err = e;
        detail = std::move(why);
    }
    return false;
}

/** Record a chunk-level problem. In skip mode the chunk is counted
 * as corrupt and reading may continue; in fail-precise mode this is
 * the read's error. Returns false either way so callers can
 * `return chunkFail(...)` and then consult skip policy. */
bool
TraceReader::chunkFail(TraceError e, std::string why)
{
    if (st.firstError == TraceError::None) {
        st.firstError = e;
        st.firstDetail = why;
    }
    if (opt.skipCorrupt) {
        ++st.corruptChunks;
        return false;
    }
    return fail(e, std::move(why));
}

bool
TraceReader::prime()
{
    if (err != TraceError::None)
        return false;
    if (headerDone)
        return true;
    return readHeader();
}

bool
TraceReader::readHeader()
{
    char magic[8];
    size_t got = readSome(is, magic, sizeof(magic));
    if (got < sizeof(magic))
        return fail(TraceError::TruncatedHeader,
                    got == 0 ? "empty trace stream"
                             : "stream ended inside file header");
    if (std::memcmp(magic, kMagicV2, sizeof(magic)) != 0) {
        if (std::memcmp(magic, "SHLFTRC", 7) == 0) {
            if (magic[7] == '1')
                return fail(TraceError::BadVersion,
                            "legacy SHLFTRC1 stream; read via "
                            "tryReadTrace or convert with "
                            "'shelfsim_trace convert'");
            return fail(TraceError::BadVersion,
                        csprintf("unknown trace format version "
                                 "'%c'", magic[7]));
        }
        return fail(TraceError::BadMagic,
                    "not a shelfsim trace (bad magic)");
    }
    unsigned char hdr[8];
    got = readSome(is, reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (got < sizeof(hdr))
        return fail(TraceError::TruncatedHeader,
                    "stream ended inside file header");
    chunkCapacity = get32(hdr);
    uint32_t flags = get32(hdr + 4);
    if (chunkCapacity == 0 || chunkCapacity > kMaxChunkCapacity)
        return fail(TraceError::BadHeader,
                    csprintf("implausible chunk capacity %u",
                             chunkCapacity));
    if (flags & ~kFlagDeflate)
        return fail(TraceError::BadHeader,
                    csprintf("unknown header flags 0x%x", flags));
    deflated = (flags & kFlagDeflate) != 0;
    headerDone = true;
    return true;
}

/**
 * Scan forward for the next chunk or trailer magic, byte by byte
 * over an 8-byte window. On success the magic has been consumed and
 * @p kind is 0 (chunk) or 1 (trailer). Returns false at EOF.
 */
bool
TraceReader::resync(int &kind)
{
    char window[8];
    size_t got = readSome(is, window, sizeof(window));
    if (got < sizeof(window)) {
        st.skippedBytes += got;
        return false;
    }
    for (;;) {
        if (std::memcmp(window, kChunkMagic, 8) == 0) {
            kind = 0;
            return true;
        }
        if (std::memcmp(window, kEndMagic, 8) == 0) {
            kind = 1;
            return true;
        }
        int c = is.get();
        if (c == std::istream::traits_type::eof()) {
            is.clear();
            st.skippedBytes += sizeof(window);
            return false;
        }
        std::memmove(window, window + 1, 7);
        window[7] = static_cast<char>(c);
        ++st.skippedBytes;
    }
}

TraceReader::Step
TraceReader::decodeChunk(std::vector<TraceInst> &chunk)
{
    unsigned char hdr[16];
    size_t got = readSome(is, reinterpret_cast<char *>(hdr),
                          sizeof(hdr));
    if (got < sizeof(hdr)) {
        chunkFail(TraceError::TruncatedChunk,
                  "stream ended inside chunk header");
        return Step::Corrupt;
    }
    uint32_t count = get32(hdr);
    uint32_t rawLen = get32(hdr + 4);
    uint32_t compLen = get32(hdr + 8);
    uint32_t storedCrc = get32(hdr + 12);

    // Validate every length against the others, the caps, and the
    // remaining stream bytes *before* any allocation: a hostile
    // header must not be able to size a buffer.
    if (count == 0) {
        chunkFail(TraceError::BadChunkHeader, "empty chunk");
        return Step::Corrupt;
    }
    if (count > chunkCapacity) {
        chunkFail(TraceError::BadChunkHeader,
                  csprintf("chunk claims %u records but file "
                           "capacity is %u", count, chunkCapacity));
        return Step::Corrupt;
    }
    if (count > opt.maxChunkInsts) {
        chunkFail(TraceError::ChunkTooLarge,
                  csprintf("chunk claims %u records; cap is %u",
                           count, opt.maxChunkInsts));
        return Step::Corrupt;
    }
    if (rawLen != count * kRecordBytes) {
        chunkFail(TraceError::BadChunkHeader,
                  csprintf("chunk raw size %u does not match %u "
                           "records", rawLen, count));
        return Step::Corrupt;
    }
    uint64_t bound = deflated
        ? static_cast<uint64_t>(compressBound(rawLen))
        : static_cast<uint64_t>(rawLen);
    if (compLen == 0 || compLen > bound ||
        (!deflated && compLen != rawLen)) {
        chunkFail(TraceError::BadChunkHeader,
                  csprintf("chunk payload size %u impossible for "
                           "%u raw bytes", compLen, rawLen));
        return Step::Corrupt;
    }
    if (st.instructions + count > opt.maxInstructions) {
        // Resource cap, not corruption: never skipped over.
        fail(TraceError::TooManyInstructions,
             csprintf("trace exceeds the %llu-instruction cap",
                      (unsigned long long)opt.maxInstructions));
        return Step::Hard;
    }
    uint64_t remain = remainingBytes(is);
    if (remain < compLen) {
        chunkFail(TraceError::TruncatedChunk,
                  csprintf("chunk claims %u payload bytes but only "
                           "%llu remain", compLen,
                           (unsigned long long)remain));
        return Step::Corrupt;
    }

    comp.resize(compLen);
    got = readSome(is, comp.data(), compLen);
    if (got < compLen) {
        chunkFail(TraceError::TruncatedChunk,
                  "stream ended inside chunk payload");
        return Step::Corrupt;
    }

    uint32_t crc = static_cast<uint32_t>(crc32(0L, Z_NULL, 0));
    crc = static_cast<uint32_t>(crc32(
        crc, hdr, 12));
    crc = static_cast<uint32_t>(crc32(
        crc, reinterpret_cast<const Bytef *>(comp.data()),
        static_cast<uInt>(comp.size())));
    if (crc != storedCrc) {
        chunkFail(TraceError::CrcMismatch,
                  csprintf("chunk checksum mismatch (stored "
                           "%08x, computed %08x)", storedCrc, crc));
        return Step::Corrupt;
    }

    const unsigned char *rawPtr;
    if (deflated) {
        raw.resize(rawLen);
        uLongf destLen = rawLen;
        int rc = uncompress(
            reinterpret_cast<Bytef *>(raw.data()), &destLen,
            reinterpret_cast<const Bytef *>(comp.data()),
            static_cast<uLong>(comp.size()));
        if (rc != Z_OK || destLen != rawLen) {
            chunkFail(TraceError::DecompressError,
                      csprintf("chunk payload does not inflate to "
                               "%u bytes (zlib rc %d)", rawLen, rc));
            return Step::Corrupt;
        }
        rawPtr = reinterpret_cast<const unsigned char *>(raw.data());
    } else {
        rawPtr = reinterpret_cast<const unsigned char *>(
            comp.data());
    }

    chunk.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
        std::string why;
        if (!decodeRecord(rawPtr + i * kRecordBytes, chunk[i],
                          why)) {
            chunk.clear();
            chunkFail(TraceError::BadOperand, std::move(why));
            return Step::Corrupt;
        }
    }

    runningCrc = static_cast<uint32_t>(crc32(
        runningCrc, rawPtr,
        static_cast<uInt>(count * kRecordBytes)));
    st.instructions += count;
    ++st.chunks;
    return Step::Ok;
}

bool
TraceReader::finishTrailer()
{
    sawEnd = true;
    unsigned char tail[16];
    size_t got = readSome(is, reinterpret_cast<char *>(tail),
                          sizeof(tail));
    if (got < sizeof(tail)) {
        if (opt.skipCorrupt) {
            if (st.firstError == TraceError::None) {
                st.firstError = TraceError::TruncatedTrailer;
                st.firstDetail = "stream ended inside trailer";
            }
            return false;
        }
        return fail(TraceError::TruncatedTrailer,
                    "stream ended inside trailer");
    }
    uint32_t tcrc = static_cast<uint32_t>(
        crc32(0L, tail, 12));
    uint64_t totalCount = get64(tail);
    uint32_t storedFileCrc = get32(tail + 8);
    uint32_t storedTcrc = get32(tail + 12);

    TraceError te = TraceError::None;
    std::string why;
    if (storedTcrc != tcrc) {
        te = TraceError::CrcMismatch;
        why = csprintf("trailer checksum mismatch (stored %08x, "
                       "computed %08x)", storedTcrc, tcrc);
    } else if (totalCount != st.instructions) {
        te = TraceError::CountMismatch;
        why = csprintf("trailer claims %llu instructions but %llu "
                       "were decoded",
                       (unsigned long long)totalCount,
                       (unsigned long long)st.instructions);
    } else if (storedFileCrc != runningCrc) {
        te = TraceError::FileCrcMismatch;
        why = csprintf("whole-file checksum mismatch (stored %08x, "
                       "computed %08x)", storedFileCrc, runningCrc);
    } else if (is.peek() != std::istream::traits_type::eof()) {
        te = TraceError::TrailingGarbage;
        why = "bytes after trailer";
    }
    is.clear();
    if (te == TraceError::None)
        return false; // clean end
    if (opt.skipCorrupt) {
        // Dropped chunks necessarily break the trailer totals;
        // record the discrepancy but keep what was salvaged.
        if (st.firstError == TraceError::None) {
            st.firstError = te;
            st.firstDetail = std::move(why);
        }
        return false;
    }
    return fail(te, std::move(why));
}

bool
TraceReader::next(std::vector<TraceInst> &chunk)
{
    chunk.clear();
    if (err != TraceError::None || sawEnd)
        return false;
    if (!headerDone && !readHeader())
        return false;

    bool haveMagic = false;
    int kind = -1;
    for (;;) {
        if (!haveMagic) {
            char magic[8];
            size_t got = readSome(is, magic, sizeof(magic));
            if (got < sizeof(magic)) {
                if (opt.skipCorrupt) {
                    // Truncated between blocks: keep the salvage.
                    sawEnd = true;
                    ++st.corruptChunks;
                    if (st.firstError == TraceError::None) {
                        st.firstError = TraceError::TruncatedTrailer;
                        st.firstDetail =
                            "stream ended before trailer";
                    }
                    return false;
                }
                return fail(TraceError::TruncatedTrailer,
                            got == 0
                                ? "stream ended before trailer"
                                : "stream ended mid-block");
            }
            if (std::memcmp(magic, kChunkMagic, 8) == 0) {
                kind = 0;
            } else if (std::memcmp(magic, kEndMagic, 8) == 0) {
                kind = 1;
            } else {
                kind = -1;
            }
        }
        haveMagic = false;

        if (kind == 0) {
            Step s = decodeChunk(chunk);
            if (s == Step::Ok)
                return true;
            if (s == Step::Hard || !opt.skipCorrupt)
                return false;
        } else if (kind == 1) {
            return finishTrailer();
        } else {
            chunkFail(TraceError::BadChunkHeader,
                      "unrecognized block magic");
            if (!opt.skipCorrupt)
                return false;
        }

        // Skip mode: hunt for the next block boundary.
        if (resync(kind)) {
            haveMagic = true;
            continue;
        }
        sawEnd = true;
        return false;
    }
}

//
// Legacy SHLFTRC1 reader (error-returning), plus auto-detection.
//

namespace
{

bool
readTraceV1(std::istream &is, Trace &out,
            const TraceReadOptions &opt, TraceError &e,
            std::string &detail)
{
    if (!warnedV1.exchange(true)) {
        warn("trace uses the deprecated SHLFTRC1 format; convert "
             "with 'shelfsim_trace convert'");
    }
    // Caller verified and consumed the magic.
    unsigned char hdr[8];
    if (readSome(is, reinterpret_cast<char *>(hdr), sizeof(hdr)) <
        sizeof(hdr)) {
        e = TraceError::TruncatedHeader;
        detail = "trace stream truncated inside header";
        return false;
    }
    uint64_t count = get64(hdr);
    if (count > (1ULL << 32) || count > opt.maxInstructions) {
        e = TraceError::TooManyInstructions;
        detail = csprintf("implausible trace length: %llu records",
                          (unsigned long long)count);
        return false;
    }

    // Bound the reserve() by what the stream can still deliver
    // before trusting the claimed count.
    uint64_t remain = remainingBytes(is);
    if (remain != UINT64_MAX && remain < count * kRecordBytes) {
        e = TraceError::TruncatedChunk;
        detail = csprintf(
            "trace stream truncated: header claims %llu records "
            "(%llu bytes) but only %llu bytes remain",
            (unsigned long long)count,
            (unsigned long long)(count * kRecordBytes),
            (unsigned long long)remain);
        return false;
    }
    out.clear();
    out.reserve(remain == UINT64_MAX ? 0 : count);
    unsigned char rec[kRecordBytes];
    for (uint64_t i = 0; i < count; ++i) {
        if (readSome(is, reinterpret_cast<char *>(rec),
                     sizeof(rec)) < sizeof(rec)) {
            e = TraceError::TruncatedChunk;
            detail = "trace stream truncated";
            return false;
        }
        TraceInst inst;
        std::string why;
        if (!decodeRecord(rec, inst, why)) {
            e = TraceError::BadOperand;
            detail = std::move(why);
            return false;
        }
        out.push_back(inst);
    }
    return true;
}

} // namespace

void
resetTraceDeprecationWarning()
{
    warnedV1.store(false);
}

void
suppressTraceDeprecationWarning()
{
    warnedV1.store(true);
}

bool
tryReadTrace(std::istream &is, Trace &out,
             const TraceReadOptions &opt, TraceError *errOut,
             std::string *detail, TraceReadStats *stats)
{
    TraceError e = TraceError::None;
    std::string why;
    bool ok;
    TraceReadStats st;

    // Peek the magic to pick the format. Unseekable streams go
    // straight to the v2 reader (v1 files are always on disk).
    char magic[8];
    std::istream::pos_type start = is.tellg();
    bool isV1 = false;
    if (start != std::istream::pos_type(-1)) {
        size_t got = readSome(is, magic, sizeof(magic));
        if (got == sizeof(magic) &&
            std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
            isV1 = true;
        } else {
            is.clear();
            is.seekg(start);
        }
    } else {
        is.clear();
    }

    if (isV1) {
        ok = readTraceV1(is, out, opt, e, why);
        st.instructions = out.size();
    } else {
        TraceReader r(is, opt);
        out.clear();
        std::vector<TraceInst> chunk;
        while (r.next(chunk))
            out.insert(out.end(), chunk.begin(), chunk.end());
        e = r.error();
        why = r.errorDetail();
        st = r.stats();
        ok = e == TraceError::None;
        if (!ok)
            out.clear();
    }
    if (errOut)
        *errOut = e;
    if (detail)
        *detail = std::move(why);
    if (stats)
        *stats = std::move(st);
    return ok;
}

bool
tryReadTraceFile(const std::string &path, Trace &out,
                 const TraceReadOptions &opt, TraceError *errOut,
                 std::string *detail, TraceReadStats *stats)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (errOut)
            *errOut = TraceError::Io;
        if (detail)
            *detail = csprintf("cannot open '%s' for reading",
                               path.c_str());
        if (stats)
            *stats = TraceReadStats{};
        return false;
    }
    return tryReadTrace(is, out, opt, errOut, detail, stats);
}

bool
tryTraceFileHash(const std::string &path, std::string &hexHash,
                 std::string &err)
{
    FILE *f = fopen(path.c_str(), "rb");
    if (!f) {
        err = csprintf("cannot open '%s' for reading",
                       path.c_str());
        return false;
    }
    // Streaming FNV-1a over the raw file bytes: the hash names the
    // *content*, so the canonical job key changes whenever the file
    // does, however it is edited.
    uint64_t h = 1469598103934665603ULL;
    unsigned char buf[65536];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0) {
        for (size_t i = 0; i < got; ++i) {
            h ^= buf[i];
            h *= 1099511628211ULL;
        }
    }
    bool readOk = !ferror(f);
    fclose(f);
    if (!readOk) {
        err = csprintf("read failure on '%s'", path.c_str());
        return false;
    }
    hexHash = csprintf("%016llx", (unsigned long long)h);
    err.clear();
    return true;
}

//
// Legacy fatal() API.
//

void
writeTrace(const Trace &trace, std::ostream &os)
{
    // Deprecated SHLFTRC1 emitter, kept so the compatibility shim
    // has something to read in tests. New code writes SHLFTRC2.
    os.write(kMagicV1, sizeof(kMagicV1));
    std::string buf;
    putLE(buf, trace.size(), 8);
    for (const TraceInst &inst : trace)
        encodeRecord(buf, inst);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    fatal_if(!os, "trace stream write failure");
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::string err;
    fatal_if(!writeTrace2File(trace, path, TraceWriteOptions{},
                              &err),
             "%s", err.c_str());
}

Trace
readTrace(std::istream &is)
{
    Trace t;
    TraceError e;
    std::string why;
    fatal_if(!tryReadTrace(is, t, TraceReadOptions{}, &e, &why),
             "%s: %s", traceErrorName(e), why.c_str());
    return t;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open '%s' for reading", path.c_str());
    return readTrace(is);
}

} // namespace shelf
