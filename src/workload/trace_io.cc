#include "workload/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "base/logging.hh"

namespace shelf
{

namespace
{

constexpr char kMagic[8] = { 'S', 'H', 'L', 'F', 'T', 'R', 'C',
                             '1' };

template <typename T>
void
put(std::ostream &os, T v)
{
    // Serialize little-endian regardless of host order.
    unsigned char buf[sizeof(T)];
    using U = std::make_unsigned_t<T>;
    U u = static_cast<U>(v);
    for (size_t i = 0; i < sizeof(T); ++i)
        buf[i] = static_cast<unsigned char>(u >> (8 * i));
    os.write(reinterpret_cast<const char *>(buf), sizeof(T));
}

template <typename T>
T
get(std::istream &is)
{
    unsigned char buf[sizeof(T)];
    is.read(reinterpret_cast<char *>(buf), sizeof(T));
    fatal_if(!is, "trace stream truncated");
    using U = std::make_unsigned_t<T>;
    U u = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<U>(buf[i]) << (8 * i);
    return static_cast<T>(u);
}

} // namespace

void
writeTrace(const Trace &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    put<uint64_t>(os, trace.size());
    for (const TraceInst &inst : trace) {
        put<uint64_t>(os, inst.pc);
        put<uint64_t>(os, inst.addr);
        put<uint8_t>(os, static_cast<uint8_t>(inst.op));
        put<int16_t>(os, inst.src1);
        put<int16_t>(os, inst.src2);
        put<int16_t>(os, inst.dst);
        put<uint8_t>(os, inst.latency);
        put<uint8_t>(os, inst.size);
        put<uint8_t>(os, inst.taken ? 1 : 0);
    }
    fatal_if(!os, "trace stream write failure");
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open '%s' for writing", path.c_str());
    writeTrace(trace, os);
}

Trace
readTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    fatal_if(!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
             "not a shelfsim trace (bad magic)");
    uint64_t count = get<uint64_t>(is);
    fatal_if(count > (1ULL << 32), "implausible trace length");

    // The header's count is attacker-controlled (well,
    // corruption-controlled): bound the reserve() by what the stream
    // can actually still deliver before trusting it, so a truncated
    // or garbage header fails with a clean "truncated" diagnostic
    // instead of a multi-gigabyte allocation. Each record is
    // kRecordBytes on the wire.
    constexpr uint64_t kRecordBytes =
        8 + 8 + 1 + 2 + 2 + 2 + 1 + 1 + 1;
    uint64_t reserveCount = count;
    std::istream::pos_type here = is.tellg();
    if (here != std::istream::pos_type(-1)) {
        is.seekg(0, std::ios::end);
        std::istream::pos_type end = is.tellg();
        is.seekg(here);
        if (end != std::istream::pos_type(-1) && is) {
            uint64_t remaining = static_cast<uint64_t>(end - here);
            fatal_if(remaining < count * kRecordBytes,
                     "trace stream truncated: header claims %llu "
                     "records (%llu bytes) but only %llu bytes "
                     "remain",
                     static_cast<unsigned long long>(count),
                     static_cast<unsigned long long>(
                         count * kRecordBytes),
                     static_cast<unsigned long long>(remaining));
        } else {
            // Unseekable stream: clear the failed seek and fall
            // back to incremental growth.
            is.clear();
            is.seekg(here);
            reserveCount = 0;
        }
    } else {
        is.clear();
        reserveCount = 0;
    }
    Trace trace;
    trace.reserve(reserveCount);
    for (uint64_t i = 0; i < count; ++i) {
        TraceInst inst;
        inst.pc = get<uint64_t>(is);
        inst.addr = get<uint64_t>(is);
        uint8_t op = get<uint8_t>(is);
        fatal_if(op >= static_cast<uint8_t>(OpClass::NumOpClasses),
                 "corrupt trace: bad op class %u", op);
        inst.op = static_cast<OpClass>(op);
        inst.src1 = get<int16_t>(is);
        inst.src2 = get<int16_t>(is);
        inst.dst = get<int16_t>(is);
        inst.latency = get<uint8_t>(is);
        inst.size = get<uint8_t>(is);
        inst.taken = get<uint8_t>(is) != 0;
        trace.push_back(inst);
    }
    return trace;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open '%s' for reading", path.c_str());
    return readTrace(is);
}

} // namespace shelf
