/**
 * @file
 * Binary serialization of instruction traces, so expensive or
 * externally produced workloads can be saved and replayed. The
 * format is versioned and endian-fixed (little-endian on disk):
 *
 *   8-byte magic "SHLFTRC1" | u64 instruction count |
 *   per instruction: pc u64, addr u64, op u8, src1 i16, src2 i16,
 *   dst i16, latency u8, size u8, taken u8
 */

#ifndef SHELFSIM_WORKLOAD_TRACE_IO_HH
#define SHELFSIM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/generator.hh"

namespace shelf
{

/** Serialize @p trace; fatal() on I/O failure. */
void writeTrace(const Trace &trace, std::ostream &os);
void writeTraceFile(const Trace &trace, const std::string &path);

/** Deserialize; fatal() on bad magic/corruption. */
Trace readTrace(std::istream &is);
Trace readTraceFile(const std::string &path);

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_TRACE_IO_HH
