/**
 * @file
 * Binary serialization of instruction traces, so expensive or
 * externally produced workloads can be saved and replayed. Trace
 * files are untrusted external input: a corrupted or truncated file
 * must never crash the process, allocate unbounded memory, or decode
 * garbage as instructions.
 *
 * Two on-disk formats exist, both little-endian:
 *
 * SHLFTRC2 (current) — chunked, checksummed, optionally deflated:
 *
 *   file header : magic "SHLFTRC2" (8) | u32 chunkCapacity | u32
 *                 flags (bit0 = chunks deflate-compressed; all other
 *                 bits must be zero)
 *   chunk       : magic "SHLFCHNK" (8) | u32 count | u32 rawBytes |
 *                 u32 compBytes | u32 crc32 | payload[compBytes]
 *                 where count <= chunkCapacity, rawBytes ==
 *                 count * 26, and crc32 covers the three header
 *                 words *and* the payload, so a flipped bit in
 *                 either is caught.
 *   trailer     : magic "SHLFTEND" (8) | u64 totalCount | u32
 *                 fileCrc (crc32 of all raw record bytes in order) |
 *                 u32 trailerCrc (crc32 of the preceding 12 bytes)
 *
 *   record (26B): pc u64, addr u64, op u8, src1 i16, src2 i16,
 *                 dst i16, latency u8, size u8, taken u8
 *
 * SHLFTRC1 (legacy, read-only) — magic | u64 count | records. Still
 * readable through the same entry points (with a one-shot
 * deprecation warning); convert with `shelfsim_trace convert`.
 *
 * Every reader validates lengths/counts against remaining stream
 * bytes and configurable caps *before* any allocation, and reports
 * failures through the TraceError taxonomy instead of fatal().
 * Callers choose fail-precise (default) or skip-and-resync, which
 * drops corrupt chunks, rescans for the next chunk magic, and
 * surfaces the damage as counted TraceReadStats.
 */

#ifndef SHELFSIM_WORKLOAD_TRACE_IO_HH
#define SHELFSIM_WORKLOAD_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/generator.hh"

namespace shelf
{

/** Why a trace failed to parse. Values are ordered roughly by where
 * in the stream the problem sits; names are stable (tests and the
 * fuzzer assert on them via traceErrorName()). */
enum class TraceError
{
    None = 0,
    BadMagic,        ///< not a shelfsim trace at all
    BadVersion,      ///< "SHLFTRC" prefix with an unknown version
    TruncatedHeader, ///< stream ended inside the file header
    BadHeader,       ///< header field out of range (capacity, flags)
    TruncatedChunk,  ///< stream ended inside a chunk
    BadChunkHeader,  ///< chunk lengths inconsistent with each other
    ChunkTooLarge,   ///< chunk exceeds the configured caps
    CrcMismatch,     ///< chunk or trailer checksum wrong
    DecompressError, ///< deflate payload does not inflate cleanly
    BadOperand,      ///< op class or register index out of range
    TruncatedTrailer,///< stream ended before a complete trailer
    CountMismatch,   ///< trailer total != instructions decoded
    FileCrcMismatch, ///< whole-file checksum wrong
    TrailingGarbage, ///< bytes after the trailer
    TooManyInstructions, ///< maxInstructions resource cap exceeded
    Io,              ///< open/read/write failure
};

/** Stable symbolic name, e.g. "CrcMismatch". */
const char *traceErrorName(TraceError e);

/** Resource caps and degradation policy for reading. The defaults
 * admit any plausible trace while keeping the worst-case allocation
 * of a hostile stream bounded by maxChunkInsts records, not by the
 * file's claimed totals. */
struct TraceReadOptions
{
    /** Hard cap on total decoded instructions. */
    uint64_t maxInstructions = 1ULL << 32;
    /** Hard cap on a single chunk's record count (bounds peak RSS). */
    uint32_t maxChunkInsts = 1u << 22;
    /** Skip corrupt chunks and resync at the next chunk magic
     * instead of failing the whole trace. */
    bool skipCorrupt = false;
};

/** What a read actually saw — the surfaced degradation stats. */
struct TraceReadStats
{
    uint64_t instructions = 0; ///< records decoded successfully
    uint64_t chunks = 0;       ///< chunks decoded successfully
    uint64_t corruptChunks = 0;///< trace.corrupt_chunks: dropped
    uint64_t skippedBytes = 0; ///< bytes scanned over during resync
    /** First suppressed error in skip mode (what went wrong). */
    TraceError firstError = TraceError::None;
    std::string firstDetail;
};

struct TraceWriteOptions
{
    uint32_t chunkInsts = 1u << 16; ///< records per chunk
    bool compress = true;           ///< deflate chunk payloads
};

/**
 * Streaming SHLFTRC2 writer: buffers at most one chunk, so capture
 * of arbitrarily long runs stays bounded-memory. finish() must be
 * called (and checked) before the stream is used.
 */
class TraceStreamWriter
{
  public:
    explicit TraceStreamWriter(std::ostream &os,
                               TraceWriteOptions opt = {});
    ~TraceStreamWriter();

    TraceStreamWriter(const TraceStreamWriter &) = delete;
    TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

    void append(const TraceInst &inst);

    /** Flush the partial chunk and write the trailer. Returns false
     * with a message in @p err (if non-null) on stream failure. */
    bool finish(std::string *err = nullptr);

    uint64_t instructions() const { return total; }

  private:
    void flushChunk();

    std::ostream &os;
    TraceWriteOptions opt;
    std::string pending;   ///< encoded records of the open chunk
    uint32_t pendingCount = 0;
    uint64_t total = 0;
    uint32_t fileCrc;
    bool wroteHeader = false;
    bool finished = false;
    bool failed = false;
};

/**
 * Streaming SHLFTRC2 reader over any istream (files, sockets,
 * fuzzer buffers). Pull one decoded chunk at a time; memory use is
 * bounded by the chunk caps regardless of what the file claims.
 */
class TraceReader
{
  public:
    explicit TraceReader(std::istream &is, TraceReadOptions opt = {});

    /**
     * Decode the next chunk into @p chunk (replacing its contents).
     * Returns true while instructions keep arriving; false at clean
     * end-of-trace *or* on error — distinguish with error()/done().
     */
    bool next(std::vector<TraceInst> &chunk);

    /** Read and validate the file header without consuming any
     * chunk, so tools can report format fields up front. Idempotent;
     * returns false on header error. */
    bool prime();
    /** Valid after prime() / the first next(). */
    uint32_t chunkCapacityHint() const { return chunkCapacity; }
    bool compressedChunks() const { return deflated; }

    /** TraceError::None unless the read failed. */
    TraceError error() const { return err; }
    /** Human-readable failure detail (empty when error()==None). */
    const std::string &errorDetail() const { return detail; }
    /** True once the trailer was consumed and verified. */
    bool done() const { return sawEnd; }
    const TraceReadStats &stats() const { return st; }

  private:
    /** Chunk decode outcome: Corrupt is skippable, Hard is not. */
    enum class Step { Ok, Corrupt, Hard };

    bool readHeader();
    bool fail(TraceError e, std::string why);
    bool chunkFail(TraceError e, std::string why);
    bool resync(int &kind);
    Step decodeChunk(std::vector<TraceInst> &chunk);
    bool finishTrailer();

    std::istream &is;
    TraceReadOptions opt;
    TraceReadStats st;
    TraceError err = TraceError::None;
    std::string detail;
    uint32_t chunkCapacity = 0;
    bool deflated = false;
    bool headerDone = false;
    bool sawEnd = false;
    uint32_t runningCrc;
    std::string comp; ///< reused payload buffer
    std::string raw;  ///< reused inflate buffer
};

/** Serialize @p trace as SHLFTRC2. Returns false + @p err on I/O
 * failure. The file variant publishes atomically via tmp+rename. */
bool writeTrace2(const Trace &trace, std::ostream &os,
                 const TraceWriteOptions &opt = {},
                 std::string *err = nullptr);
bool writeTrace2File(const Trace &trace, const std::string &path,
                     const TraceWriteOptions &opt = {},
                     std::string *err = nullptr);

/**
 * Read a whole trace, auto-detecting SHLFTRC2 vs legacy SHLFTRC1.
 * Returns false on failure with the error class in @p errOut and a
 * precise message in @p detail (both optional). @p stats (optional)
 * receives degradation counters — meaningful mainly with
 * opt.skipCorrupt, where corrupt chunks are dropped and the call
 * still succeeds.
 */
bool tryReadTrace(std::istream &is, Trace &out,
                  const TraceReadOptions &opt = {},
                  TraceError *errOut = nullptr,
                  std::string *detail = nullptr,
                  TraceReadStats *stats = nullptr);
bool tryReadTraceFile(const std::string &path, Trace &out,
                      const TraceReadOptions &opt = {},
                      TraceError *errOut = nullptr,
                      std::string *detail = nullptr,
                      TraceReadStats *stats = nullptr);

/**
 * Content hash of a trace file: fnv1a64 over the raw file bytes,
 * rendered as 16 lowercase hex digits. This is what the canonical
 * job key carries, so two different files at the same path can
 * never alias in the result cache. Returns false + @p err when the
 * file cannot be read.
 */
bool tryTraceFileHash(const std::string &path, std::string &hexHash,
                      std::string &err);

/** Legacy fatal() API, kept for callers that cannot degrade.
 * writeTrace emits SHLFTRC1 (deprecated; for compat tests only);
 * writeTraceFile emits SHLFTRC2 atomically; the readers auto-detect
 * both formats and fatal() with the reader's precise message. */
void writeTrace(const Trace &trace, std::ostream &os);
void writeTraceFile(const Trace &trace, const std::string &path);
Trace readTrace(std::istream &is);
Trace readTraceFile(const std::string &path);

/** Re-arm the one-shot SHLFTRC1 deprecation warning (tests only). */
void resetTraceDeprecationWarning();

/**
 * Silence the SHLFTRC1 deprecation warning for this process.
 * Isolated sweep workers call this: each `--worker` spawn is a fresh
 * process, so the "one-shot" warning would re-fire per job and spam
 * every captured stderr tail of a legacy-trace sweep. The supervisor
 * CLI front end warns once on its own; workers stay quiet.
 */
void suppressTraceDeprecationWarning();

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_TRACE_IO_HH
