#include "workload/profile.hh"

#include "base/logging.hh"

namespace shelf
{

void
BenchmarkProfile::validate() const
{
    auto check_frac = [&](double v, const char *what) {
        fatal_if(v < 0.0 || v > 1.0, "profile %s: %s=%f out of [0,1]",
                 name.c_str(), what, v);
    };
    check_frac(loadFrac, "loadFrac");
    check_frac(storeFrac, "storeFrac");
    check_frac(branchFrac, "branchFrac");
    check_frac(fpFrac, "fpFrac");
    check_frac(mulFrac, "mulFrac");
    check_frac(divFrac, "divFrac");
    check_frac(immFrac, "immFrac");
    check_frac(streamFrac, "streamFrac");
    check_frac(pointerChaseFrac, "pointerChaseFrac");
    check_frac(branchRandomFrac, "branchRandomFrac");
    fatal_if(loadFrac + storeFrac + branchFrac + mulFrac + divFrac > 1.0,
             "profile %s: instruction mix exceeds 1.0", name.c_str());
    fatal_if(depGeoP <= 0.0 || depGeoP > 1.0,
             "profile %s: depGeoP=%f out of (0,1]", name.c_str(),
             depGeoP);
    fatal_if(workingSetKB == 0, "profile %s: zero working set",
             name.c_str());
    fatal_if(staticBranches == 0, "profile %s: zero static branches",
             name.c_str());
}

} // namespace shelf
