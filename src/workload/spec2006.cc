#include "workload/spec2006.hh"

#include "base/logging.hh"

namespace shelf
{

namespace
{

BenchmarkProfile
make(const char *name, double load, double store, double branch,
     double fp, double mul, double div, double dep_p, double imm,
     unsigned ws_kb, double stream, double chase, double brand)
{
    BenchmarkProfile p;
    p.name = name;
    p.loadFrac = load;
    p.storeFrac = store;
    p.branchFrac = branch;
    p.fpFrac = fp;
    p.mulFrac = mul;
    p.divFrac = div;
    p.depGeoP = dep_p;
    p.immFrac = imm;
    p.workingSetKB = ws_kb;
    p.streamFrac = stream;
    p.pointerChaseFrac = chase;
    p.branchRandomFrac = brand;
    // ILP through chain-breaking leaf operands: high-throughput
    // kernels read many long-lived values; pointer chasers few.
    p.farFrac = 0.55 - 0.6 * dep_p - 0.5 * chase;
    if (p.farFrac < 0.10)
        p.farFrac = 0.10;
    // Serial expression chains are longer in dependence-heavy code.
    p.serialChainFrac = 0.20 + 0.5 * dep_p;
    p.validate();
    return p;
}

std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> v;
    // CINT2006 ---------------------------------------------------------
    //            name        load  store branch fp   mul   div   depP  imm   wsKB    strm chase brnd
    v.push_back(make("perlbench", 0.28, 0.14, 0.15, 0.00, 0.01, 0.002, 0.45, 0.30, 512,   0.70, 0.04, 0.06));
    v.push_back(make("bzip2",     0.26, 0.09, 0.12, 0.00, 0.02, 0.001, 0.30, 0.35, 2048,  0.65, 0.02, 0.12));
    v.push_back(make("gcc",       0.26, 0.13, 0.16, 0.00, 0.01, 0.002, 0.45, 0.30, 4096,  0.55, 0.06, 0.08));
    v.push_back(make("mcf",       0.31, 0.09, 0.17, 0.00, 0.01, 0.001, 0.50, 0.25, 32768, 0.15, 0.35, 0.10));
    v.push_back(make("gobmk",     0.25, 0.12, 0.15, 0.00, 0.02, 0.002, 0.40, 0.30, 1024,  0.60, 0.03, 0.16));
    v.push_back(make("hmmer",     0.37, 0.13, 0.07, 0.00, 0.03, 0.001, 0.22, 0.40, 256,   0.90, 0.00, 0.02));
    v.push_back(make("sjeng",     0.22, 0.09, 0.16, 0.00, 0.02, 0.002, 0.40, 0.32, 512,   0.60, 0.03, 0.18));
    v.push_back(make("libquantum",0.25, 0.07, 0.20, 0.00, 0.04, 0.001, 0.25, 0.40, 16384, 0.95, 0.00, 0.02));
    v.push_back(make("h264ref",   0.35, 0.12, 0.07, 0.02, 0.05, 0.002, 0.25, 0.38, 512,   0.85, 0.01, 0.05));
    v.push_back(make("omnetpp",   0.31, 0.16, 0.14, 0.00, 0.01, 0.002, 0.50, 0.25, 8192,  0.30, 0.22, 0.09));
    v.push_back(make("astar",     0.27, 0.09, 0.15, 0.00, 0.01, 0.001, 0.48, 0.28, 4096,  0.35, 0.18, 0.14));
    v.push_back(make("xalancbmk", 0.29, 0.10, 0.17, 0.00, 0.01, 0.002, 0.48, 0.28, 8192,  0.40, 0.15, 0.07));
    // CFP2006 ----------------------------------------------------------
    v.push_back(make("bwaves",    0.32, 0.09, 0.06, 0.45, 0.03, 0.004, 0.22, 0.35, 16384, 0.92, 0.00, 0.02));
    v.push_back(make("gamess",    0.28, 0.10, 0.08, 0.40, 0.03, 0.006, 0.30, 0.35, 256,   0.85, 0.00, 0.04));
    v.push_back(make("milc",      0.30, 0.13, 0.03, 0.48, 0.03, 0.002, 0.25, 0.35, 24576, 0.85, 0.00, 0.02));
    v.push_back(make("zeusmp",    0.26, 0.11, 0.04, 0.42, 0.03, 0.004, 0.28, 0.35, 8192,  0.80, 0.00, 0.03));
    v.push_back(make("gromacs",   0.27, 0.13, 0.05, 0.45, 0.04, 0.008, 0.27, 0.35, 512,   0.85, 0.00, 0.04));
    v.push_back(make("cactusADM", 0.35, 0.12, 0.01, 0.50, 0.03, 0.006, 0.30, 0.30, 12288, 0.75, 0.00, 0.01));
    v.push_back(make("leslie3d",  0.30, 0.12, 0.04, 0.45, 0.03, 0.003, 0.25, 0.33, 16384, 0.88, 0.00, 0.02));
    v.push_back(make("namd",      0.28, 0.08, 0.05, 0.50, 0.04, 0.004, 0.22, 0.38, 512,   0.88, 0.00, 0.03));
    v.push_back(make("soplex",    0.32, 0.08, 0.13, 0.25, 0.02, 0.004, 0.42, 0.28, 16384, 0.50, 0.08, 0.08));
    v.push_back(make("povray",    0.28, 0.12, 0.12, 0.30, 0.03, 0.006, 0.38, 0.30, 128,   0.70, 0.03, 0.07));
    v.push_back(make("calculix",  0.28, 0.10, 0.06, 0.42, 0.04, 0.006, 0.26, 0.35, 1024,  0.85, 0.00, 0.03));
    v.push_back(make("GemsFDTD",  0.33, 0.12, 0.03, 0.45, 0.03, 0.003, 0.28, 0.32, 20480, 0.85, 0.00, 0.02));
    v.push_back(make("tonto",     0.28, 0.11, 0.07, 0.40, 0.03, 0.005, 0.30, 0.34, 1024,  0.80, 0.00, 0.04));
    v.push_back(make("lbm",       0.26, 0.16, 0.01, 0.50, 0.02, 0.002, 0.24, 0.33, 28672, 0.95, 0.00, 0.01));
    v.push_back(make("wrf",       0.30, 0.10, 0.06, 0.42, 0.03, 0.004, 0.28, 0.34, 8192,  0.80, 0.00, 0.03));
    v.push_back(make("sphinx3",   0.34, 0.06, 0.08, 0.35, 0.03, 0.003, 0.28, 0.33, 4096,  0.80, 0.01, 0.05));
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
spec2006Profiles()
{
    static const std::vector<BenchmarkProfile> profiles = buildProfiles();
    return profiles;
}

const BenchmarkProfile &
spec2006Profile(const std::string &name)
{
    return spec2006Profiles()[spec2006Index(name)];
}

size_t
spec2006Index(const std::string &name)
{
    const auto &all = spec2006Profiles();
    for (size_t i = 0; i < all.size(); ++i)
        if (all[i].name == name)
            return i;
    fatal("unknown benchmark profile '%s'", name.c_str());
}

} // namespace shelf
