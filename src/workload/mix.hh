/**
 * @file
 * "Balanced Random" SMT workload mix generation (Velasquez et al.,
 * ISPASS 2013), as used by the paper: N mixes of T threads drawn from B
 * benchmarks such that every benchmark appears the same number of times
 * across the whole set of mixes.
 */

#ifndef SHELFSIM_WORKLOAD_MIX_HH
#define SHELFSIM_WORKLOAD_MIX_HH

#include <cstdint>
#include <string>
#include <vector>

namespace shelf
{

/** One SMT workload: the benchmark index run on each hardware thread. */
struct WorkloadMix
{
    std::vector<size_t> benchmarks;
    std::string name() const;
};

/**
 * Generate @p num_mixes mixes of @p threads threads over
 * @p num_benchmarks benchmarks.
 *
 * Requires num_mixes * threads to be divisible by num_benchmarks so
 * appearances balance exactly. No benchmark appears twice within one
 * mix (requires threads <= num_benchmarks).
 */
std::vector<WorkloadMix> balancedRandomMixes(size_t num_benchmarks,
                                             size_t threads,
                                             size_t num_mixes,
                                             uint64_t seed);

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_MIX_HH
