#include "workload/trace_import.hh"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

#include "base/strutil.hh"
#include "isa/arch.hh"

namespace shelf
{

namespace
{

/** Parse a SimpleO3 address token: 0x/0X hex or decimal. */
bool
parseAddr(const std::string &tok, uint64_t &out)
{
    if (tok.empty())
        return false;
    int base = 10;
    const char *p = tok.c_str();
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X')) {
        base = 16;
        p += 2;
        if (*p == '\0')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = strtoull(p, &end, base);
    if (errno != 0 || end == p || *end != '\0')
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

} // namespace

bool
tryImportSimpleO3(std::istream &is, Trace &out,
                  const TraceImportOptions &opt, std::string &err)
{
    out.clear();
    std::string line;
    uint64_t lineNo = 0;
    Addr pc = 0x1000;
    // Filler forms a short dependent chain through rotating
    // destination registers, with each access's base address
    // register fed by the last filler — the bubble instructions
    // gate the access like a real address computation would.
    RegId chain = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        std::vector<std::string> toks = split(line, ' ');
        std::vector<std::string> tokens;
        for (std::string &t : toks) {
            // split() keeps empty fields from repeated spaces; and
            // tolerate trailing \r from CRLF traces.
            while (!t.empty() &&
                   (t.back() == '\r' || t.back() == '\t'))
                t.pop_back();
            if (!t.empty())
                tokens.push_back(std::move(t));
        }
        if (tokens.empty() || tokens[0][0] == '#')
            continue;
        if (tokens.size() != 2) {
            err = csprintf("line %llu: expected '<addr> R|W', got "
                           "%zu tokens",
                           (unsigned long long)lineNo,
                           tokens.size());
            return false;
        }
        bool isWrite;
        if (tokens[1] == "R") {
            isWrite = false;
        } else if (tokens[1] == "W") {
            isWrite = true;
        } else {
            err = csprintf("line %llu: access type '%s' is neither "
                           "R nor W",
                           (unsigned long long)lineNo,
                           tokens[1].c_str());
            return false;
        }
        uint64_t addr;
        if (!parseAddr(tokens[0], addr)) {
            err = csprintf("line %llu: bad address '%s'",
                           (unsigned long long)lineNo,
                           tokens[0].c_str());
            return false;
        }
        addr = addr / 64 * 64; // cache-line aligned, like SimpleO3

        uint64_t emit = opt.bubbleCount + 1;
        if (out.size() + emit > opt.maxInstructions) {
            err = csprintf("line %llu: import exceeds the %llu-"
                           "instruction cap",
                           (unsigned long long)lineNo,
                           (unsigned long long)opt.maxInstructions);
            return false;
        }

        for (unsigned b = 0; b < opt.bubbleCount; ++b) {
            TraceInst f;
            f.pc = pc;
            pc += 4;
            f.op = OpClass::IntAlu;
            f.src1 = chain;
            chain = static_cast<RegId>(2 + (chain + 1) % 6);
            f.dst = chain;
            out.push_back(f);
        }
        TraceInst m;
        m.pc = pc;
        pc += 4;
        m.op = isWrite ? OpClass::MemWrite : OpClass::MemRead;
        m.addr = addr;
        m.size = 8;
        if (isWrite) {
            m.src1 = chain; // store data
            m.src2 = 8;     // base register
        } else {
            m.src1 = chain; // address computation feeds the load
            m.dst = 8;
        }
        out.push_back(m);
    }
    if (is.bad()) {
        err = "read failure on trace stream";
        return false;
    }
    err.clear();
    return true;
}

bool
tryImportSimpleO3File(const std::string &path, Trace &out,
                      const TraceImportOptions &opt,
                      std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = csprintf("cannot open '%s' for reading",
                       path.c_str());
        return false;
    }
    return tryImportSimpleO3(is, out, opt, err);
}

} // namespace shelf
