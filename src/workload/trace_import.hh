/**
 * @file
 * Importer for Ramulator2 SimpleO3-style text traces: one memory
 * access per line, `<addr> R|W`, with the address in 0x-hex or
 * decimal and cache-line (64 B) aligned on ingest. Between memory
 * accesses the SimpleO3 frontend injects a fixed number of
 * non-memory "bubble" instructions; the importer materializes those
 * as dependent IntAlu filler so the resulting Trace exercises the
 * same memory-level parallelism.
 *
 * Deviations from the reference loader (documented, deliberate):
 * blank lines and `#` comments are skipped (our committed samples
 * are self-describing), and W lines become real stores instead of
 * being dropped — this simulator models a store path.
 */

#ifndef SHELFSIM_WORKLOAD_TRACE_IMPORT_HH
#define SHELFSIM_WORKLOAD_TRACE_IMPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "workload/generator.hh"

namespace shelf
{

struct TraceImportOptions
{
    /** Filler (non-memory) instructions injected before each
     * memory access, like SimpleO3's bubble_count. */
    unsigned bubbleCount = 3;
    /** Hard cap on emitted instructions (caps hostile inputs). */
    uint64_t maxInstructions = 1ULL << 32;
};

/**
 * Parse a SimpleO3 text trace into @p out. Returns false with a
 * precise, line-numbered message in @p err on malformed input.
 */
bool tryImportSimpleO3(std::istream &is, Trace &out,
                       const TraceImportOptions &opt,
                       std::string &err);
bool tryImportSimpleO3File(const std::string &path, Trace &out,
                           const TraceImportOptions &opt,
                           std::string &err);

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_TRACE_IMPORT_HH
