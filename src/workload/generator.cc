#include "workload/generator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace shelf
{

namespace
{
// Keep the most recent writes available for dependence sampling.
constexpr size_t kWriteHistory = 48;
// Number of strided streams per thread.
constexpr size_t kNumStreams = 4;
// Integer destinations rotate over the first registers; the remainder
// act as long-lived values (stack pointer etc.) read occasionally.
constexpr unsigned kIntDstRegs = 12;
// FP destinations rotate over the first FP registers likewise.
constexpr unsigned kFpDstRegs = 24;
} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               uint64_t seed, Addr data_base)
    : prof(profile), rng(seed ^ 0xabcdef12345ULL), dataBase(data_base)
{
    prof.validate();

    // Spread stream pointers across the working set; the extra odd
    // stagger keeps concurrent streams out of the same cache set.
    Addr ws_bytes = static_cast<Addr>(prof.workingSetKB) * 1024;
    for (size_t i = 0; i < kNumStreams; ++i) {
        Addr offset = ((ws_bytes / kNumStreams) * i + 2112 * i)
            % ws_bytes;
        streams.push_back(dataBase + offset);
    }

    // Code segment lives away from data. Branch PCs occupy the first
    // bytes of the region; sequential PCs cycle through the rest.
    codeBase = 0x40000000 + data_base;
    codeSize = 8 * 1024;
    pcCursor = codeBase + 4 * prof.staticBranches;

    // Static branches: biased (learnable) or data-dependent (random).
    for (unsigned i = 0; i < prof.staticBranches; ++i) {
        BranchCtx ctx;
        ctx.pc = codeBase + 4 * i;
        if (rng.chance(prof.branchRandomFrac))
            ctx.takenBias = -1.0;
        else
            ctx.takenBias = rng.chance(0.75) ? 0.96 : 0.04;
        branches.push_back(ctx);
    }
}

RegId
TraceGenerator::pickIntSource()
{
    // Long-lived values (base pointers, loop invariants) live in the
    // registers the destination rotation never touches; they are
    // always ready and break dependence chains.
    if (intWrites.empty() || rng.chance(prof.farFrac)) {
        return static_cast<RegId>(
            kIntDstRegs + rng.below(kNumIntRegs - kIntDstRegs));
    }
    size_t d = rng.geometric(prof.depGeoP);
    if (d >= intWrites.size())
        d = intWrites.size() - 1;
    return intWrites[d];
}

RegId
TraceGenerator::pickFpSource()
{
    if (fpWrites.empty() || rng.chance(prof.farFrac)) {
        return static_cast<RegId>(
            kFirstFpReg + kFpDstRegs +
            rng.below(kNumFpRegs - kFpDstRegs));
    }
    size_t d = rng.geometric(prof.depGeoP);
    if (d >= fpWrites.size())
        d = fpWrites.size() - 1;
    return fpWrites[d];
}

RegId
TraceGenerator::pickIntDest()
{
    // Rotate with a random skip to produce realistic WAW spacing.
    intDstCursor = (intDstCursor + 1 +
                    static_cast<unsigned>(rng.below(3))) % kIntDstRegs;
    RegId r = static_cast<RegId>(intDstCursor);
    intWrites.insert(intWrites.begin(), r);
    if (intWrites.size() > kWriteHistory)
        intWrites.pop_back();
    return r;
}

RegId
TraceGenerator::pickFpDest()
{
    fpDstCursor = (fpDstCursor + 1 +
                   static_cast<unsigned>(rng.below(5))) % kFpDstRegs;
    RegId r = static_cast<RegId>(kFirstFpReg + fpDstCursor);
    fpWrites.insert(fpWrites.begin(), r);
    if (fpWrites.size() > kWriteHistory)
        fpWrites.pop_back();
    return r;
}

Addr
TraceGenerator::pickDataAddr(bool is_store)
{
    Addr ws_bytes = static_cast<Addr>(prof.workingSetKB) * 1024;
    if (rng.chance(prof.streamFrac)) {
        // Strided access on one of the streams.
        streamCursor = (streamCursor + 1) % streams.size();
        Addr a = streams[streamCursor];
        streams[streamCursor] += 8;
        if (streams[streamCursor] >= dataBase + ws_bytes)
            streams[streamCursor] = dataBase;
        return a & ~Addr(7);
    }
    // Random access within the footprint.
    return (dataBase + (rng.below(ws_bytes) & ~Addr(7)));
}

TraceInst
TraceGenerator::nextInst()
{
    TraceInst inst;

    // Sequential synthetic PC within the code footprint.
    pcCursor += 4;
    if (pcCursor >= codeBase + codeSize)
        pcCursor = codeBase + 4 * prof.staticBranches;
    inst.pc = pcCursor;

    double roll = rng.real();
    double acc = prof.loadFrac;

    if (roll < acc) {
        // ---- Load ----
        inst.op = OpClass::MemRead;
        inst.size = 8;
        bool chase = prof.pointerChaseFrac > 0 && lastLoadDst != kNoReg &&
            rng.chance(prof.pointerChaseFrac);
        if (chase) {
            // Address depends on the previous load's result; the access
            // itself lands randomly in the footprint (cache-hostile).
            inst.src1 = lastLoadDst;
            Addr ws_bytes = static_cast<Addr>(prof.workingSetKB) * 1024;
            inst.addr = dataBase + (rng.below(ws_bytes) & ~Addr(7));
        } else {
            inst.src1 = pickIntSource();
            inst.addr = pickDataAddr(false);
        }
        bool fp_dest = prof.fpFrac > 0 && rng.chance(prof.fpFrac);
        inst.dst = fp_dest ? pickFpDest() : pickIntDest();
        lastLoadDst = inst.dst;
        return inst;
    }

    acc += prof.storeFrac;
    if (roll < acc) {
        // ---- Store ----
        inst.op = OpClass::MemWrite;
        inst.size = 8;
        inst.src1 = pickIntSource(); // address register
        inst.src2 = (prof.fpFrac > 0 && rng.chance(prof.fpFrac))
            ? pickFpSource() : pickIntSource(); // value
        inst.addr = pickDataAddr(true);
        return inst;
    }

    acc += prof.branchFrac;
    if (roll < acc) {
        // ---- Conditional branch ----
        // Branches appear in loop-structured order: the next static
        // branch in sequence, with occasional control transfers to a
        // random point (function calls / data-dependent paths).
        inst.op = OpClass::Branch;
        if (rng.chance(0.08))
            branchCursor = static_cast<unsigned>(
                rng.below(branches.size()));
        const BranchCtx &ctx = branches[branchCursor];
        branchCursor = (branchCursor + 1) %
            static_cast<unsigned>(branches.size());
        inst.pc = ctx.pc;
        inst.src1 = pickIntSource();
        inst.taken = ctx.takenBias < 0 ? rng.chance(0.5)
                                       : rng.chance(ctx.takenBias);
        return inst;
    }

    acc += prof.mulFrac;
    if (roll < acc) {
        bool fp = prof.fpFrac > 0 && rng.chance(prof.fpFrac);
        inst.op = fp ? OpClass::FloatMult : OpClass::IntMult;
        inst.src1 = fp ? pickFpSource() : pickIntSource();
        if (!rng.chance(prof.immFrac))
            inst.src2 = fp ? pickFpSource() : pickIntSource();
        inst.dst = fp ? pickFpDest() : pickIntDest();
        return inst;
    }

    acc += prof.divFrac;
    if (roll < acc) {
        bool fp = prof.fpFrac > 0 && rng.chance(prof.fpFrac);
        inst.op = fp ? OpClass::FloatDiv : OpClass::IntDiv;
        inst.src1 = fp ? pickFpSource() : pickIntSource();
        inst.src2 = fp ? pickFpSource() : pickIntSource();
        inst.dst = fp ? pickFpDest() : pickIntDest();
        return inst;
    }

    // ---- Plain ALU work ----
    bool fp = prof.fpFrac > 0 && rng.chance(prof.fpFrac);
    inst.op = fp ? OpClass::FloatAdd : OpClass::IntAlu;
    // Serial expression chains: continue from the previous
    // instruction's destination with profile-controlled frequency.
    RegId chain_src = fp
        ? (fpWrites.empty() ? kNoReg : fpWrites.front())
        : (intWrites.empty() ? kNoReg : intWrites.front());
    if (chain_src != kNoReg && rng.chance(prof.serialChainFrac))
        inst.src1 = chain_src;
    else
        inst.src1 = fp ? pickFpSource() : pickIntSource();
    if (!rng.chance(prof.immFrac))
        inst.src2 = fp ? pickFpSource() : pickIntSource();
    inst.dst = fp ? pickFpDest() : pickIntDest();
    return inst;
}

Trace
TraceGenerator::generate(size_t n)
{
    Trace trace;
    trace.reserve(n);
    for (size_t i = 0; i < n; ++i)
        trace.push_back(nextInst());
    return trace;
}

Trace
TraceGenerator::extractSubTrace(const BenchmarkProfile &profile,
                                uint64_t seed, Addr data_base,
                                size_t start, size_t len)
{
    TraceGenerator gen(profile, seed, data_base);
    Trace full = gen.generate(start + len);
    return Trace(full.begin() + static_cast<ptrdiff_t>(start),
                 full.end());
}

} // namespace shelf
