#include "workload/characterize.hh"

#include <unordered_map>
#include <unordered_set>

#include "base/strutil.hh"

namespace shelf
{

TraceCharacter
characterize(const Trace &trace)
{
    TraceCharacter c;
    c.instructions = trace.size();
    if (trace.empty())
        return c;

    size_t loads = 0, stores = 0, branches = 0, taken = 0, fp = 0;
    size_t dep_samples = 0, chase = 0;
    double dep_sum = 0;
    std::unordered_map<RegId, size_t> last_writer;
    std::unordered_map<RegId, bool> load_produced;
    std::unordered_set<Addr> blocks;

    for (size_t i = 0; i < trace.size(); ++i) {
        const TraceInst &inst = trace[i];
        if (inst.isLoad())
            ++loads;
        if (inst.isStore())
            ++stores;
        if (inst.isBranch()) {
            ++branches;
            if (inst.taken)
                ++taken;
        }
        if (isFloatOp(inst.op))
            ++fp;
        if (inst.isMem())
            blocks.insert(inst.addr >> 6);

        for (RegId src : {inst.src1, inst.src2}) {
            if (src == kNoReg)
                continue;
            auto it = last_writer.find(src);
            if (it != last_writer.end()) {
                dep_sum += static_cast<double>(i - it->second);
                ++dep_samples;
            }
            if (inst.isLoad()) {
                auto lp = load_produced.find(src);
                if (lp != load_produced.end() && lp->second)
                    ++chase;
            }
        }
        if (inst.hasDst()) {
            last_writer[inst.dst] = i;
            load_produced[inst.dst] = inst.isLoad();
        }
    }

    double n = static_cast<double>(trace.size());
    c.loadFrac = loads / n;
    c.storeFrac = stores / n;
    c.branchFrac = branches / n;
    c.fpFrac = fp / n;
    c.takenFrac = branches ? static_cast<double>(taken) / branches : 0;
    c.meanDepDistance = dep_samples ? dep_sum / dep_samples : 0;
    c.uniqueBlocksKB = static_cast<double>(blocks.size()) * 64.0 / 1024.0;
    c.chaseFrac = loads ? static_cast<double>(chase) / loads : 0;
    return c;
}

std::string
TraceCharacter::toString() const
{
    return csprintf(
        "insts=%zu load=%.3f store=%.3f branch=%.3f fp=%.3f taken=%.3f "
        "depdist=%.2f footprint=%.0fKB chase=%.3f",
        instructions, loadFrac, storeFrac, branchFrac, fpFrac, takenFrac,
        meanDepDistance, uniqueBlocksKB, chaseFrac);
}

} // namespace shelf
