/**
 * @file
 * Static characterization of a generated trace: measured instruction
 * mix, dependence distances, and memory/branch behaviour. Used by the
 * workload tests (to confirm the generator matches its profile) and by
 * the workload_explorer example.
 */

#ifndef SHELFSIM_WORKLOAD_CHARACTERIZE_HH
#define SHELFSIM_WORKLOAD_CHARACTERIZE_HH

#include <string>

#include "workload/generator.hh"

namespace shelf
{

struct TraceCharacter
{
    size_t instructions = 0;
    double loadFrac = 0;
    double storeFrac = 0;
    double branchFrac = 0;
    double fpFrac = 0;
    double takenFrac = 0;        ///< of branches
    double meanDepDistance = 0;  ///< producer->consumer spacing (insts)
    double uniqueBlocksKB = 0;   ///< touched 64B blocks, in KiB
    double chaseFrac = 0;        ///< loads sourcing a load-produced reg

    std::string toString() const;
};

/** Measure a trace. */
TraceCharacter characterize(const Trace &trace);

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_CHARACTERIZE_HH
