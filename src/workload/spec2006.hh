/**
 * @file
 * The 28 SPEC-CPU2006-like synthetic benchmark profiles used by the
 * paper's evaluation (SPEC CPU2006 minus dealII, which the authors also
 * excluded). Knob values approximate published characterizations of
 * each benchmark: instruction mix, ILP, footprint, pointer chasing,
 * and branch predictability.
 */

#ifndef SHELFSIM_WORKLOAD_SPEC2006_HH
#define SHELFSIM_WORKLOAD_SPEC2006_HH

#include <vector>

#include "workload/profile.hh"

namespace shelf
{

/** All 28 profiles, in a stable order. */
const std::vector<BenchmarkProfile> &spec2006Profiles();

/** Look up a profile by name; fatal() if unknown. */
const BenchmarkProfile &spec2006Profile(const std::string &name);

/** Index of a profile by name; fatal() if unknown. */
size_t spec2006Index(const std::string &name);

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_SPEC2006_HH
