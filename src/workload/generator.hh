/**
 * @file
 * Deterministic synthetic trace generator.
 *
 * Given a BenchmarkProfile and a seed, produces the dynamic instruction
 * stream of a simulated thread: register dataflow with profile-shaped
 * dependence distances, load/store address streams with configurable
 * locality and pointer chasing, and branches with learnable or random
 * outcomes. The same (profile, seed, base) triple always produces the
 * same trace, which makes squash/replay in the core model trivial
 * (squashed instructions are re-fetched from the trace by index).
 */

#ifndef SHELFSIM_WORKLOAD_GENERATOR_HH
#define SHELFSIM_WORKLOAD_GENERATOR_HH

#include <vector>

#include "base/random.hh"
#include "isa/static_inst.hh"
#include "workload/profile.hh"

namespace shelf
{

/** A dynamic instruction trace for one thread. */
using Trace = std::vector<TraceInst>;

class TraceGenerator
{
  public:
    /**
     * @param profile benchmark behaviour knobs
     * @param seed RNG seed (trace identity)
     * @param data_base base address of this thread's data segment;
     *        separates the address spaces of SMT threads
     */
    TraceGenerator(const BenchmarkProfile &profile, uint64_t seed,
                   Addr data_base = 0);

    /** Generate @p n instructions (appends nothing; fresh trace). */
    Trace generate(size_t n);

    /** The profile being generated. */
    const BenchmarkProfile &profile() const { return prof; }

    /**
     * The [start, start+len) slice of the trace that
     * TraceGenerator(profile, seed, data_base).generate(start + len)
     * would produce. Determinism makes regenerate-and-slice exact,
     * which lets the fuzzer shrink a failing case to a trace suffix
     * while reporting only (seed, start, len) in the repro line.
     */
    static Trace extractSubTrace(const BenchmarkProfile &profile,
                                 uint64_t seed, Addr data_base,
                                 size_t start, size_t len);

  private:
    TraceInst nextInst();

    RegId pickIntSource();
    RegId pickFpSource();
    RegId pickIntDest();
    RegId pickFpDest();
    Addr pickDataAddr(bool is_store);

    BenchmarkProfile prof;
    Random rng;
    Addr dataBase;

    /** Recent integer destination registers, most recent first. */
    std::vector<RegId> intWrites;
    /** Recent FP destination registers, most recent first. */
    std::vector<RegId> fpWrites;

    /** Destination rotation cursors. */
    unsigned intDstCursor = 0;
    unsigned fpDstCursor = 0;

    /** Sequential stream pointers for cache-friendly accesses. */
    std::vector<Addr> streams;
    unsigned streamCursor = 0;

    /** Static branch contexts: PC and taken-bias. */
    struct BranchCtx
    {
        Addr pc;
        double takenBias; // < 0 means random (data dependent)
    };
    std::vector<BranchCtx> branches;
    unsigned branchCursor = 0;

    /** Destination of the most recent load (for pointer chasing). */
    RegId lastLoadDst = kNoReg;

    /** Synthetic PC cursor for non-branch instructions. */
    Addr pcCursor;
    Addr codeBase;
    Addr codeSize;
};

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_GENERATOR_HH
