#include "workload/trace_capture.hh"

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

/** One thread's streaming sink: an AtomicFile-claimed temp file
 * with a chunked writer on top, published on finish(). */
struct TraceCapture::StreamSink
{
    explicit StreamSink(const std::string &path) : file(path) {}

    AtomicFile file;
    std::ofstream os;
    std::unique_ptr<TraceStreamWriter> writer;
};

TraceCapture::TraceCapture(unsigned threads,
                           uint64_t maxInstsPerThread)
    : cap(maxInstsPerThread),
      buffers(threads),
      counts(threads, 0),
      dropped(threads, 0)
{
}

TraceCapture::~TraceCapture() = default;

bool
TraceCapture::openFiles(const std::string &prefix,
                        const TraceWriteOptions &opt,
                        std::string &err)
{
    fatal_if(!sinks.empty(), "TraceCapture::openFiles called twice");
    for (unsigned t = 0; t < threads(); ++t) {
        std::string path = csprintf("%s%u.shlftrc", prefix.c_str(),
                                    t);
        auto sink = std::make_unique<StreamSink>(path);
        if (!sink->file.open(&err))
            return false;
        sink->os.open(sink->file.tmpPath(),
                      std::ios::binary | std::ios::trunc);
        if (!sink->os) {
            err = csprintf("cannot open '%s' for writing",
                           sink->file.tmpPath().c_str());
            return false;
        }
        sink->writer =
            std::make_unique<TraceStreamWriter>(sink->os, opt);
        sinkPaths.push_back(std::move(path));
        sinks.push_back(std::move(sink));
    }
    return true;
}

std::function<void(const DynInst &)>
TraceCapture::observer()
{
    return [this](const DynInst &inst) { record(inst); };
}

void
TraceCapture::record(const DynInst &inst)
{
    unsigned t = static_cast<unsigned>(inst.tid);
    if (t >= threads())
        return;
    if (!sinks.empty()) {
        sinks[t]->writer->append(inst.si);
        ++counts[t];
        return;
    }
    if (cap != 0 && counts[t] >= cap) {
        ++dropped[t];
        return;
    }
    buffers[t].push_back(inst.si);
    ++counts[t];
}

bool
TraceCapture::writeAll(const std::string &prefix,
                       const TraceWriteOptions &opt,
                       std::string &err,
                       std::vector<std::string> *paths)
{
    fatal_if(!sinks.empty(),
             "TraceCapture::writeAll on a streaming capture; use "
             "finish()");
    for (unsigned t = 0; t < threads(); ++t) {
        std::string path = csprintf("%s%u.shlftrc", prefix.c_str(),
                                    t);
        if (!writeTrace2File(buffers[t], path, opt, &err))
            return false;
        if (paths)
            paths->push_back(std::move(path));
    }
    return true;
}

bool
TraceCapture::finish(std::string &err,
                     std::vector<std::string> *paths)
{
    fatal_if(sinks.empty(),
             "TraceCapture::finish on a buffered capture; use "
             "writeAll()");
    for (unsigned t = 0; t < threads(); ++t) {
        StreamSink &s = *sinks[t];
        if (!s.writer->finish(&err))
            return false;
        s.os.close();
        if (!s.os) {
            err = csprintf("write failure on '%s'",
                           s.file.tmpPath().c_str());
            return false;
        }
        if (!s.file.publish(&err))
            return false;
        if (paths)
            paths->push_back(sinkPaths[t]);
    }
    return true;
}

} // namespace shelf
