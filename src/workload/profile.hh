/**
 * @file
 * Schema for synthetic benchmark profiles.
 *
 * A profile captures the first-order microarchitectural behaviour of a
 * benchmark: instruction mix, dependence spacing (instruction-level
 * parallelism), memory footprint and locality, pointer-chasing, and
 * branch predictability. The trace generator turns a profile plus a
 * seed into a deterministic dynamic instruction trace.
 *
 * This is the substitution for SPEC CPU2006 SimPoint regions (see
 * DESIGN.md section 2).
 */

#ifndef SHELFSIM_WORKLOAD_PROFILE_HH
#define SHELFSIM_WORKLOAD_PROFILE_HH

#include <string>

namespace shelf
{

struct BenchmarkProfile
{
    std::string name;

    /**
     * @name Instruction mix
     * Fractions must be in [0,1]; the remainder after memory, branch
     * and long-latency ops is simple ALU work.
     * @{
     */
    double loadFrac = 0.25;    ///< fraction of loads
    double storeFrac = 0.10;   ///< fraction of stores
    double branchFrac = 0.12;  ///< fraction of conditional branches
    double fpFrac = 0.0;       ///< fraction of ALU work on FP pipes
    double mulFrac = 0.02;     ///< fraction of multiplies
    double divFrac = 0.003;    ///< fraction of divides
    /** @} */

    /**
     * @name Dependence structure (ILP)
     * Sources pick a producer d instruction-writes back, with
     * d ~ 1 + Geometric(depGeoP); a smaller depGeoP spreads
     * dependences further apart (more ILP). immFrac sources are
     * immediates (no register dependence).
     * @{
     */
    double depGeoP = 0.35;
    double immFrac = 0.30;
    /**
     * Fraction of register sources reading long-lived values (loop
     * invariants, base pointers) that are essentially always ready;
     * these break dependence chains and create instruction-level
     * parallelism.
     */
    double farFrac = 0.35;
    /**
     * Fraction of instructions that continue a serial expression
     * chain (first source = the immediately preceding instruction's
     * destination). Real code computes through expression trees and
     * address chains, producing the multi-instruction in-sequence
     * series the paper's Figure 2 reports.
     */
    double serialChainFrac = 0.30;
    /** @} */

    /**
     * @name Memory behaviour
     * @{
     */
    unsigned workingSetKB = 256;   ///< footprint of random accesses
    double streamFrac = 0.70;      ///< strided (cache-friendly) accesses
    double pointerChaseFrac = 0.0; ///< loads whose address depends on
                                   ///< the previous load (serial chain)
    /** @} */

    /**
     * @name Control behaviour
     * A fraction of static branches are data-dependent coin flips the
     * predictor cannot learn; the rest are strongly biased.
     * @{
     */
    double branchRandomFrac = 0.08;
    unsigned staticBranches = 64;  ///< distinct static branch PCs
    /** @} */

    /** Verify all knobs are sane; fatal() on user error. */
    void validate() const;
};

} // namespace shelf

#endif // SHELFSIM_WORKLOAD_PROFILE_HH
