/**
 * @file
 * Operation classes of the abstract micro-ISA and their default
 * execution latencies (in cycles at the 2 GHz clock of Table I).
 */

#ifndef SHELFSIM_ISA_OP_CLASS_HH
#define SHELFSIM_ISA_OP_CLASS_HH

#include <cstdint>
#include <string>

namespace shelf
{

enum class OpClass : uint8_t
{
    Nop,
    IntAlu,
    IntMult,
    IntDiv,
    FloatAdd,
    FloatMult,
    FloatDiv,
    MemRead,
    MemWrite,
    Branch,
    NumOpClasses
};

constexpr size_t kNumOpClasses =
    static_cast<size_t>(OpClass::NumOpClasses);

/** Human-readable op class name. */
const char *opClassName(OpClass op);

/**
 * Default execution (functional-unit occupancy/result) latency per op
 * class. Memory op latency here covers address generation only; the
 * cache model adds access latency.
 */
unsigned defaultOpLatency(OpClass op);

/** True for ops executed on floating-point pipes. */
bool isFloatOp(OpClass op);

/** True for loads/stores. */
inline bool
isMemOp(OpClass op)
{
    return op == OpClass::MemRead || op == OpClass::MemWrite;
}

inline bool isLoadOp(OpClass op) { return op == OpClass::MemRead; }
inline bool isStoreOp(OpClass op) { return op == OpClass::MemWrite; }
inline bool isBranchOp(OpClass op) { return op == OpClass::Branch; }

} // namespace shelf

#endif // SHELFSIM_ISA_OP_CLASS_HH
