#include "isa/static_inst.hh"

#include "base/strutil.hh"

namespace shelf
{

std::string
TraceInst::toString() const
{
    std::string out = opClassName(op);
    if (dst != kNoReg)
        out += csprintf(" r%d <-", dst);
    if (src1 != kNoReg)
        out += csprintf(" r%d", src1);
    if (src2 != kNoReg)
        out += csprintf(", r%d", src2);
    if (isMem())
        out += csprintf(" @0x%llx", (unsigned long long)addr);
    if (isBranch())
        out += taken ? " taken" : " not-taken";
    return out;
}

} // namespace shelf
