/**
 * @file
 * Static instruction descriptor of the abstract micro-ISA: an op class,
 * up to two source registers, an optional destination register, and,
 * for memory/branch ops, the dynamic information the workload generator
 * attaches (effective address, branch outcome).
 *
 * A workload trace is a sequence of these descriptors; the core model
 * interprets them without executing real semantics (a performance
 * model, like gem5's TraceCPU).
 */

#ifndef SHELFSIM_ISA_STATIC_INST_HH
#define SHELFSIM_ISA_STATIC_INST_HH

#include <string>

#include "isa/arch.hh"
#include "isa/op_class.hh"

namespace shelf
{

struct TraceInst
{
    /** Synthetic PC; repeated static branches share a PC so that the
     * branch predictor can learn them. */
    Addr pc = 0;

    OpClass op = OpClass::Nop;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    RegId dst = kNoReg;

    /** Execution latency; 0 means use defaultOpLatency(op). */
    uint8_t latency = 0;

    /** Effective address for loads/stores. */
    Addr addr = 0;
    /** Access size in bytes for loads/stores. */
    uint8_t size = 0;

    /** Actual branch outcome for Branch ops. */
    bool taken = false;

    /** Resolved execution latency. */
    unsigned execLatency() const
    {
        return latency ? latency : defaultOpLatency(op);
    }

    bool isLoad() const { return isLoadOp(op); }
    bool isStore() const { return isStoreOp(op); }
    bool isMem() const { return isMemOp(op); }
    bool isBranch() const { return isBranchOp(op); }
    bool hasDst() const { return dst != kNoReg; }

    /** Render as e.g. "IntAlu r3 <- r1, r2". */
    std::string toString() const;
};

} // namespace shelf

#endif // SHELFSIM_ISA_STATIC_INST_HH
