#include "isa/op_class.hh"

#include "base/logging.hh"

namespace shelf
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::Nop: return "Nop";
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMult: return "IntMult";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FloatAdd: return "FloatAdd";
      case OpClass::FloatMult: return "FloatMult";
      case OpClass::FloatDiv: return "FloatDiv";
      case OpClass::MemRead: return "MemRead";
      case OpClass::MemWrite: return "MemWrite";
      case OpClass::Branch: return "Branch";
      default: panic("bad op class %d", static_cast<int>(op));
    }
}

unsigned
defaultOpLatency(OpClass op)
{
    switch (op) {
      case OpClass::Nop: return 1;
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 3;
      case OpClass::IntDiv: return 12;
      case OpClass::FloatAdd: return 2;
      case OpClass::FloatMult: return 4;
      case OpClass::FloatDiv: return 12;
      case OpClass::MemRead: return 1;  // address generation
      case OpClass::MemWrite: return 1; // address generation
      case OpClass::Branch: return 1;
      default: panic("bad op class %d", static_cast<int>(op));
    }
}

bool
isFloatOp(OpClass op)
{
    return op == OpClass::FloatAdd || op == OpClass::FloatMult ||
        op == OpClass::FloatDiv;
}

} // namespace shelf
