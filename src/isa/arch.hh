/**
 * @file
 * Architectural constants of the abstract micro-ISA.
 *
 * The register file is ARM-v7-like in size: 16 general-purpose integer
 * registers and 32 floating-point registers, addressed through a single
 * flat architectural register namespace.
 */

#ifndef SHELFSIM_ISA_ARCH_HH
#define SHELFSIM_ISA_ARCH_HH

#include <cstdint>

namespace shelf
{

/** Architectural register identifier (flat namespace). */
using RegId = int16_t;

/** Marker for "no register". */
constexpr RegId kNoReg = -1;

constexpr unsigned kNumIntRegs = 16;
constexpr unsigned kNumFpRegs = 32;
constexpr unsigned kNumArchRegs = kNumIntRegs + kNumFpRegs;

/** First floating-point register in the flat namespace. */
constexpr RegId kFirstFpReg = kNumIntRegs;

inline bool
isFpReg(RegId r)
{
    return r >= kFirstFpReg;
}

/** Hardware thread identifier. */
using ThreadID = int8_t;
constexpr ThreadID kInvalidThread = -1;
constexpr unsigned kMaxThreads = 8;

/** Simulation cycle count. */
using Cycle = uint64_t;

/** Global (per-core) dynamic-instruction sequence number. */
using SeqNum = uint64_t;

/** Byte address in the simulated memory space. */
using Addr = uint64_t;

} // namespace shelf

#endif // SHELFSIM_ISA_ARCH_HH
