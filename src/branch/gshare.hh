/**
 * @file
 * A gshare conditional branch direction predictor with per-thread
 * global history (SMT threads must not alias each other's history).
 *
 * The simulator is trace-driven, so the predictor only decides
 * *whether* a branch will be flagged mispredicted (squash + redirect
 * penalty); targets always come from the trace.
 */

#ifndef SHELFSIM_BRANCH_GSHARE_HH
#define SHELFSIM_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "isa/arch.hh"

namespace shelf
{

class GsharePredictor
{
  public:
    /**
     * @param table_bits log2 of the pattern history table size
     * @param history_bits global history length per thread
     */
    GsharePredictor(unsigned table_bits = 13, unsigned history_bits = 12,
                    unsigned threads = kMaxThreads);

    /** Predict direction at fetch. */
    bool predict(ThreadID tid, Addr pc) const;

    /**
     * Update PHT and history with the actual outcome; returns true if
     * the earlier prediction was wrong.
     */
    bool update(ThreadID tid, Addr pc, bool taken);

    /** Squash recovery: restore history to a checkpointed value. */
    uint64_t history(ThreadID tid) const { return hist[tid]; }
    void setHistory(ThreadID tid, uint64_t h) { hist[tid] = h; }

    void reset();

    stats::Scalar lookups;
    stats::Scalar mispredicts;

    double
    mispredictRate() const
    {
        return lookups.value() > 0
            ? mispredicts.value() / lookups.value() : 0.0;
    }

  private:
    size_t index(ThreadID tid, Addr pc) const;

    unsigned tableBits;
    unsigned historyBits;
    std::vector<uint8_t> pht; ///< 2-bit saturating counters
    std::vector<uint64_t> hist;
};

} // namespace shelf

#endif // SHELFSIM_BRANCH_GSHARE_HH
