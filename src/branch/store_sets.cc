#include "branch/store_sets.hh"

#include <algorithm>

#include "base/bitutil.hh"

namespace shelf
{

StoreSets::StoreSets(unsigned ssit_bits, unsigned sets)
    : ssitBits(ssit_bits), ssit(1ULL << ssit_bits, kNoSet), lfst(sets)
{}

size_t
StoreSets::ssitIndex(Addr pc) const
{
    return static_cast<size_t>((pc >> 2) & mask(ssitBits));
}

void
StoreSets::recordViolation(Addr load_pc, Addr store_pc)
{
    ++violations;
    uint32_t &ld = ssit[ssitIndex(load_pc)];
    uint32_t &st = ssit[ssitIndex(store_pc)];
    if (ld == kNoSet && st == kNoSet) {
        uint32_t id = nextSetId++ % lfst.size();
        ld = st = id;
    } else if (ld == kNoSet) {
        ld = st;
    } else if (st == kNoSet) {
        st = ld;
    } else {
        // Merge: both adopt the smaller id (declarative convergence).
        uint32_t id = std::min(ld, st);
        ld = st = id;
    }
}

uint64_t
StoreSets::storeDispatched(Addr store_pc, uint64_t seq)
{
    uint32_t set = ssit[ssitIndex(store_pc)];
    if (set == kNoSet)
        return kNoStore;
    uint64_t prior = lfst[set].lastStoreSeq;
    lfst[set].lastStoreSeq = seq;
    return prior;
}

uint64_t
StoreSets::loadDispatched(Addr load_pc) const
{
    uint32_t set = ssit[ssitIndex(load_pc)];
    if (set == kNoSet)
        return kNoStore;
    return lfst[set].lastStoreSeq;
}

void
StoreSets::storeIssued(Addr store_pc, uint64_t seq)
{
    uint32_t set = ssit[ssitIndex(store_pc)];
    if (set == kNoSet)
        return;
    if (lfst[set].lastStoreSeq == seq)
        lfst[set].lastStoreSeq = kNoStore;
}

void
StoreSets::squash(uint64_t seq)
{
    for (auto &e : lfst)
        if (e.lastStoreSeq != kNoStore && e.lastStoreSeq > seq)
            e.lastStoreSeq = kNoStore;
}

void
StoreSets::reset()
{
    std::fill(ssit.begin(), ssit.end(), kNoSet);
    for (auto &e : lfst)
        e.lastStoreSeq = kNoStore;
    nextSetId = 0;
    violations.reset();
}

} // namespace shelf
