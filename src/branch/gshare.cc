#include "branch/gshare.hh"

#include "base/bitutil.hh"
#include "base/logging.hh"

namespace shelf
{

GsharePredictor::GsharePredictor(unsigned table_bits,
                                 unsigned history_bits, unsigned threads)
    : tableBits(table_bits), historyBits(history_bits),
      pht(1ULL << table_bits, 2), // weakly taken
      hist(threads, 0)
{
    fatal_if(history_bits > 63, "history too long");
}

size_t
GsharePredictor::index(ThreadID tid, Addr pc) const
{
    uint64_t h = historyBits ? (hist[tid] & mask(historyBits)) : 0;
    // Multiplicative PC hash spreads the dense synthetic branch PCs
    // over the table so history XOR does not alias neighbouring
    // branches onto each other; salt with the thread id so SMT
    // threads do not alias destructively.
    uint64_t x = ((pc >> 2) * 0x9E3779B1ULL) ^ h ^
        (static_cast<uint64_t>(tid) << (tableBits - 3));
    return static_cast<size_t>(x & mask(tableBits));
}

bool
GsharePredictor::predict(ThreadID tid, Addr pc) const
{
    return pht[index(tid, pc)] >= 2;
}

bool
GsharePredictor::update(ThreadID tid, Addr pc, bool taken)
{
    ++lookups;
    size_t idx = index(tid, pc);
    bool predicted_taken = pht[idx] >= 2;
    if (taken && pht[idx] < 3)
        ++pht[idx];
    else if (!taken && pht[idx] > 0)
        --pht[idx];
    hist[tid] = ((hist[tid] << 1) | (taken ? 1 : 0)) & mask(historyBits);
    bool wrong = predicted_taken != taken;
    if (wrong)
        ++mispredicts;
    return wrong;
}

void
GsharePredictor::reset()
{
    std::fill(pht.begin(), pht.end(), 2);
    std::fill(hist.begin(), hist.end(), 0);
    lookups.reset();
    mispredicts.reset();
}

} // namespace shelf
