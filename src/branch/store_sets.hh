/**
 * @file
 * "Store sets" memory dependence predictor (Chrysos & Emer, ISCA 1998),
 * used by the paper (section III-D) to prevent frequent memory-order
 * squashes: loads that previously conflicted with a store are delayed
 * until that store (by store-set id) has issued.
 *
 * Classic SSIT/LFST structure:
 *  - SSIT: PC-indexed table mapping loads and stores to store-set ids.
 *  - LFST: per-set id of the last fetched store not yet issued.
 */

#ifndef SHELFSIM_BRANCH_STORE_SETS_HH
#define SHELFSIM_BRANCH_STORE_SETS_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "isa/arch.hh"

namespace shelf
{

class StoreSets
{
  public:
    static constexpr uint32_t kNoSet = ~0u;
    static constexpr uint64_t kNoStore = ~0ULL;

    StoreSets(unsigned ssit_bits = 11, unsigned sets = 128);

    /**
     * A memory-order violation occurred between @p load_pc and
     * @p store_pc: merge both into one store set.
     */
    void recordViolation(Addr load_pc, Addr store_pc);

    /**
     * A store is dispatched: returns the sequence number of the prior
     * unissued store in its set that this store (and dependent loads)
     * must wait behind, and registers @p seq as the set's last store.
     */
    uint64_t storeDispatched(Addr store_pc, uint64_t seq);

    /**
     * A load is dispatched: returns the sequence number of the store it
     * must wait for (kNoStore if unconstrained).
     */
    uint64_t loadDispatched(Addr load_pc) const;

    /** A store issued: clear it from the LFST if still registered. */
    void storeIssued(Addr store_pc, uint64_t seq);

    /** Squash: forget stores younger than @p seq. */
    void squash(uint64_t seq);

    void reset();

    stats::Scalar violations;

  private:
    size_t ssitIndex(Addr pc) const;

    unsigned ssitBits;
    std::vector<uint32_t> ssit;

    struct LfstEntry
    {
        uint64_t lastStoreSeq = kNoStore;
    };
    std::vector<LfstEntry> lfst;
    uint32_t nextSetId = 0;
};

} // namespace shelf

#endif // SHELFSIM_BRANCH_STORE_SETS_HH
