/**
 * @file
 * A tiny JSON writer and reader — just enough to export simulation
 * results in machine-readable form and to parse them back (job
 * specs, sweep journals, repro artifacts) without external
 * dependencies. The writer supports objects, arrays, strings
 * (escaped), numbers, and booleans through a streaming builder; the
 * reader produces a JsonValue tree from the same dialect.
 */

#ifndef SHELFSIM_BASE_JSON_HH
#define SHELFSIM_BASE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace shelf
{

class JsonWriter
{
  public:
    /**
     * @p doublePrecision is the significant-digit count used for
     * floating-point values. The default (10) keeps human-facing
     * exports readable; pass kFullPrecision (17) where an exact
     * double round trip through the text form matters (worker
     * result payloads, journal records).
     */
    explicit JsonWriter(int doublePrecision = 10)
        : precision(doublePrecision)
    {
        out.reserve(1024);
    }

    /** Significant digits that round-trip any finite double. */
    static constexpr int kFullPrecision = 17;

    /** @name Structure @{ */
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();
    /** @} */

    /** @name Key/value emission inside an object @{ */
    JsonWriter &field(const std::string &key, const std::string &v);
    JsonWriter &field(const std::string &key, const char *v);
    JsonWriter &field(const std::string &key, double v);
    JsonWriter &field(const std::string &key, uint64_t v);
    JsonWriter &field(const std::string &key, int v);
    JsonWriter &field(const std::string &key, bool v);
    /**
     * Emit an already-serialized JSON document verbatim under
     * @p key (job specs and result payloads embed each other
     * without reformatting, keeping journal records byte-stable).
     * The caller is responsible for @p json being valid.
     */
    JsonWriter &rawField(const std::string &key,
                         const std::string &json);
    /** Open a nested object under @p key. */
    JsonWriter &beginObject(const std::string &key);
    /** @} */

    /** @name Bare values inside an array @{ */
    JsonWriter &value(double v);
    JsonWriter &value(const std::string &v);
    /** @} */

    /** The serialized document (valid once all scopes closed). */
    const std::string &str() const { return out; }

    /** Escape a string per RFC 8259. */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void key(const std::string &k);

    int precision;
    std::string out;
    std::vector<bool> needComma; ///< per open scope
};

/**
 * One parsed JSON value. Numbers keep their source token in @p raw
 * so integers round-trip exactly (asU64()) and doubles parse lazily
 * (asDouble()); strings keep their unescaped contents in @p raw.
 * Object members preserve document order.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string raw;
    std::vector<JsonValue> items;                           ///< array
    std::vector<std::pair<std::string, JsonValue>> members; ///< object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Numeric value of a Number (0.0 otherwise). */
    double asDouble() const;
    /** Unsigned-integer value of a Number (0 otherwise). */
    uint64_t asU64() const;

    /** Object member lookup; nullptr when absent (or not an
     * object). */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse one JSON document. Returns false (with a human-readable
 * message in @p err when non-null) on malformed input instead of
 * aborting — resumable-journal loading must tolerate a torn final
 * line from a killed writer.
 */
bool tryParseJson(const std::string &text, JsonValue &out,
                  std::string *err = nullptr);

/** Parse one JSON document; fatal() on malformed input. */
JsonValue parseJson(const std::string &text);

} // namespace shelf

#endif // SHELFSIM_BASE_JSON_HH
