/**
 * @file
 * A tiny JSON writer — just enough to export simulation results in
 * machine-readable form without external dependencies. Supports
 * objects, arrays, strings (escaped), numbers, and booleans, built
 * through a streaming builder.
 */

#ifndef SHELFSIM_BASE_JSON_HH
#define SHELFSIM_BASE_JSON_HH

#include <string>
#include <vector>

namespace shelf
{

class JsonWriter
{
  public:
    JsonWriter() { out.reserve(1024); }

    /** @name Structure @{ */
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray(const std::string &key = "");
    JsonWriter &endArray();
    /** @} */

    /** @name Key/value emission inside an object @{ */
    JsonWriter &field(const std::string &key, const std::string &v);
    JsonWriter &field(const std::string &key, const char *v);
    JsonWriter &field(const std::string &key, double v);
    JsonWriter &field(const std::string &key, uint64_t v);
    JsonWriter &field(const std::string &key, int v);
    JsonWriter &field(const std::string &key, bool v);
    /** Open a nested object under @p key. */
    JsonWriter &beginObject(const std::string &key);
    /** @} */

    /** @name Bare values inside an array @{ */
    JsonWriter &value(double v);
    JsonWriter &value(const std::string &v);
    /** @} */

    /** The serialized document (valid once all scopes closed). */
    const std::string &str() const { return out; }

    /** Escape a string per RFC 8259. */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void key(const std::string &k);

    std::string out;
    std::vector<bool> needComma; ///< per open scope
};

} // namespace shelf

#endif // SHELFSIM_BASE_JSON_HH
