#include "base/json.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (!needComma.empty()) {
        if (needComma.back())
            out += ",";
        needComma.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out += "\"" + escape(k) + "\":";
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out += "{";
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out += "{";
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(needComma.empty(), "endObject without open scope");
    needComma.pop_back();
    out += "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &k)
{
    if (k.empty())
        comma();
    else
        key(k);
    out += "[";
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(needComma.empty(), "endArray without open scope");
    needComma.pop_back();
    out += "]";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    out += "\"" + escape(v) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const char *v)
{
    return field(k, std::string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    if (std::isfinite(v))
        out += csprintf("%.10g", v);
    else
        out += "null";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, uint64_t v)
{
    key(k);
    out += csprintf("%llu", (unsigned long long)v);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, int v)
{
    key(k);
    out += csprintf("%d", v);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    out += std::isfinite(v) ? csprintf("%.10g", v) : "null";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out += "\"" + escape(v) + "\"";
    return *this;
}

} // namespace shelf
