#include "base/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

namespace
{

/**
 * printf-%g-equivalent number formatting, but locale-independent:
 * std::to_chars always uses '.' as the decimal point, so JSON stays
 * parseable no matter what locale the host application installed.
 */
std::string
formatNumber(double v, int precision)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v,
                             std::chars_format::general, precision);
    return std::string(buf, res.ptr);
}

} // namespace

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonWriter::comma()
{
    if (!needComma.empty()) {
        if (needComma.back())
            out += ",";
        needComma.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out += "\"" + escape(k) + "\":";
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out += "{";
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out += "{";
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panic_if(needComma.empty(), "endObject without open scope");
    needComma.pop_back();
    out += "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &k)
{
    if (k.empty())
        comma();
    else
        key(k);
    out += "[";
    needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panic_if(needComma.empty(), "endArray without open scope");
    needComma.pop_back();
    out += "]";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    out += "\"" + escape(v) + "\"";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const char *v)
{
    return field(k, std::string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    if (std::isfinite(v))
        out += formatNumber(v, precision);
    else
        out += "null";
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, uint64_t v)
{
    key(k);
    out += csprintf("%llu", (unsigned long long)v);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, int v)
{
    key(k);
    out += csprintf("%d", v);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::rawField(const std::string &k, const std::string &json)
{
    key(k);
    out += json;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    out += std::isfinite(v) ? formatNumber(v, precision) : "null";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out += "\"" + escape(v) + "\"";
    return *this;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        return 0.0;
    // Locale-independent counterpart of the writer: '.' is always
    // the decimal point, whatever the process locale says.
    double v = 0.0;
    auto res = std::from_chars(raw.data(), raw.data() + raw.size(),
                               v);
    if (res.ec == std::errc::result_out_of_range)
        return raw[0] == '-' ? -HUGE_VAL : HUGE_VAL;
    return v;
}

uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number)
        return 0;
    return std::strtoull(raw.c_str(), nullptr, 10);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

/**
 * Recursive-descent reader for the dialect JsonWriter emits (plus
 * null, negative numbers, and exponents, which hand-written inputs
 * use). Depth is bounded to keep hostile inputs from overflowing
 * the stack.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        error.clear();
        if (!parseValue(out, 0)) {
            err = error;
            return false;
        }
        skipWs();
        if (pos != s.size()) {
            err = csprintf("trailing characters at offset %zu", pos);
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    bool
    expect(char c)
    {
        if (pos >= s.size())
            return fail("unexpected end of input");
        if (s[pos] != c) {
            return fail(csprintf("expected '%c', got '%c' at offset "
                                 "%zu", c, s[pos], pos));
        }
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        for (;;) {
            if (pos >= s.size())
                return fail("unexpected end of input in string");
            char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                return fail("unexpected end of input in escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos + 4 > s.size())
                      return fail("unexpected end of input in \\u");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = s[pos++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("bad \\u escape digit");
                  }
                  // The writer only emits \u00xx for control bytes;
                  // reject anything wider rather than mis-decoding.
                  if (code > 0xff)
                      return fail("unsupported \\u escape > 0xff");
                  out += static_cast<char>(code);
                  break;
              }
              default:
                return fail(csprintf("unsupported escape '\\%c'", e));
            }
        }
    }

    bool
    parseNumber(JsonValue &v)
    {
        size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-')) {
            ++pos;
        }
        std::string tok = s.substr(start, pos - start);
        const char *c = tok.c_str();
        // Validate with the locale-independent parser (strtod under
        // a comma-decimal locale would reject "2.5"). Out-of-range
        // magnitudes keep their raw text, matching strtod's old
        // saturate-don't-reject behavior.
        double parsed = 0;
        auto res =
            std::from_chars(c, c + tok.size(), parsed);
        if ((res.ec != std::errc() &&
             res.ec != std::errc::result_out_of_range) ||
            res.ptr != c + tok.size()) {
            return fail(csprintf("bad number '%s' at offset %zu",
                                 tok.c_str(), start));
        }
        // from_chars accepts leading zeros ("01"); JSON doesn't.
        const char *digits = tok[0] == '-' ? c + 1 : c;
        if (digits[0] == '0' &&
            std::isdigit(static_cast<unsigned char>(digits[1]))) {
            return fail(csprintf("bad number '%s' at offset %zu",
                                 tok.c_str(), start));
        }
        v.kind = JsonValue::Kind::Number;
        v.raw = std::move(tok);
        return true;
    }

    bool
    parseValue(JsonValue &v, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        char c = peek();
        if (c == '{') {
            ++pos;
            v.kind = JsonValue::Kind::Object;
            skipWs();
            if (peek() == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                v.members.emplace_back(std::move(key),
                                       std::move(member));
                skipWs();
                if (pos >= s.size())
                    return fail("unexpected end of input in object");
                char sep = s[pos++];
                if (sep == '}')
                    return true;
                if (sep != ',') {
                    return fail(csprintf("expected ',' or '}' at "
                                         "offset %zu", pos - 1));
                }
            }
        }
        if (c == '[') {
            ++pos;
            v.kind = JsonValue::Kind::Array;
            skipWs();
            if (peek() == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                v.items.push_back(std::move(item));
                skipWs();
                if (pos >= s.size())
                    return fail("unexpected end of input in array");
                char sep = s[pos++];
                if (sep == ']')
                    return true;
                if (sep != ',') {
                    return fail(csprintf("expected ',' or ']' at "
                                         "offset %zu", pos - 1));
                }
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            return parseString(v.raw);
        }
        if (s.compare(pos, 4, "true") == 0) {
            pos += 4;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return true;
        }
        if (s.compare(pos, 5, "false") == 0) {
            pos += 5;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return true;
        }
        if (s.compare(pos, 4, "null") == 0) {
            pos += 4;
            v.kind = JsonValue::Kind::Null;
            return true;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(v);
        return fail(csprintf("unexpected character '%c' at offset "
                             "%zu", c, pos));
    }

    const std::string &s;
    size_t pos = 0;
    std::string error;
};

} // namespace

bool
tryParseJson(const std::string &text, JsonValue &out,
             std::string *err)
{
    out = JsonValue();
    std::string e;
    if (JsonReader(text).parse(out, e))
        return true;
    if (err)
        *err = e;
    return false;
}

JsonValue
parseJson(const std::string &text)
{
    JsonValue v;
    std::string err;
    fatal_if(!tryParseJson(text, v, &err), "JSON: %s", err.c_str());
    return v;
}

} // namespace shelf
