#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace shelf
{

namespace
{

inline uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(uint64_t seed_value)
{
    uint64_t x = seed_value;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Random::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Random::below(uint64_t bound)
{
    panic_if(bound == 0, "Random::below(0)");
    // 128-bit multiply-shift mapping; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

int64_t
Random::range(int64_t lo, int64_t hi)
{
    panic_if(lo > hi, "Random::range(%lld, %lld)", (long long)lo,
             (long long)hi);
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Random::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

uint64_t
Random::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    panic_if(p <= 0.0, "geometric with p <= 0");
    double u = real();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

size_t
Random::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    panic_if(total <= 0.0, "weighted sample with non-positive total");
    double pick = real() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace shelf
