/**
 * @file
 * Printf-style std::string formatting and small string helpers.
 */

#ifndef SHELFSIM_BASE_STRUTIL_HH
#define SHELFSIM_BASE_STRUTIL_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace shelf
{

/** vsnprintf into a std::string. */
std::string vcsprintf(const char *fmt, va_list args);

/** snprintf into a std::string. */
std::string csprintfRaw(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Type-safe-ish printf into std::string. Arguments are forwarded to
 * snprintf; std::string arguments are not supported (use .c_str()).
 */
template <typename... Args>
inline std::string
csprintf(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        return csprintfRaw(fmt, std::forward<Args>(args)...);
    }
}

/** Split a string on a delimiter. */
std::vector<std::string> split(const std::string &s, char delim);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

} // namespace shelf

#endif // SHELFSIM_BASE_STRUTIL_HH
