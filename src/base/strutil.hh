/**
 * @file
 * Printf-style std::string formatting and small string helpers.
 */

#ifndef SHELFSIM_BASE_STRUTIL_HH
#define SHELFSIM_BASE_STRUTIL_HH

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace shelf
{

/** vsnprintf into a std::string. */
std::string vcsprintf(const char *fmt, va_list args);

/** snprintf into a std::string. */
std::string csprintfRaw(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Type-safe-ish printf into std::string. Arguments are forwarded to
 * snprintf; std::string arguments are not supported (use .c_str()).
 */
template <typename... Args>
inline std::string
csprintf(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        return csprintfRaw(fmt, std::forward<Args>(args)...);
    }
}

/** Split a string on a delimiter. */
std::vector<std::string> split(const std::string &s, char delim);

/**
 * @name Strict whole-string numeric parsing
 * Unlike atoi/atoll, these reject empty strings, trailing garbage
 * ("12abc"), and out-of-range values; tryParseU64 additionally
 * rejects negative input and tryParseDouble rejects NaN/infinity.
 * CLI flag and environment-variable parsing use these so a typo
 * fails loudly instead of silently running a zero-length sweep.
 * @{
 */
bool tryParseU64(const std::string &s, uint64_t &out);
bool tryParseI64(const std::string &s, int64_t &out);
bool tryParseDouble(const std::string &s, double &out);
/** @} */

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/**
 * 64-bit FNV-1a hash. Stable across platforms and runs; used to
 * derive short, log-friendly identifiers from job-spec JSON (worker
 * log tags), not for anything adversarial.
 */
uint64_t fnv1a64(const std::string &s);

} // namespace shelf

#endif // SHELFSIM_BASE_STRUTIL_HH
