/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef SHELFSIM_BASE_BITUTIL_HH
#define SHELFSIM_BASE_BITUTIL_HH

#include <cstdint>

namespace shelf
{

/** True if @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); log2Floor(0) is undefined (returns 0). */
constexpr unsigned
log2Floor(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2(v). */
constexpr unsigned
log2Ceil(uint64_t v)
{
    return v <= 1 ? 0 : log2Floor(v - 1) + 1;
}

/** A mask with the low @p bits set. */
constexpr uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr uint64_t
bits(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & mask(len);
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr uint64_t
roundDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Index of the lowest set bit; undefined for v == 0 (returns 64). */
inline unsigned
countTrailingZeros(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return v ? static_cast<unsigned>(__builtin_ctzll(v)) : 64;
#else
    if (!v)
        return 64;
    unsigned r = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++r;
    }
    return r;
#endif
}

/** Population count. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

} // namespace shelf

#endif // SHELFSIM_BASE_BITUTIL_HH
