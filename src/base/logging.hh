/**
 * @file
 * Logging and error-reporting helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in
 *             shelfsim itself); aborts.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); exits with code 1.
 * warn()   -- something is approximated or suspicious but the simulation
 *             can continue.
 * inform() -- status messages.
 */

#ifndef SHELFSIM_BASE_LOGGING_HH
#define SHELFSIM_BASE_LOGGING_HH

#include <cstdlib>
#include <functional>
#include <string>

#include "base/strutil.hh"

namespace shelf
{

/** Internal: print a formatted message with a severity prefix. */
void logMessage(const char *level, const std::string &msg);

/** Abort with a message: simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a message: user error. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Toggle warn()/inform() output (tests silence it). */
void setVerbose(bool verbose);
bool verbose();

/**
 * Force warn() through stderr even when verbose() is off. Sandboxed
 * sweep workers run with test-style silencing, but their clamp and
 * approximation warnings are exactly what quarantine forensics need.
 */
void setAlwaysWarn(bool always);
bool alwaysWarn();

/**
 * Prefix every logMessage() line with a tag (e.g. the worker's job
 * key) so interleaved multi-process stderr remains attributable.
 * Empty string disables the prefix.
 */
void setLogTag(const std::string &tag);

/**
 * Register a hook invoked from panicImpl() after the message is
 * printed but before abort(). Used by the crash-dump subsystem to
 * emit a state snapshot on the way down. The hook runs at most once
 * per process (recursion from a panicking hook is suppressed).
 */
void setPanicHook(std::function<void(const std::string &)> hook);

template <typename... Args>
[[noreturn]] inline void
panicAt(const char *file, int line, const char *fmt, Args &&...args)
{
    panicImpl(file, line, csprintf(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] inline void
fatalAt(const char *file, int line, const char *fmt, Args &&...args)
{
    fatalImpl(file, line, csprintf(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
inline void
warn(const char *fmt, Args &&...args)
{
    if (verbose() || alwaysWarn())
        logMessage("warn", csprintf(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
inline void
inform(const char *fmt, Args &&...args)
{
    if (verbose())
        logMessage("info", csprintf(fmt, std::forward<Args>(args)...));
}

} // namespace shelf

#define panic(...) ::shelf::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::shelf::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Condition-checked panic, kept enabled in all build types. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // SHELFSIM_BASE_LOGGING_HH
