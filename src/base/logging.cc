#include "base/logging.hh"

#include <cstdio>

namespace shelf
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
logMessage(const char *level, const std::string &msg)
{
    fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    fflush(stderr);
    std::exit(1);
}

} // namespace shelf
