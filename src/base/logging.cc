#include "base/logging.hh"

#include <cstdio>
#include <utility>

namespace shelf
{

namespace
{
bool verboseFlag = true;
bool alwaysWarnFlag = false;
std::string logTag;
std::function<void(const std::string &)> panicHook;
bool inPanicHook = false;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
setAlwaysWarn(bool always)
{
    alwaysWarnFlag = always;
}

bool
alwaysWarn()
{
    return alwaysWarnFlag;
}

void
setLogTag(const std::string &tag)
{
    logTag = tag;
}

void
setPanicHook(std::function<void(const std::string &)> hook)
{
    panicHook = std::move(hook);
}

void
logMessage(const char *level, const std::string &msg)
{
    if (logTag.empty()) {
        fprintf(stderr, "%s: %s\n", level, msg.c_str());
    } else {
        fprintf(stderr, "%s [%s]: %s\n", level, logTag.c_str(),
                msg.c_str());
    }
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    fflush(stderr);
    // Give the crash-dump subsystem one shot at recording state; a
    // panic raised while dumping must not recurse into the hook.
    if (panicHook && !inPanicHook) {
        inPanicHook = true;
        panicHook(msg);
        fflush(stderr);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    fflush(stderr);
    std::exit(1);
}

} // namespace shelf
