#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{
namespace stats
{

void
Histogram::configure(size_t max_value)
{
    buckets.assign(max_value + 2, 0.0);
    total = 0;
    weightedSum = 0;
}

void
Histogram::sample(uint64_t v, double weight)
{
    panic_if(buckets.empty(), "sampling unconfigured histogram");
    size_t idx = std::min<size_t>(v, buckets.size() - 1);
    buckets[idx] += weight;
    total += weight;
    weightedSum += static_cast<double>(v) * weight;
}

double
Histogram::bucket(size_t v) const
{
    if (v >= buckets.size())
        return 0.0;
    return buckets[v];
}

double
Histogram::cdf(uint64_t v) const
{
    if (total == 0)
        return 0.0;
    double acc = 0;
    size_t limit = std::min<size_t>(v, buckets.size() - 1);
    for (size_t i = 0; i <= limit; ++i)
        acc += buckets[i];
    return acc / total;
}

uint64_t
Histogram::quantile(double q) const
{
    if (total == 0)
        return 0;
    double target = q * total;
    double acc = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        acc += buckets[i];
        if (acc >= target)
            return i;
    }
    return buckets.size() - 1;
}

double
Histogram::mean() const
{
    return total > 0 ? weightedSum / total : 0.0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets.empty() || other.total == 0)
        return;
    if (buckets.empty())
        configure(other.maxValue());
    if (other.buckets.size() > buckets.size()) {
        double overflow = buckets.back();
        buckets.back() = 0.0;
        buckets.resize(other.buckets.size(), 0.0);
        buckets.back() = overflow;
    }
    for (size_t i = 0; i + 1 < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    buckets.back() += other.buckets.back();
    total += other.total;
    weightedSum += other.weightedSum;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0.0);
    total = 0;
    weightedSum = 0;
}

void
Group::addScalar(const std::string &name, const Scalar *s,
                 const std::string &desc)
{
    entries.push_back({name, desc, s, nullptr});
}

void
Group::addAverage(const std::string &name, const Average *a,
                  const std::string &desc)
{
    entries.push_back({name, desc, nullptr, a});
}

std::string
Group::dump() const
{
    std::string out;
    for (const auto &e : entries) {
        double v = e.scalar ? e.scalar->value()
                            : (e.average ? e.average->mean() : 0.0);
        out += csprintf("%s.%s %.6g", groupName.c_str(), e.name.c_str(),
                        v);
        if (!e.desc.empty())
            out += csprintf("  # %s", e.desc.c_str());
        out += "\n";
    }
    return out;
}

} // namespace stats
} // namespace shelf
