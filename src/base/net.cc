#include "base/net.hh"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "base/strutil.hh"

namespace shelf
{

namespace
{

/** Fill a sockaddr_un; false if the path does not fit sun_path. */
bool
unixAddr(const std::string &path, sockaddr_un &addr,
         std::string &err)
{
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        err = csprintf("socket path '%s' is empty or longer than "
                       "%zu bytes", path.c_str(),
                       sizeof(addr.sun_path) - 1);
        return false;
    }
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, int backlog, std::string &err)
{
    sockaddr_un addr;
    if (!unixAddr(path, addr, err))
        return -1;
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = csprintf("socket: %s", strerror(errno));
        return -1;
    }
    // A stale socket file from a SIGKILLed server would make bind
    // fail forever; unlink is safe because only a socket we are
    // about to replace lives at a serve path.
    unlink(path.c_str());
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0) {
        err = csprintf("bind '%s': %s", path.c_str(),
                       strerror(errno));
        close(fd);
        return -1;
    }
    if (listen(fd, backlog) != 0) {
        err = csprintf("listen '%s': %s", path.c_str(),
                       strerror(errno));
        close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!unixAddr(path, addr, err))
        return -1;
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = csprintf("socket: %s", strerror(errno));
        return -1;
    }
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        err = csprintf("connect '%s': %s", path.c_str(),
                       strerror(errno));
        close(fd);
        return -1;
    }
    return fd;
}

int
connectUnixRetry(const std::string &path, unsigned attempts,
                 double backoffSeconds, std::string &err)
{
    if (attempts == 0)
        attempts = 1;
    for (unsigned a = 1;; ++a) {
        errno = 0;
        int fd = connectUnix(path, err);
        if (fd >= 0)
            return fd;
        // Only the failure modes a server restart explains are worth
        // waiting out: connection refused (stale socket file, server
        // not accepting yet), a missing socket file (server not yet
        // bound), backlog pressure, or an interrupted connect.
        bool transient = errno == ECONNREFUSED || errno == ENOENT ||
                         errno == EAGAIN || errno == EINTR;
        if (!transient || a >= attempts)
            return -1;
        double d = backoffSeconds;
        for (unsigned i = 1; i < a && d < 2.0; ++i)
            d *= 2;
        if (d > 2.0)
            d = 2.0;
        if (d > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(d));
        }
    }
}

bool
setRecvTimeout(int fd, double seconds, std::string &err)
{
    struct timeval tv = {};
    if (seconds > 0) {
        tv.tv_sec = static_cast<time_t>(seconds);
        tv.tv_usec = static_cast<suseconds_t>(
            (seconds - std::floor(seconds)) * 1e6);
        // A sub-microsecond timeout would round to "blocking";
        // keep at least one tick so the deadline is real.
        if (tv.tv_sec == 0 && tv.tv_usec == 0)
            tv.tv_usec = 1;
    }
    if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                   sizeof(tv)) != 0) {
        err = csprintf("SO_RCVTIMEO: %s", strerror(errno));
        return false;
    }
    return true;
}

bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = send(fd, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

LineReader::Status
LineReader::readLine(std::string &line)
{
    for (;;) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            if (nl > cap)
                return Status::Oversized;
            line.assign(buf, 0, nl);
            buf.erase(0, nl + 1);
            return Status::Line;
        }
        if (buf.size() > cap)
            return Status::Oversized;
        char chunk[4096];
        ssize_t n = read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return Status::Timeout; // SO_RCVTIMEO expired
            return Status::Error;
        }
        if (n == 0)
            return Status::Eof;
        buf.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace shelf
