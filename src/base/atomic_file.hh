/**
 * @file
 * Atomic file publication: write to a uniquely-named temp file in
 * the target directory, then rename() over the final path, so
 * readers never observe a torn or half-written file and a crash
 * mid-write leaves only a stray .tmp to garbage-collect.
 *
 * The temp name must be unique per *writer*, not just per process:
 * two executor threads in one daemon share a pid, and with a plain
 * pid suffix one thread's rename could publish the other's
 * half-written file. O_EXCL plus a process-wide counter makes every
 * writer claim a fresh temp, and a lost O_EXCL race just bumps the
 * counter and tries again. This is the idiom the result cache's
 * disk tier introduced; trace files and any other crash-safe
 * artifact writers share it from here.
 */

#ifndef SHELFSIM_BASE_ATOMIC_FILE_HH
#define SHELFSIM_BASE_ATOMIC_FILE_HH

#include <string>

namespace shelf
{

class AtomicFile
{
  public:
    /** Prepare to publish @p finalPath; nothing touches the
     * filesystem until open(). */
    explicit AtomicFile(std::string finalPath);

    /** Abandons (closes and unlinks) an unpublished temp file. */
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /**
     * Claim a fresh temp name next to the final path (O_EXCL, up to
     * 16 pid+counter candidates). Returns false with a message in
     * @p err (if non-null) when no name can be claimed.
     */
    bool open(std::string *err);

    /** File descriptor of the claimed temp file (open() required).
     * The caller may write through it directly or wrap it (fdopen);
     * if the caller closes it itself, call releaseFd() first. */
    int fd() const { return tfd; }

    /** Path of the claimed temp file (open() required); callers
     * that need a stream API may reopen it by name. */
    const std::string &tmpPath() const { return tmp; }

    /**
     * Hand ownership of the descriptor to the caller (who becomes
     * responsible for closing it, e.g. via fclose on an fdopen
     * stream). The temp file itself remains owned by this object:
     * publish() or the destructor still rename/unlink it.
     */
    int releaseFd();

    /**
     * Atomically publish the temp file as the final path. Closes
     * the descriptor if still owned. Returns false (and unlinks the
     * temp) on failure.
     */
    bool publish(std::string *err);

    /** Discard: close and unlink the temp file (idempotent). */
    void abort();

  private:
    std::string path;
    std::string tmp;
    int tfd = -1;
    bool published = false;
};

} // namespace shelf

#endif // SHELFSIM_BASE_ATOMIC_FILE_HH
