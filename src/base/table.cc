#include "base/table.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

TextTable::TextTable(std::vector<std::string> header_cols)
    : header(std::move(header_cols))
{}

void
TextTable::addRow(std::vector<std::string> row)
{
    panic_if(row.size() != header.size(),
             "table row width %zu != header width %zu", row.size(),
             header.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    return csprintf("%.*f", precision, v);
}

std::string
TextTable::pct(double fraction, int precision)
{
    return csprintf("%.*f%%", precision, fraction * 100.0);
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header.size(), 0);
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string out;
        for (size_t c = 0; c < row.size(); ++c) {
            out += c == 0 ? "| " : " | ";
            out += row[c];
            out.append(widths[c] - row[c].size(), ' ');
        }
        out += " |\n";
        return out;
    };

    std::string out = render_row(header);
    std::string rule = "|";
    for (size_t c = 0; c < header.size(); ++c)
        rule += std::string(widths[c] + 2, '-') + "|";
    out += rule + "\n";
    for (const auto &row : rows)
        out += render_row(row);
    return out;
}

} // namespace shelf
