#include "base/atomic_file.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "base/strutil.hh"

namespace shelf
{

namespace
{
/** Process-wide counter making temp names unique across writer
 * threads sharing one pid. */
std::atomic<unsigned> tmpSeq{0};
} // namespace

AtomicFile::AtomicFile(std::string finalPath) : path(std::move(finalPath)) {}

AtomicFile::~AtomicFile() { abort(); }

bool
AtomicFile::open(std::string *err)
{
    for (int attempt = 0; attempt < 16; attempt++) {
        std::string cand = csprintf("%s.tmp.%d.%u", path.c_str(),
                                    (int)getpid(), tmpSeq.fetch_add(1));
        int fd = ::open(cand.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            tmp = std::move(cand);
            tfd = fd;
            published = false;
            return true;
        }
        if (errno != EEXIST) {
            if (err) {
                *err = csprintf("cannot create temp file '%s': %s",
                                cand.c_str(), strerror(errno));
            }
            return false;
        }
    }
    if (err) {
        *err = csprintf("cannot claim a temp name for '%s' after 16 tries",
                        path.c_str());
    }
    return false;
}

int
AtomicFile::releaseFd()
{
    int fd = tfd;
    tfd = -1;
    return fd;
}

bool
AtomicFile::publish(std::string *err)
{
    if (tmp.empty()) {
        if (err)
            *err = csprintf("publish without open for '%s'", path.c_str());
        return false;
    }
    if (tfd >= 0) {
        ::close(tfd);
        tfd = -1;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err) {
            *err = csprintf("cannot publish '%s': %s", path.c_str(),
                            strerror(errno));
        }
        ::unlink(tmp.c_str());
        tmp.clear();
        return false;
    }
    tmp.clear();
    published = true;
    return true;
}

void
AtomicFile::abort()
{
    if (tfd >= 0) {
        ::close(tfd);
        tfd = -1;
    }
    if (!tmp.empty() && !published) {
        ::unlink(tmp.c_str());
        tmp.clear();
    }
}

} // namespace shelf
