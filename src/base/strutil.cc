#include "base/strutil.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace shelf
{

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(needed) + 1, '\0');
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
    return out;
}

std::string
csprintfRaw(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, delim))
        out.push_back(item);
    return out;
}

bool
tryParseU64(const std::string &s, uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+' ||
        std::isspace(static_cast<unsigned char>(s[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end == s.c_str() || *end != '\0')
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

bool
tryParseI64(const std::string &s, int64_t &out)
{
    if (s.empty() || s[0] == '+' ||
        std::isspace(static_cast<unsigned char>(s[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE || end == s.c_str() || *end != '\0')
        return false;
    out = static_cast<int64_t>(v);
    return true;
}

bool
tryParseDouble(const std::string &s, double &out)
{
    if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace shelf
