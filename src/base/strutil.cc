#include "base/strutil.hh"

#include <cstdio>
#include <sstream>

namespace shelf
{

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(needed) + 1, '\0');
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
    return out;
}

std::string
csprintfRaw(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, delim))
        out.push_back(item);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace shelf
