#include "base/strutil.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace shelf
{

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(needed) + 1, '\0');
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
    return out;
}

std::string
csprintfRaw(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, delim))
        out.push_back(item);
    return out;
}

bool
tryParseU64(const std::string &s, uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+' ||
        std::isspace(static_cast<unsigned char>(s[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end == s.c_str() || *end != '\0')
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

bool
tryParseI64(const std::string &s, int64_t &out)
{
    if (s.empty() || s[0] == '+' ||
        std::isspace(static_cast<unsigned char>(s[0]))) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (errno == ERANGE || end == s.c_str() || *end != '\0')
        return false;
    out = static_cast<int64_t>(v);
    return true;
}

bool
tryParseDouble(const std::string &s, double &out)
{
    // std::from_chars is locale-independent (always the C locale's
    // decimal point), unlike strtod, so a config parsed under a
    // comma-decimal locale still reads "2.5" as two and a half. It
    // also rejects leading whitespace and '+' signs outright.
    double v = 0;
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || ptr != last || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace shelf
