/**
 * @file
 * A fixed-capacity circular queue with monotonically increasing virtual
 * indices, used for the ROB, shelf, LQ and SQ models.
 *
 * Entries are addressed by a 64-bit virtual index that never wraps in
 * practice; the physical slot is index % capacity. This makes age
 * comparisons between in-flight entries trivial (plain integer compare)
 * and directly models the paper's "decoupled index space" for the shelf
 * (where virtual indices span a larger space than physical entries).
 */

#ifndef SHELFSIM_BASE_CIRCULAR_QUEUE_HH
#define SHELFSIM_BASE_CIRCULAR_QUEUE_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace shelf
{

template <typename T>
class CircularQueue
{
  public:
    using Index = uint64_t;

    CircularQueue() = default;

    explicit CircularQueue(size_t capacity)
        : slots(capacity)
    {}

    void
    resize(size_t capacity)
    {
        panic_if(head_ != tail_, "resize of non-empty circular queue");
        slots.assign(capacity, T());
    }

    size_t capacity() const { return slots.size(); }
    size_t size() const { return static_cast<size_t>(tail_ - head_); }
    bool empty() const { return head_ == tail_; }
    bool full() const { return size() == capacity(); }

    /** Virtual index of the oldest entry. */
    Index headIndex() const { return head_; }
    /** Virtual index the next push will receive. */
    Index tailIndex() const { return tail_; }

    /** Push a copy; returns the virtual index assigned. */
    Index
    push(const T &v)
    {
        panic_if(full(), "push to full circular queue");
        slots[tail_ % capacity()] = v;
        return tail_++;
    }

    /** Pop the oldest entry. */
    void
    popFront()
    {
        panic_if(empty(), "pop from empty circular queue");
        slots[head_ % capacity()] = T();
        ++head_;
    }

    /** Pop the youngest entry (used for squash rollback). */
    void
    popBack()
    {
        panic_if(empty(), "popBack from empty circular queue");
        --tail_;
        slots[tail_ % capacity()] = T();
    }

    /** True if virtual index @p i refers to a live entry. */
    bool
    contains(Index i) const
    {
        return i >= head_ && i < tail_;
    }

    T &
    at(Index i)
    {
        panic_if(!contains(i), "circular queue index %llu out of "
                 "[%llu, %llu)", (unsigned long long)i,
                 (unsigned long long)head_, (unsigned long long)tail_);
        return slots[i % capacity()];
    }

    const T &
    at(Index i) const
    {
        panic_if(!contains(i), "circular queue index %llu out of "
                 "[%llu, %llu)", (unsigned long long)i,
                 (unsigned long long)head_, (unsigned long long)tail_);
        return slots[i % capacity()];
    }

    T &front() { return at(head_); }
    const T &front() const { return at(head_); }
    T &back() { return at(tail_ - 1); }
    const T &back() const { return at(tail_ - 1); }

    /** Drop all entries and reset indices (for full pipeline flush). */
    void
    clear()
    {
        for (auto &s : slots)
            s = T();
        head_ = tail_ = 0;
    }

  private:
    std::vector<T> slots;
    Index head_ = 0;
    Index tail_ = 0;
};

} // namespace shelf

#endif // SHELFSIM_BASE_CIRCULAR_QUEUE_HH
