/**
 * @file
 * A minimal ASCII table printer used by the bench harnesses to render
 * paper-style tables and figure series.
 */

#ifndef SHELFSIM_BASE_TABLE_HH
#define SHELFSIM_BASE_TABLE_HH

#include <string>
#include <vector>

namespace shelf
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 2);
    /** Format as a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with column alignment and a separator rule. */
    std::string render() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace shelf

#endif // SHELFSIM_BASE_TABLE_HH
