/**
 * @file
 * A small statistics package: named scalar counters, averages, and
 * histograms/distributions, grouped per component, with text dumping.
 * Loosely modelled after gem5's stats framework but radically simpler.
 */

#ifndef SHELFSIM_BASE_STATS_HH
#define SHELFSIM_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace shelf
{
namespace stats
{

/** A simple named scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator=(double v) { val = v; return *this; }

    double value() const { return val; }
    void reset() { val = 0; }

  private:
    double val = 0;
};

/** Running mean of sampled values. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++count;
    }

    /**
     * Add @p n samples of the same value at once. Bit-identical to n
     * sample(v) calls whenever v and the running sum stay on exactly
     * representable doubles — integers below 2^53, which every
     * occupancy-style sample in the simulator is. (The core's
     * quiescent-cycle skipper relies on this exactness.)
     */
    void
    sampleN(double v, uint64_t n)
    {
        sum += v * static_cast<double>(n);
        count += n;
    }

    double mean() const { return count ? sum / count : 0.0; }
    uint64_t samples() const { return count; }

    void
    reset()
    {
        sum = 0;
        count = 0;
    }

  private:
    double sum = 0;
    uint64_t count = 0;
};

/**
 * A histogram over integer sample values with unit-width buckets up to
 * a maximum, plus an overflow bucket. Supports weighted samples and
 * quantile / weighted-CDF queries (used for the paper's Figure 2).
 */
class Histogram
{
  public:
    explicit Histogram(size_t max_value = 0) { configure(max_value); }

    void configure(size_t max_value);

    /** Add @p weight at integer value @p v. */
    void sample(uint64_t v, double weight = 1.0);

    double totalWeight() const { return total; }
    double bucket(size_t v) const;
    size_t maxValue() const { return buckets.empty()
        ? 0 : buckets.size() - 2; }

    /** Fraction of total weight at values <= v. */
    double cdf(uint64_t v) const;

    /** Smallest value whose CDF is >= q (q in [0,1]). */
    uint64_t quantile(double q) const;

    /** Weighted mean of sampled values. */
    double mean() const;

    /**
     * Fold @p other's samples into this histogram (multi-core
     * aggregation). The bucket range grows to the larger of the two;
     * overflow weight stays in the overflow bucket. Exact: bucket
     * weights and the weighted sum add termwise.
     */
    void merge(const Histogram &other);

    void reset();

  private:
    std::vector<double> buckets; // [0..max] plus overflow at the end
    double total = 0;
    double weightedSum = 0;
};

/** A named group of statistics with registration and text dump. */
class Group
{
  public:
    explicit Group(std::string name) : groupName(std::move(name)) {}

    void addScalar(const std::string &name, const Scalar *s,
                   const std::string &desc = "");
    void addAverage(const std::string &name, const Average *a,
                    const std::string &desc = "");

    /** Render all registered stats as "group.name value  # desc". */
    std::string dump() const;

    const std::string &name() const { return groupName; }

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        const Scalar *scalar = nullptr;
        const Average *average = nullptr;
    };

    std::string groupName;
    std::vector<Entry> entries;
};

} // namespace stats
} // namespace shelf

#endif // SHELFSIM_BASE_STATS_HH
