/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** seeded via SplitMix64 so traces are reproducible
 * across platforms and standard-library versions (std::mt19937
 * distributions are not portable across implementations).
 */

#ifndef SHELFSIM_BASE_RANDOM_HH
#define SHELFSIM_BASE_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shelf
{

class Random
{
  public:
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed the generator. */
    void seed(uint64_t seed);

    /** Uniform 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) using rejection-free mapping. */
    uint64_t below(uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

    /**
     * Geometric distribution with success probability @p p, returning
     * the number of failures before the first success (>= 0).
     */
    uint64_t geometric(double p);

    /** Sample an index according to non-negative weights. */
    size_t weighted(const std::vector<double> &weights);

  private:
    uint64_t s[4];
};

} // namespace shelf

#endif // SHELFSIM_BASE_RANDOM_HH
