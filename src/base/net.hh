/**
 * @file
 * Minimal blocking unix-domain socket helpers plus newline framing
 * for the sweep service (sim/serve.hh): listen/accept/connect on a
 * filesystem socket path, write whole buffers without SIGPIPE, and
 * read one '\n'-terminated frame at a time with a hard size cap so
 * a hostile or broken peer cannot balloon server memory.
 *
 * Everything returns errors by value (bool + message); nothing here
 * calls fatal() — the serve daemon must outlive any single bad
 * connection.
 */

#ifndef SHELFSIM_BASE_NET_HH
#define SHELFSIM_BASE_NET_HH

#include <cstddef>
#include <string>

namespace shelf
{

/**
 * Create, bind, and listen on a unix-domain stream socket at
 * @p path (an existing socket file there is unlinked first — stale
 * sockets from a killed server must not block a restart). Returns
 * the listening fd, or -1 with a message in @p err.
 */
int listenUnix(const std::string &path, int backlog,
               std::string &err);

/** Connect to a listening unix-domain socket; -1 + @p err on
 * failure. */
int connectUnix(const std::string &path, std::string &err);

/**
 * connectUnix with bounded retry-with-backoff on the transient
 * failures a restarting or not-yet-bound server produces
 * (ECONNREFUSED, ENOENT, EAGAIN, EINTR): up to @p attempts tries,
 * sleeping backoffSeconds * 2^(k-1) (capped at 2 s) between them.
 * Non-transient errors (permissions, path too long) fail
 * immediately. Returns the fd, or -1 with the last error in @p err.
 */
int connectUnixRetry(const std::string &path, unsigned attempts,
                     double backoffSeconds, std::string &err);

/**
 * Bound how long a read on @p fd may block (SO_RCVTIMEO); 0
 * restores fully blocking reads. With a timeout set, LineReader
 * reports an expired read as Status::Timeout instead of blocking
 * forever — the fabric's lease enforcement against wedged (not
 * crashed) nodes hangs off this.
 */
bool setRecvTimeout(int fd, double seconds, std::string &err);

/**
 * Write all of @p data to @p fd, retrying short writes and EINTR.
 * SIGPIPE is suppressed (MSG_NOSIGNAL): a client that disconnects
 * mid-reply must surface as a write error on that connection, not a
 * process-wide signal. Returns false on any unrecoverable error.
 */
bool writeAll(int fd, const std::string &data);

/**
 * Buffered newline-framed reader over a blocking fd. Frames longer
 * than the cap are reported as Oversized without ever buffering
 * more than maxFrameBytes + one read chunk.
 */
class LineReader
{
  public:
    enum class Status {
        Line,      ///< one complete frame (without the '\n')
        Eof,       ///< orderly close with no buffered partial frame
        Oversized, ///< frame exceeded the cap; connection unusable
        Timeout,   ///< SO_RCVTIMEO expired before a full frame
        Error,     ///< read error
    };

    explicit LineReader(int fd, size_t maxFrameBytes)
        : fd(fd), cap(maxFrameBytes)
    {}

    /** Block until one of the Status cases; Line fills @p line. */
    Status readLine(std::string &line);

  private:
    int fd;
    size_t cap;
    std::string buf;
};

} // namespace shelf

#endif // SHELFSIM_BASE_NET_HH
