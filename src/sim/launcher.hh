/**
 * @file
 * Pluggable worker-launch transport for the supervised sweep
 * executor and the multi-node fabric.
 *
 * The supervisor's contract — one job spec in, one attempt result
 * out, with the job's crash/hang contained — does not care where
 * the attempt runs. WorkerLauncher is that seam: the local backend
 * posix_spawns a sandboxed `--worker` child of the current binary
 * (the PR-3 behavior, unchanged); the remote backend drives a
 * `--serve` daemon over its unix-socket protocol, so a "node" is
 * any reachable daemon, and the same supervisor/fabric code runs
 * jobs in-process, per-process, or per-machine.
 *
 * Remote attempts add one failure mode local ones cannot have: the
 * transport itself dying (daemon SIGKILLed, socket reset, read
 * deadline expired). LaunchResult::transportFailure separates "the
 * job failed" (quarantine it) from "the node failed" (the job is
 * innocent — re-lease it elsewhere); the fabric's work stealing
 * hangs off that bit.
 */

#ifndef SHELFSIM_SIM_LAUNCHER_HH
#define SHELFSIM_SIM_LAUNCHER_HH

#include <string>

namespace shelf
{

/** Worker stdout marker preceding the result payload. */
extern const char *const kWorkerResultMarker;

/** Worker stderr marker announcing a written crash-dump file. */
extern const char *const kWorkerDumpMarker;

/** Result of one worker launch attempt (any transport). */
struct LaunchResult
{
    /** The attempt produced a valid result payload. */
    bool ok = false;

    /** Full-precision SystemResult JSON (valid only when ok). Kept
     * as raw bytes: callers that only forward or journal it never
     * pay a parse, and byte-identity survives the hop. */
    std::string resultJson;

    int exitCode = 0;       ///< worker exit code (local, if exited)
    int termSignal = 0;     ///< worker terminating signal (local)
    bool timedOut = false;  ///< watchdog/read deadline expired
    std::string stderrTail; ///< captured worker stderr (local)
    std::string dumpFile;   ///< crash dump the worker announced

    /**
     * The transport failed, not the job: the node is unreachable,
     * closed the connection mid-reply, or missed the read deadline.
     * The job's health is unknown and it may be retried on another
     * node without burning its own retry budget (except deadline
     * expiry, which also counts against the job — a job that hangs
     * every node it touches is the job's fault). Always false for
     * the local backend, whose failures are attributed to the job.
     */
    bool transportFailure = false;

    std::string error; ///< human-readable failure detail
};

/**
 * One way of executing a single sweep job somewhere. Implementations
 * must contain job failure (a crashing or hanging spec yields a
 * failed LaunchResult, never takes the caller down). Thread safety
 * is per-implementation: LocalSpawnLauncher keeps no mutable state
 * and supports concurrent launches (the supervisor's worker pool
 * relies on that); RemoteServeLauncher owns one connection and must
 * be driven from one thread at a time (the fabric gives each node
 * its own launcher and thread).
 */
class WorkerLauncher
{
  public:
    virtual ~WorkerLauncher() = default;

    /**
     * Execute the job spec @p specJson (canonical SweepJobSpec JSON)
     * and return the attempt's outcome. @p timeoutSeconds bounds the
     * attempt's wall clock (0 = unbounded): the local backend
     * SIGKILLs the worker past it, the remote backend gives up on
     * the node past it.
     */
    virtual LaunchResult launch(const std::string &specJson,
                                double timeoutSeconds) = 0;

    /**
     * Cheap liveness probe (the fabric's heartbeat): true iff the
     * backend can still execute jobs, determined within
     * @p timeoutSeconds. The local backend is always healthy.
     */
    virtual bool healthy(double timeoutSeconds, std::string &err) = 0;

    /** Stable human-readable name for journals and reports. */
    virtual const std::string &name() const = 0;
};

/**
 * The classic PR-3 transport: posix_spawn `<bin> --worker '<spec>'`
 * with stdout/stderr captured and a wall-clock watchdog that
 * SIGKILLs overrunning workers. transportFailure is never set —
 * every failure here is the job's.
 */
class LocalSpawnLauncher : public WorkerLauncher
{
  public:
    /**
     * @p workerBinary must handle the hidden --worker mode (see
     * maybeRunSweepWorker); @p dumpDir, when non-empty, is exported
     * to workers as SHELFSIM_DUMP_DIR.
     */
    LocalSpawnLauncher(std::string workerBinary, std::string dumpDir);

    LaunchResult launch(const std::string &specJson,
                        double timeoutSeconds) override;
    bool healthy(double, std::string &) override { return true; }
    const std::string &name() const override { return name_; }

  private:
    std::string workerBinary;
    std::string dumpDir;
    std::string name_ = "local";
};

/**
 * Remote transport: one job at a time against a `--serve` daemon
 * over its newline-delimited JSON protocol. Connects lazily with
 * bounded retry-with-backoff (a node still starting up or being
 * restarted is not yet dead); enforces @p timeoutSeconds as a
 * SO_RCVTIMEO read deadline, so a wedged daemon surfaces as a
 * timed-out transport failure instead of hanging the caller
 * forever. Any transport failure poisons the connection (framing
 * may be lost mid-reply); the next launch reconnects from scratch.
 */
class RemoteServeLauncher : public WorkerLauncher
{
  public:
    RemoteServeLauncher(std::string name, std::string socketPath,
                        unsigned connectAttempts = 3,
                        double connectBackoffSeconds = 0.1);
    ~RemoteServeLauncher() override;

    LaunchResult launch(const std::string &specJson,
                        double timeoutSeconds) override;
    bool healthy(double timeoutSeconds, std::string &err) override;
    const std::string &name() const override { return name_; }
    const std::string &socketPath() const { return socketPath_; }

  private:
    bool ensureConnected(std::string &err);
    void disconnect();

    std::string name_;
    std::string socketPath_;
    unsigned connectAttempts;
    double connectBackoffSeconds;
    int fd = -1;
};

} // namespace shelf

#endif // SHELFSIM_SIM_LAUNCHER_HH
