/**
 * @file
 * Multi-node sweep fabric: lease-based job dispatch across a pool
 * of `--serve` daemons, with dead-node detection, work stealing,
 * and a per-shard journal trail that merges back into one
 * resumable sweep journal.
 *
 * The supervisor (sim/supervisor.hh) makes one machine's sweep
 * survive its jobs; the fabric makes a sweep survive its machines.
 * Each node is a RemoteServeLauncher around one daemon socket and
 * gets a dedicated coordinator thread that pulls jobs from a shared
 * queue:
 *
 *  - lease: before a job is launched, a validate::LeaseRecord
 *    (key, node, seq, deadline) is appended to the node's shard
 *    journal — a durable "job J was in flight at node N" marker;
 *  - heartbeat: a node that has been failing is health-gated with a
 *    deadline-bounded ping before it gets more work;
 *  - reclamation + stealing: a launch that dies of transport
 *    failure (daemon SIGKILLed, connection reset, read deadline
 *    expired) puts the job back on the shared queue, where any
 *    surviving node picks it up — work stealing is just the queue
 *    being shared;
 *  - node quarantine: nodeRetries consecutive transport failures
 *    (with jittered backoff between them) retire the node; its
 *    thread exits and the rest of the fleet absorbs the load.
 *    When every node is dead, remaining jobs quarantine with an
 *    explicit error instead of hanging the sweep;
 *  - job protection: a lease-deadline expiry counts against the
 *    job as well as the node — a job that freezes every node it
 *    touches quarantines as timed out after jobRetries + 1 distinct
 *    nodes, so one poisonous cell cannot take the whole fleet down.
 *
 * Finished jobs append ordinary journal records (tagged with the
 * node name) to the shard; shards merge with mergeJournals() (or
 * the `shelfsim_journal_merge` tool) into one journal that
 * `--sweep --resume` replays byte-identically. Outcomes come back
 * in input order, so the sweep report is byte-identical to a
 * single-node run whatever the node count or interleaving.
 */

#ifndef SHELFSIM_SIM_FABRIC_HH
#define SHELFSIM_SIM_FABRIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/supervisor.hh"

namespace shelf
{

class WorkerLauncher;

/** One worker node: a `--serve` daemon reachable at a socket. */
struct FabricNode
{
    std::string name;       ///< journal/report label, unique
    std::string socketPath; ///< the daemon's unix socket
};

struct FabricOptions
{
    std::vector<FabricNode> nodes;

    /**
     * Per-launch lease duration: how long one job may keep one node
     * before the coordinator declares the lease expired (enforced
     * as the remote read deadline). Also the watchdog of last
     * resort against wedged-but-connected daemons.
     */
    double leaseSeconds = 30;

    /** Consecutive transport failures before a node is declared
     * dead and its thread retires (total tries = nodeRetries + 1).
     */
    unsigned nodeRetries = 2;

    /** Lease expiries on distinct nodes granted to one job before
     * it is quarantined as timed out (total leases = jobRetries +
     * 1). */
    unsigned jobRetries = 2;

    /** Read deadline of the health-gate ping. */
    double heartbeatSeconds = 2;

    /** Base node-retry backoff (jittered per node; see
     * SweepSupervisor::backoffDelayJittered). */
    double backoffSeconds = 0.25;

    /**
     * Journal stem: finished/lease records of node N append to
     * "<journalPath>.<N>" (one writer per file — shards never
     * contend), and resume reads journalPath itself plus every
     * shard, last-wins. Empty disables journaling and resume.
     */
    std::string journalPath;

    /** Replay jobs already recorded in journalPath or the shards. */
    bool resume = false;

    /**
     * Environment-derived options for harnesses without CLI flags:
     * SHELFSIM_NODES ("name=socket,name=socket,..."; empty/unset
     * means no fabric), SHELFSIM_LEASE (seconds),
     * SHELFSIM_NODE_RETRIES, SHELFSIM_HEARTBEAT (seconds), plus
     * SHELFSIM_JOURNAL / SHELFSIM_RESUME / SHELFSIM_BACKOFF shared
     * with SupervisorOptions::fromEnv(). Malformed values are
     * fatal.
     */
    static FabricOptions fromEnv();

    /** Parse a "name=socket,name=socket" node list; false + @p err
     * on malformed entries or duplicate names. */
    static bool parseNodeList(const std::string &s,
                              std::vector<FabricNode> &out,
                              std::string &err);
};

class FabricCoordinator
{
  public:
    /** Final per-node accounting, for reports and tests. */
    struct NodeReport
    {
        std::string name;
        uint64_t jobsCompleted = 0;      ///< finished records written
        uint64_t transportFailures = 0;  ///< launches lost to the node
        uint64_t leaseExpiries = 0;      ///< read deadlines hit
        bool dead = false;               ///< retired mid-sweep
    };

    explicit FabricCoordinator(FabricOptions opt);

    /**
     * Execute every job across the node fleet and return outcomes
     * in input order. Never throws jobs away: every job ends Ok
     * (computed or replayed) or Quarantined (its own failure, a
     * job-side lease exhaustion, or "all nodes dead").
     */
    std::vector<JobOutcome>
    run(const std::vector<validate::SweepJobSpec> &jobs);

    /** Invoked as each job finishes (from node threads). */
    void
    setProgressCallback(
        std::function<void(size_t, const JobOutcome &)> cb)
    {
        progress = std::move(cb);
    }

    /** Valid after run(). */
    const std::vector<NodeReport> &nodeReports() const
    {
        return reports;
    }

    /** Shard journal path of @p node ("<journalPath>.<node>"). */
    static std::string shardPath(const std::string &journalPath,
                                 const std::string &nodeName);

    /**
     * Test hook: replace the launcher for node @p index (defaults
     * are RemoteServeLauncher instances over the node sockets).
     * Must be called before run().
     */
    void setLauncher(size_t index,
                     std::shared_ptr<WorkerLauncher> launcher);

  private:
    struct Shared;
    void nodeLoop(Shared &sh, size_t nodeIdx);

    FabricOptions opt;
    std::vector<std::shared_ptr<WorkerLauncher>> launchers;
    std::vector<NodeReport> reports;
    std::function<void(size_t, const JobOutcome &)> progress;
};

} // namespace shelf

#endif // SHELFSIM_SIM_FABRIC_HH
