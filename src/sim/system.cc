#include "sim/system.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/json.hh"
#include "base/strutil.hh"
#include "core/steer/shadow.hh"
#include "sim/allocation.hh"
#include "workload/spec2006.hh"

namespace shelf
{

std::vector<double>
SystemResult::ipcVector() const
{
    std::vector<double> v;
    for (const auto &t : threads)
        v.push_back(t.ipc);
    return v;
}

const stats::Histogram &
SystemResult::inSeqSeries() const
{
    fatal_if(rehydrated, "series histograms are not serialized: "
             "this result was rehydrated from JSON (cache hit, "
             "isolated worker, or journal replay); run the config "
             "in-process to read inSeqSeries");
    return inSeqSeriesHist;
}

const stats::Histogram &
SystemResult::reorderedSeries() const
{
    fatal_if(rehydrated, "series histograms are not serialized: "
             "this result was rehydrated from JSON (cache hit, "
             "isolated worker, or journal replay); run the config "
             "in-process to read reorderedSeries");
    return reorderedSeriesHist;
}

void
SystemResult::setSeries(stats::Histogram in_seq,
                        stats::Histogram reordered)
{
    inSeqSeriesHist = std::move(in_seq);
    reorderedSeriesHist = std::move(reordered);
    rehydrated = false;
}


std::string
SystemResult::toJson(int doublePrecision) const
{
    JsonWriter w(doublePrecision);
    w.beginObject();
    w.field("config", configName);
    // Multi-core fields are emitted only when they carry
    // information: a single-core result keeps the exact historical
    // byte layout (journal records and cache keys depend on it).
    if (numCores > 1) {
        w.field("num_cores", static_cast<uint64_t>(numCores));
        w.field("allocation", allocation);
    }
    w.field("cycles", static_cast<uint64_t>(cycles));
    w.field("total_ipc", totalIpc);
    w.field("in_seq_frac", inSeqFrac);
    w.field("shelf_steer_frac", shelfSteerFrac);
    w.field("missteer_frac", missteerFrac);
    w.field("branch_mispredict_rate", branchMispredictRate);
    w.field("l1d_miss_rate", l1dMissRate);
    w.field("squashes", static_cast<uint64_t>(squashes));
    w.field("mem_order_squashes",
            static_cast<uint64_t>(memOrderSquashes));
    w.beginArray("threads");
    for (const auto &t : threads) {
        w.beginObject();
        w.field("benchmark", t.benchmark);
        if (numCores > 1)
            w.field("core", static_cast<uint64_t>(t.core));
        w.field("instructions",
                static_cast<uint64_t>(t.instructions));
        w.field("ipc", t.ipc);
        w.field("in_seq_frac", t.inSeqFrac);
        w.endObject();
    }
    w.endArray();
    w.beginObject("energy");
    w.field("dynamic_pj", energy.dynamicPJ);
    w.field("leakage_pj", energy.leakagePJ);
    w.field("per_inst_pj", energy.energyPerInstPJ);
    w.field("edp", energy.edp);
    w.field("power_w", energy.avgPowerW);
    w.endObject();
    w.beginObject("events");
    w.field("fetched", static_cast<uint64_t>(events.fetchedInsts));
    w.field("squashed",
            static_cast<uint64_t>(events.squashedInsts));
    w.field("iq_writes", static_cast<uint64_t>(events.iqWrites));
    w.field("shelf_writes",
            static_cast<uint64_t>(events.shelfWrites));
    w.field("shelf_issues",
            static_cast<uint64_t>(events.shelfIssues));
    w.endObject();
    w.endObject();
    return w.str();
}

SystemResult
SystemResult::fromJson(const std::string &json)
{
    JsonValue doc;
    std::string err;
    fatal_if(!tryParseJson(json, doc, &err), "result JSON: %s",
             err.c_str());
    fatal_if(!doc.isObject(), "result JSON: expected an object");

    auto num = [](const JsonValue &v, const char *key) -> double {
        fatal_if(!v.isNumber(),
                 "result JSON: '%s' must be a number", key);
        return v.asDouble();
    };
    auto u64 = [](const JsonValue &v, const char *key) -> uint64_t {
        fatal_if(!v.isNumber(),
                 "result JSON: '%s' must be a number", key);
        return v.asU64();
    };
    auto str = [](const JsonValue &v,
                  const char *key) -> const std::string & {
        fatal_if(!v.isString(),
                 "result JSON: '%s' must be a string", key);
        return v.raw;
    };

    SystemResult r;
    // The JSON form never carries the series histograms; make any
    // read through the accessors fail loudly instead of returning
    // structurally-valid empty distributions.
    r.rehydrated = true;
    for (const auto &[key, v] : doc.members) {
        const char *k = key.c_str();
        if (key == "config") r.configName = str(v, k);
        else if (key == "num_cores")
            r.numCores = static_cast<unsigned>(u64(v, k));
        else if (key == "allocation") r.allocation = str(v, k);
        else if (key == "cycles")
            r.cycles = static_cast<Cycle>(u64(v, k));
        else if (key == "total_ipc") r.totalIpc = num(v, k);
        else if (key == "in_seq_frac") r.inSeqFrac = num(v, k);
        else if (key == "shelf_steer_frac")
            r.shelfSteerFrac = num(v, k);
        else if (key == "missteer_frac") r.missteerFrac = num(v, k);
        else if (key == "branch_mispredict_rate")
            r.branchMispredictRate = num(v, k);
        else if (key == "l1d_miss_rate") r.l1dMissRate = num(v, k);
        else if (key == "squashes") r.squashes = u64(v, k);
        else if (key == "mem_order_squashes")
            r.memOrderSquashes = u64(v, k);
        else if (key == "threads") {
            fatal_if(!v.isArray(),
                     "result JSON: 'threads' must be an array");
            for (const auto &tv : v.items) {
                fatal_if(!tv.isObject(), "result JSON: thread "
                         "entries must be objects");
                ThreadResult t;
                for (const auto &[tk, tvv] : tv.members) {
                    const char *tkc = tk.c_str();
                    if (tk == "benchmark")
                        t.benchmark = str(tvv, tkc);
                    else if (tk == "core")
                        t.core = static_cast<unsigned>(u64(tvv, tkc));
                    else if (tk == "instructions")
                        t.instructions = u64(tvv, tkc);
                    else if (tk == "ipc") t.ipc = num(tvv, tkc);
                    else if (tk == "in_seq_frac")
                        t.inSeqFrac = num(tvv, tkc);
                    else
                        fatal("result JSON: unknown thread key "
                              "'%s'", tkc);
                }
                r.threads.push_back(std::move(t));
            }
        } else if (key == "energy") {
            fatal_if(!v.isObject(),
                     "result JSON: 'energy' must be an object");
            for (const auto &[ek, ev] : v.members) {
                const char *ekc = ek.c_str();
                if (ek == "dynamic_pj")
                    r.energy.dynamicPJ = num(ev, ekc);
                else if (ek == "leakage_pj")
                    r.energy.leakagePJ = num(ev, ekc);
                else if (ek == "per_inst_pj")
                    r.energy.energyPerInstPJ = num(ev, ekc);
                else if (ek == "edp") r.energy.edp = num(ev, ekc);
                else if (ek == "power_w")
                    r.energy.avgPowerW = num(ev, ekc);
                else
                    fatal("result JSON: unknown energy key '%s'",
                          ekc);
            }
        } else if (key == "events") {
            fatal_if(!v.isObject(),
                     "result JSON: 'events' must be an object");
            for (const auto &[ek, ev] : v.members) {
                const char *ekc = ek.c_str();
                if (ek == "fetched")
                    r.events.fetchedInsts = ev.asU64();
                else if (ek == "squashed")
                    r.events.squashedInsts = ev.asU64();
                else if (ek == "iq_writes")
                    r.events.iqWrites = ev.asU64();
                else if (ek == "shelf_writes")
                    r.events.shelfWrites = ev.asU64();
                else if (ek == "shelf_issues")
                    r.events.shelfIssues = ev.asU64();
                else
                    fatal("result JSON: unknown events key '%s'",
                          ekc);
            }
        } else {
            fatal("result JSON: unknown key '%s'", key.c_str());
        }
    }
    return r;
}

System::System(SystemConfig config)
    : cfg(std::move(config))
{
    cfg.core.validate();
    fatal_if(cfg.numCores == 0, "numCores must be >= 1");
    size_t total = cfg.benchmarks.size();
    if (cfg.numCores == 1) {
        fatal_if(total != cfg.core.threads,
                 "%zu benchmarks for %u threads", total,
                 cfg.core.threads);
    } else {
        fatal_if(!isAllocationPolicy(cfg.allocation),
                 "unknown allocation policy '%s' (have: round-robin, "
                 "fill-first, classify, dynamic)",
                 cfg.allocation.c_str());
        fatal_if(total == 0 ||
                 total > static_cast<size_t>(cfg.numCores) *
                     cfg.core.threads,
                 "%zu benchmarks for %u cores x %u threads", total,
                 cfg.numCores, cfg.core.threads);
    }

    size_t trace_len = cfg.traceLength;
    if (trace_len == 0) {
        // Enough headroom that wraparound is rare: the core retires
        // at most issueWidth per cycle shared across threads.
        trace_len = static_cast<size_t>(
            (cfg.warmupCycles + cfg.measureCycles) *
            (cfg.core.issueWidth + 1));
    }

    // A thread's workload identity is global: seed and address-space
    // slice depend only on the global thread id, never on where the
    // allocation policy places it.
    if (!cfg.externalTraces.empty()) {
        fatal_if(cfg.externalTraces.size() != total,
                 "%zu external traces for %zu threads",
                 cfg.externalTraces.size(), total);
        traces = cfg.externalTraces;
        for (unsigned t = 0; t < total; ++t) {
            if (!traces[t].empty())
                continue;
            // Mixed workload: an empty per-thread entry means
            // "generate this thread" — its benchmarks entry must
            // then name a real profile, not just a label.
            const BenchmarkProfile &prof =
                spec2006Profile(cfg.benchmarks[t]);
            TraceGenerator gen(prof, cfg.seed * 1000003ULL + t,
                               static_cast<Addr>(t) << 30);
            traces[t] = gen.generate(trace_len);
        }
    } else {
        // Each thread gets a disjoint 1GB address-space slice.
        for (unsigned t = 0; t < total; ++t) {
            const BenchmarkProfile &prof =
                spec2006Profile(cfg.benchmarks[t]);
            TraceGenerator gen(prof, cfg.seed * 1000003ULL + t,
                               static_cast<Addr>(t) << 30);
            traces.push_back(gen.generate(trace_len));
        }
    }

    if (cfg.numCores == 1) {
        hiers.push_back(std::make_unique<MemHierarchy>(cfg.mem));
    } else {
        // The CMP shape: private L1s per core, one shared L2 in
        // front of memory. Cross-core interference happens where it
        // does in hardware — L2 capacity and MSHRs — instead of
        // having every core thrash one 32KB L1.
        sharedL2 = std::make_unique<Cache>(cfg.mem.l2);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            hiers.push_back(std::make_unique<MemHierarchy>(
                cfg.mem, sharedL2.get()));
        }
    }

    if (cfg.numCores == 1) {
        assignment.assign(total, 0);
    } else {
        AllocationInput in;
        in.numCores = cfg.numCores;
        in.threadsPerCore = cfg.core.threads;
        for (unsigned t = 0; t < total; ++t) {
            bool traceBacked = !cfg.externalTraces.empty() &&
                !cfg.externalTraces[t].empty();
            in.profiles.push_back(
                traceBacked ? nullptr
                            : &spec2006Profile(cfg.benchmarks[t]));
        }
        assignment = allocateThreads(cfg.allocation, in);
    }
    buildCores();
}

System::~System() = default;

void
System::buildCores()
{
    size_t total = cfg.benchmarks.size();
    cores.clear();
    cores.resize(cfg.numCores);
    coreThreads.assign(cfg.numCores, {});
    localTid.assign(total, 0);
    for (unsigned t = 0; t < total; ++t) {
        localTid[t] =
            static_cast<unsigned>(coreThreads[assignment[t]].size());
        coreThreads[assignment[t]].push_back(t);
    }
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const auto &ts = coreThreads[c];
        if (ts.empty())
            continue;
        CoreParams p = cfg.core;
        if (ts.size() != cfg.core.threads) {
            // A partially-filled core keeps the configured per-thread
            // partition sizes: the static partitions (ROB, LQ, SQ,
            // shelf) shrink with the thread count while the shared
            // structures (IQ, widths, caches) stay as configured.
            p.threads = static_cast<unsigned>(ts.size());
            p.robEntries = cfg.core.robPerThread() * p.threads;
            p.lqEntries = cfg.core.lqPerThread() * p.threads;
            p.sqEntries = cfg.core.sqPerThread() * p.threads;
            p.shelfEntries = cfg.core.shelfPerThread() * p.threads;
        }
        std::vector<const Trace *> trace_ptrs;
        for (unsigned t : ts)
            trace_ptrs.push_back(&traces[t]);
        cores[c] = std::make_unique<Core>(p, *hiers[c], trace_ptrs);
    }
}

void
System::warmupPhase()
{
    // Functional warmup (the equivalent of the paper's 100M-inst
    // microarchitectural warming before the SimPoint): walk a prefix
    // of each trace, installing code and data blocks in the caches
    // and training the owning core's branch predictor, then run
    // timed warmup.
    size_t total = cfg.benchmarks.size();
    for (unsigned t = 0; t < total; ++t) {
        Core &c = *cores[assignment[t]];
        MemHierarchy &h = *hiers[assignment[t]];
        auto tid = static_cast<ThreadID>(localTid[t]);
        const Trace &tr = traces[t];
        size_t limit = std::min<size_t>(tr.size(), 65536);
        for (size_t i = 0; i < limit; ++i) {
            const TraceInst &inst = tr[i];
            h.warmInst(inst.pc);
            if (inst.isMem())
                h.warmData(inst.addr);
            if (inst.isBranch())
                c.branchPredictor().update(tid, inst.pc, inst.taken);
        }
    }
    for (auto &c : cores) {
        if (!c)
            continue;
        c->branchPredictor().lookups.reset();
        c->branchPredictor().mispredicts.reset();
    }

    runAll(cfg.warmupCycles);
}

void
System::runAll(Cycle cycles)
{
    std::vector<Core *> active;
    for (auto &c : cores)
        if (c)
            active.push_back(c.get());
    if (active.size() == 1) {
        active[0]->run(cycles);
        return;
    }
    // Cycle-lockstep: every phase leaves all cores at the same
    // cycle, so the common target is any core's cycle plus the
    // budget. Each iteration steps every core sitting at the
    // minimum cycle, in core-index order — the fixed order makes
    // shared-hierarchy access deterministic — and stepWithSkip lets
    // a core fast-forward its own quiescent spans (it touches no
    // shared state while quiescent), after which it idles here
    // until the others catch up.
    Cycle target = active[0]->cycle() + cycles;
    while (true) {
        Cycle min = target;
        for (Core *c : active)
            min = std::min(min, c->cycle());
        if (min >= target)
            break;
        for (Core *c : active)
            if (c->cycle() == min)
                c->stepWithSkip(target);
    }
}

SystemResult
System::run()
{
    warmupPhase();

    if (cfg.numCores > 1 && cfg.allocation == "dynamic") {
        // Epoch-based reallocation: the timed warmup doubled as a
        // probe epoch under round-robin placement. Re-deal threads
        // by their measured IPC, rebuild the cores, and re-warm —
        // the caches keep their (shared) state, the fresh cores
        // retrain their predictors deterministically.
        size_t total = cfg.benchmarks.size();
        std::vector<double> ipc(total, 0.0);
        for (unsigned t = 0; t < total; ++t) {
            ipc[t] = cores[assignment[t]]->ipc(
                static_cast<ThreadID>(localTid[t]));
        }
        assignment = reallocateByIpc(ipc, cfg.numCores,
                                     cfg.core.threads);
        buildCores();
        warmupPhase();
    }

    for (auto &c : cores)
        if (c)
            c->resetStats();
    for (auto &h : hiers)
        h->resetStats();
    if (sharedL2)
        sharedL2->resetStats();

    runAll(cfg.measureCycles);
    for (auto &c : cores)
        if (c)
            c->classify().finalize();

    SystemResult res;
    res.configName = cfg.core.name;
    res.numCores = cfg.numCores;
    if (cfg.numCores > 1)
        res.allocation = cfg.allocation;

    size_t total = cfg.benchmarks.size();
    for (unsigned t = 0; t < total; ++t) {
        Core &c = *cores[assignment[t]];
        auto tid = static_cast<ThreadID>(localTid[t]);
        ThreadResult tr;
        tr.benchmark = cfg.benchmarks[t];
        tr.core = assignment[t];
        tr.instructions = c.retired(tid);
        tr.ipc = c.ipc(tid);
        tr.inSeqFrac = c.classify().inSequenceFraction(tid);
        res.threads.push_back(tr);
    }

    if (cfg.numCores == 1) {
        // The classic path: every aggregate comes from the one core
        // through exactly the historical expressions, keeping the
        // result bit-identical to the single-core implementation.
        Core &c = *cores[0];
        const Classifier &cls = c.classify();
        res.cycles = c.coreStatistics().cycles;
        res.totalIpc = c.totalIpc();
        res.inSeqFrac = cls.inSequenceFraction();
        res.shelfSteerFrac = c.steering().shelfFraction();
        if (auto *shadow =
                dynamic_cast<ShadowSteering *>(&c.steering())) {
            res.missteerFrac = shadow->missteerFraction();
        }
        res.branchMispredictRate =
            c.branchPredictor().mispredictRate();
        res.squashes = c.coreStatistics().squashes;
        res.memOrderSquashes = c.coreStatistics().memOrderSquashes;
        res.setSeries(cls.inSeqSeries(), cls.reorderedSeries());
        res.events = c.eventCounts();
    } else {
        // Lockstep leaves every active core at the same cycle;
        // aggregates are exact sums of the per-core counters.
        uint64_t retired = 0, inSeq = 0, classified = 0;
        double toShelf = 0, steered = 0;
        double disagreements = 0, decisions = 0;
        double lookups = 0, mispredicts = 0;
        stats::Histogram inSeqH, reorderedH;
        for (auto &cp : cores) {
            if (!cp)
                continue;
            Core &c = *cp;
            res.cycles = c.coreStatistics().cycles;
            retired += c.coreStatistics().totalRetired();
            const Classifier &cls = c.classify();
            inSeq += cls.totalInSequence();
            classified += cls.totalRetired();
            inSeqH.merge(cls.inSeqSeries());
            reorderedH.merge(cls.reorderedSeries());
            SteeringPolicy &sp = c.steering();
            toShelf += sp.steeredToShelf.value();
            steered += sp.steeredToShelf.value() +
                sp.steeredToIq.value();
            if (auto *shadow = dynamic_cast<ShadowSteering *>(&sp)) {
                disagreements += shadow->disagreements.value();
                decisions += sp.steeredToShelf.value() +
                    sp.steeredToIq.value();
            }
            lookups += c.branchPredictor().lookups.value();
            mispredicts += c.branchPredictor().mispredicts.value();
            res.squashes += c.coreStatistics().squashes;
            res.memOrderSquashes +=
                c.coreStatistics().memOrderSquashes;
            EventCounts &ev = c.eventCounts();
            res.events.fetchedInsts += ev.fetchedInsts;
            res.events.decodedInsts += ev.decodedInsts;
            res.events.renameOps += ev.renameOps;
            res.events.iqWrites += ev.iqWrites;
            res.events.iqWakeupCompares += ev.iqWakeupCompares;
            res.events.iqIssues += ev.iqIssues;
            res.events.shelfWrites += ev.shelfWrites;
            res.events.shelfIssues += ev.shelfIssues;
            res.events.robWrites += ev.robWrites;
            res.events.robRetires += ev.robRetires;
            res.events.prfReads += ev.prfReads;
            res.events.prfWrites += ev.prfWrites;
            res.events.lqWrites += ev.lqWrites;
            res.events.sqWrites += ev.sqWrites;
            res.events.lsqSearches += ev.lsqSearches;
            res.events.fuOps += ev.fuOps;
            res.events.ssrUpdates += ev.ssrUpdates;
            res.events.steerEvals += ev.steerEvals;
            res.events.squashedInsts += ev.squashedInsts;
        }
        res.totalIpc = res.cycles
            ? static_cast<double>(retired) /
              static_cast<double>(res.cycles)
            : 0.0;
        res.inSeqFrac = classified
            ? static_cast<double>(inSeq) /
              static_cast<double>(classified)
            : 0.0;
        res.shelfSteerFrac = steered > 0 ? toShelf / steered : 0.0;
        res.missteerFrac =
            decisions > 0 ? disagreements / decisions : 0.0;
        res.branchMispredictRate =
            lookups > 0 ? mispredicts / lookups : 0.0;
        res.setSeries(std::move(inSeqH), std::move(reorderedH));
    }

    if (cfg.numCores == 1) {
        res.l1dMissRate = hiers[0]->l1d().missRate();
        EnergyModel energy(cfg.core, cfg.mem);
        res.energy = energy.evaluate(
            res.events, hiers[0]->l1i().accesses.value(),
            hiers[0]->l1d().accesses.value(), res.cycles,
            cores[0]->coreStatistics().totalRetired());
    } else {
        // Miss rate over the combined private L1Ds.
        double l1dAcc = 0, l1dMiss = 0;
        for (auto &h : hiers) {
            l1dAcc += h->l1d().accesses.value();
            l1dMiss += h->l1d().misses.value();
        }
        res.l1dMissRate = l1dAcc > 0 ? l1dMiss / l1dAcc : 0.0;

        // Evaluate each core against its own parameters (partition
        // sizes differ on partially-filled cores) and its private
        // L1s, sum the raw energies, and recompute the derived
        // per-instruction and power figures from the totals.
        uint64_t retired = 0;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            auto &cp = cores[c];
            if (!cp)
                continue;
            retired += cp->coreStatistics().totalRetired();
            EnergyModel em(cp->params(), cfg.mem);
            EnergyReport r = em.evaluate(
                cp->eventCounts(),
                hiers[c]->l1i().accesses.value(),
                hiers[c]->l1d().accesses.value(),
                res.cycles, cp->coreStatistics().totalRetired());
            res.energy.dynamicPJ += r.dynamicPJ;
            res.energy.leakagePJ += r.leakagePJ;
        }
        res.energy.totalPJ =
            res.energy.dynamicPJ + res.energy.leakagePJ;
        double seconds = static_cast<double>(res.cycles) /
            (EnergyModel::kClockGHz * 1e9);
        if (retired > 0) {
            res.energy.energyPerInstPJ =
                res.energy.totalPJ / retired;
            res.energy.cyclesPerInst =
                static_cast<double>(res.cycles) / retired;
            res.energy.edp = res.energy.energyPerInstPJ *
                res.energy.cyclesPerInst;
        }
        if (seconds > 0)
            res.energy.avgPowerW =
                res.energy.totalPJ * 1e-12 / seconds;
    }

    return res;
}


std::string
System::statsReport() const
{
    if (cfg.numCores > 1)
        return multiCoreStatsReport();

    std::string out;
    auto line = [&out](const char *name, double value,
                       const char *desc) {
        out += csprintf("%-40s %14.6g  # %s\n", name, value, desc);
    };

    const Core &c = *cores[0];
    const CoreStats &cs = c.coreStatistics();
    line("sim.cycles", static_cast<double>(cs.cycles),
         "measured cycles");
    line("sim.insts", static_cast<double>(cs.totalRetired()),
         "retired instructions (all threads)");
    line("sim.ipc", c.totalIpc(), "aggregate IPC");
    for (unsigned t = 0; t < cfg.core.threads; ++t) {
        line(csprintf("thread%u.insts", t).c_str(),
             static_cast<double>(cs.retired[t]),
             cfg.benchmarks[t].c_str());
        line(csprintf("thread%u.ipc", t).c_str(),
             c.ipc(static_cast<ThreadID>(t)), "per-thread");
    }

    const Classifier &cls = const_cast<Core &>(c).classify();
    line("classify.in_seq_frac", cls.inSequenceFraction(),
         "fraction of retired insts issuing in-sequence");

    line("squash.total", static_cast<double>(cs.squashes),
         "pipeline squashes");
    line("squash.branch", static_cast<double>(cs.branchSquashes),
         "branch-mispredict squashes");
    line("squash.mem_order",
         static_cast<double>(cs.memOrderSquashes),
         "memory-order violation squashes");

    const DispatchStalls &ds = cs.dispatchStalls;
    line("stall.iq_full", static_cast<double>(ds.iqFull),
         "dispatch stalls: issue queue full");
    line("stall.rob_full", static_cast<double>(ds.robFull),
         "dispatch stalls: ROB partition full");
    line("stall.lq_full", static_cast<double>(ds.lqFull),
         "dispatch stalls: load queue full");
    line("stall.sq_full", static_cast<double>(ds.sqFull),
         "dispatch stalls: store queue full");
    line("stall.shelf_full", static_cast<double>(ds.shelfFull),
         "dispatch stalls: shelf full");
    line("stall.phys_regs", static_cast<double>(ds.physRegs),
         "dispatch stalls: physical registers");
    line("stall.ext_tags", static_cast<double>(ds.extTags),
         "dispatch stalls: extension tags");

    line("sim.quiesce_skipped_cycles",
         static_cast<double>(cs.quiesceSkippedCycles),
         "quiescent cycles fast-forwarded (counted in sim.cycles)");
    line("sim.quiesce_spans",
         static_cast<double>(cs.quiesceSpans),
         "contiguous fast-forwarded spans");

    line("occ.iq", cs.iqOccupancy.mean(), "mean IQ occupancy");
    line("occ.rob", cs.robOccupancy.mean(), "mean ROB occupancy");
    line("occ.shelf", cs.shelfOccupancy.mean(),
         "mean shelf occupancy");

    const SteeringPolicy &sp =
        const_cast<Core &>(c).steering();
    line("steer.shelf_frac", sp.shelfFraction(),
         "instructions steered to the shelf");

    const GsharePredictor &bp =
        const_cast<Core &>(c).branchPredictor();
    line("branch.lookups", bp.lookups.value(),
         "conditional branches predicted");
    line("branch.mispredict_rate", bp.mispredictRate(),
         "direction mispredict rate");

    line("l1i.accesses", hiers[0]->l1i().accesses.value(), "L1I demand");
    line("l1i.miss_rate", hiers[0]->l1i().missRate(), "L1I miss rate");
    line("l1d.accesses", hiers[0]->l1d().accesses.value(), "L1D demand");
    line("l1d.miss_rate", hiers[0]->l1d().missRate(), "L1D miss rate");
    line("l2.accesses", hiers[0]->l2().accesses.value(), "L2 lookups");
    line("l2.miss_rate", hiers[0]->l2().missRate(), "L2 miss rate");

    const LSQ &lsq = c.lsqUnit();
    line("lsq.forwards", lsq.forwards.value(),
         "store-to-load forwards");
    line("lsq.coalesces", lsq.coalesces.value(),
         "shelf stores coalesced");
    line("lsq.violations", lsq.violations.value(),
         "memory-order violations detected");

    const EventCounts &ev =
        const_cast<Core &>(c).eventCounts();
    line("events.fetched", static_cast<double>(ev.fetchedInsts),
         "instructions fetched");
    line("events.squashed", static_cast<double>(ev.squashedInsts),
         "instructions squashed");
    line("events.iq_writes", static_cast<double>(ev.iqWrites),
         "IQ allocations");
    line("events.shelf_writes",
         static_cast<double>(ev.shelfWrites), "shelf allocations");
    line("events.prf_reads", static_cast<double>(ev.prfReads),
         "register file reads");
    line("events.prf_writes", static_cast<double>(ev.prfWrites),
         "register file writes");

    EnergyModel energy(cfg.core, cfg.mem);
    EnergyReport rep = energy.evaluate(
        ev, hiers[0]->l1i().accesses.value(),
        hiers[0]->l1d().accesses.value(), cs.cycles,
        cs.totalRetired());
    line("energy.dynamic_pj", rep.dynamicPJ, "dynamic energy");
    line("energy.leakage_pj", rep.leakagePJ, "leakage energy");
    line("energy.per_inst_pj", rep.energyPerInstPJ,
         "energy per instruction");
    line("energy.edp", rep.edp, "energy-delay per instruction");
    line("energy.power_w", rep.avgPowerW, "average power");
    line("area.core", energy.coreArea(false),
         "core area (no L1), arbitrary units");
    line("area.core_l1", energy.coreArea(true),
         "core area incl. L1");
    return out;
}

std::string
System::multiCoreStatsReport() const
{
    std::string out;
    auto line = [&out](const std::string &name, double value,
                       const std::string &desc) {
        out += csprintf("%-40s %14.6g  # %s\n", name.c_str(), value,
                        desc.c_str());
    };

    // Aggregate counters across cores (the lockstep loop leaves
    // every active core at the same cycle).
    Cycle cycles = 0;
    uint64_t retired = 0, inSeq = 0, classified = 0;
    uint64_t squashes = 0, branchSquashes = 0, memOrderSquashes = 0;
    DispatchStalls stalls;
    uint64_t skipped = 0, spans = 0;
    double toShelf = 0, steered = 0;
    double lookups = 0, mispredicts = 0;
    double forwards = 0, coalesces = 0, violations = 0;
    EventCounts ev;
    double dynamicPJ = 0, leakagePJ = 0;
    double areaCore = 0, areaCoreL1 = 0;
    unsigned activeCores = 0;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        if (!cores[c])
            continue;
        ++activeCores;
        Core &core = const_cast<Core &>(*cores[c]);
        const CoreStats &cs = core.coreStatistics();
        cycles = cs.cycles;
        retired += cs.totalRetired();
        const Classifier &cls = core.classify();
        inSeq += cls.totalInSequence();
        classified += cls.totalRetired();
        squashes += cs.squashes;
        branchSquashes += cs.branchSquashes;
        memOrderSquashes += cs.memOrderSquashes;
        stalls.iqFull += cs.dispatchStalls.iqFull;
        stalls.robFull += cs.dispatchStalls.robFull;
        stalls.lqFull += cs.dispatchStalls.lqFull;
        stalls.sqFull += cs.dispatchStalls.sqFull;
        stalls.shelfFull += cs.dispatchStalls.shelfFull;
        stalls.physRegs += cs.dispatchStalls.physRegs;
        stalls.extTags += cs.dispatchStalls.extTags;
        skipped += cs.quiesceSkippedCycles;
        spans += cs.quiesceSpans;
        SteeringPolicy &sp = core.steering();
        toShelf += sp.steeredToShelf.value();
        steered += sp.steeredToShelf.value() +
            sp.steeredToIq.value();
        lookups += core.branchPredictor().lookups.value();
        mispredicts += core.branchPredictor().mispredicts.value();
        forwards += core.lsqUnit().forwards.value();
        coalesces += core.lsqUnit().coalesces.value();
        violations += core.lsqUnit().violations.value();
        const EventCounts &cev = core.eventCounts();
        ev.fetchedInsts += cev.fetchedInsts;
        ev.squashedInsts += cev.squashedInsts;
        ev.iqWrites += cev.iqWrites;
        ev.shelfWrites += cev.shelfWrites;
        ev.prfReads += cev.prfReads;
        ev.prfWrites += cev.prfWrites;
        EnergyModel em(core.params(), cfg.mem);
        EnergyReport r = em.evaluate(
            cev, hiers[c]->l1i().accesses.value(),
            hiers[c]->l1d().accesses.value(),
            cs.cycles, cs.totalRetired());
        dynamicPJ += r.dynamicPJ;
        leakagePJ += r.leakagePJ;
        areaCore += em.coreArea(false);
        areaCoreL1 += em.coreArea(true);
    }

    line("sim.cores", static_cast<double>(activeCores),
         csprintf("active cores of %u (allocation: %s)",
                  cfg.numCores, cfg.allocation.c_str()));
    line("sim.cycles", static_cast<double>(cycles),
         "measured cycles (lockstep across cores)");
    line("sim.insts", static_cast<double>(retired),
         "retired instructions (all cores)");
    line("sim.ipc",
         cycles ? static_cast<double>(retired) /
                  static_cast<double>(cycles) : 0.0,
         "aggregate IPC (all cores)");

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        if (!cores[c])
            continue;
        const Core &core = *cores[c];
        const CoreStats &cs = core.coreStatistics();
        line(csprintf("core%u.threads", c),
             static_cast<double>(coreThreads[c].size()),
             "threads allocated");
        line(csprintf("core%u.insts", c),
             static_cast<double>(cs.totalRetired()),
             "retired instructions");
        line(csprintf("core%u.ipc", c), core.totalIpc(),
             "per-core IPC");
        line(csprintf("core%u.quiesce_skipped_cycles", c),
             static_cast<double>(cs.quiesceSkippedCycles),
             "quiescent cycles fast-forwarded");
    }

    size_t total = cfg.benchmarks.size();
    for (unsigned t = 0; t < total; ++t) {
        const Core &core = *cores[assignment[t]];
        line(csprintf("thread%u.core", t),
             static_cast<double>(assignment[t]),
             cfg.benchmarks[t]);
        line(csprintf("thread%u.insts", t),
             static_cast<double>(core.retired(
                 static_cast<ThreadID>(localTid[t]))),
             cfg.benchmarks[t]);
        line(csprintf("thread%u.ipc", t),
             core.ipc(static_cast<ThreadID>(localTid[t])),
             "per-thread");
    }

    line("classify.in_seq_frac",
         classified ? static_cast<double>(inSeq) /
                      static_cast<double>(classified) : 0.0,
         "fraction of retired insts issuing in-sequence");

    line("squash.total", static_cast<double>(squashes),
         "pipeline squashes");
    line("squash.branch", static_cast<double>(branchSquashes),
         "branch-mispredict squashes");
    line("squash.mem_order", static_cast<double>(memOrderSquashes),
         "memory-order violation squashes");

    line("stall.iq_full", static_cast<double>(stalls.iqFull),
         "dispatch stalls: issue queue full");
    line("stall.rob_full", static_cast<double>(stalls.robFull),
         "dispatch stalls: ROB partition full");
    line("stall.lq_full", static_cast<double>(stalls.lqFull),
         "dispatch stalls: load queue full");
    line("stall.sq_full", static_cast<double>(stalls.sqFull),
         "dispatch stalls: store queue full");
    line("stall.shelf_full", static_cast<double>(stalls.shelfFull),
         "dispatch stalls: shelf full");
    line("stall.phys_regs", static_cast<double>(stalls.physRegs),
         "dispatch stalls: physical registers");
    line("stall.ext_tags", static_cast<double>(stalls.extTags),
         "dispatch stalls: extension tags");

    line("sim.quiesce_skipped_cycles",
         static_cast<double>(skipped),
         "quiescent cycles fast-forwarded (all cores)");
    line("sim.quiesce_spans", static_cast<double>(spans),
         "contiguous fast-forwarded spans (all cores)");

    line("steer.shelf_frac",
         steered > 0 ? toShelf / steered : 0.0,
         "instructions steered to the shelf");

    line("branch.lookups", lookups,
         "conditional branches predicted");
    line("branch.mispredict_rate",
         lookups > 0 ? mispredicts / lookups : 0.0,
         "direction mispredict rate");

    // Private L1s aggregated across cores; the L2 is the one shared
    // cache behind them.
    double l1iAcc = 0, l1iMiss = 0, l1dAcc = 0, l1dMiss = 0;
    for (auto &h : hiers) {
        l1iAcc += h->l1i().accesses.value();
        l1iMiss += h->l1i().misses.value();
        l1dAcc += h->l1d().accesses.value();
        l1dMiss += h->l1d().misses.value();
    }
    line("l1i.accesses", l1iAcc, "L1I demand (all private L1Is)");
    line("l1i.miss_rate", l1iAcc > 0 ? l1iMiss / l1iAcc : 0.0,
         "L1I miss rate");
    line("l1d.accesses", l1dAcc, "L1D demand (all private L1Ds)");
    line("l1d.miss_rate", l1dAcc > 0 ? l1dMiss / l1dAcc : 0.0,
         "L1D miss rate");
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        if (!cores[c])
            continue;
        line(csprintf("core%u.l1d.miss_rate", c),
             hiers[c]->l1d().missRate(), "private L1D miss rate");
    }
    line("l2.accesses", sharedL2->accesses.value(),
         "shared L2 lookups");
    line("l2.miss_rate", sharedL2->missRate(),
         "shared L2 miss rate");

    line("lsq.forwards", forwards, "store-to-load forwards");
    line("lsq.coalesces", coalesces, "shelf stores coalesced");
    line("lsq.violations", violations,
         "memory-order violations detected");

    line("events.fetched", static_cast<double>(ev.fetchedInsts),
         "instructions fetched");
    line("events.squashed", static_cast<double>(ev.squashedInsts),
         "instructions squashed");
    line("events.iq_writes", static_cast<double>(ev.iqWrites),
         "IQ allocations");
    line("events.shelf_writes",
         static_cast<double>(ev.shelfWrites), "shelf allocations");
    line("events.prf_reads", static_cast<double>(ev.prfReads),
         "register file reads");
    line("events.prf_writes", static_cast<double>(ev.prfWrites),
         "register file writes");

    double totalPJ = dynamicPJ + leakagePJ;
    double seconds = static_cast<double>(cycles) /
        (EnergyModel::kClockGHz * 1e9);
    line("energy.dynamic_pj", dynamicPJ,
         "dynamic energy (all cores)");
    line("energy.leakage_pj", leakagePJ,
         "leakage energy (all cores)");
    line("energy.per_inst_pj",
         retired > 0 ? totalPJ / retired : 0.0,
         "energy per instruction");
    line("energy.edp",
         retired > 0
             ? (totalPJ / retired) *
               (static_cast<double>(cycles) / retired)
             : 0.0,
         "energy-delay per instruction");
    line("energy.power_w",
         seconds > 0 ? totalPJ * 1e-12 / seconds : 0.0,
         "average power (all cores)");
    line("area.core", areaCore,
         "total core area (no L1), arbitrary units");
    line("area.core_l1", areaCoreL1,
         "total core area incl. L1");
    return out;
}

} // namespace shelf
