#include "sim/system.hh"

#include "base/logging.hh"
#include "base/json.hh"
#include "base/strutil.hh"
#include "core/steer/shadow.hh"
#include "workload/spec2006.hh"

namespace shelf
{

std::vector<double>
SystemResult::ipcVector() const
{
    std::vector<double> v;
    for (const auto &t : threads)
        v.push_back(t.ipc);
    return v;
}


std::string
SystemResult::toJson(int doublePrecision) const
{
    JsonWriter w(doublePrecision);
    w.beginObject();
    w.field("config", configName);
    w.field("cycles", static_cast<uint64_t>(cycles));
    w.field("total_ipc", totalIpc);
    w.field("in_seq_frac", inSeqFrac);
    w.field("shelf_steer_frac", shelfSteerFrac);
    w.field("missteer_frac", missteerFrac);
    w.field("branch_mispredict_rate", branchMispredictRate);
    w.field("l1d_miss_rate", l1dMissRate);
    w.field("squashes", static_cast<uint64_t>(squashes));
    w.field("mem_order_squashes",
            static_cast<uint64_t>(memOrderSquashes));
    w.beginArray("threads");
    for (const auto &t : threads) {
        w.beginObject();
        w.field("benchmark", t.benchmark);
        w.field("instructions",
                static_cast<uint64_t>(t.instructions));
        w.field("ipc", t.ipc);
        w.field("in_seq_frac", t.inSeqFrac);
        w.endObject();
    }
    w.endArray();
    w.beginObject("energy");
    w.field("dynamic_pj", energy.dynamicPJ);
    w.field("leakage_pj", energy.leakagePJ);
    w.field("per_inst_pj", energy.energyPerInstPJ);
    w.field("edp", energy.edp);
    w.field("power_w", energy.avgPowerW);
    w.endObject();
    w.beginObject("events");
    w.field("fetched", static_cast<uint64_t>(events.fetchedInsts));
    w.field("squashed",
            static_cast<uint64_t>(events.squashedInsts));
    w.field("iq_writes", static_cast<uint64_t>(events.iqWrites));
    w.field("shelf_writes",
            static_cast<uint64_t>(events.shelfWrites));
    w.field("shelf_issues",
            static_cast<uint64_t>(events.shelfIssues));
    w.endObject();
    w.endObject();
    return w.str();
}

SystemResult
SystemResult::fromJson(const std::string &json)
{
    JsonValue doc;
    std::string err;
    fatal_if(!tryParseJson(json, doc, &err), "result JSON: %s",
             err.c_str());
    fatal_if(!doc.isObject(), "result JSON: expected an object");

    auto num = [](const JsonValue &v, const char *key) -> double {
        fatal_if(!v.isNumber(),
                 "result JSON: '%s' must be a number", key);
        return v.asDouble();
    };
    auto u64 = [](const JsonValue &v, const char *key) -> uint64_t {
        fatal_if(!v.isNumber(),
                 "result JSON: '%s' must be a number", key);
        return v.asU64();
    };
    auto str = [](const JsonValue &v,
                  const char *key) -> const std::string & {
        fatal_if(!v.isString(),
                 "result JSON: '%s' must be a string", key);
        return v.raw;
    };

    SystemResult r;
    for (const auto &[key, v] : doc.members) {
        const char *k = key.c_str();
        if (key == "config") r.configName = str(v, k);
        else if (key == "cycles")
            r.cycles = static_cast<Cycle>(u64(v, k));
        else if (key == "total_ipc") r.totalIpc = num(v, k);
        else if (key == "in_seq_frac") r.inSeqFrac = num(v, k);
        else if (key == "shelf_steer_frac")
            r.shelfSteerFrac = num(v, k);
        else if (key == "missteer_frac") r.missteerFrac = num(v, k);
        else if (key == "branch_mispredict_rate")
            r.branchMispredictRate = num(v, k);
        else if (key == "l1d_miss_rate") r.l1dMissRate = num(v, k);
        else if (key == "squashes") r.squashes = u64(v, k);
        else if (key == "mem_order_squashes")
            r.memOrderSquashes = u64(v, k);
        else if (key == "threads") {
            fatal_if(!v.isArray(),
                     "result JSON: 'threads' must be an array");
            for (const auto &tv : v.items) {
                fatal_if(!tv.isObject(), "result JSON: thread "
                         "entries must be objects");
                ThreadResult t;
                for (const auto &[tk, tvv] : tv.members) {
                    const char *tkc = tk.c_str();
                    if (tk == "benchmark")
                        t.benchmark = str(tvv, tkc);
                    else if (tk == "instructions")
                        t.instructions = u64(tvv, tkc);
                    else if (tk == "ipc") t.ipc = num(tvv, tkc);
                    else if (tk == "in_seq_frac")
                        t.inSeqFrac = num(tvv, tkc);
                    else
                        fatal("result JSON: unknown thread key "
                              "'%s'", tkc);
                }
                r.threads.push_back(std::move(t));
            }
        } else if (key == "energy") {
            fatal_if(!v.isObject(),
                     "result JSON: 'energy' must be an object");
            for (const auto &[ek, ev] : v.members) {
                const char *ekc = ek.c_str();
                if (ek == "dynamic_pj")
                    r.energy.dynamicPJ = num(ev, ekc);
                else if (ek == "leakage_pj")
                    r.energy.leakagePJ = num(ev, ekc);
                else if (ek == "per_inst_pj")
                    r.energy.energyPerInstPJ = num(ev, ekc);
                else if (ek == "edp") r.energy.edp = num(ev, ekc);
                else if (ek == "power_w")
                    r.energy.avgPowerW = num(ev, ekc);
                else
                    fatal("result JSON: unknown energy key '%s'",
                          ekc);
            }
        } else if (key == "events") {
            fatal_if(!v.isObject(),
                     "result JSON: 'events' must be an object");
            for (const auto &[ek, ev] : v.members) {
                const char *ekc = ek.c_str();
                if (ek == "fetched")
                    r.events.fetchedInsts = ev.asU64();
                else if (ek == "squashed")
                    r.events.squashedInsts = ev.asU64();
                else if (ek == "iq_writes")
                    r.events.iqWrites = ev.asU64();
                else if (ek == "shelf_writes")
                    r.events.shelfWrites = ev.asU64();
                else if (ek == "shelf_issues")
                    r.events.shelfIssues = ev.asU64();
                else
                    fatal("result JSON: unknown events key '%s'",
                          ekc);
            }
        } else {
            fatal("result JSON: unknown key '%s'", key.c_str());
        }
    }
    return r;
}

System::System(SystemConfig config)
    : cfg(std::move(config))
{
    cfg.core.validate();
    fatal_if(cfg.benchmarks.size() != cfg.core.threads,
             "%zu benchmarks for %u threads", cfg.benchmarks.size(),
             cfg.core.threads);

    size_t trace_len = cfg.traceLength;
    if (trace_len == 0) {
        // Enough headroom that wraparound is rare: the core retires
        // at most issueWidth per cycle shared across threads.
        trace_len = static_cast<size_t>(
            (cfg.warmupCycles + cfg.measureCycles) *
            (cfg.core.issueWidth + 1));
    }

    if (!cfg.externalTraces.empty()) {
        fatal_if(cfg.externalTraces.size() != cfg.core.threads,
                 "%zu external traces for %u threads",
                 cfg.externalTraces.size(), cfg.core.threads);
        traces = cfg.externalTraces;
        for (unsigned t = 0; t < cfg.core.threads; ++t) {
            if (!traces[t].empty())
                continue;
            // Mixed workload: an empty per-thread entry means
            // "generate this thread" — its benchmarks entry must
            // then name a real profile, not just a label.
            const BenchmarkProfile &prof =
                spec2006Profile(cfg.benchmarks[t]);
            TraceGenerator gen(prof, cfg.seed * 1000003ULL + t,
                               static_cast<Addr>(t) << 30);
            traces[t] = gen.generate(trace_len);
        }
    } else {
        // Each thread gets a disjoint 1GB address-space slice.
        for (unsigned t = 0; t < cfg.core.threads; ++t) {
            const BenchmarkProfile &prof =
                spec2006Profile(cfg.benchmarks[t]);
            TraceGenerator gen(prof, cfg.seed * 1000003ULL + t,
                               static_cast<Addr>(t) << 30);
            traces.push_back(gen.generate(trace_len));
        }
    }

    hier = std::make_unique<MemHierarchy>(cfg.mem);
    std::vector<const Trace *> trace_ptrs;
    for (const auto &tr : traces)
        trace_ptrs.push_back(&tr);
    coreModel = std::make_unique<Core>(cfg.core, *hier, trace_ptrs);
}

System::~System() = default;

SystemResult
System::run()
{
    // Functional warmup (the equivalent of the paper's 100M-inst
    // microarchitectural warming before the SimPoint): walk a prefix
    // of each trace, installing code and data blocks in the caches
    // and training the branch predictor, then run timed warmup.
    for (unsigned t = 0; t < cfg.core.threads; ++t) {
        const Trace &tr = traces[t];
        size_t limit = std::min<size_t>(tr.size(), 65536);
        for (size_t i = 0; i < limit; ++i) {
            const TraceInst &inst = tr[i];
            hier->warmInst(inst.pc);
            if (inst.isMem())
                hier->warmData(inst.addr);
            if (inst.isBranch()) {
                coreModel->branchPredictor().update(
                    static_cast<ThreadID>(t), inst.pc, inst.taken);
            }
        }
    }
    coreModel->branchPredictor().lookups.reset();
    coreModel->branchPredictor().mispredicts.reset();

    coreModel->run(cfg.warmupCycles);
    coreModel->resetStats();
    hier->resetStats();

    coreModel->run(cfg.measureCycles);
    coreModel->classify().finalize();

    SystemResult res;
    res.configName = cfg.core.name;
    res.cycles = coreModel->coreStatistics().cycles;
    res.totalIpc = coreModel->totalIpc();

    const Classifier &cls = coreModel->classify();
    for (unsigned t = 0; t < cfg.core.threads; ++t) {
        ThreadResult tr;
        tr.benchmark = cfg.benchmarks[t];
        tr.instructions =
            coreModel->retired(static_cast<ThreadID>(t));
        tr.ipc = coreModel->ipc(static_cast<ThreadID>(t));
        tr.inSeqFrac =
            cls.inSequenceFraction(static_cast<ThreadID>(t));
        res.threads.push_back(tr);
    }

    res.inSeqFrac = cls.inSequenceFraction();
    res.shelfSteerFrac = coreModel->steering().shelfFraction();
    if (auto *shadow = dynamic_cast<ShadowSteering *>(
            &coreModel->steering())) {
        res.missteerFrac = shadow->missteerFraction();
    }
    res.branchMispredictRate =
        coreModel->branchPredictor().mispredictRate();
    res.l1dMissRate = hier->l1d().missRate();
    res.squashes = coreModel->coreStatistics().squashes;
    res.memOrderSquashes =
        coreModel->coreStatistics().memOrderSquashes;
    res.inSeqSeries = cls.inSeqSeries();
    res.reorderedSeries = cls.reorderedSeries();
    res.events = coreModel->eventCounts();

    EnergyModel energy(cfg.core, cfg.mem);
    res.energy = energy.evaluate(
        res.events, hier->l1i().accesses.value(),
        hier->l1d().accesses.value(), res.cycles,
        coreModel->coreStatistics().totalRetired());

    return res;
}


std::string
System::statsReport() const
{
    std::string out;
    auto line = [&out](const char *name, double value,
                       const char *desc) {
        out += csprintf("%-40s %14.6g  # %s\n", name, value, desc);
    };

    const Core &c = *coreModel;
    const CoreStats &cs = c.coreStatistics();
    line("sim.cycles", static_cast<double>(cs.cycles),
         "measured cycles");
    line("sim.insts", static_cast<double>(cs.totalRetired()),
         "retired instructions (all threads)");
    line("sim.ipc", coreModel->totalIpc(), "aggregate IPC");
    for (unsigned t = 0; t < cfg.core.threads; ++t) {
        line(csprintf("thread%u.insts", t).c_str(),
             static_cast<double>(cs.retired[t]),
             cfg.benchmarks[t].c_str());
        line(csprintf("thread%u.ipc", t).c_str(),
             coreModel->ipc(static_cast<ThreadID>(t)), "per-thread");
    }

    const Classifier &cls = coreModel->classify();
    line("classify.in_seq_frac", cls.inSequenceFraction(),
         "fraction of retired insts issuing in-sequence");

    line("squash.total", static_cast<double>(cs.squashes),
         "pipeline squashes");
    line("squash.branch", static_cast<double>(cs.branchSquashes),
         "branch-mispredict squashes");
    line("squash.mem_order",
         static_cast<double>(cs.memOrderSquashes),
         "memory-order violation squashes");

    const DispatchStalls &ds = cs.dispatchStalls;
    line("stall.iq_full", static_cast<double>(ds.iqFull),
         "dispatch stalls: issue queue full");
    line("stall.rob_full", static_cast<double>(ds.robFull),
         "dispatch stalls: ROB partition full");
    line("stall.lq_full", static_cast<double>(ds.lqFull),
         "dispatch stalls: load queue full");
    line("stall.sq_full", static_cast<double>(ds.sqFull),
         "dispatch stalls: store queue full");
    line("stall.shelf_full", static_cast<double>(ds.shelfFull),
         "dispatch stalls: shelf full");
    line("stall.phys_regs", static_cast<double>(ds.physRegs),
         "dispatch stalls: physical registers");
    line("stall.ext_tags", static_cast<double>(ds.extTags),
         "dispatch stalls: extension tags");

    line("sim.quiesce_skipped_cycles",
         static_cast<double>(cs.quiesceSkippedCycles),
         "quiescent cycles fast-forwarded (counted in sim.cycles)");
    line("sim.quiesce_spans",
         static_cast<double>(cs.quiesceSpans),
         "contiguous fast-forwarded spans");

    line("occ.iq", cs.iqOccupancy.mean(), "mean IQ occupancy");
    line("occ.rob", cs.robOccupancy.mean(), "mean ROB occupancy");
    line("occ.shelf", cs.shelfOccupancy.mean(),
         "mean shelf occupancy");

    const SteeringPolicy &sp =
        const_cast<Core &>(c).steering();
    line("steer.shelf_frac", sp.shelfFraction(),
         "instructions steered to the shelf");

    const GsharePredictor &bp =
        const_cast<Core &>(c).branchPredictor();
    line("branch.lookups", bp.lookups.value(),
         "conditional branches predicted");
    line("branch.mispredict_rate", bp.mispredictRate(),
         "direction mispredict rate");

    line("l1i.accesses", hier->l1i().accesses.value(), "L1I demand");
    line("l1i.miss_rate", hier->l1i().missRate(), "L1I miss rate");
    line("l1d.accesses", hier->l1d().accesses.value(), "L1D demand");
    line("l1d.miss_rate", hier->l1d().missRate(), "L1D miss rate");
    line("l2.accesses", hier->l2().accesses.value(), "L2 lookups");
    line("l2.miss_rate", hier->l2().missRate(), "L2 miss rate");

    const LSQ &lsq = c.lsqUnit();
    line("lsq.forwards", lsq.forwards.value(),
         "store-to-load forwards");
    line("lsq.coalesces", lsq.coalesces.value(),
         "shelf stores coalesced");
    line("lsq.violations", lsq.violations.value(),
         "memory-order violations detected");

    const EventCounts &ev =
        const_cast<Core &>(c).eventCounts();
    line("events.fetched", static_cast<double>(ev.fetchedInsts),
         "instructions fetched");
    line("events.squashed", static_cast<double>(ev.squashedInsts),
         "instructions squashed");
    line("events.iq_writes", static_cast<double>(ev.iqWrites),
         "IQ allocations");
    line("events.shelf_writes",
         static_cast<double>(ev.shelfWrites), "shelf allocations");
    line("events.prf_reads", static_cast<double>(ev.prfReads),
         "register file reads");
    line("events.prf_writes", static_cast<double>(ev.prfWrites),
         "register file writes");

    EnergyModel energy(cfg.core, cfg.mem);
    EnergyReport rep = energy.evaluate(
        ev, hier->l1i().accesses.value(),
        hier->l1d().accesses.value(), cs.cycles,
        cs.totalRetired());
    line("energy.dynamic_pj", rep.dynamicPJ, "dynamic energy");
    line("energy.leakage_pj", rep.leakagePJ, "leakage energy");
    line("energy.per_inst_pj", rep.energyPerInstPJ,
         "energy per instruction");
    line("energy.edp", rep.edp, "energy-delay per instruction");
    line("energy.power_w", rep.avgPowerW, "average power");
    line("area.core", energy.coreArea(false),
         "core area (no L1), arbitrary units");
    line("area.core_l1", energy.coreArea(true),
         "core area incl. L1");
    return out;
}

} // namespace shelf
