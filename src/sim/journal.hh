/**
 * @file
 * Shared JSONL sweep-journal machinery: one finished-job record per
 * line (ok records carry the full-precision result, quarantined
 * records the failure forensics), plus the fabric's lease records
 * (validate::LeaseRecord) interleaved in the same stream.
 *
 * The journal is the sweep's only durable state, so every consumer
 * must agree on its semantics:
 *
 *  - records are append-only and flushed per line; a writer killed
 *    mid-append leaves at most one torn final line, which loaders
 *    skip with a warning (losing the in-flight record is the
 *    contract — it simply re-runs);
 *  - finished records are last-wins per canonical job key, so
 *    re-runs and merged shards supersede older attempts;
 *  - lease records mark work as handed out, never as done: loaders
 *    drop them from the resumable set, and journal-merge folds them
 *    away entirely.
 *
 * The supervisor (single-node sweeps), the fabric coordinator
 * (per-node shard journals), and the journal-merge tool all go
 * through this module, which is what keeps "resume from any journal,
 * byte-identically" a single code path.
 */

#ifndef SHELFSIM_SIM_JOURNAL_HH
#define SHELFSIM_SIM_JOURNAL_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/supervisor.hh"

namespace shelf
{

/** One finished-job record parsed back from a journal. */
struct JournalRecord
{
    std::string status; ///< "ok" or "quarantined"
    unsigned attempts = 0;
    double wallSeconds = 0;
    std::string resultJson;
    int exitCode = 0;
    int termSignal = 0;
    bool timedOut = false;
    std::string stderrTail;
    std::string repro;
    std::string dumpFile;
    std::string node; ///< fabric: node that produced the record
};

/** Serialize one finished job as a journal line (no newline). */
std::string journalLine(const std::string &key, const JobOutcome &oc,
                        const std::string &node = "");

/**
 * Load every well-formed finished-job record from @p path,
 * last-wins per job key. Lease records are silently skipped (they
 * are assignment bookkeeping, not results); torn or malformed lines
 * are skipped with a warning rather than aborting — a writer
 * SIGKILLed mid-append loses exactly its in-flight line. A missing
 * file is an empty journal.
 */
std::map<std::string, JournalRecord>
loadJournal(const std::string &path);

/**
 * Reconstruct a replayed JobOutcome from a journal record. Returns
 * false (outcome unspecified) when an ok record's result payload is
 * unreadable, in which case the caller should re-run the job.
 */
bool outcomeFromJournal(const JournalRecord &rec, JobOutcome &oc);

/**
 * Thread-safe append-only JSONL writer: one line per append, flushed
 * immediately so a SIGKILL loses at most the line being written.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open @p path for append; "" is a no-op writer. */
    bool open(const std::string &path, std::string *err = nullptr);
    void close();
    bool isOpen() const { return f != nullptr; }
    const std::string &path() const { return path_; }

    /** Append one record line (newline added here). No-op when not
     * open. */
    void append(const std::string &line);

  private:
    FILE *f = nullptr;
    std::string path_;
    std::mutex m;
};

/** What journal-merge folded, for reporting. */
struct JournalMergeStats
{
    size_t inputs = 0;     ///< journal files read
    size_t lines = 0;      ///< total lines seen
    size_t jobs = 0;       ///< unique finished job keys kept
    size_t superseded = 0; ///< older duplicates dropped (last wins)
    size_t leases = 0;     ///< lease records dropped
    size_t torn = 0;       ///< malformed/torn lines skipped
};

/**
 * Fold the per-shard journals @p inputs (read in order; within and
 * across files, later records win per key) into one resumable
 * journal at @p outPath containing exactly one finished record per
 * job, in first-seen key order, each line byte-identical to the
 * winning input line — so a resume from the merged journal replays
 * exactly what the shards recorded. Missing input files are treated
 * as empty shards (a node may have died before journaling anything).
 * Returns false with @p err on I/O failure or when @p outPath is
 * also an input.
 */
bool mergeJournals(const std::vector<std::string> &inputs,
                   const std::string &outPath,
                   JournalMergeStats &stats, std::string &err);

} // namespace shelf

#endif // SHELFSIM_SIM_JOURNAL_HH
