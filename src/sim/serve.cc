#include "sim/serve.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "base/json.hh"
#include "base/strutil.hh"
#include "sim/parallel.hh"
#include "workload/spec2006.hh"

namespace shelf
{

namespace
{

/**
 * Validate one job spec beyond JSON well-formedness. The in-process
 * execution path runs jobs in the server's own address space, where
 * an invalid config or mix would trip a fatal() and take the whole
 * service down — so everything runSweepJob() would die on must be
 * rejected at the door instead.
 */
bool
checkJobSpec(const validate::SweepJobSpec &spec, bool allowFaults,
             std::string &err)
{
    std::string bad = spec.core.validateError();
    if (!bad.empty()) {
        err = csprintf("invalid core config: %s", bad.c_str());
        return false;
    }
    if (!spec.tracePaths.empty()) {
        // Trace-backed jobs: shape checks only — the daemon never
        // touches the filesystem at the door. Hashes are REQUIRED
        // here (the CLI computes them client-side) so the job key is
        // content-addressed before anything is cached, and a missing
        // or rotted file quarantines in the executor, not here.
        if (spec.numCores == 1
                ? spec.tracePaths.size() != spec.core.threads
                : spec.tracePaths.size() >
                      static_cast<size_t>(spec.numCores) *
                          spec.core.threads) {
            err = csprintf("%zu traces for %u cores x %u threads",
                           spec.tracePaths.size(), spec.numCores,
                           spec.core.threads);
            return false;
        }
        if (spec.traceHashes.size() != spec.tracePaths.size()) {
            err = csprintf("trace-backed job must carry one content "
                           "hash per trace (have %zu hashes for %zu "
                           "traces)",
                           spec.traceHashes.size(),
                           spec.tracePaths.size());
            return false;
        }
    } else {
        size_t benches = spec2006Profiles().size();
        for (size_t b : spec.mixBenchmarks) {
            if (b >= benches) {
                err = csprintf("benchmark index %zu out of range "
                               "(have %zu)", b, benches);
                return false;
            }
        }
        if (spec.numCores == 1
                ? spec.mixBenchmarks.size() != spec.core.threads
                : spec.mixBenchmarks.size() >
                      static_cast<size_t>(spec.numCores) *
                          spec.core.threads) {
            err = csprintf("mix size %zu for %u cores x %u threads",
                           spec.mixBenchmarks.size(), spec.numCores,
                           spec.core.threads);
            return false;
        }
    }
    if (!spec.fault.empty() && !allowFaults) {
        err = csprintf("self-faulting job (fault='%s') rejected",
                       spec.fault.c_str());
        return false;
    }
    return true;
}

/** Human-readable failure summary of a quarantined outcome. */
std::string
outcomeError(const JobOutcome &oc)
{
    std::string detail;
    if (oc.timedOut)
        detail = "watchdog timeout";
    else if (oc.termSignal)
        detail = csprintf("signal %d", oc.termSignal);
    else
        detail = csprintf("exit code %d", oc.exitCode);
    // Deterministic input failures (e.g. a corrupt trace) carry a
    // precise one-line diagnosis on stderr; forward its last line so
    // --connect / --nodes clients see *why*, not just "exit code 4".
    std::string tail = oc.stderrTail;
    while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r'))
        tail.pop_back();
    size_t nl = tail.find_last_of('\n');
    if (nl != std::string::npos)
        tail = tail.substr(nl + 1);
    if (!tail.empty())
        detail += csprintf(": %s", tail.c_str());
    return csprintf("job quarantined after %u attempt(s): %s",
                    oc.attempts, detail.c_str());
}

} // namespace

bool
parseServeRequest(const std::string &frame, ServeRequest &out,
                  std::string &err, bool allowFaults)
{
    out = ServeRequest();
    if (frame.size() > kMaxServeFrameBytes) {
        err = csprintf("frame of %zu bytes exceeds the %zu-byte cap",
                       frame.size(), kMaxServeFrameBytes);
        return false;
    }
    JsonValue doc;
    if (!tryParseJson(frame, doc, &err))
        return false;
    if (!doc.isObject()) {
        err = "request must be a JSON object";
        return false;
    }
    const JsonValue *cmd = nullptr;
    const JsonValue *jobs = nullptr;
    for (const auto &kv : doc.members) {
        if (kv.first == "cmd") {
            cmd = &kv.second;
        } else if (kv.first == "id") {
            if (!kv.second.isString()) {
                err = "'id' must be a string";
                return false;
            }
            out.id = kv.second.raw;
        } else if (kv.first == "jobs") {
            jobs = &kv.second;
        } else {
            err = csprintf("unknown request key '%s'",
                           kv.first.c_str());
            return false;
        }
    }
    if (!cmd || !cmd->isString()) {
        err = "missing string 'cmd'";
        return false;
    }
    const std::string &c = cmd->raw;
    if (c == "run") {
        out.cmd = ServeRequest::Cmd::Run;
    } else if (c == "stats") {
        out.cmd = ServeRequest::Cmd::Stats;
    } else if (c == "ping") {
        out.cmd = ServeRequest::Cmd::Ping;
    } else if (c == "shutdown") {
        out.cmd = ServeRequest::Cmd::Shutdown;
    } else {
        err = csprintf("unknown cmd '%s'", c.c_str());
        return false;
    }
    if (out.cmd != ServeRequest::Cmd::Run) {
        if (jobs) {
            err = csprintf("'jobs' is only valid with cmd \"run\"");
            return false;
        }
        return true;
    }
    if (!jobs || !jobs->isArray()) {
        err = "cmd \"run\" requires a 'jobs' array";
        return false;
    }
    if (jobs->items.empty()) {
        err = "'jobs' must not be empty";
        return false;
    }
    if (jobs->items.size() > kMaxServeBatchJobs) {
        err = csprintf("batch of %zu jobs exceeds the %zu-job cap",
                       jobs->items.size(), kMaxServeBatchJobs);
        return false;
    }
    out.jobs.reserve(jobs->items.size());
    out.keys.reserve(jobs->items.size());
    for (size_t i = 0; i < jobs->items.size(); ++i) {
        validate::SweepJobSpec spec;
        std::string jerr;
        if (!validate::trySweepJobSpecFromJson(jobs->items[i], spec,
                                               jerr) ||
            !checkJobSpec(spec, allowFaults, jerr)) {
            err = csprintf("job %zu: %s", i, jerr.c_str());
            return false;
        }
        out.keys.push_back(validate::canonicalJobKey(spec));
        out.jobs.push_back(std::move(spec));
    }
    return true;
}

SweepServer::SweepServer(ServeOptions opt_)
    : opt(std::move(opt_)),
      supervisor([&] {
          SupervisorOptions sup = opt.supervisor;
          // The cache is the service's persistence; the journal
          // machinery would serialize executors on one append lock
          // for no benefit.
          sup.journalPath.clear();
          sup.resume = false;
          return sup;
      }()),
      cache_(opt.cacheEntries, opt.cacheDir)
{
    jobDelaySeconds.store(opt.jobDelaySeconds);
}

SweepServer::~SweepServer()
{
    stop();
}

bool
SweepServer::start(std::string *err)
{
    std::string lerr;
    listenFd = listenUnix(opt.socketPath, 64, lerr);
    if (listenFd < 0) {
        if (err)
            *err = lerr;
        return false;
    }
    unsigned n = opt.executors ? opt.executors : defaultJobs();
    executors.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        executors.emplace_back([this] { executorLoop(); });
    acceptor = std::thread([this] { acceptLoop(); });
    return true;
}

void
SweepServer::acceptLoop()
{
    while (!stopping.load()) {
        struct pollfd pfd = {};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        int rv = ::poll(&pfd, 1, 100);
        if (rv <= 0)
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lk(clientsM);
        if (stopping.load()) {
            ::close(fd);
            return;
        }
        clientFds.push_back(fd);
        {
            // Count the client before its serving thread exists, so
            // a client that connects and immediately asks for stats
            // always observes itself in clients_active.
            std::lock_guard<std::mutex> slk(m);
            ++counters.clientsServed;
            ++counters.clientsActive;
        }
        clientThreads.emplace_back(
            [this, fd] { serveClient(fd); });
    }
}

void
SweepServer::executorLoop()
{
    for (;;) {
        std::shared_ptr<Task> task;
        {
            std::unique_lock<std::mutex> lk(m);
            taskCv.wait(lk, [&] {
                return stopping.load() || !queue.empty();
            });
            if (queue.empty())
                return; // stopping, nothing left to drain
            task = queue.front();
            queue.pop_front();
        }
        double delay = jobDelaySeconds.load();
        if (delay > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
        }
        JobOutcome oc = supervisor.runOne(task->spec);
        JobReply reply;
        if (oc.ok()) {
            reply.ok = true;
            reply.resultJson =
                oc.result.toJson(JsonWriter::kFullPrecision);
        } else {
            reply.error = outcomeError(oc);
            reply.repro = oc.repro;
        }
        {
            // Insert-and-unpublish atomically with respect to
            // classifyBatch(): after this block a duplicate key is
            // either a cache hit or a fresh miss, never lost.
            std::lock_guard<std::mutex> lk(m);
            ++counters.jobsExecuted;
            if (reply.ok)
                cache_.insert(task->key, reply.resultJson);
            inflight.erase(task->key);
        }
        task->promise.set_value(std::move(reply));
    }
}

std::vector<SweepServer::Slot>
SweepServer::classifyBatch(const ServeRequest &req)
{
    std::vector<Slot> slots(req.jobs.size());
    // One lock hold for the whole batch: no executor can retire an
    // in-flight key mid-classification, so duplicates inside one
    // batch deterministically coalesce onto the first occurrence.
    std::lock_guard<std::mutex> lk(m);
    ++counters.batches;
    for (size_t i = 0; i < req.jobs.size(); ++i) {
        Slot &slot = slots[i];
        std::string cached;
        if (cache_.lookup(req.keys[i], cached)) {
            slot.source = Slot::Source::Hit;
            slot.immediate = std::move(cached);
            ++counters.cacheHit;
            continue;
        }
        auto it = inflight.find(req.keys[i]);
        if (it != inflight.end()) {
            slot.source = Slot::Source::Coalesced;
            slot.future = it->second->future;
            ++counters.cacheCoalesced;
            continue;
        }
        auto task = std::make_shared<Task>();
        task->key = req.keys[i];
        task->spec = req.jobs[i];
        task->future = task->promise.get_future().share();
        inflight.emplace(task->key, task);
        queue.push_back(task);
        taskCv.notify_one();
        slot.source = Slot::Source::Miss;
        slot.future = task->future;
        ++counters.cacheMiss;
    }
    return slots;
}

void
SweepServer::handleRun(int fd, const ServeRequest &req)
{
    std::vector<Slot> slots = classifyBatch(req);
    size_t hits = 0, misses = 0, coalesced = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
        const Slot &slot = slots[i];
        JsonWriter w;
        w.beginObject();
        w.field("job", static_cast<uint64_t>(i));
        if (!req.id.empty())
            w.field("id", req.id);
        switch (slot.source) {
          case Slot::Source::Hit:
            w.field("source", "cache");
            ++hits;
            break;
          case Slot::Source::Miss:
            w.field("source", "computed");
            ++misses;
            break;
          case Slot::Source::Coalesced:
            w.field("source", "coalesced");
            ++coalesced;
            break;
        }
        if (slot.source == Slot::Source::Hit) {
            w.field("ok", true);
            w.field("result", slot.immediate);
        } else {
            JobReply reply = slot.future.get();
            w.field("ok", reply.ok);
            if (reply.ok) {
                w.field("result", reply.resultJson);
            } else {
                w.field("error", reply.error);
                if (!reply.repro.empty())
                    w.field("repro", reply.repro);
            }
        }
        w.endObject();
        if (!writeAll(fd, w.str() + "\n"))
            return; // client gone; executors finish into the cache
    }
    JsonWriter w;
    w.beginObject();
    w.field("done", true);
    if (!req.id.empty())
        w.field("id", req.id);
    w.field("jobs", static_cast<uint64_t>(slots.size()));
    w.field("hits", static_cast<uint64_t>(hits));
    w.field("misses", static_cast<uint64_t>(misses));
    w.field("coalesced", static_cast<uint64_t>(coalesced));
    w.endObject();
    writeAll(fd, w.str() + "\n");
}

void
SweepServer::serveClient(int fd)
{
    LineReader reader(fd, kMaxServeFrameBytes);
    for (;;) {
        std::string line;
        LineReader::Status st = reader.readLine(line);
        if (st == LineReader::Status::Eof ||
            st == LineReader::Status::Error) {
            break;
        }
        if (st == LineReader::Status::Oversized) {
            {
                std::lock_guard<std::mutex> lk(m);
                ++counters.parseErrors;
            }
            JsonWriter w;
            w.beginObject();
            w.field("error",
                    csprintf("frame exceeds the %zu-byte cap",
                             kMaxServeFrameBytes));
            w.endObject();
            writeAll(fd, w.str() + "\n");
            break; // framing is lost; the connection is unusable
        }
        ServeRequest req;
        std::string err;
        if (!parseServeRequest(line, req, err, opt.allowFaults)) {
            {
                std::lock_guard<std::mutex> lk(m);
                ++counters.parseErrors;
            }
            JsonWriter w;
            w.beginObject();
            w.field("error", err);
            w.endObject();
            if (!writeAll(fd, w.str() + "\n"))
                break;
            continue;
        }
        if (req.cmd == ServeRequest::Cmd::Run) {
            handleRun(fd, req);
            continue;
        }
        if (req.cmd == ServeRequest::Cmd::Stats) {
            writeAll(fd, statsJson() + "\n");
            continue;
        }
        JsonWriter w;
        w.beginObject();
        w.field("ok", true);
        w.endObject();
        bool sent = writeAll(fd, w.str() + "\n");
        if (req.cmd == ServeRequest::Cmd::Shutdown) {
            // Only signal: stop() joins this very thread, so it must
            // run on the thread blocked in waitForShutdownRequest().
            std::lock_guard<std::mutex> lk(shutdownM);
            shutdownRequested = true;
            shutdownCv.notify_all();
            break;
        }
        if (!sent)
            break;
    }
    {
        std::lock_guard<std::mutex> lk(clientsM);
        clientFds.remove(fd);
        ::close(fd);
    }
    std::lock_guard<std::mutex> lk(m);
    --counters.clientsActive;
}

ServeStats
SweepServer::stats() const
{
    std::lock_guard<std::mutex> lk(m);
    ServeStats s = counters;
    s.inFlight = inflight.size();
    s.cache = cache_.stats();
    return s;
}

std::string
SweepServer::statsJson() const
{
    ServeStats s = stats();
    JsonWriter w;
    w.beginObject();
    w.beginObject("stats");
    w.field("serve.cache_hit", s.cacheHit);
    w.field("serve.cache_miss", s.cacheMiss);
    w.field("serve.cache_coalesced", s.cacheCoalesced);
    w.field("serve.jobs_executed", s.jobsExecuted);
    w.field("serve.batches", s.batches);
    w.field("serve.parse_errors", s.parseErrors);
    w.field("serve.clients_served", s.clientsServed);
    w.field("serve.clients_active", s.clientsActive);
    w.field("serve.in_flight", s.inFlight);
    w.field("serve.cache_entries",
            static_cast<uint64_t>(cache_.size()));
    w.field("serve.cache_mem_hits", s.cache.hits);
    w.field("serve.cache_disk_hits", s.cache.diskHits);
    w.field("serve.cache_insertions", s.cache.insertions);
    w.field("serve.cache_evictions", s.cache.evictions);
    w.endObject();
    w.endObject();
    return w.str();
}

uint64_t
SweepServer::jobsExecuted() const
{
    std::lock_guard<std::mutex> lk(m);
    return counters.jobsExecuted;
}

void
SweepServer::setJobDelaySeconds(double s)
{
    jobDelaySeconds.store(s);
}

void
SweepServer::waitForShutdownRequest()
{
    std::unique_lock<std::mutex> lk(shutdownM);
    shutdownCv.wait(lk, [&] { return shutdownRequested; });
}

void
SweepServer::stop()
{
    if (stopped)
        return;
    stopped = true;
    stopping.store(true);

    // No new connections or client threads past this join.
    if (acceptor.joinable())
        acceptor.join();

    // Executors drain the queue (every queued job still completes
    // into the cache and resolves its waiters), then exit.
    {
        std::lock_guard<std::mutex> lk(m);
        taskCv.notify_all();
    }
    for (auto &t : executors) {
        if (t.joinable())
            t.join();
    }

    // Unblock clients parked in readLine(); their threads observe
    // EOF/error, deregister, and exit.
    {
        std::lock_guard<std::mutex> lk(clientsM);
        for (int fd : clientFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(clientsM);
        threads.swap(clientThreads);
    }
    for (auto &t : threads) {
        if (t.joinable())
            t.join();
    }

    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    ::unlink(opt.socketPath.c_str());

    {
        std::lock_guard<std::mutex> lk(shutdownM);
        shutdownRequested = true;
        shutdownCv.notify_all();
    }
}

int
runServeMain(const ServeOptions &opt)
{
    SweepServer server(opt);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "shelfsim-serve: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "shelfsim-serve: listening on %s (%s cache%s%s)\n",
                 opt.socketPath.c_str(),
                 opt.cacheDir.empty() ? "in-memory" : "disk-backed",
                 opt.cacheDir.empty() ? "" : " at ",
                 opt.cacheDir.c_str());
    server.waitForShutdownRequest();
    ServeStats s = server.stats();
    server.stop();
    std::fprintf(stderr,
                 "shelfsim-serve: shut down after %llu batch(es): "
                 "%llu hit(s), %llu miss(es), %llu coalesced, "
                 "%llu job(s) executed\n",
                 static_cast<unsigned long long>(s.batches),
                 static_cast<unsigned long long>(s.cacheHit),
                 static_cast<unsigned long long>(s.cacheMiss),
                 static_cast<unsigned long long>(s.cacheCoalesced),
                 static_cast<unsigned long long>(s.jobsExecuted));
    return 0;
}

ServeClient::~ServeClient()
{
    disconnect();
}

bool
ServeClient::connect(const std::string &socketPath, std::string *err)
{
    disconnect();
    std::string cerr;
    fd = connectUnix(socketPath, cerr);
    if (fd < 0) {
        if (err)
            *err = cerr;
        return false;
    }
    reader = std::make_unique<LineReader>(fd, kMaxServeFrameBytes);
    return true;
}

bool
ServeClient::connectRetry(const std::string &socketPath,
                          unsigned attempts, double backoffSeconds,
                          std::string *err)
{
    disconnect();
    std::string cerr;
    fd = connectUnixRetry(socketPath, attempts, backoffSeconds,
                          cerr);
    if (fd < 0) {
        if (err)
            *err = cerr;
        return false;
    }
    reader = std::make_unique<LineReader>(fd, kMaxServeFrameBytes);
    return true;
}

bool
ServeClient::submitResilient(
    const std::string &socketPath,
    const std::vector<validate::SweepJobSpec> &jobs,
    std::vector<JobReply> &replies, unsigned attempts,
    double backoffSeconds, std::string *err,
    std::function<void(size_t, const JobReply &)> progress)
{
    if (attempts == 0)
        attempts = 1;
    std::string lastErr;
    for (unsigned a = 1; a <= attempts; ++a) {
        if (a > 1) {
            // The stream may have died mid-reply; framing is gone,
            // so start over on a fresh connection.
            disconnect();
            std::this_thread::sleep_for(
                std::chrono::duration<double>(
                    SweepSupervisor::backoffDelay(a - 1,
                                                  backoffSeconds)));
        }
        if (!connected() &&
            !connectRetry(socketPath, attempts, backoffSeconds,
                          &lastErr)) {
            continue;
        }
        if (submit(jobs, replies, &lastErr, progress))
            return true;
        // A protocol rejection ("server error: ...") is the server
        // deterministically refusing the request; resubmitting the
        // same bytes cannot succeed.
        if (lastErr.compare(0, 13, "server error:") == 0)
            break;
    }
    if (err)
        *err = lastErr;
    return false;
}

void
ServeClient::disconnect()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    reader.reset();
}

bool
ServeClient::sendLine(const std::string &line, std::string *err)
{
    if (fd < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    if (!writeAll(fd, line + "\n")) {
        if (err)
            *err = "write to server failed";
        return false;
    }
    return true;
}

bool
ServeClient::recvLine(std::string &line, std::string *err)
{
    if (!reader) {
        if (err)
            *err = "not connected";
        return false;
    }
    switch (reader->readLine(line)) {
      case LineReader::Status::Line:
        return true;
      case LineReader::Status::Eof:
        if (err)
            *err = "server closed the connection";
        return false;
      case LineReader::Status::Oversized:
        if (err)
            *err = "oversized reply frame";
        return false;
      case LineReader::Status::Error:
      default:
        if (err)
            *err = "read from server failed";
        return false;
    }
}

bool
ServeClient::submit(const std::vector<validate::SweepJobSpec> &jobs,
                    std::vector<JobReply> &replies, std::string *err,
                    std::function<void(size_t, const JobReply &)>
                        progress)
{
    replies.assign(jobs.size(), JobReply());
    if (jobs.empty())
        return true;
    std::string line = "{\"cmd\":\"run\",\"jobs\":[";
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            line += ',';
        line += jobs[i].toJson();
    }
    line += "]}";
    if (!sendLine(line, err))
        return false;
    size_t seen = 0;
    for (;;) {
        std::string reply;
        if (!recvLine(reply, err))
            return false;
        JsonValue doc;
        std::string jerr;
        if (!tryParseJson(reply, doc, &jerr) || !doc.isObject()) {
            if (err)
                *err = csprintf("bad reply from server: %s",
                                jerr.c_str());
            return false;
        }
        // Per-job lines carry "job" (and use "error" for job-level
        // failures); a top-level "error" without "job" is a protocol
        // rejection of the whole request.
        if (!doc.find("job")) {
            if (const JsonValue *e = doc.find("error")) {
                if (err) {
                    *err = csprintf("server error: %s",
                                    e->raw.c_str());
                }
                return false;
            }
        }
        if (doc.find("done")) {
            if (seen != jobs.size()) {
                if (err) {
                    *err = csprintf("server finished after %zu of "
                                    "%zu replies", seen,
                                    jobs.size());
                }
                return false;
            }
            return true;
        }
        const JsonValue *job = doc.find("job");
        const JsonValue *ok = doc.find("ok");
        if (!job || !job->isNumber() || !ok || !ok->isBool() ||
            job->asU64() >= jobs.size()) {
            if (err)
                *err = "bad per-job reply from server";
            return false;
        }
        JobReply &r = replies[job->asU64()];
        r.ok = ok->boolean;
        if (const JsonValue *v = doc.find("source"))
            r.source = v->raw;
        if (const JsonValue *v = doc.find("result"))
            r.resultJson = v->raw;
        if (const JsonValue *v = doc.find("error"))
            r.error = v->raw;
        ++seen;
        if (progress)
            progress(job->asU64(), r);
    }
}

bool
ServeClient::stats(std::string &statsJson, std::string *err)
{
    if (!sendLine("{\"cmd\":\"stats\"}", err))
        return false;
    return recvLine(statsJson, err);
}

bool
ServeClient::ping(std::string *err)
{
    if (!sendLine("{\"cmd\":\"ping\"}", err))
        return false;
    std::string reply;
    if (!recvLine(reply, err))
        return false;
    JsonValue doc;
    if (!tryParseJson(reply, doc) || !doc.find("ok")) {
        if (err)
            *err = "bad ping reply";
        return false;
    }
    return true;
}

bool
ServeClient::requestShutdown(std::string *err)
{
    if (!sendLine("{\"cmd\":\"shutdown\"}", err))
        return false;
    std::string reply;
    return recvLine(reply, err);
}

} // namespace shelf
