/**
 * @file
 * Thread-to-core allocation policies for the multi-core system mode.
 *
 * When a SystemConfig asks for more than one core, every global
 * thread must be placed on exactly one core before the cores are
 * built. The policy family here follows Navarro et al. ("A New
 * Family of Thread to Core Allocation Policies for an SMT ARM
 * Processor"): naive placements (round-robin, fill-first), a static
 * classification-aware policy that balances memory-intensive
 * (MLP-bound) threads against compute-bound (ILP-rich) ones across
 * cores, and an epoch-based dynamic reallocation hook that re-deals
 * threads by measured per-thread IPC.
 *
 * All policies are pure functions of their inputs — allocation is
 * part of the deterministic configuration, so the same SystemConfig
 * always produces the same placement.
 */

#ifndef SHELFSIM_SIM_ALLOCATION_HH
#define SHELFSIM_SIM_ALLOCATION_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace shelf
{

/** Everything a static policy may look at. */
struct AllocationInput
{
    unsigned numCores = 1;
    /** SMT width of each core (the configured CoreParams::threads). */
    unsigned threadsPerCore = 1;
    /**
     * One entry per global thread, in global thread order. Null for
     * trace-backed threads whose profile is unknown; the classify
     * policy scores those neutrally.
     */
    std::vector<const BenchmarkProfile *> profiles;
};

/** Policy names accepted by allocateThreads(), in canonical order:
 * round-robin, fill-first, classify, dynamic. */
const std::vector<std::string> &allocationPolicyNames();
bool isAllocationPolicy(const std::string &name);

/**
 * Memory-intensity score of a profile, the classification axis of
 * the classify policy: higher means more memory-bound (frequent,
 * cache-hostile, serialized misses with little ILP to hide them),
 * lower means compute-bound. Deterministic in the profile knobs.
 */
double memoryIntensityScore(const BenchmarkProfile &p);

/**
 * Place each global thread on a core. Returns assignment[t] = core
 * index in [0, numCores). Requires 1 <= threads <= cores * width;
 * fatal() on an unknown policy or infeasible shape. No core is ever
 * assigned more than threadsPerCore threads. The "dynamic" policy's
 * static placement is round-robin (its probe epoch); callers then
 * re-place with reallocateByIpc() after measuring.
 */
std::vector<unsigned> allocateThreads(const std::string &policy,
                                      const AllocationInput &in);

/**
 * Epoch-based dynamic reallocation: given measured per-thread IPCs
 * from a probe epoch, re-deal threads serpentine-style with the
 * slowest (most resource-hungry) threads spread across cores first.
 * Ties break on the lower thread id, so the result is deterministic.
 */
std::vector<unsigned> reallocateByIpc(const std::vector<double> &ipc,
                                      unsigned numCores,
                                      unsigned threadsPerCore);

} // namespace shelf

#endif // SHELFSIM_SIM_ALLOCATION_HH
