/**
 * @file
 * Content-addressed result cache: canonical job-spec JSON (see
 * validate::canonicalJobKey) maps to the full-precision serialized
 * result of executing that job. This is the dedupe tier that turns
 * O(requests) sweep traffic into O(distinct configs): every layer
 * that computes a (mix, config) cell — the serve daemon, warm CLI
 * sweeps, and the single-thread STReference runs behind STP — reads
 * and writes the same store, so any previously computed cell
 * answers instantly and bit-exactly (values are 17-digit
 * round-tripped SystemResult JSON; byte equality is result
 * equality).
 *
 * Two tiers:
 *  - in-memory: bounded LRU (lookup refreshes recency), always on;
 *  - on-disk (optional @p dir): one write-through file per entry,
 *    named by the FNV-1a of the key, shared between processes and
 *    across restarts. Files store the key alongside the value and
 *    are verified on load, so a hash collision degrades to a miss,
 *    never a wrong result.
 *
 * Thread-safe; all methods may be called concurrently.
 */

#ifndef SHELFSIM_SIM_RESULT_CACHE_HH
#define SHELFSIM_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace shelf
{

class ResultCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;      ///< lookups answered (either tier)
        uint64_t diskHits = 0;  ///< subset of hits served from disk
        uint64_t misses = 0;    ///< lookups answered by neither tier
        uint64_t insertions = 0;
        uint64_t evictions = 0; ///< in-memory LRU evictions
    };

    /**
     * @p maxEntries bounds the in-memory tier (>= 1); @p dir names
     * the on-disk tier ("" = memory only). The directory is created
     * if missing.
     */
    explicit ResultCache(size_t maxEntries = 4096,
                         std::string dir = "");

    /**
     * Look up the value cached for @p key. Hits refresh LRU
     * recency; disk hits are promoted into the memory tier.
     */
    bool lookup(const std::string &key, std::string &value);

    /**
     * Insert (or overwrite) the value for @p key, evicting the
     * least-recently-used in-memory entry when full. With a disk
     * tier the entry is also written through (atomically: temp file
     * + rename, so concurrent readers in other processes never see
     * a torn entry).
     */
    void insert(const std::string &key, const std::string &value);

    /** Current in-memory entry count. */
    size_t size() const;

    Stats stats() const;

    /** On-disk path an entry for @p key would use ("" when the
     * cache has no disk tier). */
    std::string diskPath(const std::string &key) const;

  private:
    bool loadFromDisk(const std::string &key, std::string &value);
    void storeToDisk(const std::string &key,
                     const std::string &value);
    void touch(const std::string &key);
    void insertLocked(const std::string &key,
                      const std::string &value);

    struct Entry
    {
        std::string value;
        std::list<std::string>::iterator lruIt;
    };

    const size_t maxEntries;
    const std::string dir;

    mutable std::mutex m;
    std::unordered_map<std::string, Entry> entries; ///< guarded by m
    std::list<std::string> lru; ///< front = most recent; guarded by m
    Stats counters;             ///< guarded by m
};

} // namespace shelf

#endif // SHELFSIM_SIM_RESULT_CACHE_HH
