#include "sim/journal.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "validate/config_json.hh"

namespace shelf
{

namespace
{

/**
 * Stream the lines of one journal file through @p fn. Lines longer
 * than the stack buffer are accumulated until their newline, so
 * full-precision result records of any length parse whole. Returns
 * false only when the file cannot be opened.
 */
template <typename Fn>
bool
forEachLine(const std::string &path, Fn &&fn)
{
    FILE *f = fopen(path.c_str(), "r");
    if (!f)
        return false;
    std::string line;
    size_t lineno = 0;
    char buf[4096];
    while (fgets(buf, sizeof(buf), f)) {
        line += buf;
        if (line.empty() || line.back() != '\n')
            continue; // long record: keep accumulating
        ++lineno;
        std::string text = line.substr(0, line.size() - 1);
        line.clear();
        fn(lineno, text);
    }
    // A final line without '\n' is a torn append; surface it to the
    // caller like any other line so it is counted, not dropped
    // silently.
    if (!line.empty())
        fn(++lineno, line);
    fclose(f);
    return true;
}

enum class LineKind {
    Finished, ///< well-formed finished-job record (rec/key filled)
    Lease,    ///< lease record: bookkeeping, not a result
    Torn,     ///< malformed/incomplete: skip
};

/** Classify and (for Finished) parse one journal line. */
LineKind
classifyLine(const std::string &text, std::string &key,
             JournalRecord &rec)
{
    JsonValue doc;
    if (!tryParseJson(text, doc, nullptr) || !doc.isObject())
        return LineKind::Torn;
    if (validate::isLeaseRecord(doc))
        return LineKind::Lease;
    const JsonValue *k = doc.find("key");
    const JsonValue *status = doc.find("status");
    if (!k || !k->isString() || !status || !status->isString())
        return LineKind::Torn;
    key = k->raw;
    rec = JournalRecord();
    rec.status = status->raw;
    if (const JsonValue *v = doc.find("attempts"))
        rec.attempts = static_cast<unsigned>(v->asU64());
    if (const JsonValue *v = doc.find("wall_s"))
        rec.wallSeconds = v->asDouble();
    if (const JsonValue *v = doc.find("result"))
        rec.resultJson = v->raw;
    if (const JsonValue *v = doc.find("timed_out"))
        rec.timedOut = v->isBool() && v->boolean;
    if (const JsonValue *v = doc.find("exit_code"))
        rec.exitCode = static_cast<int>(v->asDouble());
    if (const JsonValue *v = doc.find("signal"))
        rec.termSignal = static_cast<int>(v->asDouble());
    if (const JsonValue *v = doc.find("stderr"))
        rec.stderrTail = v->raw;
    if (const JsonValue *v = doc.find("repro"))
        rec.repro = v->raw;
    if (const JsonValue *v = doc.find("dump"))
        rec.dumpFile = v->raw;
    if (const JsonValue *v = doc.find("node"))
        rec.node = v->raw;
    return LineKind::Finished;
}

} // namespace

std::string
journalLine(const std::string &key, const JobOutcome &oc,
            const std::string &node)
{
    JsonWriter w(JsonWriter::kFullPrecision);
    w.beginObject();
    w.field("key", key);
    w.field("status", oc.ok() ? "ok" : "quarantined");
    w.field("attempts", static_cast<uint64_t>(oc.attempts));
    w.field("wall_s", oc.wallSeconds);
    if (oc.ok()) {
        w.field("result",
                oc.result.toJson(JsonWriter::kFullPrecision));
    } else {
        w.field("timed_out", oc.timedOut);
        w.field("exit_code", oc.exitCode);
        w.field("signal", oc.termSignal);
        w.field("stderr", oc.stderrTail);
        w.field("repro", oc.repro);
        if (!oc.dumpFile.empty())
            w.field("dump", oc.dumpFile);
    }
    // Appended last so single-node journals keep their historical
    // byte layout and old journals stay loadable.
    if (!node.empty())
        w.field("node", node);
    w.endObject();
    return w.str();
}

std::map<std::string, JournalRecord>
loadJournal(const std::string &path)
{
    std::map<std::string, JournalRecord> out;
    forEachLine(path, [&](size_t lineno, const std::string &text) {
        if (text.empty())
            return;
        std::string key;
        JournalRecord rec;
        switch (classifyLine(text, key, rec)) {
          case LineKind::Finished:
            out[key] = std::move(rec);
            break;
          case LineKind::Lease:
            // Leases mark work as handed out, never as done; a
            // resumable set must not contain them.
            break;
          case LineKind::Torn:
            warn("journal %s:%zu: skipping malformed record (torn "
                 "write?)", path.c_str(), lineno);
            break;
        }
    });
    return out;
}

bool
outcomeFromJournal(const JournalRecord &rec, JobOutcome &oc)
{
    oc = JobOutcome();
    oc.fromJournal = true;
    oc.attempts = rec.attempts;
    oc.wallSeconds = rec.wallSeconds;
    if (rec.status == "ok") {
        JsonValue probe;
        if (!tryParseJson(rec.resultJson, probe, nullptr))
            return false;
        oc.status = JobOutcome::Status::Ok;
        oc.result = SystemResult::fromJson(rec.resultJson);
        return true;
    }
    oc.status = JobOutcome::Status::Quarantined;
    oc.exitCode = rec.exitCode;
    oc.termSignal = rec.termSignal;
    oc.timedOut = rec.timedOut;
    oc.stderrTail = rec.stderrTail;
    oc.repro = rec.repro;
    oc.dumpFile = rec.dumpFile;
    return true;
}

JournalWriter::~JournalWriter()
{
    close();
}

bool
JournalWriter::open(const std::string &path, std::string *err)
{
    close();
    if (path.empty())
        return true; // no-op writer
    f = fopen(path.c_str(), "a");
    if (!f) {
        if (err) {
            *err = csprintf("cannot open journal '%s': %s",
                            path.c_str(), strerror(errno));
        }
        return false;
    }
    path_ = path;
    return true;
}

void
JournalWriter::close()
{
    std::lock_guard<std::mutex> lk(m);
    if (f)
        fclose(f);
    f = nullptr;
    path_.clear();
}

void
JournalWriter::append(const std::string &line)
{
    std::lock_guard<std::mutex> lk(m);
    if (!f)
        return;
    fprintf(f, "%s\n", line.c_str());
    fflush(f);
}

bool
mergeJournals(const std::vector<std::string> &inputs,
              const std::string &outPath, JournalMergeStats &stats,
              std::string &err)
{
    stats = JournalMergeStats();
    for (const auto &in : inputs) {
        if (in == outPath) {
            err = csprintf("output '%s' is also an input",
                           outPath.c_str());
            return false;
        }
    }

    // First-seen key order with last-wins line bytes: resuming from
    // the merged journal replays exactly what the shards recorded.
    std::vector<std::string> orderKeys;
    std::vector<std::string> winning;
    std::map<std::string, size_t> index;

    for (const auto &in : inputs) {
        ++stats.inputs;
        bool opened = forEachLine(
            in, [&](size_t lineno, const std::string &text) {
                if (text.empty())
                    return;
                ++stats.lines;
                std::string key;
                JournalRecord rec;
                switch (classifyLine(text, key, rec)) {
                  case LineKind::Lease:
                    ++stats.leases;
                    return;
                  case LineKind::Torn:
                    ++stats.torn;
                    warn("journal %s:%zu: skipping malformed "
                         "record (torn write?)", in.c_str(),
                         lineno);
                    return;
                  case LineKind::Finished:
                    break;
                }
                auto it = index.find(key);
                if (it == index.end()) {
                    index.emplace(key, orderKeys.size());
                    orderKeys.push_back(key);
                    winning.push_back(text);
                } else {
                    ++stats.superseded;
                    winning[it->second] = text;
                }
            });
        // A node may die before journaling anything; its missing
        // shard is an empty journal, not an error.
        if (!opened && errno != ENOENT) {
            err = csprintf("cannot read journal '%s': %s",
                           in.c_str(), strerror(errno));
            return false;
        }
    }
    stats.jobs = orderKeys.size();

    std::string tmp = csprintf("%s.tmp.%d", outPath.c_str(),
                               static_cast<int>(getpid()));
    FILE *f = fopen(tmp.c_str(), "w");
    if (!f) {
        err = csprintf("cannot write '%s': %s", tmp.c_str(),
                       strerror(errno));
        return false;
    }
    bool ok = true;
    for (const auto &line : winning)
        ok = ok && fprintf(f, "%s\n", line.c_str()) >= 0;
    ok = fflush(f) == 0 && ok;
    ok = fclose(f) == 0 && ok;
    if (ok && rename(tmp.c_str(), outPath.c_str()) != 0)
        ok = false;
    if (!ok) {
        err = csprintf("cannot publish '%s': %s", outPath.c_str(),
                       strerror(errno));
        unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace shelf
