/**
 * @file
 * Experiment-level helpers shared by the bench harnesses: the 28
 * standard balanced-random mixes, single-thread reference IPCs for
 * STP, and one-call runners for each core configuration.
 */

#ifndef SHELFSIM_SIM_EXPERIMENT_HH
#define SHELFSIM_SIM_EXPERIMENT_HH

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/mix.hh"

namespace shelf
{

class ResultCache;

namespace validate { struct SweepJobSpec; }

/** Simulation-length controls for experiments; scaled by the
 * SHELFSIM_SCALE environment variable (default 1.0). */
struct SimControls
{
    Cycle warmupCycles = 4000;
    Cycle measureCycles = 16000;
    uint64_t seed = 1;

    /**
     * Fault injection: cycle at which the core stops retiring
     * instructions (0 = never). Exercises the forward-progress
     * watchdog and crash-dump paths end to end; see
     * `--inject-fault K=wedge`.
     */
    Cycle wedgeAtCycle = 0;

    /**
     * Multi-core system mode: number of cores sharing the memory
     * hierarchy and the thread-to-core allocation policy
     * (sim/allocation.hh). With one core the allocation name is
     * ignored; a mix then must have exactly core.threads entries,
     * otherwise up to numCores * core.threads.
     */
    unsigned numCores = 1;
    std::string allocation = "round-robin";

    /** Read SHELFSIM_SCALE and scale cycle counts. */
    static SimControls fromEnv();
};

/** The paper's 28 balanced-random mixes of @p threads threads. */
std::vector<WorkloadMix> standardMixes(unsigned threads,
                                       uint64_t seed = 42);

/** Run one mix on one core configuration. */
SystemResult runMix(const CoreParams &core, const WorkloadMix &mix,
                    const SimControls &ctl);

/** Run one benchmark single-threaded on a 1-thread variant of
 * @p core (for Figures 1/2 style studies). */
SystemResult runSingle(const CoreParams &core,
                       const std::string &benchmark,
                       const SimControls &ctl);

/**
 * Single-thread reference IPCs for STP, computed per benchmark on a
 * single-thread variant of the *baseline* core (the common-reference
 * methodology; see EXPERIMENTS.md).
 *
 * Thread-safe: ipc() may be called concurrently from parallel sweep
 * workers. Each benchmark's reference simulation runs exactly once
 * per instance (per-benchmark once-semantics: a second caller for a
 * benchmark that is being computed blocks until the result lands
 * rather than duplicating the run). Prefer seeding the cache up
 * front with precompute(), which fans the reference simulations
 * across the worker pool, over paying for them lazily mid-sweep.
 */
class STReference
{
  public:
    explicit STReference(const SimControls &ctl);

    /** Reference IPC of benchmark index @p bench (thread-safe). */
    double ipc(size_t bench);

    /**
     * Reference IPC of a trace-backed workload: the trace replayed
     * single-threaded on the 1-thread baseline core. Keyed by the
     * trace's content @p hash (not its path), so renamed copies
     * share one reference run and an edited file gets a fresh one.
     * Same once-semantics and thread-safety as ipc(); fatal() if the
     * trace fails to load (references are computed from inputs the
     * sweep already validated).
     */
    double ipcForTrace(const std::string &path,
                       const std::string &hash);

    /**
     * Compute (in parallel, input-ordered and deterministic) every
     * reference IPC that evaluating @p mixes will need and is not
     * cached yet. @p jobs as in runJobs().
     */
    void precompute(const std::vector<WorkloadMix> &mixes,
                    unsigned jobs = 0);

    /** Precompute the reference IPC of every known benchmark. */
    void precomputeAll(unsigned jobs = 0);

  private:
    double compute(size_t bench) const;
    double computeTrace(const std::string &path,
                        const std::string &hash) const;
    void precomputeBenches(std::vector<size_t> benches,
                           unsigned jobs);

    SimControls ctl;
    std::mutex m;
    std::condition_variable ready;
    std::map<size_t, double> cache;     ///< guarded by m
    std::set<size_t> inFlight;          ///< guarded by m
    /** Trace references, keyed by content hash; guarded by m. */
    std::map<std::string, double> traceCache;
    std::set<std::string> traceInFlight;
};

/**
 * Process-lifetime shared STReference for @p ctl: repeated sweeps
 * with the same simulation controls (e.g. the STP table and the
 * ANTT cross-check of one harness) reuse one reference cache
 * instead of re-simulating the single-thread baselines.
 */
STReference &sharedReference(const SimControls &ctl);

/**
 * Back every STReference in this process with a content-addressed
 * result cache (nullptr disconnects). A single-thread reference run
 * is itself a canonical (1-thread baseline config, [bench]) sweep
 * job, so its result lives in the same cache tier as sweep cells:
 * the serve daemon and warm --cache-dir sweeps skip reference
 * recomputation exactly like they skip cell recomputation. The
 * cache must outlive its registration.
 */
void setReferenceResultCache(ResultCache *cache);

/** STP of a mix result against the reference. */
double stpOf(const SystemResult &res, const WorkloadMix &mix,
             STReference &ref);

/**
 * STP of a sweep-job result against the reference, dispatching on
 * the spec's workload kind: generator-backed specs normalize against
 * per-benchmark references (as stpOf), trace-backed specs against
 * per-trace references (ipcForTrace). The spec must carry content
 * hashes for its traces (fillTraceHashes).
 */
double stpOfSpec(const SystemResult &res,
                 const validate::SweepJobSpec &spec,
                 STReference &ref);

/** ANTT (average normalized turnaround time; lower is better). */
double anttOf(const SystemResult &res, const WorkloadMix &mix,
              STReference &ref);

} // namespace shelf

#endif // SHELFSIM_SIM_EXPERIMENT_HH
