/**
 * @file
 * Experiment-level helpers shared by the bench harnesses: the 28
 * standard balanced-random mixes, single-thread reference IPCs for
 * STP, and one-call runners for each core configuration.
 */

#ifndef SHELFSIM_SIM_EXPERIMENT_HH
#define SHELFSIM_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/mix.hh"

namespace shelf
{

/** Simulation-length controls for experiments; scaled by the
 * SHELFSIM_SCALE environment variable (default 1.0). */
struct SimControls
{
    Cycle warmupCycles = 4000;
    Cycle measureCycles = 16000;
    uint64_t seed = 1;

    /** Read SHELFSIM_SCALE and scale cycle counts. */
    static SimControls fromEnv();
};

/** The paper's 28 balanced-random mixes of @p threads threads. */
std::vector<WorkloadMix> standardMixes(unsigned threads,
                                       uint64_t seed = 42);

/** Run one mix on one core configuration. */
SystemResult runMix(const CoreParams &core, const WorkloadMix &mix,
                    const SimControls &ctl);

/** Run one benchmark single-threaded on a 1-thread variant of
 * @p core (for Figures 1/2 style studies). */
SystemResult runSingle(const CoreParams &core,
                       const std::string &benchmark,
                       const SimControls &ctl);

/**
 * Single-thread reference IPCs for STP. Computed lazily per
 * benchmark on a single-thread variant of the *baseline* core and
 * cached for the process lifetime (the common-reference methodology;
 * see EXPERIMENTS.md).
 */
class STReference
{
  public:
    explicit STReference(const SimControls &ctl);

    /** Reference IPC of benchmark index @p bench. */
    double ipc(size_t bench);

  private:
    SimControls ctl;
    std::map<size_t, double> cache;
};

/** STP of a mix result against the reference. */
double stpOf(const SystemResult &res, const WorkloadMix &mix,
             STReference &ref);

/** ANTT (average normalized turnaround time; lower is better). */
double anttOf(const SystemResult &res, const WorkloadMix &mix,
              STReference &ref);

} // namespace shelf

#endif // SHELFSIM_SIM_EXPERIMENT_HH
