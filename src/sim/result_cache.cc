#include "sim/result_cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/atomic_file.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace shelf
{

ResultCache::ResultCache(size_t maxEntries_, std::string dir_)
    : maxEntries(maxEntries_ ? maxEntries_ : 1),
      dir(std::move(dir_))
{
    if (!dir.empty() && mkdir(dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
        fatal("cache dir '%s': %s", dir.c_str(), strerror(errno));
    }
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    if (dir.empty())
        return "";
    return csprintf("%s/cell-%016llx.json", dir.c_str(),
                    static_cast<unsigned long long>(fnv1a64(key)));
}

bool
ResultCache::loadFromDisk(const std::string &key, std::string &value)
{
    std::string path = diskPath(key);
    if (path.empty())
        return false;
    FILE *f = fopen(path.c_str(), "r");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    fclose(f);

    JsonValue doc;
    if (!tryParseJson(text, doc, nullptr) || !doc.isObject()) {
        warn("cache entry %s is unreadable; ignoring", path.c_str());
        return false;
    }
    const JsonValue *k = doc.find("key");
    const JsonValue *v = doc.find("value");
    if (!k || !k->isString() || !v || !v->isString()) {
        warn("cache entry %s has no key/value; ignoring",
             path.c_str());
        return false;
    }
    // Hash collision or foreign file: verify the stored key against
    // the requested one so content addressing can never serve the
    // wrong result.
    if (k->raw != key)
        return false;
    value = v->raw;
    return true;
}

void
ResultCache::storeToDisk(const std::string &key,
                         const std::string &value)
{
    std::string path = diskPath(key);
    if (path.empty())
        return;
    // The value travels as an escaped string (like the journal's
    // "result" field): the reader gets the exact original bytes
    // back from JsonValue::raw, keeping cached results bit-exact.
    JsonWriter w(JsonWriter::kFullPrecision);
    w.beginObject();
    w.field("key", key);
    w.field("value", value);
    w.endObject();

    // Atomic publish: concurrent readers (another serve daemon or a
    // warm CLI sweep on the same dir) must never see a torn file.
    // AtomicFile carries the O_EXCL pid+counter scheme this cache
    // introduced; see base/atomic_file.hh for why plain pid-suffixed
    // names are not enough.
    AtomicFile out(path);
    std::string err;
    if (!out.open(&err)) {
        warn("cache write: %s", err.c_str());
        return;
    }
    int tfd = out.releaseFd();
    FILE *f = fdopen(tfd, "w");
    if (!f) {
        warn("cache write '%s': %s", out.tmpPath().c_str(),
             strerror(errno));
        close(tfd);
        return;
    }
    bool ok = fputs(w.str().c_str(), f) >= 0;
    ok = fclose(f) == 0 && ok;
    if (!ok) {
        warn("cache write '%s': %s", out.tmpPath().c_str(),
             strerror(errno));
        return;
    }
    if (!out.publish(&err))
        warn("cache publish: %s", err.c_str());
}

void
ResultCache::touch(const std::string &key)
{
    auto it = entries.find(key);
    lru.erase(it->second.lruIt);
    lru.push_front(key);
    it->second.lruIt = lru.begin();
}

bool
ResultCache::lookup(const std::string &key, std::string &value)
{
    {
        std::lock_guard<std::mutex> lk(m);
        auto it = entries.find(key);
        if (it != entries.end()) {
            value = it->second.value;
            touch(key);
            ++counters.hits;
            return true;
        }
    }
    // Disk I/O outside the lock: a cold-disk lookup must not stall
    // concurrent in-memory hits.
    std::string fromDisk;
    bool onDisk = loadFromDisk(key, fromDisk);
    std::lock_guard<std::mutex> lk(m);
    if (onDisk) {
        value = std::move(fromDisk);
        insertLocked(key, value);
        ++counters.hits;
        ++counters.diskHits;
        return true;
    }
    ++counters.misses;
    return false;
}

void
ResultCache::insertLocked(const std::string &key,
                          const std::string &value)
{
    auto it = entries.find(key);
    if (it != entries.end()) {
        it->second.value = value;
        touch(key);
        return;
    }
    while (entries.size() >= maxEntries) {
        entries.erase(lru.back());
        lru.pop_back();
        ++counters.evictions;
    }
    lru.push_front(key);
    entries[key] = Entry{ value, lru.begin() };
}

void
ResultCache::insert(const std::string &key, const std::string &value)
{
    {
        std::lock_guard<std::mutex> lk(m);
        insertLocked(key, value);
        ++counters.insertions;
    }
    storeToDisk(key, value);
}

size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lk(m);
    return entries.size();
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lk(m);
    return counters;
}

} // namespace shelf
