/**
 * @file
 * Supervised sweep executor: fault-isolated, resumable execution of
 * independent (mix, config) simulation jobs.
 *
 * The parallel runner (sim/parallel.hh) fans jobs across threads of
 * one address space, so a single SIGSEGV, tripped invariant, or
 * livelocked configuration — exactly what the fuzzer hunts and what
 * design-space sweeps keep finding — destroys the whole sweep and
 * every completed result with it. The supervisor is the layer above
 * the runner that makes sweeps survive their jobs:
 *
 *  - isolation: each job runs in a sandboxed child process (a
 *    re-exec of the current binary in a hidden `--worker` mode; the
 *    job spec travels as one JSON document, the result comes back
 *    over a pipe at full double precision, so results are
 *    byte-identical to an in-process run);
 *  - watchdog: a per-job wall-clock timeout SIGKILLs hung workers;
 *  - retries: crashed and timed-out jobs re-run with exponential
 *    backoff, up to a bounded retry budget;
 *  - quarantine: jobs that exhaust the budget are reported with a
 *    one-line repro artifact (`<binary> --worker '<spec>'`) and an
 *    explicitly-missing result cell, instead of aborting the sweep;
 *  - journal: completed jobs append one JSONL record each, so an
 *    interrupted sweep resumed with the same journal re-runs only
 *    unfinished jobs and replays finished ones byte-identically.
 *
 * In-process mode (isolate = false, the default) executes jobs on
 * the worker pool exactly like runJobs() — same speed, same results
 * — while keeping the journal/resume and retry bookkeeping, so
 * harnesses can adopt the supervisor without behavior change and
 * flip isolation on per run.
 */

#ifndef SHELFSIM_SIM_SUPERVISOR_HH
#define SHELFSIM_SIM_SUPERVISOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "validate/config_json.hh"

namespace shelf
{

class WorkerLauncher;

struct SupervisorOptions
{
    /** Run each job in a sandboxed child process. */
    bool isolate = false;

    /** Per-job wall-clock watchdog in seconds; 0 disables it. Only
     * meaningful with isolation (an in-process job cannot be killed
     * safely). */
    double timeoutSeconds = 0;

    /** Re-runs granted to a crashed/timed-out job before it is
     * quarantined (total attempts = retries + 1). */
    unsigned retries = 2;

    /** Base retry delay; attempt k waits backoffDelay(k) =
     * backoffSeconds * 2^(k-1), capped at 5 s. */
    double backoffSeconds = 0.25;

    /** JSONL journal path; empty disables journaling. */
    std::string journalPath;

    /** Replay finished jobs from the journal instead of re-running
     * them (requires journalPath). */
    bool resume = false;

    /** Binary to exec for isolated jobs; empty means the current
     * binary (/proc/self/exe), which must handle the hidden
     * --worker mode via maybeRunSweepWorker(). */
    std::string workerBinary;

    /** Worker-pool width, as in runJobs() (0 = defaultJobs()). */
    unsigned jobs = 0;

    /**
     * Directory where workers write crash-dump JSON artifacts
     * (passed to them as SHELFSIM_DUMP_DIR); empty disables worker
     * crash dumps. Dump files a failed worker announced on stderr
     * are linked from the quarantine record. Only meaningful with
     * isolation.
     */
    std::string dumpDir;

    /**
     * Transport that executes isolated job attempts (see
     * sim/launcher.hh). Null means the classic local backend: a
     * LocalSpawnLauncher over workerBinary/dumpDir, constructed by
     * the supervisor. Supplying a launcher redirects where attempts
     * run (e.g. at a --serve node) without changing any of the
     * watchdog/retry/quarantine/journal semantics layered above it.
     * Ignored when isolate is false.
     */
    std::shared_ptr<WorkerLauncher> launcher;

    /**
     * Environment-derived options for harnesses without CLI flags:
     * SHELFSIM_ISOLATE (0/1), SHELFSIM_TIMEOUT (seconds),
     * SHELFSIM_RETRIES, SHELFSIM_BACKOFF (seconds),
     * SHELFSIM_JOURNAL (path), SHELFSIM_RESUME (0/1),
     * SHELFSIM_DUMP_DIR (path). Malformed values are fatal.
     */
    static SupervisorOptions fromEnv();
};

/** Final state of one supervised job. */
struct JobOutcome
{
    enum class Status {
        Ok,          ///< result is valid
        Quarantined, ///< retry budget exhausted; result cell missing
    };

    Status status = Status::Ok;
    SystemResult result;      ///< valid only when ok()
    bool fromJournal = false; ///< replayed, not re-run
    unsigned attempts = 0;    ///< executions performed this run
    double wallSeconds = 0;   ///< total wall clock across attempts
    int exitCode = 0;         ///< last worker exit code (if exited)
    int termSignal = 0;       ///< last worker terminating signal
    bool timedOut = false;    ///< last attempt hit the watchdog
    std::string stderrTail;   ///< tail of the last worker's stderr
    std::string repro;        ///< one-line repro artifact (failures)
    /** Crash-dump JSON the last failed worker announced on stderr
     * (via the "SHELFSIM-DUMP <path>" marker); empty if none. */
    std::string dumpFile;

    bool ok() const { return status == Status::Ok; }
};

class SweepSupervisor
{
  public:
    explicit SweepSupervisor(SupervisorOptions opt);

    /**
     * Execute every job and return outcomes in input order
     * (deterministic for any worker count). Healthy jobs yield
     * byte-identical results to a serial in-process run; failed
     * jobs come back Quarantined instead of taking the process
     * down. Journal records are appended as jobs finish.
     */
    std::vector<JobOutcome>
    run(const std::vector<validate::SweepJobSpec> &jobs);

    /**
     * Execute exactly one job with the same isolation/watchdog/
     * retry/quarantine machinery as run(), but without touching the
     * journal and without the worker pool — the caller provides the
     * concurrency. This is the serve daemon's hook: its executor
     * threads each push one cache-miss job at a time through the
     * supervisor, so a crashing client-supplied config quarantines
     * instead of taking the service down.
     */
    JobOutcome runOne(const validate::SweepJobSpec &spec);

    /** Invoked after each job completes (from worker threads). */
    void
    setProgressCallback(
        std::function<void(size_t, const JobOutcome &)> cb)
    {
        progress = std::move(cb);
    }

    /** Retry-backoff policy: delay before attempt @p attempt
     * (1-based count of failures so far). */
    static double backoffDelay(unsigned attempt, double baseSeconds);

    /**
     * backoffDelay with deterministic per-@p seed jitter in
     * [d, 1.25d): the same (seed, attempt) always produces the same
     * delay (runs stay reproducible), but different jobs and fabric
     * nodes spread out instead of retrying in lockstep. The actual
     * retry sleeps use this, seeded with the job-spec hash.
     */
    static double backoffDelayJittered(unsigned attempt,
                                       double baseSeconds,
                                       uint64_t seed);

    /** Number of quarantined outcomes. */
    static size_t failures(const std::vector<JobOutcome> &outcomes);

    /**
     * Multi-line human-readable report of every quarantined job
     * (exit status, stderr tail, repro line); empty string when all
     * jobs succeeded. Harnesses print this and carry on — partial
     * but honest.
     */
    static std::string
    failureSummary(const std::vector<JobOutcome> &outcomes);

  private:
    JobOutcome execute(const validate::SweepJobSpec &spec);
    JobOutcome runIsolated(const validate::SweepJobSpec &spec);

    SupervisorOptions opt;
    std::function<void(size_t, const JobOutcome &)> progress;
};

/**
 * Execute one sweep job in this process and return its result
 * (honoring the spec's self-faulting hook). The worker mode and the
 * supervisor's in-process path share this.
 */
SystemResult runSweepJob(const validate::SweepJobSpec &spec);

/**
 * Non-fatal variant: trace-backed jobs load untrusted input, and a
 * corrupt or missing trace must quarantine that one job — never
 * kill the worker (or, in non-isolated mode, the whole sweep).
 * Returns false with a precise message (trace path, TraceError
 * name, detail) in @p err; such failures are deterministic, so
 * callers quarantine without retrying. Content hashes carried by
 * the spec are re-verified against the file before it runs.
 */
bool tryRunSweepJob(const validate::SweepJobSpec &spec,
                    SystemResult &res, std::string &err);

/** Exit/quarantine code for deterministic job-input failures (bad
 * trace file): distinct from crash codes so failure summaries and
 * fabric retries can tell "poison job" from "sick node". */
constexpr int kJobInputErrorExit = 4;

/**
 * Hidden worker-mode entry point. When argv is
 * `<prog> --worker '<spec json>'`, runs the job, prints the result
 * payload on stdout, stores the exit code in @p rc, and returns
 * true; the caller's main() should immediately return *rc. Returns
 * false (rc untouched) for every other command line. Every binary
 * that runs supervised sweeps with isolation calls this first thing
 * in main() so it can serve as its own worker.
 */
bool maybeRunSweepWorker(int argc, char **argv, int *rc);

} // namespace shelf

#endif // SHELFSIM_SIM_SUPERVISOR_HH
