/**
 * @file
 * Parallel experiment runner: a process-wide fixed-size worker pool
 * that fans independent simulation jobs across OS threads.
 *
 * Every figure/table harness reproduces the paper's methodology of
 * 28 balanced-random mixes x several core configurations; each
 * (mix, config) simulation is independent of every other, so the
 * sweeps are embarrassingly parallel. The pool's size comes from the
 * SHELFSIM_JOBS environment variable (default: the hardware thread
 * count); SHELFSIM_JOBS=1 degenerates to the fully serial path.
 *
 * Determinism: jobs receive their *input index*, and callers store
 * results into per-index slots, so results are input-ordered and
 * bit-identical regardless of the worker count or completion order.
 * This relies on a simulation invariant the core model upholds:
 * every Core/System instance is self-contained (no mutable global
 * or function-local static state anywhere in the simulation path —
 * the only function-local static, the spec2006Profiles() table, is
 * immutable after its thread-safe construction). runJobs() touches
 * the profile table once before fanning out so even its first-use
 * initialization happens on one thread.
 */

#ifndef SHELFSIM_SIM_PARALLEL_HH
#define SHELFSIM_SIM_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace shelf
{

/**
 * Worker count used when a call site does not override it: the value
 * of SHELFSIM_JOBS if set (clamped to >= 1), otherwise
 * std::thread::hardware_concurrency(). Read once per process.
 */
unsigned defaultJobs();

/**
 * Override the job count programmatically (e.g. a --jobs CLI flag).
 * Takes effect for subsequent runJobs() calls; pass 0 to restore the
 * environment-derived default. Not thread-safe: call it from the
 * main thread before fanning out work.
 */
void setDefaultJobs(unsigned jobs);

/**
 * Run fn(0), fn(1), ..., fn(n-1) across the worker pool and block
 * until all complete. @p jobs limits the number of workers used for
 * this batch (0 = defaultJobs()); with one job (or n <= 1) the
 * calls run inline on the caller's thread in index order — the
 * serial reference path. Calls from inside a worker (nested
 * parallelism) also run inline, so helpers may use runJobs()
 * without worrying about their caller's context.
 *
 * Completion order across workers is unspecified: @p fn must write
 * its result into a slot derived from its index and must not touch
 * shared mutable state without its own synchronization.
 */
void runJobs(size_t n, const std::function<void(size_t)> &fn,
             unsigned jobs = 0);

/**
 * Like runJobs(), but @p fn returns false to request cancellation:
 * indices not yet started are skipped (jobs already running on other
 * workers still finish). Returns the number of indices whose fn
 * actually ran. The fuzz driver uses this to stop a batch at the
 * first failing case instead of burning the rest of the sweep.
 */
size_t runJobsCancellable(size_t n,
                          const std::function<bool(size_t)> &fn,
                          unsigned jobs = 0);

/** True while the calling thread is executing a runJobs() job. */
bool insideWorker();

/**
 * Map [0, n) to a vector of results, input-ordered:
 * out[i] = fn(i). Parallel over the worker pool like runJobs().
 */
template <typename Fn>
auto
parallelMap(size_t n, Fn &&fn, unsigned jobs = 0)
    -> std::vector<decltype(fn(static_cast<size_t>(0)))>
{
    using R = decltype(fn(static_cast<size_t>(0)));
    std::vector<R> out(n);
    runJobs(n, [&](size_t i) { out[i] = fn(i); }, jobs);
    return out;
}

} // namespace shelf

#endif // SHELFSIM_SIM_PARALLEL_HH
