#include "sim/allocation.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"

namespace shelf
{

namespace
{

/**
 * Deal threads to cores in rank order, serpentine: the first C
 * threads go to cores 0..C-1, the next C to cores C-1..0, and so on.
 * Adjacent ranks therefore land on different cores and each core's
 * total rank mass is balanced — the classic way to split a sorted
 * list into C near-equal groups. With T <= C * W every core receives
 * at most ceil(T / C) <= W threads.
 */
std::vector<unsigned>
serpentineDeal(const std::vector<size_t> &rank_order, unsigned cores)
{
    std::vector<unsigned> out(rank_order.size(), 0);
    for (size_t i = 0; i < rank_order.size(); ++i) {
        size_t round = i / cores;
        size_t slot = i % cores;
        unsigned core = (round % 2 == 0)
            ? static_cast<unsigned>(slot)
            : static_cast<unsigned>(cores - 1 - slot);
        out[rank_order[i]] = core;
    }
    return out;
}

void
checkShape(size_t threads, unsigned cores, unsigned width)
{
    fatal_if(cores == 0, "allocation: zero cores");
    fatal_if(width == 0, "allocation: zero threads per core");
    fatal_if(threads == 0, "allocation: zero threads");
    fatal_if(threads > static_cast<size_t>(cores) * width,
             "allocation: %zu threads exceed %u cores x %u-thread "
             "capacity", threads, cores, width);
}

} // namespace

const std::vector<std::string> &
allocationPolicyNames()
{
    static const std::vector<std::string> names = {
        "round-robin", "fill-first", "classify", "dynamic",
    };
    return names;
}

bool
isAllocationPolicy(const std::string &name)
{
    const auto &names = allocationPolicyNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

double
memoryIntensityScore(const BenchmarkProfile &p)
{
    // How much of the stream touches memory, discounted by how
    // cache-friendly (streaming) the accesses are.
    double score = (p.loadFrac + p.storeFrac) *
        (1.0 - 0.5 * p.streamFrac);
    // Pointer chasing serializes misses: the strongest MLP killer.
    score += p.pointerChaseFrac;
    // Footprint beyond cache-resident sizes turns accesses into
    // long-latency trips (saturating at ~4MB).
    score += 0.5 * std::min(1.0, p.workingSetKB / 4096.0);
    // Tight dependence structure (close producers, long serial
    // chains, few always-ready far sources) means little ILP to hide
    // the stalls with.
    score += 0.25 * (p.depGeoP + p.serialChainFrac - p.farFrac);
    return score;
}

std::vector<unsigned>
allocateThreads(const std::string &policy, const AllocationInput &in)
{
    size_t threads = in.profiles.size();
    checkShape(threads, in.numCores, in.threadsPerCore);

    if (policy == "round-robin" || policy == "dynamic") {
        // Dynamic starts from round-robin: the probe epoch measures
        // per-thread IPC under a neutral placement.
        std::vector<unsigned> out(threads);
        for (size_t t = 0; t < threads; ++t)
            out[t] = static_cast<unsigned>(t % in.numCores);
        return out;
    }
    if (policy == "fill-first") {
        std::vector<unsigned> out(threads);
        for (size_t t = 0; t < threads; ++t)
            out[t] = static_cast<unsigned>(t / in.threadsPerCore);
        return out;
    }
    if (policy == "classify") {
        // Score every thread, most memory-bound first, then deal
        // serpentine so each core receives a balanced ILP/MLP mix
        // instead of all the cache-hostile threads piling onto one
        // shelf. Trace-backed threads (no profile) score neutral and
        // keep their relative order via the stable sort.
        std::vector<double> score(threads, 0.0);
        for (size_t t = 0; t < threads; ++t)
            if (in.profiles[t])
                score[t] = memoryIntensityScore(*in.profiles[t]);
        std::vector<size_t> order(threads);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&score](size_t a, size_t b) {
                             return score[a] > score[b];
                         });
        return serpentineDeal(order, in.numCores);
    }
    fatal("unknown allocation policy '%s' (have: round-robin, "
          "fill-first, classify, dynamic)", policy.c_str());
    return {};
}

std::vector<unsigned>
reallocateByIpc(const std::vector<double> &ipc, unsigned numCores,
                unsigned threadsPerCore)
{
    checkShape(ipc.size(), numCores, threadsPerCore);
    std::vector<size_t> order(ipc.size());
    std::iota(order.begin(), order.end(), 0);
    // Slowest threads first: they are the resource-hungry ones the
    // serpentine deal spreads across cores. stable_sort keeps ties
    // in thread-id order.
    std::stable_sort(order.begin(), order.end(),
                     [&ipc](size_t a, size_t b) {
                         return ipc[a] < ipc[b];
                     });
    return serpentineDeal(order, numCores);
}

} // namespace shelf
